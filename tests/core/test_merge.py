"""Block-oriented MergeScan vs tuple-at-a-time merge vs oracle."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FlatPDT,
    PDT,
    merge_rows,
    merge_scan,
    merge_scan_layers,
)
from repro.storage import StableTable

from .helpers import TableDriver, apply_random_ops, int_schema


def build_case(seed, n_stable=40, n_ops=60, fanout=4):
    schema = int_schema()
    rows = [(k * 10, k, f"s{k}") for k in range(n_stable)]
    table = StableTable.bulk_load("t", schema, rows)
    pdt = PDT(schema, fanout=fanout)
    driver = TableDriver(schema, rows, [pdt])
    apply_random_ops(driver, random.Random(seed), n_ops, key_range=600)
    return table, pdt, driver, rows


def collect(batches, columns):
    """Flatten merge batches back into row tuples, checking RID continuity."""
    out = []
    expected_next = None
    for first_rid, arrays in batches:
        n = len(arrays[columns[0]])
        if expected_next is not None:
            assert first_rid == expected_next, "RID gap between batches"
        expected_next = first_rid + n
        for i in range(n):
            out.append(tuple(arrays[c][i] for c in columns))
    return out


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10**9),
    batch_rows=st.sampled_from([1, 3, 7, 16, 1000]),
)
def test_block_merge_equals_row_merge(seed, batch_rows):
    table, pdt, driver, rows = build_case(seed)
    cols = ["k", "a", "b"]
    got = collect(
        merge_scan(table, pdt, columns=cols, batch_rows=batch_rows), cols
    )
    assert got == driver.expected_rows()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10**9))
def test_block_merge_projection_without_sort_key(seed):
    """The PDT merge must work reading only non-key columns."""
    table, pdt, driver, rows = build_case(seed)
    cols = ["a", "b"]
    got = collect(merge_scan(table, pdt, columns=cols, batch_rows=8), cols)
    assert got == [(r[1], r[2]) for r in driver.expected_rows()]


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10**9),
    start=st.integers(0, 45),
    stop=st.integers(0, 45),
)
def test_range_scan_matches_full_scan_slice(seed, start, stop):
    """A SID-range MergeScan returns exactly the corresponding positional
    slice of the full current image."""
    table, pdt, driver, rows = build_case(seed)
    start, stop = min(start, stop), max(start, stop)
    stop = min(stop, table.num_rows)
    start = min(start, stop)
    cols = ["k", "a"]
    got = collect(
        merge_scan(table, pdt, columns=cols, start=start, stop=stop,
                   batch_rows=5),
        cols,
    )
    full = [(r[0], r[1]) for r in driver.expected_rows()]
    lo = start + pdt.delta_before_sid(start)
    if stop >= table.num_rows:
        hi = len(full)
    else:
        hi = stop + pdt.delta_before_sid(stop)
    assert got == full[lo:hi]


def test_merge_empty_pdt_passes_through():
    schema = int_schema()
    rows = [(k, k, f"s{k}") for k in range(10)]
    table = StableTable.bulk_load("t", schema, rows)
    pdt = PDT(schema)
    got = collect(merge_scan(table, pdt, batch_rows=4), list(schema.column_names))
    assert got == rows


def test_merge_empty_table_only_inserts():
    schema = int_schema()
    table = StableTable.bulk_load("t", schema, [])
    pdt = PDT(schema)
    driver = TableDriver(schema, [], [pdt])
    for k in (3, 1, 2):
        driver.insert((k, k, f"s{k}"))
    got = collect(merge_scan(table, pdt), list(schema.column_names))
    assert got == driver.expected_rows()


def test_merge_requires_columns():
    schema = int_schema()
    table = StableTable.bulk_load("t", schema, [])
    with pytest.raises(ValueError):
        list(merge_scan(table, PDT(schema), columns=[]))


def test_rid_values_are_positions():
    table, pdt, driver, rows = build_case(seed=7)
    cols = ["k"]
    rid = 0
    for first_rid, arrays in merge_scan(table, pdt, columns=cols,
                                        batch_rows=6):
        assert first_rid == rid
        rid += len(arrays["k"])
    assert rid == len(driver.expected_rows())


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10**9), layers=st.integers(1, 3))
def test_layered_merge_matches_sequential_images(seed, layers):
    """A stack of PDT layers, each built against the image produced by the
    layers below it, must merge to the final sequential image."""
    schema = int_schema()
    rows = [(k * 10, k, f"s{k}") for k in range(30)]
    table = StableTable.bulk_load("t", schema, rows)
    rng = random.Random(seed)

    stack = []
    image = rows
    for _ in range(layers):
        pdt = PDT(schema, fanout=4)
        layer_driver = TableDriver(schema, image, [pdt])
        apply_random_ops(layer_driver, rng, rng.randrange(5, 25),
                         key_range=500)
        image = layer_driver.expected_rows()
        stack.append(pdt)

    cols = ["k", "a", "b"]
    got = collect(
        merge_scan_layers(table, stack, columns=cols, batch_rows=7), cols
    )
    assert got == image
