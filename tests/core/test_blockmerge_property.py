"""Property tests: block-pipelined vectorized MergeScan vs the tuple oracle.

The vectorized :class:`~repro.core.merge.BlockMerger` builds one splice
plan per block and replays it with ndarray slice copies; the oracle is the
faithful Algorithm-2 next() loop (:func:`merge_row_stream`). Under any
valid random op sequence, over any block size and scan range, both must
produce identical output — including the zero-copy pass-through, plan
splicing, range-scan, and fixed-size :func:`reblock` paths.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PDT, merge_rows, merge_scan, reblock
from repro.core.merge import BlockMerger
from repro.storage import StableTable

from .helpers import TableDriver, apply_random_ops, int_schema


def _build(seed: int, n_ops: int, n_stable: int = 40, fanout: int = 4):
    schema = int_schema()
    rows = [(k * 10, k, f"s{k}") for k in range(n_stable)]
    pdt = PDT(schema, fanout=fanout)
    driver = TableDriver(schema, rows, [pdt])
    apply_random_ops(driver, random.Random(seed), n_ops, key_range=900)
    stable = StableTable.bulk_load("t", schema, rows)
    return stable, pdt, rows, driver.expected_rows()


def _materialize(stream, columns):
    out = []
    for _, arrays in stream:
        n = len(arrays[columns[0]])
        for i in range(n):
            out.append(tuple(arrays[c][i] for c in columns))
    return out


@settings(max_examples=100, deadline=None)
@given(
    seed=st.integers(0, 10**9),
    n_ops=st.integers(0, 150),
    batch_rows=st.sampled_from([1, 3, 7, 16, 64]),
)
def test_block_merge_equals_tuple_oracle(seed, n_ops, batch_rows):
    stable, pdt, rows, expected = _build(seed, n_ops)
    assert merge_rows(rows, pdt) == expected  # oracle vs shadow table
    cols = list(stable.schema.column_names)
    got = _materialize(
        merge_scan(stable, pdt, columns=cols, batch_rows=batch_rows), cols
    )
    assert got == expected


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10**9),
    n_ops=st.integers(0, 120),
    start=st.integers(0, 45),
    length=st.integers(0, 45),
    batch_rows=st.sampled_from([2, 5, 32]),
)
def test_block_merge_range_scan_equals_oracle_slice(
    seed, n_ops, start, length, batch_rows
):
    """Range scans must agree with the oracle on the SID-sliced image.

    The oracle for a SID range is the merge of the stable slice with the
    PDT entries inside it — exactly what a sparse-index-restricted scan
    produces, with trailing inserts suppressed unless the range reaches
    the table end.
    """
    stable, pdt, rows, _ = _build(seed, n_ops)
    stop = start + length
    cols = list(stable.schema.column_names)
    got = _materialize(
        merge_scan(stable, pdt, columns=cols, start=start, stop=stop,
                   batch_rows=batch_rows),
        cols,
    )
    # Range oracle: slice the full tuple-merged image at the RID images of
    # the SID bounds (matching merge_scan's clamp of start to the stable
    # domain end; inserts at exactly SID==stop belong to the next range,
    # which delta_before_sid's strict bound already encodes).
    full = merge_rows(rows, pdt)
    to_end = stop >= stable.num_rows
    start_eff = min(start, stable.num_rows)
    lo = start_eff + pdt.delta_before_sid(start_eff)
    if to_end:
        expected = full[lo:]
    else:
        expected = full[lo:stop + pdt.delta_before_sid(stop)]
    assert got == expected


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 10**9),
    n_ops=st.integers(0, 100),
    block_rows=st.sampled_from([1, 4, 13, 50]),
)
def test_reblock_preserves_stream(seed, n_ops, block_rows):
    stable, pdt, rows, expected = _build(seed, n_ops)
    cols = list(stable.schema.column_names)
    stream = merge_scan(stable, pdt, columns=cols, batch_rows=7)
    blocks = list(reblock(stream, block_rows=block_rows))
    # All blocks are exactly block_rows long except possibly the last.
    sizes = [len(arrays[cols[0]]) for _, arrays in blocks]
    assert all(s == block_rows for s in sizes[:-1])
    if sizes:
        assert 0 < sizes[-1] <= block_rows
    # First positions are consecutive.
    positions = [pos for pos, _ in blocks]
    assert positions == [
        positions[0] + i * block_rows for i in range(len(positions))
    ] if positions else True
    assert _materialize(iter(blocks), cols) == expected


def test_merger_rejects_stray_entry_beyond_end():
    """A non-insert entry past the stable domain is data corruption."""
    schema = int_schema()
    rows = [(k * 10, k, f"s{k}") for k in range(5)]
    pdt = PDT(schema)
    pdt.add_delete(4, (40,))
    stable = StableTable.bulk_load("t", schema, rows[:4])  # domain too short
    merger = BlockMerger(pdt, list(schema.column_names))
    with pytest.raises(Exception):
        list(merger.merge_batches(stable.scan()))


def test_passthrough_blocks_are_not_copied():
    """Blocks without PDT entries must flow through by reference."""
    schema = int_schema()
    rows = [(k * 10, k, f"s{k}") for k in range(64)]
    stable = StableTable.bulk_load("t", schema, rows)
    pdt = PDT(schema)
    pdt.add_modify(40, 1, 999)  # lands in the third 16-row block
    src = {c: stable.column(c).values for c in schema.column_names}
    for first_rid, arrays in merge_scan(stable, pdt, batch_rows=16):
        block = first_rid // 16
        if block in (0, 1):
            assert arrays["a"].base is src["a"] or \
                np.shares_memory(arrays["a"], src["a"])
        if block == 2:
            assert not np.shares_memory(arrays["a"], src["a"])
