"""Propagate (Algorithm 7): merge(T0, R.propagate(W)) == merge(merge(T0,R), W)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FlatPDT, PDT, merge_rows, propagate

from .helpers import TableDriver, apply_random_ops, int_schema


def two_layer_case(pdt_cls, seed, n_stable=25, ops_r=40, ops_w=40):
    """Build R against the stable image and W against merge(T0, R)."""
    schema = int_schema()
    rows = [(k * 10, k, f"s{k}") for k in range(n_stable)]
    rng = random.Random(seed)

    def make(schema):
        return pdt_cls(schema, fanout=4) if pdt_cls is PDT else pdt_cls(schema)

    read_pdt = make(schema)
    read_driver = TableDriver(schema, rows, [read_pdt])
    apply_random_ops(read_driver, rng, ops_r, key_range=500)
    mid_image = read_driver.expected_rows()

    write_pdt = make(schema)
    write_driver = TableDriver(schema, mid_image, [write_pdt])
    apply_random_ops(write_driver, rng, ops_w, key_range=500)
    final_image = write_driver.expected_rows()
    return rows, read_pdt, write_pdt, final_image


@pytest.mark.parametrize("pdt_cls", [FlatPDT, PDT])
@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10**9))
def test_propagate_equals_stacked_merge(pdt_cls, seed):
    rows, read_pdt, write_pdt, final_image = two_layer_case(pdt_cls, seed)
    propagate(read_pdt, write_pdt)
    read_pdt.check_invariants()
    assert merge_rows(rows, read_pdt) == final_image


@pytest.mark.parametrize("pdt_cls", [FlatPDT, PDT])
def test_propagate_into_empty(pdt_cls):
    """Propagating into an empty lower layer copies the upper layer."""
    schema = int_schema()
    rows = [(k, 0, "x") for k in range(10)]

    def make():
        return pdt_cls(schema, fanout=4) if pdt_cls is PDT else pdt_cls(schema)

    upper = make()
    driver = TableDriver(schema, rows, [upper])
    driver.insert((100, 1, "new"))
    driver.delete((3,))
    driver.modify((5,), "a", 9)

    lower = make()
    propagate(lower, upper)
    assert merge_rows(rows, lower) == driver.expected_rows()
    assert lower.count() == upper.count()


@pytest.mark.parametrize("pdt_cls", [FlatPDT, PDT])
def test_propagate_empty_upper_is_noop(pdt_cls):
    schema = int_schema()

    def make():
        return pdt_cls(schema, fanout=4) if pdt_cls is PDT else pdt_cls(schema)

    lower, upper = make(), make()
    driver = TableDriver(schema, [(1, 0, "x")], [lower])
    driver.insert((5, 0, "y"))
    before = [(e.sid, e.rid, e.kind) for e in lower.iter_entries()]
    propagate(lower, upper)
    assert [(e.sid, e.rid, e.kind) for e in lower.iter_entries()] == before


def test_propagate_delete_cancels_lower_insert():
    """W deletes a tuple that R inserted: both entries must vanish."""
    schema = int_schema()
    rows = [(k, 0, "x") for k in range(5)]
    lower = FlatPDT(schema)
    d1 = TableDriver(schema, rows, [lower])
    d1.insert((10, 1, "r-ins"))
    upper = FlatPDT(schema)
    d2 = TableDriver(schema, d1.expected_rows(), [upper])
    d2.delete((10,))
    propagate(lower, upper)
    assert lower.count() == 0
    assert merge_rows(rows, lower) == rows


def test_propagate_modify_lands_in_lower_insert():
    """W modifies a tuple R inserted: the insert row absorbs the change."""
    schema = int_schema()
    rows = [(k, 0, "x") for k in range(5)]
    lower = FlatPDT(schema)
    d1 = TableDriver(schema, rows, [lower])
    d1.insert((10, 1, "r-ins"))
    upper = FlatPDT(schema)
    d2 = TableDriver(schema, d1.expected_rows(), [upper])
    d2.modify((10,), "a", 42)
    propagate(lower, upper)
    assert lower.count() == 1
    entry = next(lower.iter_entries())
    assert lower.values.get_insert(entry.ref) == [10, 42, "r-ins"]


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**9))
def test_repeated_propagation_chain(seed):
    """Three consecutive layers folded one-by-one (W->R twice)."""
    schema = int_schema()
    rows = [(k * 10, k, f"s{k}") for k in range(20)]
    rng = random.Random(seed)
    base = PDT(schema, fanout=4)
    image = rows
    for _ in range(3):
        layer = PDT(schema, fanout=4)
        driver = TableDriver(schema, image, [layer])
        apply_random_ops(driver, rng, 20, key_range=300)
        image = driver.expected_rows()
        propagate(base, layer)
        base.check_invariants()
        assert merge_rows(rows, base) == image
