"""The paper's running example (section 2.1, Figures 1-13), end to end.

Each batch from the paper is applied and the resulting table image,
SID/RID mapping, and value-space contents are checked against the figures.
Run against both the flat reference PDT and the tree PDT.
"""

import pytest

from repro.core import FlatPDT, PDT, merge_rows
from repro.core.types import KIND_DEL, KIND_INS

from .helpers import TableDriver, inventory_rows, inventory_schema


def fresh(pdt_cls):
    schema = inventory_schema()
    pdt = pdt_cls(schema) if pdt_cls is FlatPDT else pdt_cls(schema, fanout=4)
    return TableDriver(schema, inventory_rows(), [pdt]), pdt


def run_batch1(driver):
    driver.insert(("Berlin", "table", "Y", 10))
    driver.insert(("Berlin", "cloth", "Y", 5))
    driver.insert(("Berlin", "chair", "Y", 20))


def run_batch2(driver):
    driver.modify(("Berlin", "cloth"), "qty", 1)
    driver.modify(("London", "stool"), "qty", 9)
    driver.delete(("Berlin", "table"))
    driver.delete(("Paris", "rug"))


def run_batch3(driver):
    driver.insert(("Paris", "rack", "Y", 4))
    driver.insert(("London", "rack", "Y", 4))
    driver.insert(("Berlin", "rack", "Y", 4))


@pytest.mark.parametrize("pdt_cls", [FlatPDT, PDT])
class TestPaperExample:
    def test_table1_after_inserts(self, pdt_cls):
        driver, pdt = fresh(pdt_cls)
        run_batch1(driver)
        expected = [  # Figure 5
            ("Berlin", "chair", "Y", 20),
            ("Berlin", "cloth", "Y", 5),
            ("Berlin", "table", "Y", 10),
            ("London", "chair", "N", 30),
            ("London", "stool", "N", 10),
            ("London", "table", "N", 20),
            ("Paris", "rug", "N", 1),
            ("Paris", "stool", "N", 5),
        ]
        assert merge_rows(inventory_rows(), pdt) == expected
        # All three inserts share SID 0 (Figure 3).
        assert [e.sid for e in pdt.iter_entries()] == [0, 0, 0]
        assert all(e.kind == KIND_INS for e in pdt.iter_entries())
        assert pdt.total_delta() == 3

    def test_table2_after_update_delete_batch(self, pdt_cls):
        driver, pdt = fresh(pdt_cls)
        run_batch1(driver)
        run_batch2(driver)
        expected = [  # Figure 9
            ("Berlin", "chair", "Y", 20),
            ("Berlin", "cloth", "Y", 1),
            ("London", "chair", "N", 30),
            ("London", "stool", "N", 9),
            ("London", "table", "N", 20),
            ("Paris", "stool", "N", 5),
        ]
        assert merge_rows(inventory_rows(), pdt) == expected
        entries = list(pdt.iter_entries())
        # Figure 7: two inserts at SID 0, a qty-modify at SID 1, and the
        # ghost of (Paris,rug) at SID 3. The (Berlin,table) insert vanished.
        assert [(e.sid, e.kind) for e in entries] == [
            (0, KIND_INS),
            (0, KIND_INS),
            (1, inventory_schema().column_index("qty")),
            (3, KIND_DEL),
        ]
        # In-place modify of the inserted (Berlin,cloth): qty now 1 in the
        # insert space (Figure 8, i1).
        cloth = pdt.values.get_insert(entries[1].ref)
        assert cloth == ["Berlin", "cloth", "Y", 1]
        # Delete table holds the ghost's sort key (Figure 8, d0).
        assert pdt.values.get_delete(entries[3].ref) == ("Paris", "rug")
        assert pdt.total_delta() == 1

    def test_table3_final_state(self, pdt_cls):
        driver, pdt = fresh(pdt_cls)
        run_batch1(driver)
        run_batch2(driver)
        run_batch3(driver)
        expected = [  # Figure 13 (live rows only)
            ("Berlin", "chair", "Y", 20),
            ("Berlin", "cloth", "Y", 1),
            ("Berlin", "rack", "Y", 4),
            ("London", "chair", "N", 30),
            ("London", "rack", "Y", 4),
            ("London", "stool", "N", 9),
            ("London", "table", "N", 20),
            ("Paris", "rack", "Y", 4),
            ("Paris", "stool", "N", 5),
        ]
        assert merge_rows(inventory_rows(), pdt) == expected
        # Figure 11 annotations: (sid, rid) per update entry.
        entries = [(e.sid, e.rid) for e in pdt.iter_entries()]
        assert entries == [
            (0, 0),  # ins i2 (Berlin,chair)
            (0, 1),  # ins i1 (Berlin,cloth)
            (0, 2),  # ins i4 (Berlin,rack)
            (1, 4),  # ins i3 (London,rack)
            (1, 5),  # qty modify q0 (London,stool)
            (3, 7),  # ins i0 (Paris,rack)
            (3, 8),  # del d0 (Paris,rug)
        ]
        assert pdt.total_delta() == 4

    def test_paris_rack_respects_ghost(self, pdt_cls):
        """(Paris,rack) must receive SID 3 — before the (Paris,rug) ghost —
        not SID 4, keeping TABLE0 sparse indexes valid (section 2.1)."""
        driver, pdt = fresh(pdt_cls)
        run_batch1(driver)
        run_batch2(driver)
        driver.insert(("Paris", "rack", "Y", 4))
        ins = [e for e in pdt.iter_entries() if e.is_insert][-1]
        assert pdt.values.get_insert(ins.ref)[:2] == ["Paris", "rack"]
        assert ins.sid == 3

    def test_insert_after_ghost_key(self, pdt_cls):
        """A key sorting after a ghost gets the ghost's successor SID."""
        driver, pdt = fresh(pdt_cls)
        run_batch2_only = [("Paris", "rug")]
        driver.delete(run_batch2_only[0])
        driver.insert(("Paris", "rugz", "Y", 7))
        ins = [e for e in pdt.iter_entries() if e.is_insert][0]
        assert ins.sid == 4  # after ghost at SID 3

    def test_invariants_throughout(self, pdt_cls):
        driver, pdt = fresh(pdt_cls)
        for batch in (run_batch1, run_batch2, run_batch3):
            batch(driver)
            pdt.check_invariants()

    def test_sparse_index_range_still_valid(self, pdt_cls):
        """Paper's query: store='Paris' AND prod<'rug' must fall in the
        stale TABLE0 sparse-index range (1, 3] thanks to ghost SIDs."""
        driver, pdt = fresh(pdt_cls)
        run_batch1(driver)
        run_batch2(driver)
        run_batch3(driver)
        rack = [
            e
            for e in pdt.iter_entries()
            if e.is_insert and pdt.values.get_insert(e.ref)[1] == "rack"
            and pdt.values.get_insert(e.ref)[0] == "Paris"
        ]
        assert len(rack) == 1
        assert 1 < rack[0].sid <= 3
