"""Serialize (Algorithm 8): re-basing overlapping transactions + conflicts.

Ground truth: transactions x and y both start from the same snapshot; y
commits first. If their write sets don't conflict, committing x must yield
the same image as replaying x's logical operations on the post-y image.
``serialize`` performs exactly that re-basing, so:

    merge(merge(T0, Ty), serialize(Tx, Ty)) == replay(y then x)
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FlatPDT,
    PDT,
    TransactionConflict,
    merge_rows,
    serialize,
)

from .helpers import TableDriver, int_schema


def make_pdt(pdt_cls, schema):
    return pdt_cls(schema, fanout=4) if pdt_cls is PDT else pdt_cls(schema)


def gen_logical_ops(rng, base_keys, key_range, n_ops, forbidden=()):
    """Logical ops over a snapshot with ``base_keys`` live. Keys in
    ``forbidden`` are never touched (used to build conflict-free pairs)."""
    live = set(base_keys)
    inserted = set()
    ops = []
    for _ in range(n_ops):
        c = rng.random()
        if c < 0.45 or not live:
            key = rng.randrange(key_range)
            if key in live or key in forbidden or key in inserted:
                continue
            ops.append(("ins", (key, rng.randrange(100), f"v{key}")))
            live.add(key)
            inserted.add(key)
        elif c < 0.70:
            key = rng.choice(sorted(live))
            if key in forbidden:
                continue
            ops.append(("del", key))
            live.discard(key)
        else:
            key = rng.choice(sorted(live))
            if key in forbidden:
                continue
            col = rng.choice(["a", "b"])
            val = rng.randrange(100) if col == "a" else f"m{rng.randrange(9)}"
            ops.append(("mod", key, col, val))
    return ops, inserted | {k for k in base_keys if k not in live} | {
        op[1] if op[0] != "ins" else op[1][0] for op in ops
    }


def apply_ops(driver, ops):
    for op in ops:
        if op[0] == "ins":
            if not driver.shadow.contains_sk((op[1][0],)):
                driver.insert(op[1])
        elif op[0] == "del":
            if driver.shadow.contains_sk((op[1],)):
                driver.delete((op[1],))
        else:
            if driver.shadow.contains_sk((op[1],)):
                driver.modify((op[1],), op[2], op[3])


@pytest.mark.parametrize("pdt_cls", [FlatPDT, PDT])
@settings(max_examples=80, deadline=None)
@given(seed=st.integers(0, 10**9))
def test_serialize_matches_sequential_replay(pdt_cls, seed):
    """Disjoint key sets: serialize must succeed and match ground truth."""
    schema = int_schema()
    rng = random.Random(seed)
    base_keys = [k * 10 for k in range(20)]
    rows = [(k, k // 10, f"s{k}") for k in base_keys]

    # y touches even-ish keys, x odd-ish ones: guaranteed disjoint.
    y_keys = {k for k in range(0, 500) if (k // 10) % 2 == 0}
    x_keys = {k for k in range(0, 500) if (k // 10) % 2 == 1}

    y_ops, _ = gen_logical_ops(
        rng, [k for k in base_keys if k in y_keys], 500, 25,
        forbidden=x_keys,
    )
    x_ops, _ = gen_logical_ops(
        rng, [k for k in base_keys if k in x_keys], 500, 25,
        forbidden=y_keys,
    )

    ty = make_pdt(pdt_cls, schema)
    y_driver = TableDriver(schema, rows, [ty])
    apply_ops(y_driver, y_ops)

    tx = make_pdt(pdt_cls, schema)
    x_driver = TableDriver(schema, rows, [tx])
    apply_ops(x_driver, x_ops)

    # Ground truth: replay y then x sequentially.
    truth_pdt = make_pdt(pdt_cls, schema)
    truth = TableDriver(schema, rows, [truth_pdt])
    apply_ops(truth, y_ops)
    apply_ops(truth, x_ops)

    tx_prime = serialize(tx, ty)
    tx_prime.check_invariants()
    post_y = merge_rows(rows, ty)
    final = merge_rows(post_y, tx_prime)
    assert final == truth.expected_rows()


@pytest.mark.parametrize("pdt_cls", [FlatPDT, PDT])
class TestConflicts:
    def setup_case(self, pdt_cls):
        schema = int_schema()
        rows = [(k * 10, k, f"s{k}") for k in range(10)]
        ty, tx = make_pdt(pdt_cls, schema), make_pdt(pdt_cls, schema)
        y = TableDriver(schema, rows, [ty])
        x = TableDriver(schema, rows, [tx])
        return rows, ty, tx, y, x

    def test_insert_insert_same_key_conflicts(self, pdt_cls):
        rows, ty, tx, y, x = self.setup_case(pdt_cls)
        y.insert((55, 1, "y"))
        x.insert((55, 2, "x"))
        with pytest.raises(TransactionConflict):
            serialize(tx, ty)

    def test_delete_delete_conflicts(self, pdt_cls):
        rows, ty, tx, y, x = self.setup_case(pdt_cls)
        y.delete((30,))
        x.delete((30,))
        with pytest.raises(TransactionConflict):
            serialize(tx, ty)

    def test_modify_after_delete_conflicts(self, pdt_cls):
        rows, ty, tx, y, x = self.setup_case(pdt_cls)
        y.delete((30,))
        x.modify((30,), "a", 1)
        with pytest.raises(TransactionConflict):
            serialize(tx, ty)

    def test_delete_after_modify_conflicts(self, pdt_cls):
        rows, ty, tx, y, x = self.setup_case(pdt_cls)
        y.modify((30,), "a", 1)
        x.delete((30,))
        with pytest.raises(TransactionConflict):
            serialize(tx, ty)

    def test_same_column_modify_conflicts(self, pdt_cls):
        rows, ty, tx, y, x = self.setup_case(pdt_cls)
        y.modify((30,), "a", 1)
        x.modify((30,), "a", 2)
        with pytest.raises(TransactionConflict):
            serialize(tx, ty)

    def test_disjoint_column_modifies_reconcile(self, pdt_cls):
        """Paper: CheckModConflict allows modifications of different
        attributes of the same tuple."""
        rows, ty, tx, y, x = self.setup_case(pdt_cls)
        y.modify((30,), "a", 1)
        x.modify((30,), "b", "xx")
        tx_prime = serialize(tx, ty)
        final = merge_rows(merge_rows(rows, ty), tx_prime)
        row = [r for r in final if r[0] == 30][0]
        assert row == (30, 1, "xx")

    def test_insert_into_deleted_key_allowed(self, pdt_cls):
        """Re-inserting a key y deleted is legal ('never conflict with
        insert')."""
        rows, ty, tx, y, x = self.setup_case(pdt_cls)
        y.delete((30,))
        x.insert((31, 7, "fresh"))
        tx_prime = serialize(tx, ty)
        final = merge_rows(merge_rows(rows, ty), tx_prime)
        keys = [r[0] for r in final]
        assert 30 not in keys and 31 in keys

    def test_insert_same_position_different_keys(self, pdt_cls):
        """Both transactions insert between the same stable neighbours."""
        rows, ty, tx, y, x = self.setup_case(pdt_cls)
        y.insert((41, 1, "y1"))
        y.insert((43, 1, "y2"))
        x.insert((42, 2, "x1"))
        x.insert((44, 2, "x2"))
        tx_prime = serialize(tx, ty)
        final = merge_rows(merge_rows(rows, ty), tx_prime)
        keys = [r[0] for r in final]
        assert keys == sorted(keys)
        for k in (41, 42, 43, 44):
            assert k in keys

    def test_empty_tx_never_conflicts(self, pdt_cls):
        rows, ty, tx, y, x = self.setup_case(pdt_cls)
        y.delete((30,))
        y.insert((99, 0, "y"))
        tx_prime = serialize(tx, ty)
        assert tx_prime.count() == 0

    def test_empty_ty_is_identity(self, pdt_cls):
        rows, ty, tx, y, x = self.setup_case(pdt_cls)
        x.insert((55, 1, "x"))
        x.delete((30,))
        tx_prime = serialize(tx, ty)
        assert [(e.sid, e.rid, e.kind) for e in tx_prime.iter_entries()] == [
            (e.sid, e.rid, e.kind) for e in tx.iter_entries()
        ]

    def test_serialize_does_not_mutate_inputs(self, pdt_cls):
        rows, ty, tx, y, x = self.setup_case(pdt_cls)
        y.insert((11, 0, "y"))
        x.insert((55, 1, "x"))
        tx_before = [(e.sid, e.rid, e.kind) for e in tx.iter_entries()]
        ty_before = [(e.sid, e.rid, e.kind) for e in ty.iter_entries()]
        serialize(tx, ty)
        assert [(e.sid, e.rid, e.kind) for e in tx.iter_entries()] == tx_before
        assert [(e.sid, e.rid, e.kind) for e in ty.iter_entries()] == ty_before
