"""Shared helpers: drive logical updates through shadow + PDT(s) at once."""

from __future__ import annotations

from repro.core import ShadowTable
from repro.storage import DataType, Schema


def int_schema():
    """Single integer sort key plus an int and a string payload column."""
    return Schema.build(
        ("k", DataType.INT64),
        ("a", DataType.INT64),
        ("b", DataType.STRING),
        sort_key=("k",),
    )


def inventory_schema():
    """The paper's running-example schema (Figure 1)."""
    return Schema.build(
        ("store", DataType.STRING),
        ("prod", DataType.STRING),
        ("new", DataType.STRING),
        ("qty", DataType.INT64),
        sort_key=("store", "prod"),
    )


def inventory_rows():
    return [
        ("London", "chair", "N", 30),
        ("London", "stool", "N", 10),
        ("London", "table", "N", 20),
        ("Paris", "rug", "N", 1),
        ("Paris", "stool", "N", 5),
    ]


class TableDriver:
    """Applies SQL-level updates to a ShadowTable oracle and any number of
    PDT implementations simultaneously, translating value predicates into
    the positional (SID, RID) calls of the paper's section 3.2."""

    def __init__(self, schema: Schema, stable_rows, pdts):
        self.schema = schema
        self.shadow = ShadowTable(schema, stable_rows)
        self.pdts = list(pdts)

    def insert(self, row) -> None:
        row = self.schema.coerce_row(row)
        sk = self.schema.sk_of(row)
        if self.shadow.contains_sk(sk):
            raise ValueError(f"duplicate key {sk!r}")
        rid = self.shadow.insert_position(sk)
        for pdt in self.pdts:
            sid = pdt.sk_rid_to_sid(sk, rid)
            pdt.add_insert(sid, rid, list(row))
        self.shadow.insert(rid, row)

    def delete(self, sk) -> None:
        sk = tuple(sk)
        rid = self._rid_of(sk)
        for pdt in self.pdts:
            pdt.add_delete(rid, sk)
        self.shadow.delete(rid)

    def modify(self, sk, col_name: str, value) -> None:
        sk = tuple(sk)
        rid = self._rid_of(sk)
        col_no = self.schema.column_index(col_name)
        for pdt in self.pdts:
            pdt.add_modify(rid, col_no, value)
        self.shadow.modify(rid, col_no, value)

    def live_keys(self) -> list[tuple]:
        return self.shadow.live_sks()

    def expected_rows(self) -> list[tuple]:
        return self.shadow.rows()

    def _rid_of(self, sk: tuple) -> int:
        keys = self.shadow.live_sks()
        try:
            return keys.index(sk)
        except ValueError:
            raise KeyError(f"no live tuple with key {sk!r}") from None


def apply_random_ops(driver: TableDriver, rng, n_ops: int, key_range: int):
    """Drive a pseudo-random but always-valid workload of scattered
    inserts, deletes, and modifies."""
    for _ in range(n_ops):
        keys = driver.live_keys()
        choice = rng.random()
        if choice < 0.45 or not keys:
            key = rng.randrange(key_range)
            if not driver.shadow.contains_sk((key,)):
                driver.insert((key, rng.randrange(1000), f"s{key}"))
        elif choice < 0.70:
            driver.delete(keys[rng.randrange(len(keys))])
        else:
            sk = keys[rng.randrange(len(keys))]
            col = "a" if rng.random() < 0.5 else "b"
            value = rng.randrange(1000) if col == "a" else f"m{rng.randrange(99)}"
            driver.modify(sk, col, value)
