"""RID <=> SID mapping: the PDT's core counted-tree functionality."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FlatPDT, PDT

from .helpers import TableDriver, apply_random_ops, int_schema


def built(seed=0, n_ops=80, n_stable=25):
    schema = int_schema()
    rows = [(k * 10, k, f"s{k}") for k in range(n_stable)]
    tree, flat = PDT(schema, fanout=4), FlatPDT(schema)
    driver = TableDriver(schema, rows, [tree, flat])
    apply_random_ops(driver, random.Random(seed), n_ops, key_range=500)
    return driver, tree, flat


class TestRidToSid:
    def test_identity_when_empty(self):
        schema = int_schema()
        pdt = PDT(schema)
        for rid in (0, 5, 100):
            assert pdt.rid_to_sid(rid) == rid
            assert pdt.sid_to_rid(rid) == rid

    def test_shifted_by_insert(self):
        driver, tree, flat = built(n_ops=0)
        driver.insert((5, 0, "x"))  # lands at rid 1 (after key 0)
        for pdt in (tree, flat):
            assert pdt.rid_to_sid(1) == 1  # insert got sid 1
            assert pdt.rid_to_sid(2) == 1  # stable tuple 1 pushed to rid 2
            assert pdt.sid_to_rid(1) == 2
            assert pdt.sid_to_rid(0) == 0

    def test_shifted_by_delete(self):
        driver, tree, flat = built(n_ops=0)
        driver.delete((0,))
        for pdt in (tree, flat):
            assert pdt.rid_to_sid(0) == 1
            assert pdt.sid_to_rid(1) == 0
            # Ghost maps to the position of the first following live tuple.
            assert pdt.sid_to_rid(0) == 0

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_mapping_matches_shadow(self, seed):
        driver, tree, flat = built(seed=seed)
        sids = driver.shadow.sids()  # SID of each live row, in RID order
        for rid, sid in enumerate(sids):
            assert tree.rid_to_sid(rid) == sid, rid
            assert flat.rid_to_sid(rid) == sid, rid

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_sid_to_rid_inverse_on_live_stable(self, seed):
        driver, tree, flat = built(seed=seed)
        sids = driver.shadow.sids()
        # For every live *stable* tuple, sid_to_rid inverts rid_to_sid.
        stable_positions = {
            slot.sid: None for slot in driver.shadow.slots
            if slot.stable and not slot.is_ghost
        }
        rid = 0
        for slot in driver.shadow.slots:
            if slot.is_ghost:
                continue
            if slot.stable:
                assert tree.sid_to_rid(slot.sid) == rid
                assert flat.sid_to_rid(slot.sid) == rid
            rid += 1

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_ghost_rid_equals_successor(self, seed):
        """A ghost's RID equals the RID of the first following live tuple
        (or the image size at the end)."""
        driver, tree, flat = built(seed=seed)
        live_rid = 0
        for slot in driver.shadow.slots:
            if slot.is_ghost:
                assert tree.sid_to_rid(slot.sid) == live_rid
                assert flat.sid_to_rid(slot.sid) == live_rid
            else:
                live_rid += 1
