"""Unit tests for the PDT value space."""

import pytest

from repro.core import ValueSpace
from repro.core.types import KIND_DEL, KIND_INS, PDTError

from .helpers import int_schema


class TestInsertTable:
    def test_add_get(self):
        vs = ValueSpace(int_schema())
        ref = vs.add_insert((1, 2, "x"))
        assert vs.get_insert(ref) == [1, 2, "x"]

    def test_arity_checked(self):
        vs = ValueSpace(int_schema())
        with pytest.raises(PDTError):
            vs.add_insert((1, 2))

    def test_modify_insert_in_place(self):
        vs = ValueSpace(int_schema())
        ref = vs.add_insert((1, 2, "x"))
        vs.modify_insert(ref, 1, 99)
        assert vs.get_insert(ref) == [1, 99, "x"]

    def test_free_insert(self):
        vs = ValueSpace(int_schema())
        ref = vs.add_insert((1, 2, "x"))
        vs.free_insert(ref)
        with pytest.raises(PDTError):
            vs.get_insert(ref)
        with pytest.raises(PDTError):
            vs.free_insert(ref)
        assert vs.live_inserts() == 0

    def test_insert_sk(self):
        vs = ValueSpace(int_schema())
        ref = vs.add_insert((7, 2, "x"))
        assert vs.insert_sk(ref) == (7,)


class TestDeleteTable:
    def test_add_get(self):
        vs = ValueSpace(int_schema())
        ref = vs.add_delete((5,))
        assert vs.get_delete(ref) == (5,)

    def test_arity_checked(self):
        vs = ValueSpace(int_schema())
        with pytest.raises(PDTError):
            vs.add_delete((5, 6))


class TestModifyTables:
    def test_per_column_tables(self):
        vs = ValueSpace(int_schema())
        r1 = vs.add_modify(1, 42)
        r2 = vs.add_modify(2, "y")
        assert vs.get_modify(1, r1) == 42
        assert vs.get_modify(2, r2) == "y"
        vs.set_modify(1, r1, 43)
        assert vs.get_modify(1, r1) == 43

    def test_column_range_checked(self):
        vs = ValueSpace(int_schema())
        with pytest.raises(PDTError):
            vs.add_modify(10, 1)


class TestGenericAccess:
    def test_value_of_dispatch(self):
        vs = ValueSpace(int_schema())
        ri = vs.add_insert((1, 2, "x"))
        rd = vs.add_delete((9,))
        rm = vs.add_modify(1, 5)
        assert vs.value_of(KIND_INS, ri) == [1, 2, "x"]
        assert vs.value_of(KIND_DEL, rd) == (9,)
        assert vs.value_of(1, rm) == 5

    def test_copy_is_deep(self):
        vs = ValueSpace(int_schema())
        ref = vs.add_insert((1, 2, "x"))
        clone = vs.copy()
        clone.modify_insert(ref, 1, 777)
        assert vs.get_insert(ref) == [1, 2, "x"]

    def test_stats(self):
        vs = ValueSpace(int_schema())
        vs.add_insert((1, 2, "x"))
        r = vs.add_insert((3, 4, "y"))
        vs.free_insert(r)
        vs.add_delete((8,))
        vs.add_modify(1, 0)
        stats = vs.stats()
        assert stats == {
            "inserts": 1,
            "deletes": 1,
            "modifies": 1,
            "freed_inserts": 1,
        }

    def test_clear(self):
        vs = ValueSpace(int_schema())
        vs.add_insert((1, 2, "x"))
        vs.clear()
        assert vs.stats()["inserts"] == 0
