"""Directed Serialize edge cases: insert interleavings and chains."""

import pytest

from repro.core import (
    FlatPDT,
    PDT,
    TransactionConflict,
    merge_rows,
    serialize,
)

from .helpers import TableDriver, int_schema


def pair(pdt_cls):
    schema = int_schema()
    rows = [(k * 100, k, f"s{k}") for k in range(6)]

    def make():
        return pdt_cls(schema, fanout=4) if pdt_cls is PDT \
            else pdt_cls(schema)

    ty, tx = make(), make()
    return rows, TableDriver(schema, rows, [ty]), \
        TableDriver(schema, rows, [tx]), ty, tx


@pytest.mark.parametrize("pdt_cls", [FlatPDT, PDT])
class TestInsertInterleaving:
    def test_alternating_keys_at_one_boundary(self, pdt_cls):
        rows, y, x, ty, tx = pair(pdt_cls)
        for k in (110, 130, 150):
            y.insert((k, 0, f"y{k}"))
        for k in (120, 140, 160):
            x.insert((k, 0, f"x{k}"))
        tx_prime = serialize(tx, ty)
        tx_prime.check_invariants()
        final = merge_rows(merge_rows(rows, ty), tx_prime)
        keys = [r[0] for r in final]
        assert keys == sorted(keys)
        assert set(range(110, 170, 10)) <= set(keys)

    def test_x_inserts_before_all_y_inserts(self, pdt_cls):
        rows, y, x, ty, tx = pair(pdt_cls)
        y.insert((150, 0, "y"))
        x.insert((101, 0, "x1"))
        x.insert((102, 0, "x2"))
        tx_prime = serialize(tx, ty)
        final = merge_rows(merge_rows(rows, ty), tx_prime)
        keys = [r[0] for r in final]
        assert keys == sorted(keys)

    def test_inserts_at_distinct_boundaries_with_deletes_between(
        self, pdt_cls
    ):
        rows, y, x, ty, tx = pair(pdt_cls)
        y.delete((200,))
        y.delete((400,))
        x.insert((250, 0, "x"))
        x.insert((450, 0, "x"))
        tx_prime = serialize(tx, ty)
        final = merge_rows(merge_rows(rows, ty), tx_prime)
        keys = [r[0] for r in final]
        assert keys == sorted(keys)
        assert 200 not in keys and 400 not in keys
        assert 250 in keys and 450 in keys

    def test_ghost_reinsert_interleaving(self, pdt_cls):
        """y deletes a key; x re-inserts it plus neighbours."""
        rows, y, x, ty, tx = pair(pdt_cls)
        y.delete((300,))
        x.insert((299, 0, "before"))
        x.insert((301, 0, "after"))
        tx_prime = serialize(tx, ty)
        final = merge_rows(merge_rows(rows, ty), tx_prime)
        keys = [r[0] for r in final]
        assert keys == sorted(keys)
        assert 300 not in keys

    def test_mixed_chain_insert_plus_modify_same_sid(self, pdt_cls):
        """x inserts before a stable tuple AND modifies that tuple, while
        y inserts at the same boundary."""
        rows, y, x, ty, tx = pair(pdt_cls)
        y.insert((150, 0, "y"))
        x.insert((160, 0, "x"))
        x.modify((200,), "a", 777)
        tx_prime = serialize(tx, ty)
        final = merge_rows(merge_rows(rows, ty), tx_prime)
        target = [r for r in final if r[0] == 200][0]
        assert target[1] == 777
        keys = [r[0] for r in final]
        assert keys == sorted(keys)

    def test_y_modify_does_not_block_x_insert_same_sid(self, pdt_cls):
        rows, y, x, ty, tx = pair(pdt_cls)
        y.modify((200,), "a", 1)
        x.insert((150, 0, "x"))
        tx_prime = serialize(tx, ty)
        final = merge_rows(merge_rows(rows, ty), tx_prime)
        assert (150, 0, "x") in final
        assert [r for r in final if r[0] == 200][0][1] == 1

    def test_conflicting_key_reported_among_interleaves(self, pdt_cls):
        rows, y, x, ty, tx = pair(pdt_cls)
        y.insert((110, 0, "y1"))
        y.insert((130, 0, "y2"))
        x.insert((120, 0, "x1"))
        x.insert((130, 1, "dup"))
        with pytest.raises(TransactionConflict, match="identical key"):
            serialize(tx, ty)


class TestBlockMergerStartRid:
    def test_explicit_start_rid_offsets_output(self):
        import numpy as np

        from repro.core.merge import BlockMerger
        from repro.core.pdt import PDT

        schema = int_schema()
        pdt = PDT(schema)
        pdt.add_delete(1, (10,))
        batches = [(0, {"a": np.arange(4)})]
        merger = BlockMerger(pdt, ["a"])
        out = list(merger.merge_batches(iter(batches), start_rid=100,
                                        drain_tail=False))
        assert out[0][0] == 100
        assert out[0][1]["a"].tolist() == [0, 2, 3]
