"""Unit tests for layer-stacking helpers."""

import random

from repro.core import (
    PDT,
    image_rows,
    merge_rows_layers,
    merge_scan_layers,
    total_delta,
)
from repro.storage import StableTable

from .helpers import TableDriver, apply_random_ops, int_schema


def make_stack(seed=3, layers=2):
    schema = int_schema()
    rows = [(k * 10, k, f"s{k}") for k in range(20)]
    table = StableTable.bulk_load("t", schema, rows)
    stack = []
    image = rows
    rng = random.Random(seed)
    for _ in range(layers):
        pdt = PDT(schema, fanout=4)
        driver = TableDriver(schema, image, [pdt])
        apply_random_ops(driver, rng, 15, key_range=400)
        image = driver.expected_rows()
        stack.append(pdt)
    return table, stack, image, rows


class TestStackHelpers:
    def test_image_rows(self):
        table, stack, image, _ = make_stack()
        assert image_rows(table, stack) == image

    def test_merge_rows_layers(self):
        table, stack, image, rows = make_stack()
        assert merge_rows_layers(rows, stack) == image

    def test_total_delta(self):
        table, stack, image, rows = make_stack()
        assert total_delta(stack) == len(image) - len(rows)

    def test_empty_layers_are_skipped(self):
        table, stack, image, _ = make_stack()
        schema = table.schema
        padded = [PDT(schema), stack[0], PDT(schema), stack[1], PDT(schema)]
        got = []
        for _, arrays in merge_scan_layers(table, padded, batch_rows=7):
            got.extend(
                tuple(arrays[c][i] for c in schema.column_names)
                for i in range(len(arrays["k"]))
            )
        assert got == image

    def test_no_layers_is_plain_scan(self):
        table, _, _, rows = make_stack()
        got = []
        for _, arrays in merge_scan_layers(table, [], batch_rows=8):
            got.extend(
                tuple(arrays[c][i] for c in table.schema.column_names)
                for i in range(len(arrays["k"]))
            )
        assert got == rows

    def test_range_scan_through_stack(self):
        table, stack, image, _ = make_stack()
        start, stop = 5, 15
        got = []
        for _, arrays in merge_scan_layers(
            table, stack, start=start, stop=stop, batch_rows=4
        ):
            got.extend(
                tuple(arrays[c][i] for c in table.schema.column_names)
                for i in range(len(arrays["k"]))
            )
        # Expected slice bounds: map each boundary up through the layers.
        pos_lo, pos_hi = start, stop
        for pdt in stack:
            pos_lo = pos_lo + pdt.delta_before_sid(pos_lo)
            pos_hi = pos_hi + pdt.delta_before_sid(pos_hi)
        assert got == image[pos_lo:pos_hi]
