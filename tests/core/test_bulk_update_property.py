"""Differential properties of the vectorized bulk-update path.

The scalar :class:`~repro.db.update_processor.PositionalUpdater` applies a
batch one operation at a time, re-resolving positions per row — slow but
close to the paper's pseudocode, which makes it the oracle. The
vectorized :class:`~repro.db.update_processor.BatchUpdater` must produce
*identical* results from the same batch: the same merged table image, the
same PDT entry sequence (SIDs, RIDs, kinds, payloads), and no effect on
the stable table or its sparse index. Likewise ``propagate_batch`` (the
sorted-run merge fold) must match the per-entry ``propagate``.

Randomized batches deliberately cover the hostile shapes: ghost-tuple
inserts (insert at a boundary holding deleted keys), delete-then-reinsert
of the same key inside one batch, multi-op runs on one key, and runs that
cross stable-block and sparse-granule boundaries.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DataType, FlatPDT, PDT, Schema, propagate, propagate_batch
from repro.core.stack import image_rows
from repro.db import BatchUpdater, DuplicateKey, KeyNotFound, \
    PositionalUpdater
from repro.storage.sparse_index import SparseIndex
from repro.storage.table import StableTable

N_STABLE = 40  # keys 0, 2, ..., 78; several 8-row sparse granules


def make_schema(n_key_cols=1):
    cols = [(f"k{i}", DataType.INT64) for i in range(n_key_cols)]
    cols += [("a", DataType.INT64), ("b", DataType.STRING)]
    return Schema.build(*cols,
                        sort_key=tuple(f"k{i}" for i in range(n_key_cols)))


def make_stable(schema, n=N_STABLE):
    n_keys = len(schema.sort_key)
    rows = [(i * 2,) * n_keys + (i, f"s{i}") for i in range(n)]
    return StableTable.bulk_load("t", schema, rows)


def materialized_entries(pdt):
    """Entry stream as comparable tuples (value-space refs normalized)."""
    out = []
    for entry in pdt.iter_entries():
        value = pdt.values.value_of(entry.kind, entry.ref)
        if isinstance(value, (list, tuple)):
            value = tuple(value)
        out.append((entry.sid, entry.rid, entry.kind, value))
    return out


def gen_batch(rng, schema, live, n_ops, reuse_keys=False):
    """A valid op batch against ``live`` keys (mutated in place).

    ``reuse_keys`` permits several ops on one key — delete-then-reinsert,
    insert-then-modify, insert-then-delete chains.
    """
    n_keys = len(schema.sort_key)
    touched: set = set()
    ops = []
    for _ in range(n_ops):
        roll = rng.random()
        pool = sorted(live if reuse_keys else live - touched)
        if roll < 0.4 or not pool:
            k = rng.randrange(0, N_STABLE * 2 + 6)
            if k in live or (not reuse_keys and k in touched):
                continue
            key = (k,) * n_keys
            ops.append(("ins", key + (rng.randrange(1000), f"v{k}")))
            live.add(k)
            touched.add(k)
        elif roll < 0.7:
            k = rng.choice(pool)
            ops.append(("del", (k,) * n_keys))
            live.discard(k)
            touched.add(k)
        else:
            k = rng.choice(pool)
            col = rng.choice(["a", "b"])
            value = rng.randrange(1000) if col == "a" else f"m{k}"
            ops.append(("mod", (k,) * n_keys, col, value))
            touched.add(k)
    return ops


def apply_scalar(stable, layers, index, ops):
    updater = PositionalUpdater(stable, layers, index)
    for op in ops:
        if op[0] == "ins":
            updater.insert(op[1])
        elif op[0] == "del":
            updater.delete_by_key(op[1])
        else:
            updater.modify_by_key(op[1], op[2], op[3])


def assert_equivalent(stable, oracle_layers, batch_layers):
    for oracle, batch in zip(oracle_layers, batch_layers):
        assert materialized_entries(oracle) == materialized_entries(batch)
        oracle.check_invariants()
        batch.check_invariants()
    assert image_rows(stable, oracle_layers) == \
        image_rows(stable, batch_layers)


class TestBatchVersusScalarOracle:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 30), st.booleans(),
           st.booleans())
    def test_single_layer_empty_top(self, seed, n_ops, reuse, use_flat):
        """Random batches into a fresh top layer (fast bulk-append path
        when runs are simple, scalar-primitive path otherwise)."""
        schema = make_schema()
        stable = make_stable(schema)
        index = SparseIndex(stable, granularity=8)
        rng = random.Random(seed)
        ops = gen_batch(rng, schema, {r[0] for r in stable.rows()},
                        n_ops, reuse_keys=reuse)
        cls = FlatPDT if use_flat else PDT
        oracle, batch = cls(schema), cls(schema)
        apply_scalar(stable, [oracle], index, ops)
        applied = BatchUpdater(stable, [batch], index).apply(ops)
        assert applied == len(ops)
        assert_equivalent(stable, [oracle], [batch])

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 25), st.integers(1, 25))
    def test_non_empty_top_layer(self, seed, n_pre, n_ops):
        """A batch landing on a top layer that already carries updates
        must thread its positions through the existing entries."""
        schema = make_schema()
        stable = make_stable(schema)
        index = SparseIndex(stable, granularity=8)
        rng = random.Random(seed)
        live = {r[0] for r in stable.rows()}
        pre = gen_batch(rng, schema, live, n_pre, reuse_keys=True)
        ops = gen_batch(rng, schema, live, n_ops, reuse_keys=True)
        oracle, batch = PDT(schema), PDT(schema)
        apply_scalar(stable, [oracle], index, pre)
        apply_scalar(stable, [batch], index, pre)
        apply_scalar(stable, [oracle], index, ops)
        BatchUpdater(stable, [batch], index).apply(ops)
        assert_equivalent(stable, [oracle], [batch])

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 20), st.integers(1, 20))
    def test_layer_stack(self, seed, n_lower, n_ops):
        """Batches address the merged image through lower layers exactly
        like the scalar path (updates land in the top layer only)."""
        schema = make_schema()
        stable = make_stable(schema)
        index = SparseIndex(stable, granularity=8)
        rng = random.Random(seed)
        live = {r[0] for r in stable.rows()}
        lower_ops = gen_batch(rng, schema, live, n_lower, reuse_keys=True)
        ops = gen_batch(rng, schema, live, n_ops, reuse_keys=True)
        lower = PDT(schema)
        apply_scalar(stable, [lower], index, lower_ops)
        oracle, batch = PDT(schema), PDT(schema)
        apply_scalar(stable, [lower, oracle], index, ops)
        BatchUpdater(stable, [lower, batch], index).apply(ops)
        assert_equivalent(stable, [lower, oracle], [lower, batch])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 25))
    def test_multi_column_keys(self, seed, n_ops):
        schema = make_schema(n_key_cols=2)
        stable = make_stable(schema)
        index = SparseIndex(stable, granularity=8)
        rng = random.Random(seed)
        ops = gen_batch(rng, schema, {r[0] for r in stable.rows()}, n_ops,
                        reuse_keys=True)
        oracle, batch = PDT(schema), PDT(schema)
        apply_scalar(stable, [oracle], index, ops)
        BatchUpdater(stable, [batch], index).apply(ops)
        assert_equivalent(stable, [oracle], [batch])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 30))
    def test_sparse_index_immaterial(self, seed, n_ops):
        """The sparse index only prunes the resolution sweep; resolving
        with and without it must be identical, and the (stale-by-design)
        index itself must be untouched by the batch."""
        schema = make_schema()
        stable = make_stable(schema)
        index = SparseIndex(stable, granularity=8)
        before = (index.num_rows, list(index._max_keys))
        rng = random.Random(seed)
        ops = gen_batch(rng, schema, {r[0] for r in stable.rows()}, n_ops,
                        reuse_keys=True)
        with_index, without = PDT(schema), PDT(schema)
        BatchUpdater(stable, [with_index], index).apply(ops)
        BatchUpdater(stable, [without], None).apply(ops)
        assert materialized_entries(with_index) == \
            materialized_entries(without)
        assert (index.num_rows, list(index._max_keys)) == before


class TestBatchEdgeCases:
    def setup_method(self):
        self.schema = make_schema()
        self.stable = make_stable(self.schema)
        self.index = SparseIndex(self.stable, granularity=8)

    def both(self, ops, pre=()):
        oracle, batch = PDT(self.schema), PDT(self.schema)
        apply_scalar(self.stable, [oracle], self.index, pre)
        apply_scalar(self.stable, [batch], self.index, pre)
        apply_scalar(self.stable, [oracle], self.index, ops)
        BatchUpdater(self.stable, [batch], self.index).apply(ops)
        assert_equivalent(self.stable, [oracle], [batch])
        return batch

    def test_ghost_boundary_insert(self):
        """Insert landing on a boundary of batch-created ghosts must skip
        ghosts with smaller keys (Algorithm 6) in both paths."""
        self.both([("del", (10,)), ("del", (12,)), ("ins", (11, 1, "x")),
                   ("ins", (13, 2, "y"))])

    def test_delete_then_reinsert_same_key(self):
        batch = self.both([("del", (20,)), ("ins", (20, 9, "re"))])
        kinds = [e[2] for e in materialized_entries(batch)]
        assert kinds == [-1, -2]  # INS ordered before its own ghost

    def test_insert_then_delete_annihilates(self):
        batch = self.both([("ins", (21, 1, "x")), ("del", (21,))])
        assert batch.count() == 0

    def test_insert_modify_delete_chain(self):
        self.both([("ins", (21, 1, "x")), ("mod", (21,), "a", 5),
                   ("del", (21,)), ("ins", (21, 7, "z"))])

    def test_batch_past_table_end(self):
        self.both([("ins", (1000, 1, "x")), ("ins", (1002, 2, "y")),
                   ("del", (78,))])

    def test_batch_against_empty_table(self):
        schema = self.schema
        empty = StableTable.bulk_load("e", schema, [])
        oracle, batch = PDT(schema), PDT(schema)
        ops = [("ins", (3, 1, "x")), ("ins", (1, 2, "y")),
               ("mod", (1,), "a", 9)]
        apply_scalar(empty, [oracle], None, ops)
        BatchUpdater(empty, [batch], None).apply(ops)
        assert_equivalent(empty, [oracle], [batch])

    def test_empty_batch(self):
        pdt = PDT(self.schema)
        assert BatchUpdater(self.stable, [pdt], self.index).apply([]) == 0
        assert pdt.is_empty()

    def test_validation_is_all_or_nothing(self):
        pdt = PDT(self.schema)
        updater = BatchUpdater(self.stable, [pdt], self.index)
        try:
            updater.apply([("ins", (11, 1, "x")), ("del", (999,))])
        except KeyNotFound:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected KeyNotFound")
        assert pdt.is_empty()  # nothing applied before the bad op

    def test_duplicate_insert_rejected(self):
        pdt = PDT(self.schema)
        updater = BatchUpdater(self.stable, [pdt], self.index)
        for bad in ([("ins", (10, 1, "x"))],
                    [("ins", (11, 1, "x")), ("ins", (11, 2, "y"))]):
            try:
                updater.apply(bad)
            except DuplicateKey:
                pass
            else:  # pragma: no cover
                raise AssertionError("expected DuplicateKey")
            assert pdt.is_empty()

    def test_sort_key_modify_rejected(self):
        updater = BatchUpdater(self.stable, [PDT(self.schema)], self.index)
        try:
            updater.apply([("mod", (10,), "k0", 11)])
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")


class TestPropagateBatch:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 20), st.integers(1, 20),
           st.booleans())
    def test_matches_scalar_propagate(self, seed, n_read, n_write, use_flat):
        """The sorted-run merge fold and the per-entry loop must agree on
        any consecutive (read, write) pair."""
        schema = make_schema()
        stable = make_stable(schema)
        rng = random.Random(seed)
        live = {r[0] for r in stable.rows()}
        cls = FlatPDT if use_flat else PDT
        read = cls(schema)
        apply_scalar(stable, [read], None,
                     gen_batch(rng, schema, live, n_read, reuse_keys=True))
        write = cls(schema)
        apply_scalar(stable, [read, write], None,
                     gen_batch(rng, schema, live, n_write, reuse_keys=True))
        scalar, batch = read.copy(), read.copy()
        propagate(scalar, write)
        propagate_batch(batch, write, force_merge=True)
        assert materialized_entries(scalar) == materialized_entries(batch)
        scalar.check_invariants()
        batch.check_invariants()
        assert image_rows(stable, [scalar]) == image_rows(stable, [batch])

    def test_empty_read_is_bulk_copy(self):
        schema = make_schema()
        stable = make_stable(schema)
        write = PDT(schema)
        apply_scalar(stable, [write], None,
                     [("ins", (11, 1, "x")), ("del", (20,)),
                      ("mod", (30,), "a", 5)])
        read = PDT(schema)
        propagate_batch(read, write)
        assert materialized_entries(read) == materialized_entries(write)
        read.check_invariants()

    def test_heuristic_falls_back_for_small_writes(self):
        """A tiny write against a big read must still be correct through
        the auto-dispatched path (whichever it picks)."""
        schema = make_schema()
        stable = make_stable(schema)
        rng = random.Random(5)
        live = {r[0] for r in stable.rows()}
        read = PDT(schema)
        apply_scalar(stable, [read], None,
                     gen_batch(rng, schema, live, 30, reuse_keys=True))
        write = PDT(schema)
        apply_scalar(stable, [read, write], None,
                     gen_batch(rng, schema, live, 2, reuse_keys=True))
        scalar, auto = read.copy(), read.copy()
        propagate(scalar, write)
        propagate_batch(auto, write)
        assert materialized_entries(scalar) == materialized_entries(auto)


class TestBulkAppendEntries:
    def test_tree_bulk_build_matches_scalar_appends(self):
        schema = make_schema()
        triples = []
        for i in range(200):
            if i % 3 == 0:
                triples.append((i, -1, [i, i, f"r{i}"]))
            elif i % 3 == 1:
                triples.append((i, -2, (i,)))
            else:
                triples.append((i, 1, i * 7))
        bulk, scalar = PDT(schema, fanout=8), PDT(schema, fanout=8)
        bulk.bulk_append_entries(triples)
        for sid, kind, payload in triples:
            scalar.append_entry(sid, kind, payload)
        bulk.check_invariants()
        assert materialized_entries(bulk) == materialized_entries(scalar)

    def test_bulk_append_onto_non_empty_tree(self):
        schema = make_schema()
        pdt = PDT(schema)
        pdt.append_entry(1, -2, (2,))
        pdt.bulk_append_entries([(3, -2, (6,)), (5, 0, 9)])
        pdt.check_invariants()
        assert [e.sid for e in pdt.iter_entries()] == [1, 3, 5]

    def test_bulk_append_rejects_disorder(self):
        from repro.core.types import PDTError

        schema = make_schema()
        pdt = PDT(schema)
        try:
            pdt.bulk_append_entries([(5, -2, (10,)), (3, -2, (6,))])
        except PDTError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected PDTError")
