"""Differential property tests: tree PDT vs flat PDT vs ShadowTable oracle.

Any divergence between the three implementations under arbitrary valid
workloads (scattered inserts / deletes / modifies, including re-inserts of
deleted keys and updates of PDT-resident tuples) is a bug in one of them.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FlatPDT, PDT, merge_rows

from .helpers import TableDriver, apply_random_ops, int_schema


def make_driver(n_stable=20, fanout=4):
    schema = int_schema()
    rows = [(k * 10, k, f"s{k}") for k in range(n_stable)]
    tree = PDT(schema, fanout=fanout)
    flat = FlatPDT(schema)
    driver = TableDriver(schema, rows, [tree, flat])
    return driver, tree, flat, rows


@settings(max_examples=120, deadline=None)
@given(seed=st.integers(0, 10**9), n_ops=st.integers(1, 120))
def test_random_workload_all_models_agree(seed, n_ops):
    driver, tree, flat, rows = make_driver()
    apply_random_ops(driver, random.Random(seed), n_ops, key_range=400)
    expected = driver.expected_rows()
    assert merge_rows(rows, flat) == expected
    assert merge_rows(rows, tree) == expected
    flat.check_invariants()
    tree.check_invariants()
    assert tree.count() == flat.count()
    assert tree.total_delta() == flat.total_delta()
    assert [(e.sid, e.rid, e.kind) for e in tree.iter_entries()] == [
        (e.sid, e.rid, e.kind) for e in flat.iter_entries()
    ]


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10**9), fanout=st.sampled_from([4, 5, 8, 16]))
def test_fanout_does_not_change_semantics(seed, fanout):
    driver, tree, flat, rows = make_driver(fanout=fanout)
    apply_random_ops(driver, random.Random(seed), 150, key_range=300)
    assert merge_rows(rows, tree) == driver.expected_rows()
    tree.check_invariants()


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10**9))
def test_empty_stable_table_workload(seed):
    schema = int_schema()
    tree, flat = PDT(schema, fanout=4), FlatPDT(schema)
    driver = TableDriver(schema, [], [tree, flat])
    apply_random_ops(driver, random.Random(seed), 80, key_range=60)
    expected = driver.expected_rows()
    assert merge_rows([], flat) == expected
    assert merge_rows([], tree) == expected
    tree.check_invariants()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10**9))
def test_copy_is_deep_and_equal(seed):
    driver, tree, flat, rows = make_driver()
    apply_random_ops(driver, random.Random(seed), 60, key_range=200)
    clone = tree.copy()
    clone.check_invariants()
    assert merge_rows(rows, clone) == merge_rows(rows, tree)
    # Mutating the clone must not affect the original.
    keys = driver.live_keys()
    if keys:
        rid = 0
        clone.add_delete(rid, keys[0])
        assert merge_rows(rows, tree) == driver.expected_rows()


def test_heavy_workload_deep_tree():
    """Non-hypothesis smoke test with a large op count and tiny fanout to
    exercise multi-level splits, leaf unlinking, and chain spans."""
    driver, tree, flat, rows = make_driver(n_stable=50, fanout=4)
    apply_random_ops(driver, random.Random(12345), 1500, key_range=900)
    assert merge_rows(rows, tree) == driver.expected_rows()
    assert tree.depth() >= 3
    tree.check_invariants()
    flat.check_invariants()


class TestChainEdgeCases:
    def test_multi_column_modify_chain(self):
        driver, tree, flat, rows = make_driver()
        driver.modify((50,), "b", "x")
        driver.modify((50,), "a", 7)  # smaller col_no: goes first in chain
        driver.modify((50,), "b", "y")  # in-place overwrite
        expected = driver.expected_rows()
        assert merge_rows(rows, tree) == expected
        assert merge_rows(rows, flat) == expected
        assert tree.count() == 2  # one entry per modified column
        tree.check_invariants()

    def test_delete_of_modified_tuple_collapses_to_del(self):
        driver, tree, flat, rows = make_driver()
        driver.modify((50,), "a", 7)
        driver.modify((50,), "b", "x")
        driver.delete((50,))
        assert tree.count() == 1
        entry = next(tree.iter_entries())
        assert entry.is_delete
        assert merge_rows(rows, tree) == driver.expected_rows()
        tree.check_invariants()

    def test_delete_of_insert_leaves_no_trace(self):
        driver, tree, flat, rows = make_driver()
        driver.insert((55, 1, "new"))
        driver.modify((55,), "a", 2)
        driver.delete((55,))
        assert tree.count() == 0
        assert merge_rows(rows, tree) == rows
        tree.check_invariants()

    def test_reinsert_of_deleted_key(self):
        driver, tree, flat, rows = make_driver()
        driver.delete((50,))
        driver.insert((50, 99, "back"))
        expected = driver.expected_rows()
        assert merge_rows(rows, tree) == expected
        # DEL ghost and re-insert coexist: 2 entries.
        assert tree.count() == 2
        tree.check_invariants()

    def test_long_ghost_run_insert_positioning(self):
        driver, tree, flat, rows = make_driver()
        for k in (40, 50, 60, 70):
            driver.delete((k,))
        # Keys interleaving the ghost run must respect ghost order.
        for k in (45, 55, 65, 41, 71):
            driver.insert((k, 0, "g"))
        assert merge_rows(rows, tree) == driver.expected_rows()
        tree.check_invariants()

    def test_modify_then_delete_then_reinsert_then_modify(self):
        driver, tree, flat, rows = make_driver()
        driver.modify((30,), "a", 1)
        driver.delete((30,))
        driver.insert((30, 2, "again"))
        driver.modify((30,), "a", 3)
        assert merge_rows(rows, tree) == driver.expected_rows()
        tree.check_invariants()

    def test_inserts_at_table_end(self):
        driver, tree, flat, rows = make_driver(n_stable=3)
        driver.insert((1000, 0, "tail1"))
        driver.insert((2000, 0, "tail2"))
        assert merge_rows(rows, tree) == driver.expected_rows()
        last = list(tree.iter_entries())[-1]
        assert last.sid == 3  # == stable row count

    def test_delete_everything(self):
        driver, tree, flat, rows = make_driver(n_stable=8)
        for k in list(driver.live_keys()):
            driver.delete(k)
        assert merge_rows(rows, tree) == []
        assert tree.total_delta() == -8
        tree.check_invariants()


@pytest.mark.parametrize("impl", ["flat", "tree"])
def test_modify_of_ghost_rejected(impl):
    driver, tree, flat, rows = make_driver()
    pdt = tree if impl == "tree" else flat
    driver.delete((0,))
    # rid 0 now refers to the next live tuple (key 10); modifying it works
    # and targets key 10, not the ghost.
    pdt_entries_before = pdt.count()
    driver.modify((10,), "a", 123)
    assert pdt.count() == pdt_entries_before + 1
    image = merge_rows(rows, pdt)
    assert image[0] == (10, 123, "s1")
