"""Structural white-box tests for the counted tree itself."""

import random

import pytest

from repro.core import PDT
from repro.core.types import KIND_DEL, KIND_INS, PDTError

from .helpers import TableDriver, apply_random_ops, int_schema


def grown_tree(n_ops=400, fanout=4, seed=9):
    schema = int_schema()
    rows = [(k * 10, k, f"s{k}") for k in range(30)]
    pdt = PDT(schema, fanout=fanout)
    driver = TableDriver(schema, rows, [pdt])
    apply_random_ops(driver, random.Random(seed), n_ops, key_range=2000)
    return pdt, driver


class TestTreeShape:
    def test_depth_grows_logarithmically(self):
        pdt, _ = grown_tree(n_ops=500, fanout=4)
        # ~300+ live entries at fanout 4 (leaves hold >= 2): depth must be
        # well below entry count and above 2.
        assert 3 <= pdt.depth() <= 12

    def test_fanout_bounds_respected(self):
        pdt, _ = grown_tree(n_ops=400, fanout=5)
        pdt.check_invariants()  # includes leaf/inner overflow checks

    def test_memory_usage_models(self):
        pdt, _ = grown_tree(n_ops=100)
        assert pdt.memory_usage() >= 16 * pdt.count()

    def test_repr(self):
        pdt, _ = grown_tree(n_ops=50)
        text = repr(pdt)
        assert "entries=" in text and "depth=" in text

    def test_minimum_fanout_rejected(self):
        with pytest.raises(ValueError):
            PDT(int_schema(), fanout=2)

    def test_clear_resets_everything(self):
        pdt, _ = grown_tree(n_ops=200)
        pdt.clear()
        assert pdt.count() == 0
        assert pdt.total_delta() == 0
        assert pdt.depth() == 1
        assert list(pdt.iter_entries()) == []
        pdt.check_invariants()


class TestIterationSeek:
    def test_iter_from_start_sid(self):
        pdt, driver = grown_tree()
        full = list(pdt.iter_entries())
        for start_sid in (0, 1, 5, 13, 29, 30, 1000):
            expected = [e for e in full if e.sid >= start_sid]
            got = list(pdt.iter_entries(start_sid=start_sid))
            assert [(e.sid, e.rid, e.kind) for e in got] == [
                (e.sid, e.rid, e.kind) for e in expected
            ], start_sid

    def test_delta_before_sid_matches_linear(self):
        pdt, _ = grown_tree()
        full = list(pdt.iter_entries())
        from repro.core.types import delta_of

        for sid in range(0, 32):
            expected = sum(delta_of(e.kind) for e in full if e.sid < sid)
            assert pdt.delta_before_sid(sid) == expected, sid


class TestAppendEntry:
    def test_append_out_of_order_rejected(self):
        pdt = PDT(int_schema(), fanout=4)
        pdt.append_entry(5, KIND_DEL, (50,))
        with pytest.raises(PDTError):
            pdt.append_entry(3, KIND_DEL, (30,))

    def test_bulk_append_builds_valid_tree(self):
        pdt = PDT(int_schema(), fanout=4)
        for sid in range(200):
            pdt.append_entry(sid, KIND_INS, [sid, 0, "x"])
        pdt.check_invariants()
        assert pdt.count() == 200
        assert pdt.total_delta() == 200

    def test_copy_of_deep_tree(self):
        pdt, _ = grown_tree(n_ops=300, fanout=4)
        clone = pdt.copy()
        clone.check_invariants()
        assert clone.count() == pdt.count()
        assert clone.fanout == pdt.fanout


class TestErrorPaths:
    def test_modify_ghost_raises(self):
        pdt = PDT(int_schema(), fanout=4)
        pdt.add_delete(3, (30,))
        # rid 3 now addresses the next live tuple; modifying it is legal
        # and must NOT hit the ghost:
        pdt.add_modify(3, 1, 42)
        entries = list(pdt.iter_entries())
        assert [e.kind for e in entries] == [KIND_DEL, 1]

    def test_inconsistent_insert_detected(self):
        pdt = PDT(int_schema(), fanout=4)
        with pytest.raises(PDTError):
            pdt.add_insert(sid=5, rid=9, row=[1, 2, "x"])  # delta mismatch

    def test_value_space_arity_enforced(self):
        pdt = PDT(int_schema(), fanout=4)
        with pytest.raises(PDTError):
            pdt.add_insert(0, 0, [1, 2])  # missing column
