"""Stateful property test: the Database against a dictionary model.

Hypothesis drives arbitrary interleavings of inserts, deletes, modifies,
multi-op transactions, aborts, Write->Read propagation, and checkpoints;
after every step the merged table image must equal the model exactly.
This is the widest-net test in the repository — it has no idea which
subsystem a divergence comes from, but it visits interactions none of the
targeted suites do.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import settings

from repro import Database, DataType, Schema

KEYS = st.integers(0, 120)
VALUES = st.integers(0, 10**6)


def schema3():
    return Schema.build(
        ("k", DataType.INT64),
        ("a", DataType.INT64),
        ("b", DataType.STRING),
        sort_key=("k",),
    )


class DatabaseMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.db = Database(compressed=False, block_rows=16,
                           sparse_granularity=8)
        rows = [(k, 0, f"s{k}") for k in range(0, 60, 3)]
        self.db.create_table("t", schema3(), rows)
        self.model = {k: (k, 0, f"s{k}") for k in range(0, 60, 3)}

    # -- single-op transactions ------------------------------------------

    @rule(k=KEYS, a=VALUES)
    def insert(self, k, a):
        if k in self.model:
            return
        self.db.insert("t", (k, a, f"v{k}"))
        self.model[k] = (k, a, f"v{k}")

    @rule(k=KEYS)
    def delete(self, k):
        if k not in self.model:
            return
        self.db.delete("t", (k,))
        del self.model[k]

    @rule(k=KEYS, a=VALUES)
    def modify(self, k, a):
        if k not in self.model:
            return
        self.db.modify("t", (k,), "a", a)
        row = self.model[k]
        self.model[k] = (row[0], a, row[2])

    # -- multi-op transactions ------------------------------------------------

    @rule(k1=KEYS, k2=KEYS, a=VALUES)
    def txn_insert_then_modify(self, k1, k2, a):
        if k1 in self.model or k2 not in self.model or k1 == k2:
            return
        with self.db.transaction() as txn:
            txn.insert("t", (k1, 0, "txn"))
            txn.modify("t", (k2,), "a", a)
        self.model[k1] = (k1, 0, "txn")
        row = self.model[k2]
        self.model[k2] = (row[0], a, row[2])

    @rule(k=KEYS)
    def aborted_txn_leaves_no_trace(self, k):
        if k in self.model:
            return
        txn = self.db.begin()
        txn.insert("t", (k, 1, "ghost"))
        txn.abort()

    @rule(k=KEYS, a=VALUES)
    def txn_delete_reinsert(self, k, a):
        if k not in self.model:
            return
        with self.db.transaction() as txn:
            txn.delete("t", (k,))
            txn.insert("t", (k, a, "re"))
        self.model[k] = (k, a, "re")

    # -- maintenance -------------------------------------------------------------

    @rule()
    def propagate(self):
        self.db.manager.propagate_write_to_read("t")

    @rule()
    def checkpoint(self):
        self.db.checkpoint("t")

    # -- invariants ----------------------------------------------------------------

    @invariant()
    def image_matches_model(self):
        got = self.db.image_rows("t")
        expected = [self.model[k] for k in sorted(self.model)]
        assert got == expected

    @invariant()
    def pdts_are_structurally_sound(self):
        state = self.db.manager.state_of("t")
        state.read_pdt.check_invariants()
        state.write_pdt.check_invariants()

    @invariant()
    def row_count_consistent(self):
        assert self.db.row_count("t") == len(self.model)


DatabaseMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestDatabaseStateful = DatabaseMachine.TestCase
