"""End-to-end lifecycle: load, trickle updates, maintenance, recovery.

These tests exercise the full path a production deployment would:
bulk load -> concurrent transactional updates -> Write->Read propagation
-> checkpoint -> crash recovery from the WAL -> range queries through the
stale sparse index.
"""

import random

import pytest

from repro import Database, DataType, Schema
from repro.txn import WriteAheadLog, recover_database


def schema3():
    return Schema.build(
        ("k", DataType.INT64),
        ("a", DataType.INT64),
        ("b", DataType.STRING),
        sort_key=("k",),
    )


def fresh_db(n=200, tmp_path=None, **kwargs):
    wal_path = None if tmp_path is None else tmp_path / "wal.jsonl"
    db = Database(compressed=True, block_rows=64, wal_path=wal_path,
                  sparse_granularity=32, **kwargs)
    db.create_table("t", schema3(),
                    [(i * 10, i, f"s{i}") for i in range(n)])
    return db


def random_workload(db, seed, n_ops, key_range=4000):
    rng = random.Random(seed)
    live = {r[0] for r in db.image_rows("t")}
    for _ in range(n_ops):
        c = rng.random()
        if c < 0.5 or not live:
            k = rng.randrange(key_range)
            if k not in live:
                db.insert("t", (k, 0, f"v{k}"))
                live.add(k)
        elif c < 0.75:
            k = rng.choice(sorted(live))
            db.delete("t", (k,))
            live.discard(k)
        else:
            k = rng.choice(sorted(live))
            db.modify("t", (k,), "a", rng.randrange(10**6))
    return live


class TestMaintenanceCycle:
    def test_updates_survive_propagation_and_checkpoint(self):
        db = fresh_db()
        random_workload(db, 1, 120)
        before = db.image_rows("t")

        db.manager.propagate_write_to_read("t")
        assert db.image_rows("t") == before

        random_workload(db, 2, 60)
        mid = db.image_rows("t")
        db.checkpoint("t")
        assert db.image_rows("t") == mid
        assert db.table("t").num_rows == len(mid)

        # post-checkpoint updates still work (fresh SIDs, fresh index)
        random_workload(db, 3, 60)
        final = db.image_rows("t")
        assert [r[0] for r in final] == sorted(r[0] for r in final)

    def test_threshold_driven_propagation(self):
        db = fresh_db(write_pdt_limit_bytes=400)  # ~25 updates
        for i in range(60):
            db.insert("t", (100_000 + i, 0, "x"))
            db.maintain("t")
        state = db.manager.state_of("t")
        assert state.write_pdt.memory_usage() <= 400 + 16
        assert state.read_pdt.count() > 0
        assert db.row_count("t") == 260

    def test_repeated_checkpoints(self):
        db = fresh_db(n=50)
        for round_no in range(4):
            random_workload(db, round_no + 10, 40)
            expected = db.image_rows("t")
            db.checkpoint("t")
            assert db.image_rows("t") == expected


class TestCrashRecovery:
    def test_recover_database_from_wal(self, tmp_path):
        db = fresh_db(tmp_path=tmp_path)
        random_workload(db, 5, 100)
        expected = db.image_rows("t")

        # "Crash": rebuild from the stable image + the persisted WAL.
        wal = WriteAheadLog.load(tmp_path / "wal.jsonl")
        revived = Database(compressed=True, block_rows=64,
                           sparse_granularity=32)
        revived.create_table("t", schema3(),
                             [(i * 10, i, f"s{i}") for i in range(200)])
        last_lsn = recover_database(revived, wal)
        assert last_lsn == len(wal)
        assert revived.image_rows("t") == expected

        # The revived database accepts new commits with advancing LSNs.
        revived.insert("t", (999_999, 1, "post-recovery"))
        assert revived.manager.wal.records[-1].lsn == last_lsn + 1

    def test_recovery_refuses_dirty_state(self, tmp_path):
        db = fresh_db(tmp_path=tmp_path)
        db.insert("t", (5, 0, "x"))
        wal = WriteAheadLog.load(tmp_path / "wal.jsonl")
        with pytest.raises(RuntimeError, match="delta state"):
            recover_database(db, wal)  # db already has deltas

    def test_checkpoint_then_crash_loses_nothing(self, tmp_path):
        """After a checkpoint the WAL is empty; the stable image alone
        carries the state."""
        db = fresh_db(tmp_path=tmp_path)
        random_workload(db, 6, 50)
        expected = db.image_rows("t")
        db.checkpoint("t")
        wal = WriteAheadLog.load(tmp_path / "wal.jsonl")
        assert len(wal) == 0
        revived = Database(compressed=True)
        revived.create_table("t", schema3(), expected)
        recover_database(revived, wal)
        assert revived.image_rows("t") == expected


class TestRangeQueries:
    def test_range_query_matches_filtered_image(self):
        db = fresh_db()
        random_workload(db, 7, 150)
        image = db.image_rows("t")
        for low, high in [((300,), (900,)), (None, (500,)),
                          ((1500,), None), ((0,), (0,))]:
            rel = db.query_range("t", low=low, high=high)
            expected = [
                r for r in image
                if (low is None or (r[0],) >= low)
                and (high is None or (r[0],) <= high)
            ]
            assert rel.rows() == expected, (low, high)

    def test_range_query_scans_fewer_blocks_than_full(self):
        db = fresh_db(n=2000)
        db.insert("t", (5, 0, "new"))
        db.make_cold()
        db.io.reset()
        db.query_range("t", low=(100,), high=(200,), columns=["a"])
        narrow = db.io.bytes_read
        db.make_cold()
        db.io.reset()
        db.query("t", columns=["k", "a"])
        full = db.io.bytes_read
        assert narrow < full / 5

    def test_range_query_prefix_bounds_multi_key(self):
        schema = Schema.build(
            ("s", DataType.STRING), ("n", DataType.INT64),
            ("v", DataType.INT64),
            sort_key=("s", "n"),
        )
        db = Database(compressed=False, sparse_granularity=4)
        rows = [(chr(97 + i // 5), i % 5, i) for i in range(25)]
        db.create_table("m", schema, rows)
        db.delete("m", ("b", 2))
        db.insert("m", ("b", 9, 99))
        rel = db.query_range("m", low=("b",), high=("b",))
        got = rel.rows()
        assert [r[:2] for r in got] == [
            ("b", 0), ("b", 1), ("b", 3), ("b", 4), ("b", 9)
        ]

    def test_range_query_respects_ghost_boundary(self):
        """The paper's motivating case: a deleted boundary tuple and a new
        insert just before it must stay inside the stale index range."""
        db = fresh_db(n=100)
        db.delete("t", (500,))          # ghost at a granule boundary area
        db.insert("t", (499, 7, "new"))  # lands before the ghost
        rel = db.query_range("t", low=(495,), high=(505,))
        assert (499, 7, "new") in rel.rows()
        assert all(r[0] != 500 for r in rel.rows())
