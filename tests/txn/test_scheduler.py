"""Checkpoint scheduler: policy triggers, execution, incremental folds."""

import random

import pytest

from repro import Database, DataType, Schema
from repro.txn import (
    CompositePolicy,
    Decision,
    HotRangePolicy,
    MaintenanceAction,
    MemoryThresholdPolicy,
    NeverPolicy,
    TableLoad,
    UpdateCountPolicy,
    checkpoint_table_range,
    policy_from_spec,
)
from repro.txn.transaction import TransactionError


def load(read=0, write=0, delta_bytes=0, hist=None, stable_rows=100_000,
         block_rows=4096):
    if hist and not (read or write):
        read = sum(hist.values())  # keep counts consistent with the hist
    return TableLoad(
        table="t",
        stable_rows=stable_rows,
        block_rows=block_rows,
        read_entries=read,
        write_entries=write,
        delta_bytes=delta_bytes,
        commits_since_maintenance=1,
        block_histogram=hist or {},
    )


def test_table_load_lazy_histogram_resolved_once():
    calls = []

    def hist():
        calls.append(1)
        return {0: 5}

    tl = TableLoad(table="t", stable_rows=10, block_rows=4, read_entries=5,
                   write_entries=0, delta_bytes=80,
                   commits_since_maintenance=1, block_histogram=hist)
    assert tl.histogram() == {0: 5}
    assert tl.histogram() == {0: 5}
    assert len(calls) == 1  # cached after first resolution


def schema():
    return Schema.build(
        ("k", DataType.INT64), ("v", DataType.INT64), sort_key=("k",)
    )


def fresh_db(policy=None, n_rows=10_000, block_rows=1024):
    db = Database(block_rows=block_rows, checkpoint_policy=policy)
    db.create_table("t", schema(), [(i * 2, i) for i in range(n_rows)])
    return db


# -- policy trigger conditions ------------------------------------------------


def test_never_policy_never_fires():
    assert NeverPolicy().decide(load(read=10**6, delta_bytes=10**9)).is_none


def test_memory_threshold_triggers_checkpoint_above_limit():
    policy = MemoryThresholdPolicy(limit_bytes=1000)
    assert policy.decide(load(delta_bytes=1000)).is_none
    decision = policy.decide(load(delta_bytes=1001))
    assert decision.action is MaintenanceAction.CHECKPOINT


def test_memory_threshold_propagates_when_write_pdt_outgrows_budget():
    policy = MemoryThresholdPolicy(limit_bytes=10**9, write_limit_bytes=160)
    assert policy.decide(load(write=10)).is_none  # 160 B exactly
    decision = policy.decide(load(write=11))
    assert decision.action is MaintenanceAction.PROPAGATE


def test_update_count_triggers_on_total_entries():
    policy = UpdateCountPolicy(max_entries=100)
    assert policy.decide(load(read=80, write=20)).is_none  # exactly at cap
    decision = policy.decide(load(read=81, write=20))
    assert decision.action is MaintenanceAction.CHECKPOINT


def test_update_count_propagates_on_write_share():
    policy = UpdateCountPolicy(max_entries=100, max_write_entries=10)
    decision = policy.decide(load(read=0, write=11))
    assert decision.action is MaintenanceAction.PROPAGATE


def test_hot_range_quiet_below_min_entries():
    policy = HotRangePolicy(k=2, min_entries=50)
    assert policy.decide(load(hist={0: 49, 3: 12})).is_none
    assert policy.decide(load(hist={})).is_none


def test_hot_range_picks_k_hottest_blocks():
    policy = HotRangePolicy(k=2, min_entries=10)
    decision = policy.decide(load(hist={0: 30, 2: 90, 7: 60, 9: 5}))
    assert decision.action is MaintenanceAction.CHECKPOINT_RANGES
    assert decision.ranges == (
        (2 * 4096, 3 * 4096),
        (7 * 4096, 8 * 4096),
    )


def test_hot_range_coalesces_adjacent_blocks():
    policy = HotRangePolicy(k=3, min_entries=10)
    decision = policy.decide(load(hist={4: 20, 5: 30, 9: 15}))
    assert decision.ranges == (
        (4 * 4096, 6 * 4096),
        (9 * 4096, 10 * 4096),
    )


def test_composite_policy_first_decision_wins():
    policy = CompositePolicy(
        UpdateCountPolicy(max_entries=10),
        MemoryThresholdPolicy(limit_bytes=1),
    )
    decision = policy.decide(load(read=5, delta_bytes=100))
    assert decision.action is MaintenanceAction.CHECKPOINT  # memory member
    assert NeverPolicy().decide(load()).is_none
    assert CompositePolicy(NeverPolicy()).decide(load(read=10**6)).is_none


def test_policy_from_spec_parsing():
    assert isinstance(policy_from_spec(None), NeverPolicy)
    assert isinstance(policy_from_spec("never"), NeverPolicy)
    p = policy_from_spec("memory:4096")
    assert isinstance(p, MemoryThresholdPolicy) and p.limit_bytes == 4096
    p = policy_from_spec("updates:500")
    assert isinstance(p, UpdateCountPolicy) and p.max_entries == 500
    p = policy_from_spec("hot-ranges:7")
    assert isinstance(p, HotRangePolicy) and p.k == 7
    assert policy_from_spec("hot-ranges").k == 4
    existing = HotRangePolicy(k=2)
    assert policy_from_spec(existing) is existing
    with pytest.raises(ValueError):
        policy_from_spec("banana:3")
    with pytest.raises(ValueError):
        policy_from_spec(42)


# -- scheduler execution ------------------------------------------------------


def test_scheduler_checkpoints_after_commit():
    db = fresh_db(policy="updates:10")
    for i in range(12):
        db.modify("t", (i * 2,), "v", i)
    assert db.scheduler.stats.checkpoints >= 1
    # Only the updates after the last auto-checkpoint remain as deltas.
    assert db.delta_bytes("t") <= 16
    assert db.query("t", columns=["v"]).num_rows == 10_000


def test_scheduler_defers_under_concurrency_and_drains_between_queries():
    db = fresh_db(policy="updates:5")
    blocker = db.begin()
    for i in range(8):
        db.modify("t", (i * 2,), "v", 1)
    assert db.scheduler.pending()  # fired but couldn't run
    assert db.scheduler.stats.checkpoints == 0
    blocker.abort()
    db.query("t", columns=["v"])  # between-queries drain
    assert not db.scheduler.pending()
    assert db.scheduler.stats.checkpoints == 1


def test_scheduler_never_policy_leaves_deltas_alone():
    db = fresh_db(policy=None)
    for i in range(50):
        db.modify("t", (i * 2,), "v", 1)
    assert db.scheduler.stats.checkpoints == 0
    assert db.delta_bytes("t") > 0


def test_scheduler_hot_ranges_folds_only_the_hot_blocks():
    db = fresh_db(policy=HotRangePolicy(k=1, min_entries=16), block_rows=1024)
    with db.transaction() as txn:
        for i in range(20):  # all mods land in stable block 0
            txn.modify("t", (i * 2,), "v", 99)
    stats = db.scheduler.stats
    assert stats.range_checkpoints == 1
    assert stats.entries_folded == 20
    assert stats.checkpoints == 0
    rel = db.query("t", columns=["v"])
    assert int(rel["v"][:20].sum()) == 99 * 20
    assert db.table("t").num_rows == 10_000


# -- incremental range checkpoint --------------------------------------------


def setup_manager(n_rows=100):
    db = Database(block_rows=32)
    db.create_table("t", schema(), [(i * 2, i) for i in range(n_rows)])
    return db


def test_range_checkpoint_requires_quiescence():
    db = setup_manager()
    open_txn = db.begin()
    db_modifies_blocked = db.manager
    with pytest.raises(TransactionError):
        checkpoint_table_range(db_modifies_blocked, "t", 0, 32)
    open_txn.abort()


def test_range_checkpoint_clean_range_is_a_noop():
    db = setup_manager()
    db.modify("t", (0,), "v", 5)  # entry at sid 0
    before = db.table("t")
    assert checkpoint_table_range(db.manager, "t", 64, 96) == 0
    assert db.table("t") is before  # untouched image


def test_range_checkpoint_folds_middle_range_and_rebases_suffix():
    db = setup_manager()
    # Deltas in three regions: prefix (kept), middle (folded), suffix
    # (kept, SIDs rebased by the middle's net delta).
    db.modify("t", (2,), "v", 111)          # sid 1 (prefix)
    db.delete("t", (80,))                   # sid 40 (middle)
    db.insert("t", (81, 777))               # middle insert
    db.modify("t", (160,), "v", 222)        # sid 80 (suffix)
    db.delete("t", (180,))                  # sid 90 (suffix)
    expected = db.image_rows("t")

    folded = checkpoint_table_range(db.manager, "t", 32, 64)
    assert folded == 2  # the delete and the insert
    assert db.image_rows("t") == expected
    # Middle range folded: net delta 0 (one delete, one insert).
    assert db.table("t").num_rows == 100
    state = db.manager.state_of("t")
    assert state.read_pdt.count() == 3  # prefix mod + suffix mod + delete
    # Suffix entries still address the right tuples after the rebase.
    rel = db.query("t", columns=["k", "v"])
    by_key = dict(zip(rel["k"].tolist(), rel["v"].tolist()))
    assert by_key[160] == 222
    assert 180 not in by_key
    assert by_key[81] == 777


def test_range_checkpoint_to_end_folds_trailing_inserts():
    db = setup_manager(n_rows=50)
    db.insert("t", (99_999, 1))  # trailing insert (sid == 50)
    db.modify("t", (0,), "v", 42)  # prefix entry survives
    expected = db.image_rows("t")
    folded = checkpoint_table_range(db.manager, "t", 32, 10**9)
    assert folded == 1
    assert db.table("t").num_rows == 51
    assert db.image_rows("t") == expected
    assert db.manager.state_of("t").read_pdt.count() == 1


def test_range_checkpoint_random_differential():
    """Random ops + random fold ranges must preserve the merged image."""
    rng = random.Random(1234)
    db = setup_manager(n_rows=200)
    used = set()
    for step in range(6):
        for _ in range(30):
            roll = rng.random()
            if roll < 0.4:
                key = rng.randrange(400) * 2 + 1
                if key in used:
                    continue
                used.add(key)
                db.insert("t", (key, rng.randrange(1000)))
            else:
                rel = db.query("t", columns=["k"])
                keys = rel["k"].tolist()
                key = keys[rng.randrange(len(keys))]
                if roll < 0.7:
                    db.modify("t", (key,), "v", rng.randrange(1000))
                elif len(keys) > 50:
                    db.delete("t", (key,))
        expected = db.image_rows("t")
        n = db.table("t").num_rows
        lo = rng.randrange(0, max(n, 1))
        hi = lo + rng.randrange(0, 96)
        checkpoint_table_range(db.manager, "t", lo, hi)
        assert db.image_rows("t") == expected
        db.manager.state_of("t").read_pdt.check_invariants()
    # Finally fold everything and compare once more.
    expected = db.image_rows("t")
    checkpoint_table_range(db.manager, "t", 0, 10**9)
    assert db.delta_bytes("t") == 0
    assert db.image_rows("t") == expected


def test_range_checkpoint_preserves_sparse_index_queries():
    db = setup_manager(n_rows=300)
    for i in range(64, 96):  # hot block in the middle
        db.modify("t", (i * 2,), "v", i + 5000)
    checkpoint_table_range(db.manager, "t", 64, 96)
    rel = db.query_range("t", low=(130,), high=(170,), columns=["k", "v"])
    ks = rel["k"].tolist()
    assert ks == sorted(ks)
    assert ks[0] >= 130 and ks[-1] <= 170
    by_key = dict(zip(rel["k"].tolist(), rel["v"].tolist()))
    assert by_key[140] == 70 + 5000
