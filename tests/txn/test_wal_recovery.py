"""WAL durability: logging, file persistence, and replay recovery."""

import random

from repro import Database, DataType, PDT, Schema, merge_rows
from repro.txn import WriteAheadLog, replay_into


def make_db(tmp_path=None, n=15):
    schema = Schema.build(
        ("k", DataType.INT64),
        ("a", DataType.INT64),
        ("b", DataType.STRING),
        sort_key=("k",),
    )
    wal_path = None if tmp_path is None else tmp_path / "wal.jsonl"
    db = Database(compressed=False, wal_path=wal_path)
    db.create_table("t", schema, [(i * 10, i, f"s{i}") for i in range(n)])
    return db, schema


class TestWalLogging:
    def test_each_commit_is_one_record(self):
        db, _ = make_db()
        db.insert("t", (5, 1, "x"))
        db.delete("t", (0,))
        assert len(db.manager.wal) == 2
        assert db.manager.wal.records[0].lsn == 1
        assert db.manager.wal.records[1].lsn == 2

    def test_aborted_txns_not_logged(self):
        db, _ = make_db()
        txn = db.begin()
        txn.insert("t", (5, 1, "x"))
        txn.abort()
        assert len(db.manager.wal) == 0

    def test_record_payloads(self):
        db, _ = make_db()
        with db.transaction() as txn:
            txn.insert("t", (5, 1, "x"))
            txn.modify("t", (10,), "a", 99)
        (record,) = db.manager.wal.records
        entries = record.tables["t"]
        kinds = sorted(kind for _, kind, _ in entries)
        assert kinds == [-1, 1]  # one INS, one MOD of column 1


class TestReplay:
    def replay_check(self, db, schema, stable_rows):
        fresh = {"t": PDT(schema)}
        last_lsn = replay_into(db.manager.wal, fresh)
        assert last_lsn == len(db.manager.wal)
        assert merge_rows(stable_rows, fresh["t"]) == db.image_rows("t")

    def test_replay_reconstructs_image(self):
        db, schema = make_db()
        stable_rows = db.table("t").rows()
        db.insert("t", (5, 1, "x"))
        db.modify("t", (10,), "b", "mod")
        db.delete("t", (20,))
        db.insert("t", (21, 2, "y"))
        self.replay_check(db, schema, stable_rows)

    def test_replay_random_history(self):
        db, schema = make_db(n=30)
        stable_rows = db.table("t").rows()
        rng = random.Random(99)
        live = {r[0] for r in stable_rows}
        for _ in range(60):
            c = rng.random()
            if c < 0.5 or not live:
                k = rng.randrange(500)
                if k not in live:
                    db.insert("t", (k, 0, f"v{k}"))
                    live.add(k)
            elif c < 0.75:
                k = rng.choice(sorted(live))
                db.delete("t", (k,))
                live.discard(k)
            else:
                k = rng.choice(sorted(live))
                db.modify("t", (k,), "a", rng.randrange(1000))
        self.replay_check(db, schema, stable_rows)

    def test_replay_multi_statement_transactions(self):
        db, schema = make_db()
        stable_rows = db.table("t").rows()
        with db.transaction() as txn:
            txn.insert("t", (5, 1, "x"))
            txn.modify("t", (5,), "a", 2)
        with db.transaction() as txn:
            txn.delete("t", (5,))
        self.replay_check(db, schema, stable_rows)


class TestFilePersistence:
    def test_roundtrip_via_file(self, tmp_path):
        db, schema = make_db(tmp_path)
        stable_rows = db.table("t").rows()
        db.insert("t", (5, 1, "x"))
        db.modify("t", (10,), "b", "mod")

        loaded = WriteAheadLog.load(tmp_path / "wal.jsonl")
        assert len(loaded) == 2
        fresh = {"t": PDT(schema)}
        replay_into(loaded, fresh)
        assert merge_rows(stable_rows, fresh["t"]) == db.image_rows("t")

    def test_truncate_clears_file(self, tmp_path):
        db, _ = make_db(tmp_path)
        db.insert("t", (5, 1, "x"))
        db.checkpoint("t")
        loaded = WriteAheadLog.load(tmp_path / "wal.jsonl")
        assert len(loaded) == 0


class TestBatchedCrashRecovery:
    """Batched WAL records: a commit batch is one record, and replay is
    atomic per record — killing replay at *every* record boundary must
    recover exactly the image after that many whole transactions, never a
    partially applied batch."""

    def run_workload(self, db, seed=7, n_commits=12):
        """Random mix of bulk batches and scalar commits; returns the
        expected image snapshot after each commit."""
        rng = random.Random(seed)
        live = {r[0] for r in db.image_rows("t")}
        snapshots = [db.image_rows("t")]
        for _ in range(n_commits):
            if rng.random() < 0.6:
                ops, touched = [], set()
                for _ in range(rng.randrange(2, 10)):
                    k = rng.randrange(500)
                    if k in touched:
                        continue
                    touched.add(k)
                    if k not in live:
                        ops.append(("ins", (k, 0, f"v{k}")))
                        live.add(k)
                    elif rng.random() < 0.5:
                        ops.append(("del", (k,)))
                        live.discard(k)
                    else:
                        ops.append(("mod", (k,), "a", rng.randrange(1000)))
                db.apply_batch("t", ops)
            else:
                k = rng.randrange(500)
                if k not in live:
                    db.insert("t", (k, 1, f"s{k}"))
                    live.add(k)
                else:
                    db.delete("t", (k,))
                    live.discard(k)
            snapshots.append(db.image_rows("t"))
        return snapshots

    def test_replay_prefix_at_every_record_boundary(self):
        db, schema = make_db(n=25)
        stable_rows = db.table("t").rows()
        snapshots = self.run_workload(db)
        assert len(db.manager.wal) == len(snapshots) - 1
        for k in range(len(db.manager.wal) + 1):
            fresh = {"t": PDT(schema)}
            replay_into(db.manager.wal, fresh, max_records=k)
            assert merge_rows(stable_rows, fresh["t"]) == snapshots[k], \
                f"crash after record {k} is not transaction-consistent"

    def test_recover_database_prefix(self):
        """Manager-level recovery with a record cutoff resumes the LSN
        clock at the crash point and carries the prefix image."""
        from repro import Database, DataType, Schema
        from repro.txn import recover_database

        db, schema = make_db(n=25)
        initial = db.table("t").rows()
        snapshots = self.run_workload(db, seed=11, n_commits=6)
        cut = 3
        fresh_db = Database(compressed=False)
        fresh_schema = Schema.build(
            ("k", DataType.INT64), ("a", DataType.INT64),
            ("b", DataType.STRING), sort_key=("k",),
        )
        fresh_db.create_table("t", fresh_schema, initial)
        last_lsn = recover_database(fresh_db, db.manager.wal,
                                    max_records=cut)
        assert last_lsn == db.manager.wal.records[cut - 1].lsn
        assert fresh_db.image_rows("t") == snapshots[cut]
        # The recovered manager keeps committing from the crash LSN.
        fresh_db.insert("t", (901, 1, "post"))
        assert fresh_db.manager.wal.records[-1].lsn == last_lsn + 1

    def test_bulk_batch_is_single_record(self):
        db, _ = make_db()
        db.apply_batch("t", [("ins", (5, 1, "x")), ("del", (20,)),
                             ("mod", (30,), "a", 9)])
        assert len(db.manager.wal) == 1
        (record,) = db.manager.wal.records
        assert sorted(kind for _, kind, _ in record.tables["t"]) \
            == [-2, -1, 1]


class TestCheckpointRebase:
    """Stable-image rewrites must rebase the WAL so recovery replays only
    the still-live deltas — never ones already folded into the image."""

    def replay_after_crash(self, db, schema):
        """Replay the current WAL onto the current stable image (the state
        a crash right now would recover from)."""
        stable_rows = db.table("t").rows()
        fresh = {name: PDT(db.table(name).schema)
                 for name in db.table_names()}
        replay_into(db.manager.wal, fresh)
        return merge_rows(stable_rows, fresh["t"])

    def test_incremental_checkpoint_survives_crash(self):
        from repro.txn import checkpoint_table_range

        db, schema = make_db(n=40)
        for i in range(4):
            db.delete("t", (i * 10,))          # deltas in block-0 area
        db.modify("t", (300,), "a", 777)       # delta far after the range
        db.insert("t", (305, 5, "late"))
        checkpoint_table_range(db.manager, "t", 0, 8)
        # Post-checkpoint commits extend the rebased log.
        db.modify("t", (310,), "b", "post")
        assert self.replay_after_crash(db, schema) == db.image_rows("t")

    def test_full_checkpoint_of_one_table_keeps_other_tables_wal(self):
        db, schema = make_db(n=10)
        other = Schema.build(("k", DataType.INT64), ("a", DataType.INT64),
                             sort_key=("k",))
        db.create_table("u", other, [(i, i) for i in range(5)])
        db.insert("t", (5, 1, "x"))
        db.modify("u", (2,), "a", 99)
        db.checkpoint("t")                     # u still dirty: WAL survives
        # t's share of the log is gone, u's remains.
        assert all("t" not in r.tables for r in db.manager.wal.records)
        assert any("u" in r.tables for r in db.manager.wal.records)
        assert self.replay_after_crash(db, schema) == db.image_rows("t")
        fresh = {"t": PDT(schema), "u": PDT(other)}
        replay_into(db.manager.wal, fresh)
        assert merge_rows(db.table("u").rows(), fresh["u"]) \
            == db.image_rows("u")

    def test_rebase_persists_to_wal_file(self, tmp_path):
        from repro.txn import checkpoint_table_range

        db, schema = make_db(tmp_path, n=40)
        for i in range(4):
            db.modify("t", (i * 10,), "a", 1)
        db.modify("t", (300,), "a", 2)
        checkpoint_table_range(db.manager, "t", 0, 8)
        loaded = WriteAheadLog.load(tmp_path / "wal.jsonl")
        fresh = {"t": PDT(schema)}
        replay_into(loaded, fresh)
        assert merge_rows(db.table("t").rows(), fresh["t"]) \
            == db.image_rows("t")
        # Only the surviving delta is logged, not the folded history.
        assert sum(len(r.tables.get("t", ())) for r in loaded.records) == 1
