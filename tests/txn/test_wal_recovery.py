"""WAL durability: logging, file persistence, and replay recovery."""

import random

from repro import Database, DataType, PDT, Schema, merge_rows
from repro.txn import WriteAheadLog, replay_into


def make_db(tmp_path=None, n=15):
    schema = Schema.build(
        ("k", DataType.INT64),
        ("a", DataType.INT64),
        ("b", DataType.STRING),
        sort_key=("k",),
    )
    wal_path = None if tmp_path is None else tmp_path / "wal.jsonl"
    db = Database(compressed=False, wal_path=wal_path)
    db.create_table("t", schema, [(i * 10, i, f"s{i}") for i in range(n)])
    return db, schema


class TestWalLogging:
    def test_each_commit_is_one_record(self):
        db, _ = make_db()
        db.insert("t", (5, 1, "x"))
        db.delete("t", (0,))
        assert len(db.manager.wal) == 2
        assert db.manager.wal.records[0].lsn == 1
        assert db.manager.wal.records[1].lsn == 2

    def test_aborted_txns_not_logged(self):
        db, _ = make_db()
        txn = db.begin()
        txn.insert("t", (5, 1, "x"))
        txn.abort()
        assert len(db.manager.wal) == 0

    def test_record_payloads(self):
        db, _ = make_db()
        with db.transaction() as txn:
            txn.insert("t", (5, 1, "x"))
            txn.modify("t", (10,), "a", 99)
        (record,) = db.manager.wal.records
        entries = record.tables["t"]
        kinds = sorted(kind for _, kind, _ in entries)
        assert kinds == [-1, 1]  # one INS, one MOD of column 1


class TestReplay:
    def replay_check(self, db, schema, stable_rows):
        fresh = {"t": PDT(schema)}
        last_lsn = replay_into(db.manager.wal, fresh)
        assert last_lsn == len(db.manager.wal)
        assert merge_rows(stable_rows, fresh["t"]) == db.image_rows("t")

    def test_replay_reconstructs_image(self):
        db, schema = make_db()
        stable_rows = db.table("t").rows()
        db.insert("t", (5, 1, "x"))
        db.modify("t", (10,), "b", "mod")
        db.delete("t", (20,))
        db.insert("t", (21, 2, "y"))
        self.replay_check(db, schema, stable_rows)

    def test_replay_random_history(self):
        db, schema = make_db(n=30)
        stable_rows = db.table("t").rows()
        rng = random.Random(99)
        live = {r[0] for r in stable_rows}
        for _ in range(60):
            c = rng.random()
            if c < 0.5 or not live:
                k = rng.randrange(500)
                if k not in live:
                    db.insert("t", (k, 0, f"v{k}"))
                    live.add(k)
            elif c < 0.75:
                k = rng.choice(sorted(live))
                db.delete("t", (k,))
                live.discard(k)
            else:
                k = rng.choice(sorted(live))
                db.modify("t", (k,), "a", rng.randrange(1000))
        self.replay_check(db, schema, stable_rows)

    def test_replay_multi_statement_transactions(self):
        db, schema = make_db()
        stable_rows = db.table("t").rows()
        with db.transaction() as txn:
            txn.insert("t", (5, 1, "x"))
            txn.modify("t", (5,), "a", 2)
        with db.transaction() as txn:
            txn.delete("t", (5,))
        self.replay_check(db, schema, stable_rows)


class TestFilePersistence:
    def test_roundtrip_via_file(self, tmp_path):
        db, schema = make_db(tmp_path)
        stable_rows = db.table("t").rows()
        db.insert("t", (5, 1, "x"))
        db.modify("t", (10,), "b", "mod")

        loaded = WriteAheadLog.load(tmp_path / "wal.jsonl")
        assert len(loaded) == 2
        fresh = {"t": PDT(schema)}
        replay_into(loaded, fresh)
        assert merge_rows(stable_rows, fresh["t"]) == db.image_rows("t")

    def test_truncate_clears_file(self, tmp_path):
        db, _ = make_db(tmp_path)
        db.insert("t", (5, 1, "x"))
        db.checkpoint("t")
        loaded = WriteAheadLog.load(tmp_path / "wal.jsonl")
        assert len(loaded) == 0
