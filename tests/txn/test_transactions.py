"""Snapshot isolation, optimistic concurrency, and Algorithm 9 commit."""

import pytest

from repro import Database, DataType, Schema, TransactionConflict
from repro.txn import TransactionError, TxnStatus


def make_db(n=20, **kwargs):
    schema = Schema.build(
        ("k", DataType.INT64),
        ("a", DataType.INT64),
        ("b", DataType.STRING),
        sort_key=("k",),
    )
    db = Database(compressed=False, **kwargs)
    db.create_table("t", schema, [(i * 10, i, f"s{i}") for i in range(n)])
    return db


class TestBasicLifecycle:
    def test_commit_makes_updates_visible(self):
        db = make_db()
        txn = db.begin()
        txn.insert("t", (5, 1, "new"))
        txn.commit()
        assert (5, 1, "new") in db.image_rows("t")

    def test_abort_discards_updates(self):
        db = make_db()
        txn = db.begin()
        txn.insert("t", (5, 1, "new"))
        txn.abort()
        assert (5, 1, "new") not in db.image_rows("t")
        assert txn.status is TxnStatus.ABORTED

    def test_context_manager_commits(self):
        db = make_db()
        with db.transaction() as txn:
            txn.delete("t", (0,))
        assert db.row_count("t") == 19

    def test_context_manager_aborts_on_exception(self):
        db = make_db()
        with pytest.raises(RuntimeError, match="boom"):
            with db.transaction() as txn:
                txn.delete("t", (0,))
                raise RuntimeError("boom")
        assert db.row_count("t") == 20

    def test_operations_after_commit_rejected(self):
        db = make_db()
        txn = db.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.insert("t", (5, 1, "x"))

    def test_read_only_commit_is_cheap(self):
        db = make_db()
        txn = db.begin()
        txn.scan("t")
        txn.commit()
        assert db.manager.stats.propagations == 0


class TestReadYourOwnWrites:
    def test_txn_sees_its_inserts(self):
        db = make_db()
        txn = db.begin()
        txn.insert("t", (5, 1, "mine"))
        assert (5, 1, "mine") in txn.image_rows("t")
        txn.abort()

    def test_txn_sees_its_modifies_and_deletes(self):
        db = make_db()
        txn = db.begin()
        txn.modify("t", (10,), "a", 999)
        txn.delete("t", (20,))
        rows = txn.image_rows("t")
        assert (10, 999, "s1") in rows
        assert all(r[0] != 20 for r in rows)
        txn.abort()

    def test_updates_chain_within_txn(self):
        db = make_db()
        txn = db.begin()
        txn.insert("t", (5, 1, "v1"))
        txn.modify("t", (5,), "b", "v2")
        txn.delete("t", (5,))
        txn.insert("t", (5, 2, "v3"))
        txn.commit()
        rows = [r for r in db.image_rows("t") if r[0] == 5]
        assert rows == [(5, 2, "v3")]


class TestSnapshotIsolation:
    def test_reader_does_not_see_concurrent_commit(self):
        db = make_db()
        reader = db.begin()
        writer = db.begin()
        writer.insert("t", (5, 1, "w"))
        writer.commit()
        assert (5, 1, "w") not in reader.image_rows("t")
        assert (5, 1, "w") in db.image_rows("t")
        reader.commit()

    def test_new_txn_sees_prior_commit(self):
        db = make_db()
        w = db.begin()
        w.insert("t", (5, 1, "w"))
        w.commit()
        later = db.begin()
        assert (5, 1, "w") in later.image_rows("t")
        later.abort()

    def test_snapshot_sharing_between_same_epoch_txns(self):
        db = make_db()
        db.insert("t", (5, 1, "seed"))  # non-empty write-PDT
        t1 = db.begin()
        t2 = db.begin()
        t1.image_rows("t")
        t2.image_rows("t")
        # Snapshots are reference loans of the master Write-PDT: same-epoch
        # transactions share one object and nothing is copied at start.
        assert t1._snapshots["t"] is t2._snapshots["t"]
        assert db.manager.stats.snapshot_copies == 0
        assert db.manager.stats.snapshot_reuses >= 2
        t1.abort()
        t2.abort()

    def test_commit_copies_master_only_while_loaned(self):
        db = make_db()
        db.insert("t", (5, 1, "seed"))  # non-empty write-PDT
        reader = db.begin()
        loaned = reader._snapshots["t"]
        assert loaned is db.manager.state_of("t").write_pdt
        # A commit while the master is loaned swings it to a copy
        # (copy-on-commit) instead of mutating the reader's object...
        db.insert("t", (6, 1, "later"))
        assert db.manager.stats.snapshot_copies == 1
        assert db.manager.state_of("t").write_pdt is not loaned
        assert (6, 1, "later") not in reader.image_rows("t")
        reader.abort()
        # ...and with no loans outstanding, commits fold in place.
        db.insert("t", (7, 1, "unshared"))
        assert db.manager.stats.snapshot_copies == 1


class TestConflicts:
    def test_write_write_conflict_aborts_second(self):
        db = make_db()
        a = db.begin()
        b = db.begin()
        a.modify("t", (10,), "a", 1)
        b.modify("t", (10,), "a", 2)
        a.commit()
        with pytest.raises(TransactionConflict):
            b.commit()
        assert b.status is TxnStatus.ABORTED
        assert db.manager.stats.conflicts == 1
        assert (10, 1, "s1") in db.image_rows("t")

    def test_disjoint_column_modifies_both_commit(self):
        db = make_db()
        a = db.begin()
        b = db.begin()
        a.modify("t", (10,), "a", 1)
        b.modify("t", (10,), "b", "bee")
        a.commit()
        b.commit()
        assert (10, 1, "bee") in db.image_rows("t")

    def test_insert_insert_same_key_conflicts(self):
        db = make_db()
        a = db.begin()
        b = db.begin()
        a.insert("t", (5, 1, "a"))
        b.insert("t", (5, 2, "b"))
        a.commit()
        with pytest.raises(TransactionConflict):
            b.commit()

    def test_delete_then_concurrent_modify_conflicts(self):
        db = make_db()
        a = db.begin()
        b = db.begin()
        a.delete("t", (10,))
        b.modify("t", (10,), "a", 7)
        a.commit()
        with pytest.raises(TransactionConflict):
            b.commit()

    def test_disjoint_tuples_no_conflict(self):
        db = make_db()
        a = db.begin()
        b = db.begin()
        a.modify("t", (10,), "a", 1)
        b.modify("t", (20,), "a", 2)
        a.commit()
        b.commit()
        rows = db.image_rows("t")
        assert (10, 1, "s1") in rows and (20, 2, "s2") in rows

    def test_paper_figure15_three_transactions(self):
        """a, b, c from Figure 15: b commits during a; c starts after b's
        commit and commits after a."""
        db = make_db()
        a = db.begin()
        b = db.begin()
        b.insert("t", (1, 0, "b"))
        b.commit()  # t2
        c = db.begin()
        a.insert("t", (2, 0, "a"))
        a.commit()  # t3: serialized against b
        c.insert("t", (3, 0, "c"))
        c.commit()  # t4: serialized against a (t' kept alive in TZ)
        keys = [r[0] for r in db.image_rows("t")]
        assert keys[:4] == [0, 1, 2, 3]
        assert db.manager.stats.conflicts == 0
        assert db.manager.tz_size() == 0  # all refcounts drained

    def test_tz_refcount_drains_on_abort_too(self):
        db = make_db()
        a = db.begin()
        b = db.begin()
        b.insert("t", (1, 0, "b"))
        b.commit()
        assert db.manager.tz_size() == 1
        a.abort()
        assert db.manager.tz_size() == 0


class TestWritePropagationAndCheckpoint:
    def test_propagate_write_to_read(self):
        db = make_db()
        db.insert("t", (5, 1, "x"))
        state = db.manager.state_of("t")
        assert not state.write_pdt.is_empty()
        db.manager.propagate_write_to_read("t")
        assert state.write_pdt.is_empty()
        assert not state.read_pdt.is_empty()
        assert (5, 1, "x") in db.image_rows("t")

    def test_propagate_refused_with_running_txns(self):
        db = make_db()
        db.insert("t", (5, 1, "x"))
        txn = db.begin()
        with pytest.raises(TransactionError):
            db.manager.propagate_write_to_read("t")
        txn.abort()

    def test_maybe_propagate_threshold(self):
        db = make_db()
        db.insert("t", (5, 1, "x"))
        assert not db.manager.maybe_propagate("t", write_limit_bytes=1 << 30)
        assert db.manager.maybe_propagate("t", write_limit_bytes=1)

    def test_checkpoint_rebuilds_stable(self):
        db = make_db()
        db.insert("t", (5, 1, "x"))
        db.delete("t", (0,))
        db.manager.propagate_write_to_read("t")
        db.modify("t", (10,), "a", 77)
        expected = db.image_rows("t")
        db.checkpoint("t")
        state = db.manager.state_of("t")
        assert state.read_pdt.is_empty() and state.write_pdt.is_empty()
        assert db.image_rows("t") == expected
        assert state.stable.num_rows == len(expected)
        # SIDs renumbered: a fresh scan still works through storage.
        assert db.query("t", columns=["k"]).num_rows == len(expected)

    def test_checkpoint_truncates_wal(self):
        db = make_db()
        db.insert("t", (5, 1, "x"))
        assert len(db.manager.wal) == 1
        db.checkpoint("t")
        assert len(db.manager.wal) == 0


class TestQueryPdtLayer:
    def test_statement_does_not_see_own_updates(self):
        """Halloween protection: inside a query scope, reads reflect the
        pre-statement image while updates accumulate in the Query-PDT."""
        db = make_db()
        txn = db.begin()
        txn.begin_query()
        txn.insert("t", (5, 1, "q"))
        assert (5, 1, "q") not in txn.image_rows("t")
        txn.end_query()
        assert (5, 1, "q") in txn.image_rows("t")
        txn.commit()
        assert (5, 1, "q") in db.image_rows("t")

    def test_nested_query_scope_rejected(self):
        db = make_db()
        txn = db.begin()
        txn.begin_query()
        with pytest.raises(TransactionError):
            txn.begin_query()
        txn.end_query()
        txn.abort()

    def test_commit_closes_open_query_scope(self):
        db = make_db()
        txn = db.begin()
        txn.begin_query()
        txn.insert("t", (5, 1, "q"))
        txn.commit()
        assert (5, 1, "q") in db.image_rows("t")


class TestMultiTable:
    def test_cross_table_transaction(self):
        db = make_db()
        schema2 = Schema.build(
            ("name", DataType.STRING), ("v", DataType.INT64),
            sort_key=("name",),
        )
        db.create_table("u", schema2, [("x", 1)])
        with db.transaction() as txn:
            txn.insert("t", (5, 1, "t-row"))
            txn.insert("u", ("y", 2))
        assert (5, 1, "t-row") in db.image_rows("t")
        assert ("y", 2) in db.image_rows("u")

    def test_conflict_on_one_table_aborts_whole_txn(self):
        db = make_db()
        schema2 = Schema.build(
            ("name", DataType.STRING), ("v", DataType.INT64),
            sort_key=("name",),
        )
        db.create_table("u", schema2, [("x", 1)])
        a = db.begin()
        b = db.begin()
        a.modify("t", (10,), "a", 1)
        b.modify("t", (10,), "a", 2)
        b.insert("u", ("z", 9))
        a.commit()
        with pytest.raises(TransactionConflict):
            b.commit()
        assert ("z", 9) not in db.image_rows("u")
