"""Group-commit coordinator and striped-WAL unit tests."""

import json
import threading

import pytest

from repro import Database, DataType, PDT, Schema, merge_rows
from repro.txn import WriteAheadLog, replay_into
from repro.txn.group_commit import GroupCommitCoordinator, GroupCommitPolicy
from repro.txn.wal import WalRecord


def make_schema():
    return Schema.build(
        ("k", DataType.INT64), ("a", DataType.INT64),
        ("b", DataType.STRING), sort_key=("k",),
    )


def commit_pdt(schema, key, tag):
    pdt = PDT(schema)
    pdt.add_insert(0, 0, (key, key, tag))
    return pdt


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            GroupCommitPolicy(max_group=0)
        with pytest.raises(ValueError):
            GroupCommitPolicy(max_delay_s=-1)

    def test_defaults(self):
        policy = GroupCommitPolicy()
        assert policy.max_group >= 1
        assert policy.max_delay_s == 0.0


class TestGroupModeFileFormat:
    def test_bytes_identical_to_direct_mode(self, tmp_path):
        schema = make_schema()
        direct = WriteAheadLog(tmp_path / "direct.jsonl", fsync=False)
        grouped = WriteAheadLog(tmp_path / "grouped.jsonl", fsync=False,
                                group=GroupCommitPolicy())
        for wal in (direct, grouped):
            for i in range(5):
                ticket = wal.append_commit(
                    i + 1, {"t": commit_pdt(schema, i, f"v{i}")})
                wal.wait_durable(ticket)
        assert (tmp_path / "direct.jsonl").read_bytes() \
            == (tmp_path / "grouped.jsonl").read_bytes()

    def test_ticket_resolution_and_stats(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync=True,
                            group=GroupCommitPolicy())
        schema = make_schema()
        ticket = wal.append_commit(1, {"t": commit_pdt(schema, 1, "x")})
        assert not ticket.resolved  # staged, not yet flushed
        wal.wait_durable(ticket)
        assert ticket.durable and ticket.led and ticket.group_size == 1
        assert wal.group.stats.flushes == 1
        assert wal.group.stats.fsyncs >= 1
        assert wal.group.pending() == 0

    def test_leader_flushes_whole_group(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync=True,
                            group=GroupCommitPolicy())
        schema = make_schema()
        tickets = [
            wal.append_commit(i + 1, {"t": commit_pdt(schema, i, "x")})
            for i in range(4)
        ]
        wal.wait_durable(tickets[-1])  # one wait resolves the group
        assert all(t.durable for t in tickets)
        assert wal.group.stats.flushes == 1
        assert wal.group.stats.coalesced == 4
        assert wal.group.stats.max_group == 4
        loaded = WriteAheadLog.load(wal.path)
        assert [r.lsn for r in loaded.records] == [1, 2, 3, 4]

    def test_rewrite_resolves_staged_tickets(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync=False,
                            group=GroupCommitPolicy())
        schema = make_schema()
        ticket = wal.append_commit(1, {"t": commit_pdt(schema, 1, "x")})
        assert not ticket.resolved
        wal.truncate()  # whole-file rewrite persists the (empty) state
        assert ticket.resolved
        assert wal.group.stats.rewrite_drains == 1
        wal.wait_durable(ticket)  # returns immediately, no error

    def test_snapshot_record_is_durable_inline(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync=False,
                            group=GroupCommitPolicy())
        schema = make_schema()
        wal.append_snapshot("t", commit_pdt(schema, 1, "x"), lsn=3,
                            for_image_lsn=3)
        # No staged work may remain: the caller publishes a catalog that
        # depends on this record right after.
        assert wal.group.pending() == 0
        loaded = WriteAheadLog.load(wal.path)
        assert loaded.records[0].kind == "snapshot"

    def test_concurrent_stage_and_wait(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync=True,
                            group=GroupCommitPolicy())
        schema = make_schema()
        errors = []

        def writer(base):
            try:
                for i in range(10):
                    lsn = base * 100 + i
                    ticket = wal.append_commit(
                        lsn, {"t": commit_pdt(schema, lsn, "x")})
                    wal.wait_durable(ticket)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(b,))
                   for b in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(WriteAheadLog.load(wal.path).records) == 40
        assert wal.group.stats.staged == 40


class TestStripedWal:
    def test_round_trip_multi_table(self, tmp_path):
        schema = make_schema()
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync=False, streams=3)
        tables = [f"shard{i}" for i in range(5)]
        for lsn in range(1, 4):
            wal._append_record(WalRecord(
                lsn=lsn,
                tables={t: wal._serialize_pdt(commit_pdt(schema, lsn, t))
                        for t in tables}))
        loaded = WriteAheadLog.load(wal.path)
        assert loaded.streams == 3
        assert [r.lsn for r in loaded.records] == [1, 2, 3]
        for record, original in zip(loaded.records, wal.records):
            assert record.tables == original.tables

    def test_stream_files_exist_and_main_has_meta(self, tmp_path):
        schema = make_schema()
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync=False, streams=2)
        wal.append_commit(1, {"a": commit_pdt(schema, 1, "x"),
                              "b": commit_pdt(schema, 1, "y"),
                              "c": commit_pdt(schema, 1, "z")})
        main_lines = (tmp_path / "wal.jsonl").read_text().splitlines()
        assert json.loads(main_lines[0])["kind"] == "wal-meta"
        stream_files = sorted(p.name for p in tmp_path.glob("wal.jsonl.s*"))
        assert stream_files  # commits went to the stream files

    def test_incomplete_part_drops_lsn_tail(self, tmp_path):
        schema = make_schema()
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync=False, streams=2)
        # Three multi-part commits across both streams.
        names = ["a", "b", "c", "d"]
        for lsn in (1, 2, 3):
            wal.append_commit(
                lsn, {n: commit_pdt(schema, lsn, n) for n in names})
        by_stream = {}
        for n in names:
            by_stream.setdefault(wal._stream_index(n), []).append(n)
        assert len(by_stream) == 2, "need both streams populated"
        # Simulate a crash mid-group-fsync: drop stream 0's line for
        # lsn 2 (as if that file's fsync never landed).
        spath = tmp_path / f"wal.jsonl.s0.e{wal._stream_epoch}"
        lines = [l for l in spath.read_text().splitlines()
                 if json.loads(l)["lsn"] != 2]
        spath.write_text("".join(line + "\n" for line in lines))
        loaded = WriteAheadLog.load(tmp_path / "wal.jsonl")
        # lsn 2 is incomplete; lsn 3 (complete on disk) belongs to the
        # same never-acknowledged flush tail and must go too.
        assert [r.lsn for r in loaded.records] == [1]

    def test_rewrite_collapses_and_bumps_epoch(self, tmp_path):
        schema = make_schema()
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync=False, streams=2)
        wal.append_commit(1, {"a": commit_pdt(schema, 1, "x"),
                              "d": commit_pdt(schema, 1, "y")})
        old_streams = set(tmp_path.glob("wal.jsonl.s*"))
        assert old_streams
        wal.rebase_table("nonexistent")  # forces a rewrite
        assert wal._stream_epoch == 1
        for stale in old_streams:
            assert not stale.exists()
        loaded = WriteAheadLog.load(tmp_path / "wal.jsonl")
        assert loaded._stream_epoch == 1
        assert [r.lsn for r in loaded.records] == [1]

    def test_adopt_runtime_collapses_layout_change(self, tmp_path):
        schema = make_schema()
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync=False, streams=2)
        wal.append_commit(1, {"a": commit_pdt(schema, 1, "x"),
                              "d": commit_pdt(schema, 1, "y")})
        loaded = WriteAheadLog.load(tmp_path / "wal.jsonl")
        configured = WriteAheadLog(tmp_path / "other.jsonl", fsync=False,
                                   group=GroupCommitPolicy())
        loaded.adopt_runtime(configured)
        assert loaded.streams == 1
        assert isinstance(loaded.group, GroupCommitCoordinator)
        assert not list(tmp_path.glob("wal.jsonl.s*"))
        again = WriteAheadLog.load(tmp_path / "wal.jsonl")
        assert again.streams == 1
        assert [r.lsn for r in again.records] == [1]
        assert again.records[0].tables == loaded.records[0].tables


class TestStripedDatabase:
    def test_sharded_updates_recover_across_streams(self, tmp_path):
        root = tmp_path / "db"
        schema = make_schema()
        db = Database(storage="mmap", storage_path=root, wal_streams=4)
        db.create_sharded_table(
            "t", schema, [(i, i, f"s{i}") for i in range(400)], shards=4)
        db.apply_batch("t", [("mod", (k,), "a", k + 1000)
                             for k in range(0, 400, 7)])
        db.apply_batch("t", [("ins", (k, k, "new"))
                             for k in range(1000, 1040)])
        oracle = db.image_rows("t")
        db.close()
        again = Database.recover(root, wal_streams=4)
        assert again.image_rows("t") == oracle
        again.close()

    def test_replay_unchanged_under_grouping(self, tmp_path):
        schema = make_schema()
        db = Database(compressed=False, wal_path=tmp_path / "wal.jsonl")
        db.create_table("t", schema, [(i * 10, i, f"s{i}") for i in range(8)])
        stable_rows = db.table("t").rows()
        db.insert("t", (5, 1, "x"))
        db.delete("t", (30,))
        fresh = {"t": PDT(schema)}
        last = replay_into(WriteAheadLog.load(tmp_path / "wal.jsonl"), fresh)
        assert last == 2
        assert merge_rows(stable_rows, fresh["t"]) == db.image_rows("t")
        db.close()
