"""Test package (enables relative imports of per-package helpers)."""
