"""Tests for the value-based delta tree baseline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import DataType, Schema, StableTable
from repro.vdt import VDT, vdt_merge_rows, vdt_merge_scan


def int_schema():
    return Schema.build(
        ("k", DataType.INT64),
        ("a", DataType.INT64),
        ("b", DataType.STRING),
        sort_key=("k",),
    )


def multi_key_schema():
    return Schema.build(
        ("k1", DataType.STRING),
        ("k2", DataType.INT64),
        ("v", DataType.INT64),
        sort_key=("k1", "k2"),
    )


class ValueOracle:
    """Plain sorted-rows image for value-addressed updates."""

    def __init__(self, schema, rows):
        self.schema = schema
        self.rows = {schema.sk_of(r): list(schema.coerce_row(r)) for r in rows}

    def insert(self, row):
        row = list(self.schema.coerce_row(row))
        self.rows[self.schema.sk_of(row)] = row

    def delete(self, sk):
        del self.rows[tuple(sk)]

    def modify(self, sk, col_no, value):
        self.rows[tuple(sk)][col_no] = value

    def image(self):
        return [tuple(r) for _, r in sorted(self.rows.items())]

    def row(self, sk):
        return tuple(self.rows[tuple(sk)])


def drive_random(schema, stable_rows, vdt, oracle, rng, n_ops, key_range):
    for _ in range(n_ops):
        keys = sorted(oracle.rows)
        c = rng.random()
        if c < 0.45 or not keys:
            k = rng.randrange(key_range)
            if (k,) not in oracle.rows:
                row = (k, rng.randrange(100), f"v{k}")
                vdt.add_insert(row)
                oracle.insert(row)
        elif c < 0.70:
            sk = keys[rng.randrange(len(keys))]
            vdt.add_delete(sk)
            oracle.delete(sk)
        else:
            sk = keys[rng.randrange(len(keys))]
            col = rng.choice([1, 2])
            val = rng.randrange(100) if col == 1 else f"m{rng.randrange(9)}"
            vdt.add_modify(oracle.row(sk), col, val)
            oracle.modify(sk, col, val)


class TestVDTSemantics:
    def test_insert_delete_modify_roundtrip(self):
        schema = int_schema()
        rows = [(k, k, f"s{k}") for k in range(5)]
        vdt = VDT(schema)
        vdt.add_insert((10, 1, "new"))
        vdt.add_delete((2,))
        vdt.add_modify((3, 3, "s3"), 1, 99)
        got = vdt_merge_rows(rows, vdt)
        assert got == [
            (0, 0, "s0"),
            (1, 1, "s1"),
            (3, 99, "s3"),
            (4, 4, "s4"),
            (10, 1, "new"),
        ]

    def test_modify_adds_to_both_trees(self):
        vdt = VDT(int_schema())
        vdt.add_modify((3, 3, "s3"), 1, 99)
        assert vdt.insert_count() == 1
        assert vdt.delete_count() == 1
        assert vdt.count() == 2

    def test_second_modify_in_place(self):
        vdt = VDT(int_schema())
        vdt.add_modify((3, 3, "s3"), 1, 99)
        vdt.add_modify((3, 99, "s3"), 2, "zz")
        assert vdt.count() == 2  # still one ins + one del entry
        (sk, row), = list(vdt.insert_items())
        assert row == [3, 99, "zz"]

    def test_delete_of_insert_leaves_no_trace(self):
        vdt = VDT(int_schema())
        vdt.add_insert((10, 1, "new"))
        vdt.add_delete((10,))
        assert vdt.count() == 0

    def test_delete_of_modified_keeps_delete_entry(self):
        vdt = VDT(int_schema())
        vdt.add_modify((3, 3, "s3"), 1, 99)
        vdt.add_delete((3,))
        assert vdt.insert_count() == 0
        assert vdt.delete_count() == 1

    def test_reinsert_after_delete(self):
        schema = int_schema()
        rows = [(k, k, f"s{k}") for k in range(5)]
        vdt = VDT(schema)
        vdt.add_delete((2,))
        vdt.add_insert((2, 77, "back"))
        got = vdt_merge_rows(rows, vdt)
        assert got[2] == (2, 77, "back")
        # Deleting the re-insert restores the original deletion.
        vdt.add_delete((2,))
        got = vdt_merge_rows(rows, vdt)
        assert [r[0] for r in got] == [0, 1, 3, 4]

    def test_duplicate_insert_rejected(self):
        vdt = VDT(int_schema())
        vdt.add_insert((10, 1, "x"))
        with pytest.raises(ValueError):
            vdt.add_insert((10, 2, "y"))

    def test_sk_modify_rejected(self):
        vdt = VDT(int_schema())
        with pytest.raises(ValueError):
            vdt.add_modify((3, 3, "s3"), 0, 4)

    def test_memory_usage_exceeds_pdt_model(self):
        """VDT modifies store whole tuples; the paper's PDT stores 16
        bytes per update."""
        vdt = VDT(int_schema())
        vdt.add_modify((3, 3, "s3"), 1, 99)
        assert vdt.memory_usage() > 16

    def test_copy_independent(self):
        vdt = VDT(int_schema())
        vdt.add_insert((10, 1, "x"))
        clone = vdt.copy()
        clone.add_delete((10,))
        assert vdt.count() == 1 and clone.count() == 0


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(0, 10**9), n_ops=st.integers(1, 80))
def test_vdt_merge_matches_oracle(seed, n_ops):
    schema = int_schema()
    rows = [(k * 10, k, f"s{k}") for k in range(20)]
    vdt = VDT(schema)
    oracle = ValueOracle(schema, rows)
    drive_random(schema, rows, vdt, oracle, random.Random(seed), n_ops, 400)
    assert vdt_merge_rows(rows, vdt) == oracle.image()
    vdt.check_invariants()


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 10**9),
    batch_rows=st.sampled_from([1, 3, 7, 1000]),
)
def test_block_merge_matches_row_merge(seed, batch_rows):
    schema = int_schema()
    rows = [(k * 10, k, f"s{k}") for k in range(30)]
    table = StableTable.bulk_load("t", schema, rows)
    vdt = VDT(schema)
    oracle = ValueOracle(schema, rows)
    drive_random(schema, rows, vdt, oracle, random.Random(seed), 60, 500)
    cols = ["k", "a", "b"]
    got = []
    next_rid = 0
    for first_rid, arrays in vdt_merge_scan(table, vdt, columns=cols,
                                            batch_rows=batch_rows):
        assert first_rid == next_rid
        n = len(arrays["k"])
        next_rid += n
        got.extend(
            tuple(arrays[c][i] for c in cols) for i in range(n)
        )
    assert got == oracle.image()


def test_multi_column_key_merge():
    schema = multi_key_schema()
    rows = [
        ("a", 1, 10), ("a", 2, 20), ("b", 1, 30), ("b", 3, 40), ("c", 1, 50)
    ]
    table = StableTable.bulk_load("t", schema, rows)
    vdt = VDT(schema)
    vdt.add_insert(("a", 3, 25))
    vdt.add_insert(("b", 2, 35))
    vdt.add_delete(("b", 3))
    vdt.add_modify(("c", 1, 50), 2, 55)
    expected = [
        ("a", 1, 10), ("a", 2, 20), ("a", 3, 25),
        ("b", 1, 30), ("b", 2, 35), ("c", 1, 55),
    ]
    assert vdt_merge_rows(rows, vdt) == expected
    got = []
    for _, arrays in vdt_merge_scan(table, vdt, batch_rows=2):
        got.extend(
            tuple(arrays[c][i] for c in schema.column_names)
            for i in range(len(arrays["k1"]))
        )
    assert got == expected


def test_vdt_scan_reads_sort_keys_pdt_scan_does_not():
    """THE core claim of the paper, as an I/O assertion: a projection that
    does not touch the sort key still reads it under VDT merging, but not
    under PDT merging."""
    from repro.core import PDT, merge_scan
    from repro.storage import BlockStore, BufferPool, IOStats

    schema = int_schema()
    rows = [(k, k, f"s{k}") for k in range(2000)]
    table = StableTable.bulk_load("t", schema, rows)
    store = BlockStore(compressed=False, block_rows=256)
    io = IOStats()
    pool = BufferPool(store, io)
    table.attach_storage(pool)

    vdt = VDT(schema)
    vdt.add_delete((100,))
    pdt = PDT(schema)
    pdt.add_delete(100, (100,))

    for _ in vdt_merge_scan(table, vdt, columns=["a"]):
        pass
    assert ("t", "k") in io.bytes_by_column  # sort key was read
    vdt_bytes = io.bytes_read

    pool.clear()
    io.reset()
    for _ in merge_scan(table, pdt, columns=["a"]):
        pass
    assert ("t", "k") not in io.bytes_by_column  # sort key NOT read
    assert io.bytes_read < vdt_bytes
