"""ShardedTable behaviour against an unsharded oracle database."""

import numpy as np
import pytest

from repro import Database, DataType, IOStats, Schema


def int_schema():
    return Schema.build(
        ("k", DataType.INT64),
        ("a", DataType.INT64),
        ("b", DataType.STRING),
        sort_key=("k",),
    )


def seed_rows(n=100):
    return [(i * 2, i, f"s{i}") for i in range(n)]


def make_pair(n=100, shards=4, **kwargs):
    """(sharded db, oracle db) over identical rows."""
    schema = int_schema()
    rows = seed_rows(n)
    db = Database(compressed=False)
    db.create_sharded_table("t", schema, rows, shards=shards, **kwargs)
    oracle = Database(compressed=False)
    oracle.create_table("t", schema, rows)
    return db, oracle


SCATTER = [
    ("ins", (5, 1, "x")),
    ("del", (20,)),
    ("mod", (40,), "a", 99),
    ("ins", (75, 7, "y")),
    ("ins", (199, 9, "z")),
    ("del", (150,)),
    ("mod", (160,), "b", "m"),
]


class TestCreation:
    def test_quantile_boundaries(self):
        db, _ = make_pair(n=100, shards=4)
        st = db.sharded("t")
        assert st.num_shards == 4
        assert st.boundaries == [(50,), (100,), (150,)]
        assert [s.stable.num_rows for s in st.shard_states()] \
            == [25, 25, 25, 25]

    def test_explicit_boundaries(self):
        schema = int_schema()
        db = Database()
        st = db.create_sharded_table("t", schema, seed_rows(10),
                                     boundaries=[(6,)])
        assert st.num_shards == 2
        assert [s.stable.num_rows for s in st.shard_states()] == [3, 7]

    def test_small_loads_collapse_duplicate_quantiles(self):
        db = Database()
        st = db.create_sharded_table("t", int_schema(), seed_rows(2),
                                     shards=8)
        assert 1 <= st.num_shards <= 2
        assert db.row_count("t") == 2

    def test_name_collisions_rejected(self):
        db, _ = make_pair()
        with pytest.raises(ValueError):
            db.create_sharded_table("t", int_schema(), [])
        with pytest.raises(ValueError):
            db.create_table("t__s0", int_schema(), [])
        # a plain table must not shadow (or be shadowed by) a sharded name
        with pytest.raises(ValueError):
            db.create_table("t", int_schema(), [])
        with pytest.raises(ValueError):
            db.create_table_from_arrays(
                "t", int_schema(),
                {"k": np.empty(0, dtype=np.int64),
                 "a": np.empty(0, dtype=np.int64),
                 "b": np.empty(0, dtype=object)},
            )

    def test_create_from_arrays_matches_row_path(self):
        schema = int_schema()
        rows = seed_rows(100)
        arrays = {
            "k": np.array([r[0] for r in rows], dtype=np.int64),
            "a": np.array([r[1] for r in rows], dtype=np.int64),
            "b": np.array([r[2] for r in rows], dtype=object),
        }
        via_rows = Database()
        via_rows.create_sharded_table("t", schema, rows, shards=4)
        via_arrays = Database()
        via_arrays.create_sharded_table_from_arrays("t", schema, arrays,
                                                    shards=4)
        assert via_arrays.sharded("t").boundaries \
            == via_rows.sharded("t").boundaries
        assert via_arrays.image_rows("t") == via_rows.image_rows("t")

    def test_empty_table(self):
        db = Database()
        db.create_sharded_table("t", int_schema(), [], shards=4)
        assert db.row_count("t") == 0
        assert db.query("t").rows() == []


class TestQueriesMatchOracle:
    def test_full_scan(self):
        db, oracle = make_pair()
        db.apply_batch("t", SCATTER)
        oracle.apply_batch("t", SCATTER)
        assert db.query("t").rows() == oracle.query("t").rows()

    def test_projection_reads_only_named_columns(self):
        db, _ = make_pair()
        db.make_cold()
        db.query("t", columns=["a"])
        touched = {c for _, c in db.io.bytes_by_column}
        assert touched == {"a"}

    def test_query_range_prunes_shards(self):
        db, oracle = make_pair()
        db.apply_batch("t", SCATTER)
        oracle.apply_batch("t", SCATTER)
        for low, high in [((30,), (120,)), (None, (49,)), ((151,), None)]:
            assert db.query_range("t", low, high).rows() \
                == oracle.query_range("t", low, high).rows()

    def test_range_scan_touches_only_overlapping_shards(self):
        db, _ = make_pair()
        db.make_cold()
        db.io.reset()
        db.query_range("t", (0,), (40,), columns=["a"])  # first shard only
        st = db.sharded("t")
        per_shard = [s.stable.pool.io.bytes_read for s in st.shard_states()]
        assert per_shard[0] > 0
        assert per_shard[2] == per_shard[3] == 0

    def test_prefix_high_bound_spans_boundary_shard(self):
        """A prefix ``high`` is inclusive of every extension; a shard
        boundary extending that prefix must not cut the scan short."""
        schema = Schema.build(
            ("g", DataType.INT64), ("s", DataType.INT64),
            ("a", DataType.INT64), sort_key=("g", "s"),
        )
        rows = [(g, s, g * 100 + s) for g in range(5) for s in range(40)]
        db = Database(compressed=False)
        # boundary (2, 9) falls *inside* the g=2 group
        db.create_sharded_table("t", schema, rows,
                                boundaries=[(1, 20), (2, 9), (3, 30)])
        oracle = Database(compressed=False)
        oracle.create_table("t", schema, rows)
        for low, high in [((2,), (2,)), (None, (2,)), ((1, 30), (2,)),
                          ((2, 9), (3,)), ((0,), None)]:
            assert db.query_range("t", low, high).rows() \
                == oracle.query_range("t", low, high).rows(), (low, high)

    def test_parallel_and_sequential_scans_identical(self):
        db, _ = make_pair()
        db.apply_batch("t", SCATTER)
        st = db.sharded("t")
        seq = list(st.scan_blocks(parallel=False))
        par = list(st.scan_blocks(parallel=True))
        assert [rid for rid, _ in seq] == [rid for rid, _ in par]
        for (_, a1), (_, a2) in zip(seq, par):
            for c in a1:
                assert np.array_equal(a1[c], a2[c])

    def test_global_rids_are_contiguous(self):
        db, _ = make_pair()
        db.apply_batch("t", SCATTER)
        pos = 0
        for rid, arrays in db.sharded("t").scan_blocks():
            assert rid == pos
            pos += len(arrays["k"])
        assert pos == db.row_count("t")


class TestUpdateRouting:
    def test_scalar_conveniences_route(self):
        db, oracle = make_pair()
        for target in (db, oracle):
            target.insert("t", (33, 1, "i"))
            target.delete("t", (100,))
            target.modify("t", (102,), "a", -5)
        assert db.image_rows("t") == oracle.image_rows("t")

    def test_batch_is_one_wal_record(self):
        db, _ = make_pair()
        n0 = len(db.manager.wal)
        assert db.apply_batch("t", SCATTER) == len(SCATTER)
        commits = [r for r in db.manager.wal.records[n0:]
                   if r.kind == "commit"]
        assert len(commits) == 1
        touched = set(commits[0].tables)
        assert touched <= set(db.sharded("t").shard_names)
        assert len(touched) > 1  # the scatter spans shards

    def test_insert_many(self):
        db, oracle = make_pair()
        rows = [(k, 0, "n") for k in (1, 51, 151, 301)]
        db.insert_many("t", rows)
        oracle.insert_many("t", rows)
        assert db.image_rows("t") == oracle.image_rows("t")

    def test_boundary_key_routes_to_right_shard(self):
        db, _ = make_pair()
        st = db.sharded("t")
        boundary = st.boundaries[0]
        assert st.physical_for(boundary) == st.shard_names[1]
        db.modify("t", boundary, "a", 123)
        rel = db.query_range("t", boundary, boundary)
        assert rel["a"].tolist() == [123]


class TestTransactions:
    """Transactions accept logical sharded names and route internally."""

    def test_multi_statement_transaction_routes(self):
        db, oracle = make_pair()
        for target in (db, oracle):
            with target.transaction() as txn:
                txn.insert("t", (33, 1, "i"))       # shard 0
                txn.delete("t", (100,))             # shard 2
                txn.modify("t", (180,), "a", -5)    # shard 3
        assert db.image_rows("t") == oracle.image_rows("t")

    def test_txn_scan_sees_own_cross_shard_writes(self):
        db, _ = make_pair()
        txn = db.begin()
        txn.insert("t", (33, 1, "i"))
        txn.delete("t", (100,))
        rows = txn.scan("t").rows()
        keys = [r[0] for r in rows]
        assert 33 in keys and 100 not in keys
        assert rows == txn.image_rows("t")
        # uncommitted: invisible outside the transaction
        assert 33 not in [r[0] for r in db.query("t").rows()]
        txn.abort()
        assert db.row_count("t") == 100

    def test_cross_shard_transaction_is_one_wal_record(self):
        db, _ = make_pair()
        n0 = len(db.manager.wal)
        with db.transaction() as txn:
            txn.insert("t", (33, 1, "i"))
            txn.insert("t", (171, 1, "j"))
        commits = [r for r in db.manager.wal.records[n0:]
                   if r.kind == "commit"]
        assert len(commits) == 1
        assert len(commits[0].tables) == 2  # two shards, one commit

    def test_txn_apply_batch_routes(self):
        db, oracle = make_pair()
        with db.transaction() as txn:
            txn.apply_batch("t", SCATTER)
        with oracle.transaction() as txn:
            txn.apply_batch("t", SCATTER)
        assert db.image_rows("t") == oracle.image_rows("t")

    def test_cross_shard_batch_is_all_or_nothing(self):
        """A bad op routed to a *later* shard must fail before any
        earlier shard's sub-batch lands in the Trans-PDT."""
        from repro.db import KeyNotFound

        db, _ = make_pair()
        before = db.image_rows("t")
        txn = db.begin()
        with pytest.raises(KeyNotFound):
            txn.apply_batch("t", [
                ("ins", (5, 1, "x")),      # shard 0: valid
                ("del", (151,)),           # shard 3: no such live key
            ])
        txn.commit()
        assert db.image_rows("t") == before


class TestMaintenance:
    def test_checkpoint_folds_every_shard(self):
        db, oracle = make_pair()
        db.apply_batch("t", SCATTER)
        oracle.apply_batch("t", SCATTER)
        db.checkpoint("t")
        oracle.checkpoint("t")
        assert db.delta_bytes("t") == 0
        for state in db.sharded("t").shard_states():
            assert state.read_pdt.is_empty()
            assert state.write_pdt.is_empty()
        assert db.image_rows("t") == oracle.image_rows("t")
        # per-shard stable images concatenate to the oracle's image
        concat = []
        for state in db.sharded("t").shard_states():
            concat.extend(state.stable.rows())
        assert concat == oracle.table("t").rows()

    def test_per_shard_scheduler_folds_only_hot_shard(self):
        schema = int_schema()
        rows = seed_rows(100)
        db = Database(compressed=False, checkpoint_policy="updates:8")
        db.create_sharded_table("t", schema, rows, shards=4)
        st = db.sharded("t")
        cold_stables = [s.stable for s in st.shard_states()[1:]]
        # 10 updates, all inside shard 0's key range [0, 50)
        db.apply_batch("t", [("mod", (k * 2,), "a", k) for k in range(10)])
        db.query("t")  # drains any deferred maintenance
        hot = st.shard_states()[0]
        assert hot.read_pdt.is_empty() and hot.write_pdt.is_empty()
        # cold shards were never rewritten — same stable objects
        assert [s.stable for s in st.shard_states()[1:]] == cold_stables


class TestIOStatsAggregation:
    def test_merge_adds_counters(self):
        a, b = IOStats(), IOStats()
        a.record_read("t", "x", 100)
        b.record_read("t", "x", 50)
        b.record_read("t", "y", 7)
        a.merge(b)
        assert a.bytes_read == 157
        assert a.blocks_read == 3
        assert a.bytes_by_column[("t", "x")] == 150
        assert a.bytes_by_column[("t", "y")] == 7

    def test_merge_accepts_snapshot_deltas(self):
        a = IOStats()
        a.record_read("t", "x", 10)
        before = a.snapshot()
        a.record_read("t", "x", 5)
        total = IOStats().merge(a.since(before))
        assert total.bytes_read == 5

    def test_database_io_aggregates_shard_fanout(self):
        db, _ = make_pair()
        db.make_cold()
        db.io.reset()
        db.query("t")
        st = db.sharded("t")
        # every shard's cold read landed in the database-level counters
        assert db.io.bytes_read == st.io_stats().bytes_read > 0
        assert db.io.blocks_read \
            == sum(s.stable.pool.io.blocks_read for s in st.shard_states())
        # cached: a second scan reads nothing
        db.io.reset()
        db.query("t")
        assert db.io.bytes_read == 0

    def test_update_resolution_io_reaches_database_counters(self):
        """Key-resolution sweeps behind updates read shard blocks through
        the private pools; the deltas must still land in db.io."""
        db, oracle = make_pair()
        db.make_cold()
        oracle.make_cold()
        db.io.reset()
        oracle.io.reset()
        db.apply_batch("t", [("mod", (k,), "a", 1) for k in (0, 60, 110)])
        oracle.apply_batch("t", [("mod", (k,), "a", 1)
                                 for k in (0, 60, 110)])
        assert db.io.bytes_read > 0
        db.make_cold()
        db.io.reset()
        db.modify("t", (80,), "a", 2)
        assert db.io.bytes_read > 0

    def test_txn_scan_io_reaches_database_counters(self):
        db, _ = make_pair()
        db.make_cold()
        db.io.reset()
        txn = db.begin()
        txn.scan("t", columns=["a"])
        txn.abort()
        assert db.io.bytes_read > 0
        assert {c for _, c in db.io.bytes_by_column} == {"a"}

    def test_sharded_io_stats_accessor(self):
        db, _ = make_pair()
        db.make_cold()
        db.query("t")
        st = db.sharded("t")
        assert st.io_stats().bytes_read \
            == sum(s.stable.pool.io.bytes_read for s in st.shard_states())
