"""Differential property suite: a sharded table is indistinguishable from
the unsharded oracle.

A random initial load, random shard count and boundaries, and a random
interleaving of bulk batches, scalar updates, shard splits/merges, and
per-shard checkpoints must leave the sharded database producing the same
row stream — and, after a final full checkpoint, the same concatenated
stable image — as an unsharded oracle table fed the identical updates.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, DataType, Schema
from repro.shard import merge_adjacent, split_shard

SCHEMA = Schema.build(
    ("k", DataType.INT64),
    ("a", DataType.INT64),
    ("b", DataType.STRING),
    sort_key=("k",),
)
KEY_RANGE = 200


def gen_batch(rng, live, n_ops):
    """A valid op batch against the ``live`` key set (mutated in place);
    allows same-key chains (delete-then-reinsert etc.)."""
    ops = []
    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.4 or not live:
            k = rng.randrange(KEY_RANGE)
            if k in live:
                continue
            ops.append(("ins", (k, rng.randrange(1000), f"v{k}")))
            live.add(k)
        elif roll < 0.7:
            k = rng.choice(sorted(live))
            ops.append(("del", (k,)))
            live.discard(k)
        else:
            k = rng.choice(sorted(live))
            if rng.random() < 0.5:
                ops.append(("mod", (k,), "a", rng.randrange(1000)))
            else:
                ops.append(("mod", (k,), "b", f"m{rng.randrange(99)}"))
    return ops


def concatenated_stable_rows(sharded):
    rows = []
    for state in sharded.shard_states():
        rows.extend(state.stable.rows())
    return rows


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n_rows=st.integers(0, 60),
    shards=st.integers(1, 5),
    n_steps=st.integers(1, 12),
)
def test_sharded_matches_unsharded_oracle(seed, n_rows, shards, n_steps):
    rng = random.Random(seed)
    rows = sorted(
        (k, rng.randrange(1000), f"s{k}")
        for k in rng.sample(range(0, KEY_RANGE, 2), n_rows)
    )
    live = {r[0] for r in rows}

    db = Database(compressed=False)
    # Random explicit boundaries half the time, quantiles otherwise.
    if rng.random() < 0.5 and shards > 1:
        bounds = sorted(rng.sample(range(1, KEY_RANGE), shards - 1))
        sharded = db.create_sharded_table(
            "t", SCHEMA, rows, boundaries=[(b,) for b in bounds]
        )
    else:
        sharded = db.create_sharded_table("t", SCHEMA, rows, shards=shards)
    oracle = Database(compressed=False)
    oracle.create_table("t", SCHEMA, rows)

    for _ in range(n_steps):
        action = rng.random()
        if action < 0.45:
            ops = gen_batch(rng, live, rng.randrange(1, 10))
            if ops:
                db.apply_batch("t", ops)
                oracle.apply_batch("t", ops)
        elif action < 0.6 and live:
            k = rng.choice(sorted(live))
            db.modify("t", (k,), "a", -1)
            oracle.modify("t", (k,), "a", -1)
        elif action < 0.75:
            split_shard(sharded, rng.randrange(sharded.num_shards))
        elif action < 0.9:
            if sharded.num_shards > 1:
                merge_adjacent(
                    sharded, rng.randrange(sharded.num_shards - 1)
                )
        else:
            shard = rng.choice(sharded.shard_names)
            from repro.txn import checkpoint_table

            checkpoint_table(db.manager, shard)
        assert db.image_rows("t") == oracle.image_rows("t")
        assert db.row_count("t") == oracle.row_count("t")

    # Row streams identical (materialized scans, parallel fan-out).
    assert db.query("t").rows() == oracle.query("t").rows()

    # Post-checkpoint stable images identical: folding every shard and the
    # oracle must leave byte-wise the same ordered rows, with empty PDTs.
    db.checkpoint("t")
    oracle.checkpoint("t")
    assert concatenated_stable_rows(sharded) == oracle.table("t").rows()
    assert db.delta_bytes("t") == 0
