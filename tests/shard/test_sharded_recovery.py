"""Crash recovery of range-sharded tables: stable shard images + WAL
(commit records, snapshot records from rebalances, and shard-layout
catalog records) must reconstruct the logical table exactly — including
its boundaries."""

from repro import Database, DataType, Schema, WriteAheadLog
from repro.shard import merge_adjacent, split_shard
from repro.txn import recover_database


def int_schema():
    return Schema.build(
        ("k", DataType.INT64),
        ("a", DataType.INT64),
        ("b", DataType.STRING),
        sort_key=("k",),
    )


def seed_rows(n=60):
    return [(i * 2, i, f"s{i}") for i in range(n)]


def crash_and_recover(db, wal=None):
    """Simulate a crash: only shard stable images and the WAL survive."""
    st = db.sharded("t")
    wal = wal if wal is not None else db.manager.wal
    db2 = Database(compressed=False)
    for shard in st.shard_names:
        db2.create_table(shard, int_schema(),
                         db.manager.state_of(shard).stable.rows())
    recover_database(db2, wal)
    return db2


class TestShardedRecovery:
    def test_boundaries_and_deltas_restored(self):
        db = Database(compressed=False)
        db.create_sharded_table("t", int_schema(), seed_rows(), shards=3)
        db.apply_batch("t", [("ins", (5, 1, "x")), ("del", (40,)),
                             ("mod", (80,), "a", 7)])
        db.insert("t", (119, 9, "tail"))
        expected = db.image_rows("t")
        db2 = crash_and_recover(db)
        assert db2.is_sharded("t")
        assert db2.sharded("t").boundaries == db.sharded("t").boundaries
        assert db2.sharded("t").shard_names == db.sharded("t").shard_names
        assert db2.image_rows("t") == expected
        assert db2.query("t").rows() == db.query("t").rows()

    def test_recovered_database_keeps_routing(self):
        db = Database(compressed=False)
        db.create_sharded_table("t", int_schema(), seed_rows(), shards=3)
        db2 = crash_and_recover(db)
        db2.insert("t", (7, 1, "post"))
        db2.delete("t", (100,))
        assert (7, 1, "post") in db2.image_rows("t")
        assert db2.row_count("t") == 60

    def test_recovery_after_split_and_merge(self):
        db = Database(compressed=False)
        db.create_sharded_table("t", int_schema(), seed_rows(), shards=2)
        db.apply_batch("t", [("ins", (k, 0, "h")) for k in (1, 3, 5, 7)])
        st = db.sharded("t")
        assert split_shard(st, 0)
        db.apply_batch("t", [("del", (1,)), ("mod", (3,), "a", 2)])
        assert merge_adjacent(st, 1)
        db.insert("t", (201, 2, "after")),
        expected = db.image_rows("t")
        db2 = crash_and_recover(db)
        assert db2.sharded("t").boundaries == st.boundaries
        assert db2.image_rows("t") == expected

    def test_layout_survives_wal_file_roundtrip(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        db = Database(compressed=False, wal_path=path)
        db.create_sharded_table("t", int_schema(), seed_rows(), shards=3)
        db.apply_batch("t", [("ins", (5, 1, "x")), ("del", (40,))])
        assert split_shard(db.sharded("t"), 1)
        expected = db.image_rows("t")
        loaded = WriteAheadLog.load(path)
        assert loaded.shard_layouts()["t"]["boundaries"] \
            == db.sharded("t").boundaries
        db2 = crash_and_recover(db, wal=loaded)
        assert db2.image_rows("t") == expected

    def test_layout_survives_checkpoint_truncation(self):
        db = Database(compressed=False)
        db.create_sharded_table("t", int_schema(), seed_rows(), shards=3)
        db.apply_batch("t", [("ins", (5, 1, "x")), ("del", (40,))])
        db.checkpoint("t")  # folds every shard; WAL commits truncate away
        wal = db.manager.wal
        assert all(r.kind == "shard-layout" for r in wal.records)
        expected = db.image_rows("t")
        db2 = crash_and_recover(db)
        assert db2.sharded("t").boundaries == db.sharded("t").boundaries
        assert db2.image_rows("t") == expected

    def test_recovered_shards_use_private_pools(self):
        """Recovery must re-attach per-shard buffer pools: fanned-out
        scans rely on per-shard I/O counters (no cross-thread races, no
        N-fold double counting against the shared database pool)."""
        db = Database(compressed=False)
        db.create_sharded_table("t", int_schema(), seed_rows(), shards=4)
        db2 = crash_and_recover(db)
        st2 = db2.sharded("t")
        pools = [s.stable.pool for s in st2.shard_states()]
        assert all(p is not None and p is not db2.pool for p in pools)
        assert len({id(p) for p in pools}) == len(pools)
        db2.make_cold()
        db.make_cold()
        db2.io.reset()
        db.io.reset()
        db2.query("t")
        db.query("t")
        assert db2.io.bytes_read == db.io.bytes_read  # no inflation

    def test_rebalancer_config_survives_recovery(self):
        db = Database(compressed=False)
        db.create_sharded_table("t", int_schema(), seed_rows(), shards=2,
                                split_rows=20, merge_rows=5,
                                parallel=False)
        db2 = crash_and_recover(db)
        st2 = db2.sharded("t")
        assert (st2.split_rows, st2.merge_rows, st2.parallel) == (20, 5,
                                                                  False)
        # still armed: the oversized shards split on the next query
        n = st2.num_shards
        db2.query("t")
        assert st2.num_shards > n

    def test_unsharded_tables_unaffected(self):
        db = Database(compressed=False)
        db.create_table("plain", int_schema(), seed_rows(10))
        db.create_sharded_table("t", int_schema(), seed_rows(), shards=2)
        db.insert("plain", (33, 1, "p"))
        db.insert("t", (33, 1, "q"))
        db2 = Database(compressed=False)
        db2.create_table("plain", int_schema(), seed_rows(10))
        for shard in db.sharded("t").shard_names:
            db2.create_table(shard, int_schema(),
                             db.manager.state_of(shard).stable.rows())
        recover_database(db2, db.manager.wal)
        assert db2.image_rows("plain") == db.image_rows("plain")
        assert db2.image_rows("t") == db.image_rows("t")
