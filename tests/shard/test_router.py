"""Unit tests for key-range shard routing."""

import pytest

from repro import DataType, Schema
from repro.shard import ShardRouter


def schema():
    return Schema.build(
        ("k", DataType.INT64),
        ("a", DataType.INT64),
        sort_key=("k",),
    )


class TestShardOf:
    def test_single_shard_takes_everything(self):
        router = ShardRouter([])
        assert router.num_shards == 1
        assert router.shard_of((-100,)) == 0
        assert router.shard_of((10**9,)) == 0

    def test_half_open_ranges(self):
        router = ShardRouter([(10,), (20,)])
        assert router.shard_of((9,)) == 0
        assert router.shard_of((10,)) == 1  # boundary belongs to the right
        assert router.shard_of((19,)) == 1
        assert router.shard_of((20,)) == 2
        assert router.shard_of((5000,)) == 2

    def test_multi_column_keys(self):
        router = ShardRouter([("m", "b")])
        assert router.shard_of(("a", "zzz")) == 0
        assert router.shard_of(("m", "a")) == 0
        assert router.shard_of(("m", "b")) == 1
        assert router.shard_of(("z", "a")) == 1

    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError):
            ShardRouter([(10,), (10,)])
        with pytest.raises(ValueError):
            ShardRouter([(20,), (10,)])


class TestKeyRanges:
    def test_key_range_ends_are_open(self):
        router = ShardRouter([(10,), (20,)])
        assert router.key_range(0) == (None, (10,))
        assert router.key_range(1) == ((10,), (20,))
        assert router.key_range(2) == ((20,), None)

    def test_shards_for_range(self):
        router = ShardRouter([(10,), (20,), (30,)])
        assert list(router.shards_for_range((12,), (25,))) == [1, 2]
        assert list(router.shards_for_range(None, (9,))) == [0]
        assert list(router.shards_for_range((30,), None)) == [3]
        assert list(router.shards_for_range(None, None)) == [0, 1, 2, 3]


class TestSplitOps:
    def test_ops_route_by_addressed_key(self):
        router = ShardRouter([(10,)])
        parts = router.split_ops(schema(), [
            ("ins", (5, 1)),
            ("del", (15,)),
            ("mod", (3,), "a", 9),
            ("ins", (10, 2)),
        ])
        assert parts[0] == [("ins", (5, 1)), ("mod", (3,), "a", 9)]
        assert parts[1] == [("del", (15,)), ("ins", (10, 2))]

    def test_order_preserved_within_shard(self):
        router = ShardRouter([(10,)])
        ops = [("ins", (4, 1)), ("del", (4,)), ("ins", (4, 2))]
        parts = router.split_ops(schema(), ops)
        assert parts[0] == ops  # delete-then-reinsert chain stays intact

    def test_split_rows(self):
        router = ShardRouter([(10,)])
        parts = router.split_rows(schema(), [(12, 0), (1, 1), (10, 2)])
        assert parts[0] == [(1, 1)]
        assert parts[1] == [(12, 0), (10, 2)]


class TestBoundaryMaintenance:
    def test_insert_and_remove_boundary(self):
        router = ShardRouter([(10,), (30,)])
        router.insert_boundary(1, (20,))
        assert router.boundaries == [(10,), (20,), (30,)]
        router.remove_boundary(1)
        assert router.boundaries == [(10,), (30,)]

    def test_split_key_must_fall_inside_shard(self):
        router = ShardRouter([(10,), (30,)])
        with pytest.raises(ValueError):
            router.insert_boundary(1, (10,))
        with pytest.raises(ValueError):
            router.insert_boundary(1, (30,))
        with pytest.raises(ValueError):
            router.insert_boundary(0, (11,))
