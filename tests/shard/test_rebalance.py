"""Shard split/merge rebalancing: SID rebasing, autonomy, and snapshot
consistency across rebalances."""

import pytest

from repro import Database, DataType, Schema
from repro.shard import merge_adjacent, split_shard


def int_schema():
    return Schema.build(
        ("k", DataType.INT64),
        ("a", DataType.INT64),
        ("b", DataType.STRING),
        sort_key=("k",),
    )


def seed_rows(n=100):
    return [(i * 2, i, f"s{i}") for i in range(n)]


def make_pair(n=100, shards=2, **kwargs):
    schema = int_schema()
    rows = seed_rows(n)
    db = Database(compressed=False)
    db.create_sharded_table("t", schema, rows, shards=shards, **kwargs)
    oracle = Database(compressed=False)
    oracle.create_table("t", schema, rows)
    return db, oracle


def apply_both(db, oracle, ops):
    db.apply_batch("t", ops)
    oracle.apply_batch("t", ops)


SCATTER = [
    ("ins", (5, 1, "x")),
    ("del", (20,)),
    ("mod", (40,), "a", 99),
    ("ins", (99, 7, "y")),   # straddles the 2-shard boundary (100,)
    ("ins", (101, 8, "z")),
    ("del", (102,)),
    ("ins", (199, 9, "w")),
    ("del", (150,)),
]


class TestSplit:
    def test_split_preserves_image_and_rebases_entries(self):
        db, oracle = make_pair(shards=1)
        apply_both(db, oracle, SCATTER)
        st = db.sharded("t")
        before = [s.read_pdt.count() + s.write_pdt.count()
                  for s in st.shard_states()]
        assert split_shard(st, 0)
        assert st.num_shards == 2
        # deltas were redistributed, not folded: entry counts survive
        after = sum(s.read_pdt.count() + s.write_pdt.count()
                    for s in st.shard_states())
        assert after == sum(before)
        assert db.image_rows("t") == oracle.image_rows("t")
        assert db.query("t").rows() == oracle.query("t").rows()

    def test_split_boundary_is_stable_midpoint_key(self):
        db, _ = make_pair(shards=1)
        st = db.sharded("t")
        assert split_shard(st, 0)
        assert st.boundaries == [(100,)]  # sk of stable row 50

    def test_trailing_insert_at_split_point_stays_left(self):
        db, oracle = make_pair(shards=1)
        # key 99 sorts between stable rows 49 (k=98) and 50 (k=100): its
        # PDT SID is exactly the split midpoint.
        apply_both(db, oracle, [("ins", (99, 1, "edge"))])
        st = db.sharded("t")
        assert split_shard(st, 0)
        left = st.shard_states()[0]
        assert left.read_pdt.count() + left.write_pdt.count() == 1
        assert db.image_rows("t") == oracle.image_rows("t")

    def test_reinserted_midpoint_key_moves_right(self):
        """Delete-then-reinsert of the stable row *at* the split midpoint
        puts an INS with key == split_key at SID mid; it must follow the
        router to the right shard or the row becomes unreachable by key."""
        db, oracle = make_pair(n=8, shards=1)
        mid_key = 8  # stable row 4 of 8 (keys 0,2,...,14)
        for target in (db, oracle):
            target.delete("t", (mid_key,))
            target.insert("t", (mid_key, 999, "reborn"))
        st = db.sharded("t")
        assert split_shard(st, 0)
        assert st.boundaries == [(mid_key,)]
        assert db.image_rows("t") == oracle.image_rows("t")
        # reachable by key through the router
        assert db.query_range("t", (mid_key,), (mid_key,)).rows() \
            == oracle.query_range("t", (mid_key,), (mid_key,)).rows()
        db.modify("t", (mid_key,), "a", 1)
        oracle.modify("t", (mid_key,), "a", 1)
        db.delete("t", (mid_key,))
        oracle.delete("t", (mid_key,))
        assert db.image_rows("t") == oracle.image_rows("t")

    def test_split_requires_quiescence(self):
        db, _ = make_pair(shards=1)
        st = db.sharded("t")
        txn = db.begin()
        txn.insert("t__s0", (5, 1, "x"))
        assert not split_shard(st, 0)
        txn.commit()
        assert split_shard(st, 0)

    def test_tiny_shard_refuses_split(self):
        db = Database()
        st = db.create_sharded_table("t", int_schema(), seed_rows(1),
                                     shards=1)
        assert not split_shard(st, 0)


class TestMerge:
    def test_merge_preserves_image(self):
        db, oracle = make_pair(shards=4)
        apply_both(db, oracle, SCATTER)
        st = db.sharded("t")
        total_entries = sum(s.read_pdt.count() + s.write_pdt.count()
                            for s in st.shard_states())
        assert merge_adjacent(st, 1)
        assert st.num_shards == 3
        assert sum(s.read_pdt.count() + s.write_pdt.count()
                   for s in st.shard_states()) == total_entries
        assert db.image_rows("t") == oracle.image_rows("t")

    def test_merge_down_to_one_shard(self):
        db, oracle = make_pair(shards=4)
        apply_both(db, oracle, SCATTER)
        st = db.sharded("t")
        while st.num_shards > 1:
            assert merge_adjacent(st, 0)
        assert st.boundaries == []
        assert db.image_rows("t") == oracle.image_rows("t")

    def test_boundary_inserts_keep_order_across_merge(self):
        db, oracle = make_pair(shards=2)
        boundary = db.sharded("t").boundaries[0][0]  # 100
        ops = [("ins", (boundary - 1, 1, "l")),  # left trailing insert
               ("del", (boundary,)),
               ("ins", (boundary + 1, 2, "r"))]  # right leading insert
        apply_both(db, oracle, ops)
        st = db.sharded("t")
        assert merge_adjacent(st, 0)
        assert db.image_rows("t") == oracle.image_rows("t")


class TestAutonomousRebalancing:
    def test_skewed_inserts_trigger_split_between_queries(self):
        db, oracle = make_pair(shards=2)
        db.sharded("t").split_rows = 90
        st = db.sharded("t")
        assert st.num_shards == 2
        # skewed stream: every insert lands in shard 0's range [0, 100)
        ops = [("ins", (2 * k + 1, k, "hot")) for k in range(45)]
        apply_both(db, oracle, ops)
        assert db.query("t").rows() == oracle.query("t").rows()
        assert st.num_shards > 2, "hot shard should have split"
        # the split happened left of the old boundary
        assert st.boundaries[-1] == (100,)
        assert db.image_rows("t") == oracle.image_rows("t")

    def test_underfull_neighbours_merge(self):
        db, oracle = make_pair(n=40, shards=4)
        st = db.sharded("t")
        st.merge_rows = 25
        db.query("t")
        assert st.num_shards < 4
        assert db.image_rows("t") == oracle.image_rows("t")

    def test_oscillating_thresholds_rejected(self):
        db, _ = make_pair(shards=2)
        with pytest.raises(ValueError):
            db.create_sharded_table("u", int_schema(), [], shards=2,
                                    split_rows=100, merge_rows=300)
        st = db.sharded("t")
        st.split_rows, st.merge_rows = 100, 300  # mutated after creation
        with pytest.raises(ValueError):
            st.maybe_rebalance()

    def test_rebalance_deferred_while_transactions_run(self):
        db, _ = make_pair(shards=2)
        st = db.sharded("t")
        st.split_rows = 10  # far exceeded already
        txn = db.begin()
        txn.insert("t__s0", (1, 1, "x"))
        assert st.maybe_rebalance() == 0
        assert st.num_shards == 2
        txn.commit()
        assert st.maybe_rebalance() > 0

    def test_queries_consistent_across_every_rebalance_step(self):
        """No torn reads: every query issued between rebalance actions
        sees the full, consistent logical image."""
        db, oracle = make_pair(shards=1)
        st = db.sharded("t")
        apply_both(db, oracle, SCATTER)
        expected = oracle.query("t").rows()
        for action in ["split", "split", "merge", "split", "merge",
                       "merge"]:
            if action == "split":
                split_shard(st, 0)
            else:
                merge_adjacent(st, 0)
            assert db.query("t").rows() == expected
            assert db.row_count("t") == len(expected)


class TestRebalanceWalHygiene:
    def test_wal_replays_exactly_after_split(self):
        from repro.txn import recover_database

        db, oracle = make_pair(shards=1)
        apply_both(db, oracle, SCATTER)
        st = db.sharded("t")
        assert split_shard(st, 0)
        db.insert("t", (301, 1, "post"))
        oracle.insert("t", (301, 1, "post"))
        # crash now: rebuild from shard stable images + WAL
        db2 = Database(compressed=False)
        for shard in st.shard_names:
            db2.create_table(shard, int_schema(),
                             db.manager.state_of(shard).stable.rows())
        recover_database(db2, db.manager.wal)
        assert db2.image_rows("t") == oracle.image_rows("t")

    def test_retired_shard_leaves_no_wal_records(self):
        db, _ = make_pair(shards=1)
        db.apply_batch("t", SCATTER)
        st = db.sharded("t")
        old = list(st.shard_names)
        assert split_shard(st, 0)
        for record in db.manager.wal.records:
            for name in old:
                assert name not in record.tables

    def test_retired_shard_blocks_dropped_from_store(self):
        db, _ = make_pair(shards=1)
        st = db.sharded("t")
        old = st.shard_names[0]
        old_store = db.manager.state_of(old).stable.pool.store
        db.query("t")  # populate pool
        assert split_shard(st, 0)
        assert not old_store.has_column(old, "k")
        with pytest.raises(KeyError):
            db.manager.state_of(old)
