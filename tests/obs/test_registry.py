"""MetricsRegistry unit contract: instruments, snapshots, exposition."""

import json
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_S,
    MetricsRegistry,
    prometheus_text,
)
from repro.obs.registry import Histogram


class TestInstruments:
    def test_counter_idempotent_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_cross_type_name_conflict(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_callback(self):
        reg = MetricsRegistry()
        box = {"v": 1}
        g = reg.gauge("depth", fn=lambda: box["v"])
        assert g.value == 1
        box["v"] = 7
        assert g.value == 7

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_default_buckets_are_valid(self):
        Histogram("h", buckets=DEFAULT_LATENCY_BUCKETS_S)


class TestHistogramBuckets:
    """Prometheus ``le`` semantics: a bucket's bound is inclusive."""

    def test_boundary_value_lands_in_its_bucket(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(1.0)   # == first bound -> bucket 0
        h.observe(1.5)   # bucket 1
        h.observe(2.0)   # == second bound -> bucket 1
        h.observe(4.0)   # bucket 2
        h.observe(4.01)  # overflow
        assert h.as_dict()["counts"] == [1, 2, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(12.51)

    def test_quantiles(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for _ in range(98):
            h.observe(0.5)
        h.observe(3.0)
        h.observe(100.0)
        assert h.quantile(0.50) == 1.0
        assert h.quantile(0.99) == 4.0
        # Overflow reports the largest finite bound, never None/inf.
        assert h.quantile(1.0) == 4.0

    def test_empty_quantile_is_none(self):
        h = Histogram("h", buckets=(1.0,))
        assert h.quantile(0.5) is None
        assert h.as_dict()["p50"] is None


class TestThreadSafety:
    def test_concurrent_observes_lose_nothing(self):
        reg = MetricsRegistry()
        c = reg.counter("ops")
        h = reg.histogram("lat", buckets=(0.5,))
        n_threads, per_thread = 8, 5_000

        def work():
            for _ in range(per_thread):
                c.inc()
                h.observe(0.1)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        assert c.value == total
        assert h.count == total
        assert h.as_dict()["counts"] == [total, 0]


class TestSnapshot:
    def test_snapshot_is_jsonable_and_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("ops")
        h = reg.histogram("lat")
        c.inc(3)
        h.observe(0.01)
        snap1 = reg.snapshot()
        json.dumps(snap1)  # must not raise
        c.inc()
        h.observe(0.02)
        snap2 = reg.snapshot()
        assert snap2["counters"]["ops"] > snap1["counters"]["ops"]
        assert snap2["histograms"]["lat"]["count"] > \
            snap1["histograms"]["lat"]["count"]
        # The earlier snapshot is unaffected (snapshots are copies).
        assert snap1["counters"]["ops"] == 3

    def test_source_exception_does_not_kill_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("ok").inc()

        def broken():
            raise RuntimeError("boom")

        reg.register_source("bad", broken)
        snap = reg.snapshot()
        assert snap["counters"]["ok"] == 1
        assert "error" in snap["sources"]["bad"]

    def test_merge_snapshots(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 2), (b, 5)):
            reg.counter("ops").inc(n)
            h = reg.histogram("lat", buckets=(1.0, 2.0))
            for _ in range(n):
                h.observe(0.5)
            reg.register_source("io", lambda n=n: {"bytes": n * 10})
        merged = MetricsRegistry.merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["counters"]["ops"] == 7
        assert merged["histograms"]["lat"]["count"] == 7
        assert merged["histograms"]["lat"]["counts"] == [7, 0, 0]
        assert merged["sources"]["io"]["bytes"] == 70

    def test_merge_rejects_mismatched_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(1.0,))
        b.histogram("lat", buckets=(2.0,))
        with pytest.raises(ValueError):
            MetricsRegistry.merge_snapshots(a.snapshot(), b.snapshot())


class TestPrometheusText:
    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("ops").inc(4)
        h = reg.histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(5.0)
        reg.register_source("io", lambda: {"bytes_read": 123,
                                           "per": {"t.k": 1}})
        text = prometheus_text(reg.snapshot())
        assert "# TYPE repro_ops counter" in text
        assert "repro_ops 4" in text
        assert 'repro_lat_bucket{le="1.0"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 2' in text
        assert "repro_lat_count 2" in text
        assert "repro_io_bytes_read 123" in text
        # Dotted source keys are sanitized into metric-name charset.
        assert "repro_io_per_t_k 1" in text
