"""Tracer/TraceSink unit contract: parenting, propagation, the ring."""

import os
import threading

from repro.obs import Span, TraceSink, Tracer, worker_span_dict


def make_tracer(capacity=64):
    sink = TraceSink(capacity)
    return Tracer(sink), sink


class TestSpanLifecycle:
    def test_nested_start_parents_ambiently(self):
        tracer, sink = make_tracer()
        with tracer.start("outer") as outer:
            with tracer.start("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        spans = sink.spans()
        assert [s.name for s in spans] == ["inner", "outer"]
        assert all(s.duration_s is not None for s in spans)

    def test_error_status_on_exception(self):
        tracer, sink = make_tracer()
        try:
            with tracer.start("op"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert sink.spans()[0].status == "error"

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(None)
        assert not tracer.enabled
        with tracer.start("op") as span:
            span.attrs["k"] = 1  # absorbed, not recorded
        assert tracer.ctx() is None
        tracer.record_orphan({"trace_id": "t", "span_id": "s"}, "x")

    def test_begin_finish_without_ambient_context(self):
        tracer, sink = make_tracer()
        span = tracer.begin("root")
        assert tracer.current() is None  # begin never sets the ambient
        tracer.finish(span)
        assert sink.spans()[0].parent_id is None


class TestCrossThreadPropagation:
    def test_explicit_ctx_crosses_threads(self):
        tracer, sink = make_tracer()
        root = tracer.begin("root")
        ctx = root.ctx()
        done = threading.Event()

        def worker():
            # A fresh thread has no ambient span; the explicit ctx is
            # the only way to stay in the trace.
            assert tracer.current() is None
            with tracer.start("child", parent=ctx):
                pass
            done.set()

        threading.Thread(target=worker).start()
        assert done.wait(5)
        tracer.finish(root)
        child = next(s for s in sink.spans() if s.name == "child")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_worker_span_dict_round_trip(self):
        tracer, sink = make_tracer()
        root = tracer.begin("root")
        d = worker_span_dict(root.ctx(), "worker.scan", 123.0, 0.5,
                             {"blocks": 3})
        span = Span.from_dict(d)
        sink.record(span)
        tracer.finish(root)
        roots = sink.tree(root.trace_id)
        assert len(roots) == 1
        assert [n.span.name for n in roots[0].children] == ["worker.scan"]
        assert roots[0].children[0].span.attrs["blocks"] == 3
        assert roots[0].children[0].span.pid == os.getpid()


class TestSink:
    def test_ring_drops_oldest_and_counts(self):
        tracer, sink = make_tracer(capacity=2)
        for i in range(4):
            tracer.finish(tracer.begin(f"s{i}"))
        assert [s.name for s in sink.spans()] == ["s2", "s3"]
        assert sink.dropped == 2

    def test_orphan_span_in_tree(self):
        tracer, sink = make_tracer()
        root = tracer.begin("root")
        tracer.record_orphan(root.ctx(), "worker.scan", pid=999)
        tracer.finish(root)
        tree = sink.tree(root.trace_id)
        orphan = tree[0].children[0].span
        assert orphan.status == "orphan"
        assert orphan.duration_s is None
        assert "[ORPHAN]" in sink.render(root.trace_id)

    def test_missing_parent_promotes_to_root(self):
        tracer, sink = make_tracer()
        sink.record(Span(trace_id="t1", span_id="a", parent_id="gone",
                         name="stray"))
        assert [n.span.name for n in sink.tree("t1")] == ["stray"]

    def test_render_shows_hierarchy(self):
        tracer, sink = make_tracer()
        with tracer.start("root"):
            with tracer.start("child"):
                pass
        tid = sink.spans()[0].trace_id
        text = sink.render(tid)
        assert "root" in text and "└─ child" in text
