"""Cross-process trace stitching and worker IO merging.

The acceptance contract: a traced query on a process-executor database
produces ONE span tree that includes the worker-process scan spans
(different pid), and ``Database.metrics()`` reports worker-side IO
counters matching a thread-executor oracle — the executor is invisible
in the numbers, not just in the rows.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import Database, DataType, Schema

SCHEMA = Schema.build(("k", DataType.INT64), ("v", DataType.INT64),
                      sort_key=("k",))
N_ROWS = 40_000  # 4 shards x 10k rows, above the remote-dispatch floor


def seed_arrays(n=N_ROWS):
    return {
        "k": np.arange(n, dtype=np.int64),
        "v": np.arange(n, dtype=np.int64) * 3,
    }


def make_db(tmp_path, executor, **kwargs):
    db = Database(storage="mmap", storage_path=str(tmp_path / executor),
                  executor=executor, workers=2, **kwargs)
    db.create_sharded_table_from_arrays("t", SCHEMA, seed_arrays(),
                                        shards=4)
    return db


class TestStitchedTraces:
    def test_single_tree_includes_worker_spans(self, tmp_path):
        db = make_db(tmp_path, "process", trace=True)
        try:
            rel = db.query("t")
            assert rel.num_rows == N_ROWS
            assert db.exec_router.remote_jobs == 4
            sink = db.obs.sink
            root = next(s for s in sink.spans() if s.name == "query")
            spans = sink.spans(root.trace_id)
            worker_spans = [s for s in spans if s.name == "worker.scan"]
            assert len(worker_spans) == 4
            for span in worker_spans:
                # Minted inside the worker process, stitched parent-side.
                assert span.pid != os.getpid()
                assert span.trace_id == root.trace_id
                assert span.duration_s is not None
                assert span.attrs["rows"] == 10_000
            tree = sink.render(root.trace_id)
            assert tree.count("worker.scan") == 4
        finally:
            db.close()

    def test_service_tree_spans_three_levels(self, tmp_path):
        db = make_db(tmp_path, "process", trace=True)
        try:
            with db.serve() as svc:
                cursor = svc.submit_query("t")
                cursor.to_relation()
                spans = db.obs.sink.spans(cursor.profile.trace_id)
                by_id = {s.span_id: s for s in spans}
                workers = [s for s in spans if s.name == "worker.scan"]
                assert workers, "no worker spans stitched"
                for w in workers:
                    scan = by_id[w.parent_id]
                    assert scan.name == "shard.scan"
                    root = by_id[scan.parent_id]
                    assert root.name == "query"
                assert cursor.profile.remote_blocks == 40
                assert cursor.profile.local_blocks == 0
        finally:
            db.close()

    def test_worker_io_matches_thread_oracle(self, tmp_path):
        proc = make_db(tmp_path, "process")
        oracle = make_db(tmp_path, "thread")
        try:
            proc.query("t")
            oracle.query("t")
            proc_io = proc.metrics()["sources"]["io"]
            oracle_io = oracle.metrics()["sources"]["io"]
            assert proc.exec_router.worker_io_merges == 4
            # The worker processes' reads merged into the parent's
            # db.io: process runs no longer under-report.
            assert proc_io["bytes_read"] == oracle_io["bytes_read"]
            assert proc_io["blocks_read"] == oracle_io["blocks_read"]
            assert proc_io["bytes_by_column"] == oracle_io["bytes_by_column"]
        finally:
            proc.close()
            oracle.close()

    def test_repeat_queries_do_not_double_merge(self, tmp_path):
        """Each completed attempt merges exactly once. A shard job CAN
        migrate to the other worker on a later query and cold-read its
        blocks there (private per-process buffer pools), so the honest
        upper bound over repeats is ``workers x cold_bytes`` — but a
        double-merge would breach it."""
        proc = make_db(tmp_path, "process")
        try:
            proc.query("t")
            cold = proc.metrics()["sources"]["io"]["bytes_read"]
            assert cold > 0
            for _ in range(4):
                proc.query("t")
            total = proc.metrics()["sources"]["io"]["bytes_read"]
            assert proc.exec_router.worker_io_merges == 20  # 5 x 4 jobs
            assert total <= 2 * cold  # workers=2; merges track real reads
        finally:
            proc.close()


class TestCrashStitching:
    def _kill_one_worker(self, db, killed):
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            pids = db.exec_router.worker_pids()
            if pids:
                os.kill(pids[0], signal.SIGKILL)
                killed.append(pids[0])
                return
            time.sleep(0.002)

    def test_sigkilled_worker_leaves_orphan_span(self, tmp_path):
        """A SIGKILLed worker cannot ship its spans; the router records
        an orphan span in the tree — visible, not silently lost — and
        the redispatched attempt's spans still stitch in."""
        db = make_db(tmp_path, "process", trace=True)
        try:
            db.exec_router.block_delay_s = 0.01  # widen the kill window
            killed = []
            killer = threading.Thread(
                target=self._kill_one_worker, args=(db, killed))
            killer.start()
            rel = db.query("t")
            killer.join()
            db.exec_router.block_delay_s = 0.0
            assert killed, "no worker appeared to kill"
            assert rel.num_rows == N_ROWS
            assert db.exec_router.redispatches >= 1
            sink = db.obs.sink
            root = next(s for s in sink.spans() if s.name == "query")
            spans = sink.spans(root.trace_id)
            orphans = [s for s in spans if s.status == "orphan"]
            assert orphans, "dead worker left no orphan span"
            for orphan in orphans:
                assert orphan.name == "worker.scan"
                assert orphan.duration_s is None
            # Completed attempts still shipped their spans.
            completed = [s for s in spans
                         if s.name == "worker.scan" and s.status == "ok"]
            assert completed
        finally:
            db.close()

    def test_crashed_attempt_io_not_double_counted(self, tmp_path):
        """IO ships only with a completed attempt's final frame: a killed
        worker contributes nothing, the redispatched scan contributes
        once — totals still match the oracle exactly."""
        proc = make_db(tmp_path, "process")
        oracle = make_db(tmp_path, "thread")
        try:
            proc.exec_router.block_delay_s = 0.01
            killed = []
            killer = threading.Thread(
                target=self._kill_one_worker, args=(proc, killed))
            killer.start()
            proc.query("t")
            killer.join()
            proc.exec_router.block_delay_s = 0.0
            assert killed and proc.exec_router.redispatches >= 1
            oracle.query("t")
            proc_io = proc.metrics()["sources"]["io"]
            oracle_io = oracle.metrics()["sources"]["io"]
            assert proc_io["bytes_read"] == oracle_io["bytes_read"]
        finally:
            proc.close()
            oracle.close()


class TestMetricsParityWithOracle:
    def test_latency_histograms_present_both_modes(self, tmp_path):
        for mode in ("thread", "process"):
            db = make_db(tmp_path, mode, trace=True)
            try:
                for _ in range(3):
                    db.query("t")
                hist = db.metrics()["histograms"]["query_seconds"]
                assert hist["count"] == 3, mode
                assert hist["p50"] is not None and hist["p99"] is not None
            finally:
                db.close()
