"""Database-level observability: metrics(), spans, profiles, slow log."""

import json
import logging

import pytest

from repro import Database, DataType, Schema

SCHEMA = Schema.build(("k", DataType.INT64), ("v", DataType.INT64),
                      sort_key=("k",))


def make_db(**kwargs):
    db = Database(**kwargs)
    db.create_sharded_table("t", SCHEMA,
                            [(i, i * 2) for i in range(8_000)], shards=4)
    return db


class TestMetricsSnapshot:
    def test_one_coherent_snapshot(self):
        with make_db() as db:
            db.insert("t", (8_001, 1))
            db.query("t")
            snap = db.metrics()
            json.dumps(snap)  # JSON-able end to end
            for source in ("io", "txn", "scheduler", "group_commit",
                           "exec", "service"):
                assert source in snap["sources"], source
            assert snap["histograms"]["query_seconds"]["count"] == 1
            assert snap["histograms"]["commit_seconds"]["count"] >= 1
            assert snap["sources"]["io"]["bytes_read"] > 0
            assert snap["sources"]["txn"]["commits"] >= 1

    def test_query_latency_percentiles(self):
        with make_db() as db:
            for _ in range(20):
                db.query("t", columns=["k"])
            hist = db.metrics()["histograms"]["query_seconds"]
            assert hist["count"] == 20
            assert hist["p50"] is not None
            assert hist["p99"] is not None
            assert hist["p50"] <= hist["p99"]

    def test_delegating_entry_points_observe_once(self):
        with make_db() as db:
            # query(sk=...) delegates to query_point (which can delegate
            # to query_range): exactly one observation per user call.
            db.query("t", sk=(42,))
            db.query_range("t", low=(10,), high=(20,))
            db.query_point("t", (7,))
            hist = db.metrics()["histograms"]["query_seconds"]
            assert hist["count"] == 3

    def test_commit_stage_histograms(self):
        with make_db() as db:
            for i in range(5):
                db.insert("t", (9_000 + i, i))
            snap = db.metrics()
            for stage in ("serialize", "propagate", "wal_append",
                          "durability_wait"):
                hist = snap["histograms"][f"commit_{stage}_seconds"]
                assert hist["count"] == 5, stage
            # Stages nest inside the end-to-end commit time.
            total = snap["histograms"]["commit_seconds"]["sum"]
            stages = sum(
                snap["histograms"][f"commit_{s}_seconds"]["sum"]
                for s in ("serialize", "propagate", "wal_append",
                          "durability_wait"))
            assert stages <= total


class TestStatsDictConsistency:
    """Satellite: every stats surface answers a JSON-able as_dict()
    whose keys match its repr, with no leaked private fields."""

    def test_all_six_surfaces(self):
        with make_db() as db:
            with db.serve() as svc:
                svc.submit_query("t").to_relation()
                surfaces = {
                    "txn": db.manager.stats,
                    "scheduler": db.scheduler.stats,
                    "service": svc.stats,
                }
                group = db.manager.wal.group
                if group is not None:
                    surfaces["group_commit"] = group.stats
                for name, stats in surfaces.items():
                    d = stats.as_dict()
                    json.dumps(d)
                    assert not any(k.startswith("_") for k in d), name
                    text = repr(stats)
                    for key in d:
                        assert key in text, (name, key)
                io_dict = db.io.as_dict()
                json.dumps(io_dict)
                assert set(io_dict) == {"bytes_read", "blocks_read",
                                        "bytes_by_column"}

    def test_request_stats_derived_fields(self):
        with make_db() as db, db.serve() as svc:
            cursor = svc.submit_query("t")
            cursor.to_relation()
            d = cursor.stats.as_dict()
            assert d["total_time"] is not None
            assert d["time_to_first_block"] is not None
            assert d["rows"] == 8_000


class TestTracing:
    def test_inline_query_trace_tree(self):
        with make_db(trace=True) as db:
            db.query("t")
            sink = db.obs.sink
            tids = sink.trace_ids()
            roots = [s for s in sink.spans() if s.name == "query"]
            assert len(roots) == 1
            assert roots[0].attrs["rows"] == 8_000
            assert roots[0].trace_id in tids

    def test_write_path_trace(self, tmp_path):
        with Database(storage="mmap", storage_path=str(tmp_path / "d"),
                      trace=True) as db:
            db.create_table("t", SCHEMA, [(i, i) for i in range(100)])
            db.insert("t", (101, 1))
            names = {s.name for s in db.obs.sink.spans()}
            assert "txn.commit" in names
            assert "wal.group_flush" in names
            commit = next(s for s in db.obs.sink.spans()
                          if s.name == "txn.commit")
            assert "serialize_ms" in commit.attrs
            assert "wal_append_ms" in commit.attrs

    def test_service_query_spans(self):
        with make_db(trace=True) as db, db.serve() as svc:
            cursor = svc.submit_query("t")
            cursor.to_relation()
            tid = cursor.profile.trace_id
            assert tid is not None
            spans = db.obs.sink.spans(tid)
            names = [s.name for s in spans]
            assert "query" in names
            assert names.count("shard.scan") == 4
            root = next(s for s in spans if s.name == "query")
            for scan in (s for s in spans if s.name == "shard.scan"):
                assert scan.parent_id == root.span_id

    def test_trace_capacity_int(self):
        with make_db(trace=8) as db:
            assert db.obs.sink.capacity == 8

    def test_trace_bad_value(self):
        with pytest.raises(TypeError):
            Database(trace="yes")

    def test_tracing_off_records_nothing(self):
        with make_db() as db:
            db.query("t")
            assert db.obs.sink is None


class TestProfilesAndSlowLog:
    def test_cursor_profile_per_shard(self):
        with make_db() as db, db.serve() as svc:
            cursor = svc.submit_query("t")
            cursor.to_relation()
            prof = cursor.profile
            assert prof.table == "t"
            assert prof.shards == 4
            assert prof.rows == 8_000
            assert sum(sp.rows for sp in prof.per_shard) == 8_000
            assert all(sp.blocks > 0 for sp in prof.per_shard)
            assert prof.total_s is not None
            assert prof.plan_s > 0

    def test_slow_query_log_threshold(self, caplog):
        with make_db(trace=True, slow_query_ms=0.0) as db:
            with caplog.at_level(logging.WARNING, logger="repro.obs.slow"):
                db.query("t")
            entries = db.obs.slow_log.entries()
            assert len(entries) == 1
            assert entries[0]["profile"]["table"] == "t"
            assert entries[0]["span_tree"]  # rendered tree rides along
            assert any("slow query" in r.message for r in caplog.records)

    def test_fast_queries_not_logged(self):
        with make_db(slow_query_ms=10_000.0) as db:
            db.query("t")
            assert db.obs.slow_log.entries() == []

    def test_slow_log_disabled_by_default(self):
        with make_db() as db:
            assert not db.obs.slow_log.enabled
