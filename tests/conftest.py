"""Suite-wide configuration: storage-backend parametrization support.

The tier-1 suite runs against the default in-memory backend, and CI runs
it a *second* time with ``REPRO_STORAGE_BACKEND=mmap``, which makes every
``Database()`` construct ephemeral mmap-file storage — every existing
test then exercises real file-backed blocks with zero edits. This
conftest keeps those ephemeral roots under pytest's session tmp dir (so
they are reclaimed with the test run even if an interpreter exit beats a
GC finalizer) and surfaces the active backend in the report header.
"""

import os

import pytest


def pytest_report_header(config):
    backend = os.environ.get("REPRO_STORAGE_BACKEND", "memory")
    executor = os.environ.get("REPRO_EXECUTOR", "thread")
    return f"repro storage backend: {backend}; executor: {executor}"


@pytest.fixture(scope="session", autouse=True)
def _storage_root(tmp_path_factory):
    if os.environ.get("REPRO_STORAGE_BACKEND") == "mmap" and \
            "REPRO_STORAGE_DIR" not in os.environ:
        root = tmp_path_factory.mktemp("mmap-storage")
        os.environ["REPRO_STORAGE_DIR"] = str(root)
        yield
        os.environ.pop("REPRO_STORAGE_DIR", None)
    else:
        yield


@pytest.fixture(params=["memory", "mmap"])
def storage_backend(request, tmp_path):
    """Explicit both-backends parametrization for tests that want to
    assert backend-specific behavior (the conformance suite builds its
    own backends; this is for Database-level cases)."""
    if request.param == "memory":
        return "memory"
    return f"mmap:{tmp_path / 'db-storage'}"
