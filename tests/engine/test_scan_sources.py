"""Scan operators, ScanTimer, and the TPC-H scan sources."""

import numpy as np
import pytest

from repro.core import PDT
from repro.engine import ScanTimer, scan_clean, scan_pdt, scan_vdt
from repro.storage import DataType, Schema, StableTable
from repro.vdt import VDT


def make_table(n=50):
    schema = Schema.build(
        ("k", DataType.INT64), ("v", DataType.INT64),
        sort_key=("k",),
    )
    rows = [(i * 2, i) for i in range(n)]
    return StableTable.bulk_load("t", schema, rows), schema


class TestScanOperators:
    def test_scan_clean(self):
        table, _ = make_table()
        rel = scan_clean(table, columns=["v"])
        assert rel.num_rows == 50
        assert rel["v"].tolist() == list(range(50))

    def test_scan_pdt_applies_layers(self):
        table, schema = make_table()
        pdt = PDT(schema)
        pdt.add_delete(0, (0,))
        rel = scan_pdt(table, [pdt], columns=["k"])
        assert rel.num_rows == 49
        assert rel["k"][0] == 2

    def test_scan_vdt_applies_deltas(self):
        table, schema = make_table()
        vdt = VDT(schema)
        vdt.add_insert((1, 99))
        rel = scan_vdt(table, vdt, columns=["k", "v"])
        assert rel.num_rows == 51
        assert rel["k"][1] == 1

    def test_default_columns_are_all(self):
        table, _ = make_table()
        rel = scan_clean(table)
        assert rel.column_names == ["k", "v"]

    def test_empty_table_scan(self):
        schema = Schema.build(("k", DataType.INT64), sort_key=("k",))
        table = StableTable.empty("e", schema)
        rel = scan_clean(table)
        assert rel.num_rows == 0


class TestScanTimer:
    def test_accumulates_per_table(self):
        table, _ = make_table()
        timer = ScanTimer()
        scan_clean(table, columns=["v"], timer=timer)
        scan_clean(table, columns=["v"], timer=timer)
        assert timer.scans == 2
        assert timer.seconds > 0
        assert set(timer.by_table) == {"t"}
        assert timer.by_table["t"] == pytest.approx(timer.seconds)

    def test_reset(self):
        table, _ = make_table()
        timer = ScanTimer()
        scan_clean(table, timer=timer)
        timer.reset()
        assert timer.scans == 0
        assert timer.seconds == 0.0
        assert timer.by_table == {}

    def test_all_scan_modes_record(self):
        table, schema = make_table()
        timer = ScanTimer()
        scan_pdt(table, [PDT(schema)], timer=timer)
        scan_vdt(table, VDT(schema), timer=timer)
        assert timer.scans == 2


class TestBenchHarness:
    def test_report_render_and_save(self, tmp_path, monkeypatch):
        from repro.bench import Report

        report = Report("demo", ["a", "b"])
        report.add(1, 2.5)
        report.add("x", 0.125)
        text = report.render()
        assert "demo" in text and "2.5000" in text
        with pytest.raises(ValueError):
            report.add(1)

    def test_scaled_and_consume(self, monkeypatch):
        from repro.bench import consume, scaled

        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert scaled(100) == 50
        assert scaled(1, minimum=10) == 10
        batches = [(0, {"v": np.arange(5)}), (5, {"v": np.arange(3)})]
        assert consume(iter(batches)) == 8


class TestTpchRunnerCli:
    def test_runner_main_small(self, capsys):
        from repro.tpch.runner import main

        code = main(["--sf", "0.002", "--queries", "6",
                     "--temperature", "hot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Q    6" in out
        assert out.count("Q    6") == 3  # three modes

    def test_runner_rejects_bad_query(self):
        from repro.tpch.runner import main

        with pytest.raises(SystemExit):
            main(["--queries", "99"])

    def test_select_queries_all(self):
        from repro.tpch.runner import select_queries

        assert select_queries("all") == list(range(1, 23))
        assert select_queries("3,1") == [3, 1]
