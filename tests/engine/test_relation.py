"""Unit tests for the vectorized relation engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineError, Relation


def rel_abc():
    return Relation.from_rows(
        ["a", "b", "c"],
        [(1, "x", 1.5), (2, "y", 2.5), (3, "x", 3.5), (2, "z", 4.5)],
    )


class TestBasics:
    def test_from_rows_and_back(self):
        rel = rel_abc()
        assert rel.num_rows == 4
        assert rel.rows()[0] == (1, "x", 1.5)

    def test_unknown_column(self):
        with pytest.raises(EngineError):
            rel_abc()["nope"]

    def test_ragged_rejected(self):
        with pytest.raises(EngineError):
            Relation({"a": np.arange(3), "b": np.arange(4)})

    def test_filter(self):
        rel = rel_abc().filter(rel_abc()["a"] >= 2)
        assert [r[0] for r in rel.rows()] == [2, 3, 2]

    def test_select_rename(self):
        rel = rel_abc().select("a", "c").rename(c="value")
        assert rel.column_names == ["a", "value"]

    def test_with_columns_scalar_broadcast(self):
        rel = rel_abc().with_columns(d=np.asarray(7))
        assert rel["d"].tolist() == [7, 7, 7, 7]

    def test_with_columns_expression(self):
        rel = rel_abc()
        rel = rel.with_columns(double=rel["a"] * 2)
        assert rel["double"].tolist() == [2, 4, 6, 4]

    def test_concat(self):
        rel = rel_abc().concat(rel_abc())
        assert rel.num_rows == 8

    def test_distinct(self):
        rel = rel_abc().distinct("b")
        assert sorted(rel["b"]) == ["x", "y", "z"]

    def test_take_and_limit(self):
        rel = rel_abc().take([2, 0])
        assert [r[0] for r in rel.rows()] == [3, 1]
        assert rel_abc().limit(2).num_rows == 2

    def test_empty_relation(self):
        rel = Relation.from_rows(["a"], [])
        assert rel.num_rows == 0
        assert rel.filter(np.zeros(0, dtype=bool)).num_rows == 0


class TestJoin:
    def left(self):
        return Relation.from_rows(
            ["k", "v"], [(1, 10), (2, 20), (3, 30), (2, 21)]
        )

    def right(self):
        return Relation.from_rows(
            ["k", "w"], [(2, "a"), (3, "b"), (3, "c"), (5, "d")]
        )

    def test_inner_join(self):
        out = self.left().join(self.right(), left_on="k")
        got = sorted(zip(out["v"], out["w"]))
        assert got == [(20, "a"), (21, "a"), (30, "b"), (30, "c")]

    def test_inner_join_no_matches(self):
        out = self.left().join(
            Relation.from_rows(["k", "w"], [(99, "z")]), left_on="k"
        )
        assert out.num_rows == 0

    def test_semi_join(self):
        out = self.left().join(self.right(), left_on="k", how="semi")
        assert sorted(out["v"]) == [20, 21, 30]

    def test_anti_join(self):
        out = self.left().join(self.right(), left_on="k", how="anti")
        assert sorted(out["v"]) == [10]

    def test_left_join_marks_unmatched(self):
        out = self.left().join(self.right(), left_on="k", how="left")
        unmatched = out.filter(~out["_matched"])
        assert unmatched["v"].tolist() == [10]
        assert unmatched["w"].tolist() == [""]

    def test_join_different_key_names(self):
        right = self.right().rename(k="rk")
        out = self.left().join(right, left_on="k", right_on="rk")
        assert out.num_rows == 4

    def test_multi_key_join(self):
        left = Relation.from_rows(["a", "b", "v"], [(1, "x", 1), (1, "y", 2)])
        right = Relation.from_rows(["a", "b", "w"], [(1, "x", 9), (2, "y", 8)])
        out = left.join(right, left_on=["a", "b"])
        assert out.num_rows == 1
        assert out["v"][0] == 1 and out["w"][0] == 9

    def test_name_collision_suffixed(self):
        right = Relation.from_rows(["k", "v"], [(2, 99)])
        out = self.left().join(right, left_on="k")
        assert "v_r" in out
        assert out["v_r"].tolist() == [99, 99]

    def test_join_empty_right(self):
        out = self.left().join(
            Relation.from_rows(["k", "w"], []), left_on="k"
        )
        assert out.num_rows == 0
        out = self.left().join(
            Relation.from_rows(["k", "w"], []), left_on="k", how="left"
        )
        assert out.num_rows == 4
        assert not out["_matched"].any()


class TestGroupBy:
    def test_sum_count_avg(self):
        rel = rel_abc()
        out = rel.group_by("b").agg(
            total=("a", "sum"), n=("*", "count"), mean=("c", "avg")
        ).order_by("b")
        assert out["b"].tolist() == ["x", "y", "z"]
        assert out["total"].tolist() == [4, 2, 2]
        assert out["n"].tolist() == [2, 1, 1]
        assert out["mean"].tolist() == [2.5, 2.5, 4.5]

    def test_min_max_numeric(self):
        rel = rel_abc()
        out = rel.group_by("b").agg(
            lo=("c", "min"), hi=("c", "max")
        ).order_by("b")
        assert out["lo"].tolist() == [1.5, 2.5, 4.5]
        assert out["hi"].tolist() == [3.5, 2.5, 4.5]

    def test_min_max_strings(self):
        rel = rel_abc()
        out = rel.group_by("a").agg(first=("b", "min")).order_by("a")
        assert out["first"].tolist() == ["x", "y", "x"]

    def test_global_aggregate(self):
        out = rel_abc().group_by().agg(total=("a", "sum"), n=("*", "count"))
        assert out.num_rows == 1
        assert out["total"][0] == 8
        assert out["n"][0] == 4

    def test_global_aggregate_empty_input(self):
        rel = Relation.from_rows(["a"], []).with_columns()
        out = Relation({"a": np.empty(0, dtype=np.int64)}).group_by().agg(
            n=("*", "count"), s=("a", "sum")
        )
        assert out["n"][0] == 0

    def test_count_distinct(self):
        rel = Relation.from_rows(
            ["g", "v"], [(1, "a"), (1, "a"), (1, "b"), (2, "c")]
        )
        out = rel.group_by("g").agg(nv=("v", "count_distinct")).order_by("g")
        assert out["nv"].tolist() == [2, 1]

    def test_multi_key_grouping(self):
        rel = Relation.from_rows(
            ["a", "b", "v"],
            [(1, "x", 1), (1, "x", 2), (1, "y", 4), (2, "x", 8)],
        )
        out = rel.group_by("a", "b").agg(s=("v", "sum")).order_by("a", "b")
        assert out["s"].tolist() == [3, 4, 8]

    def test_unknown_agg_rejected(self):
        with pytest.raises(EngineError):
            rel_abc().group_by("b").agg(x=("a", "median"))

    def test_int_sum_stays_int(self):
        out = rel_abc().group_by().agg(s=("a", "sum"))
        assert out["s"].dtype == np.int64


class TestOrderBy:
    def test_asc_desc(self):
        rel = rel_abc().order_by(("a", "desc"), ("b", "asc"))
        assert [r[0] for r in rel.rows()] == [3, 2, 2, 1]
        two = [r for r in rel.rows() if r[0] == 2]
        assert [r[1] for r in two] == ["y", "z"]

    def test_string_desc(self):
        rel = rel_abc().order_by(("b", "desc"))
        assert rel["b"].tolist()[0] == "z"

    def test_bad_direction(self):
        with pytest.raises(EngineError):
            rel_abc().order_by(("a", "sideways"))


@settings(max_examples=50, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 5), st.integers(-100, 100)), max_size=60
    )
)
def test_groupby_sum_matches_python(rows):
    rel = Relation.from_rows(["g", "v"], rows)
    if not rows:
        return
    out = rel.group_by("g").agg(s=("v", "sum"))
    expected = {}
    for g, v in rows:
        expected[g] = expected.get(g, 0) + v
    got = dict(zip(out["g"].tolist(), out["s"].tolist()))
    assert got == expected


@settings(max_examples=50, deadline=None)
@given(
    left=st.lists(st.tuples(st.integers(0, 8), st.integers(0, 99)),
                  max_size=40),
    right=st.lists(st.tuples(st.integers(0, 8), st.integers(0, 99)),
                   max_size=40),
)
def test_inner_join_matches_nested_loops(left, right):
    lrel = Relation.from_rows(["k", "v"], left)
    rrel = Relation.from_rows(["k", "w"], right)
    out = lrel.join(rrel, left_on="k")
    got = sorted(zip(out["v"].tolist(), out["w"].tolist()))
    expected = sorted(
        (lv, rv) for lk, lv in left for rk, rv in right if lk == rk
    )
    assert got == expected
