"""Tests for date/string helper functions."""

import datetime

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import functions as fn


class TestDates:
    def test_days_epoch(self):
        assert fn.days(1970, 1, 1) == 0
        assert fn.days(1970, 1, 2) == 1

    def test_roundtrip(self):
        d = fn.days(1995, 3, 15)
        assert fn.date_of(d) == datetime.date(1995, 3, 15)

    def test_add_years(self):
        d = fn.days(1994, 1, 1)
        assert fn.date_of(fn.add_years(d, 1)) == datetime.date(1995, 1, 1)

    def test_add_months_wraps_year(self):
        d = fn.days(1995, 11, 15)
        assert fn.date_of(fn.add_months(d, 3)) == datetime.date(1996, 2, 15)

    def test_add_months_clamps_day(self):
        d = fn.days(1995, 1, 31)
        assert fn.date_of(fn.add_months(d, 1)) == datetime.date(1995, 2, 28)
        d = fn.days(1996, 1, 31)  # leap year
        assert fn.date_of(fn.add_months(d, 1)) == datetime.date(1996, 2, 29)

    def test_add_days(self):
        assert fn.add_days(fn.days(1998, 12, 1), -90) == fn.days(1998, 9, 2)

    def test_year_of_vectorized(self):
        arr = np.array(
            [fn.days(1992, 1, 1), fn.days(1995, 6, 30), fn.days(1998, 12, 31)],
            dtype=np.int32,
        )
        assert fn.year_of(arr).tolist() == [1992, 1995, 1998]

    def test_month_of_vectorized(self):
        arr = np.array(
            [fn.days(1992, 1, 1), fn.days(1995, 6, 30)], dtype=np.int32
        )
        assert fn.month_of(arr).tolist() == [1, 6]


@settings(max_examples=60, deadline=None)
@given(
    st.integers(1970, 2100), st.integers(1, 12), st.integers(1, 28),
    st.integers(-50, 50),
)
def test_add_months_matches_datetime(year, month, day, n):
    d = fn.days(year, month, day)
    got = fn.date_of(fn.add_months(d, n))
    total = (year * 12 + month - 1) + n
    exp_year, exp_month = divmod(total, 12)
    assert (got.year, got.month) == (exp_year, exp_month + 1)
    assert got.day == day  # day <= 28 never clamps


class TestStrings:
    def strings(self, *values):
        arr = np.empty(len(values), dtype=object)
        arr[:] = values
        return arr

    def test_starts_ends_contains(self):
        arr = self.strings("PROMO brushed", "STANDARD tin", "ECONOMY brass")
        assert fn.starts_with(arr, "PROMO").tolist() == [True, False, False]
        assert fn.ends_with(arr, "tin").tolist() == [False, True, False]
        assert fn.contains(arr, "bra").tolist() == [False, False, True]

    def test_like(self):
        arr = self.strings("green metal case", "red case", "green box")
        assert fn.like(arr, "%green%case%").tolist() == [True, False, False]
        assert fn.like(arr, "red _ase").tolist() == [False, True, False]

    def test_like_escapes_regex_chars(self):
        arr = self.strings("a.b", "axb")
        assert fn.like(arr, "a.b").tolist() == [True, False]

    def test_isin_object_and_numeric(self):
        arr = self.strings("a", "b", "c")
        assert fn.isin(arr, {"a", "c"}).tolist() == [True, False, True]
        nums = np.array([1, 2, 3])
        assert fn.isin(nums, [2]).tolist() == [False, True, False]

    def test_between(self):
        nums = np.array([1, 5, 10])
        assert fn.between(nums, 5, 10).tolist() == [False, True, True]

    def test_substring(self):
        arr = self.strings("13-345-823", "31-100-555")
        assert fn.substring(arr, 1, 2).tolist() == ["13", "31"]
