"""TPC-H refresh streams through the vectorized bulk-update path.

The paper's update load: RF1/RF2 pairs inserting and deleting ~0.1% of
orders and lineitem, scattered across the SK-ordered tables. The bulk
path (one ``apply_batch`` per table per refresh half) must land the exact
same image as the scalar per-row oracle and as the set-wise ground truth
``RefreshApplier.post_update_rows`` — at more than one scale factor, so
batches cross sparse-granule and block boundaries differently.
"""

import pytest

from repro.tpch import RefreshApplier, generate, load_database

SCALES = [0.001, 0.003]


@pytest.fixture(scope="module", params=SCALES, ids=lambda s: f"sf{s}")
def env(request):
    data = generate(scale=request.param, seed=777)
    return data, RefreshApplier(data)


class TestBulkRefreshStreams:
    def test_bulk_path_matches_ground_truth(self, env):
        """All RF1/RF2 pairs through ``apply_batch``: merged image equals
        the set-wise reference for every updated table."""
        data, applier = env
        db = load_database(data, compressed=False)
        applier.apply_all_pdt(db, bulk=True)
        for table in ("orders", "lineitem"):
            assert db.image_rows(table) == applier.post_update_rows(table)

    def test_bulk_path_matches_scalar_oracle(self, env):
        """Bulk and scalar application must agree entry-for-entry on the
        final delta state, not just on the merged image."""
        data, applier = env
        bulk_db = load_database(data, compressed=False)
        scalar_db = load_database(data, compressed=False)
        applier.apply_all_pdt(bulk_db, bulk=True)
        applier.apply_all_pdt(scalar_db, bulk=False)
        for table in ("orders", "lineitem"):
            assert bulk_db.image_rows(table) == scalar_db.image_rows(table)
            bulk_state = bulk_db.manager.state_of(table)
            scalar_state = scalar_db.manager.state_of(table)
            assert _entries(bulk_state.write_pdt) == \
                _entries(scalar_state.write_pdt)

    def test_one_wal_record_per_refresh_half(self, env):
        """Each RF1 (and each RF2) is one commit batch -> one WAL record
        carrying both tables' entry lists."""
        data, applier = env
        db = load_database(data, compressed=False)
        applier.apply_all_pdt(db, bulk=True)
        assert len(db.manager.wal) == 2 * len(data.refreshes)
        rf1 = db.manager.wal.records[0]
        assert set(rf1.tables) == {"orders", "lineitem"}

    def test_refresh_ops_round_trip(self, env):
        """The op-batch export covers exactly the pair's inserts and the
        RF2 order/lineitem delete cascade."""
        data, applier = env
        pair = data.refreshes[0]
        rf1, rf2 = applier.refresh_ops(pair)
        assert len(rf1["orders"]) == len(pair.new_orders)
        assert len(rf1["lineitem"]) == len(pair.new_lineitems)
        assert len(rf2["orders"]) == len(pair.delete_orderkeys)
        assert all(op[0] == "ins" for ops in rf1.values() for op in ops)
        assert all(op[0] == "del" for ops in rf2.values() for op in ops)


def _entries(pdt):
    out = []
    for entry in pdt.iter_entries():
        value = pdt.values.value_of(entry.kind, entry.ref)
        if isinstance(value, (list, tuple)):
            value = tuple(value)
        out.append((entry.sid, entry.rid, entry.kind, value))
    return out
