"""TPC-H with a range-sharded lineitem: loading, refresh streams, and
queries must behave exactly as with the unsharded table.

Lineitem is the paper's refresh-heavy table; sharding it by orderkey
range routes each RF1/RF2 batch to the shards its keys address, each
shard absorbing its sub-batch through the same vectorized bulk path.
"""

import pytest

from repro.tpch import RefreshApplier, generate, load_database

SCALE = 0.002


@pytest.fixture(scope="module")
def env():
    data = generate(scale=SCALE, seed=777)
    return data, RefreshApplier(data)


class TestShardedLineitem:
    def test_load_partitions_by_orderkey(self, env):
        data, _ = env
        db = load_database(data, compressed=False, lineitem_shards=4)
        st = db.sharded("lineitem")
        assert st.num_shards == 4
        total = sum(s.stable.num_rows for s in st.shard_states())
        assert total == len(data.tables["lineitem"]["l_orderkey"])
        # shards are contiguous orderkey ranges
        prev_hi = None
        for state in st.shard_states():
            keys = state.stable.column("l_orderkey").values
            if len(keys) == 0:
                continue
            if prev_hi is not None:
                assert keys.min() >= prev_hi
            prev_hi = keys.max()

    def test_refresh_streams_match_ground_truth(self, env):
        data, applier = env
        db = load_database(data, compressed=False, lineitem_shards=4)
        applier.apply_all_pdt(db, bulk=True)
        assert db.image_rows("lineitem") \
            == applier.post_update_rows("lineitem")
        assert db.image_rows("orders") == applier.post_update_rows("orders")

    def test_sharded_equals_unsharded_refresh(self, env):
        data, applier = env
        sharded_db = load_database(data, compressed=False,
                                   lineitem_shards=3)
        plain_db = load_database(data, compressed=False)
        applier.apply_all_pdt(sharded_db, bulk=True)
        applier.apply_all_pdt(plain_db, bulk=True)
        assert sharded_db.image_rows("lineitem") \
            == plain_db.image_rows("lineitem")
        assert sharded_db.query("lineitem").rows() \
            == plain_db.query("lineitem").rows()

    def test_scalar_refresh_path_routes(self, env):
        data, applier = env
        db = load_database(data, compressed=False, lineitem_shards=3)
        applier.apply_all_pdt(db, bulk=False)
        assert db.image_rows("lineitem") \
            == applier.post_update_rows("lineitem")

    def test_queries_fan_out(self, env):
        data, _ = env
        sharded_db = load_database(data, compressed=False,
                                   lineitem_shards=4)
        plain_db = load_database(data, compressed=False)
        cols = ["l_orderkey", "l_quantity", "l_shipdate"]
        a = sharded_db.query("lineitem", columns=cols)
        b = plain_db.query("lineitem", columns=cols)
        for c in cols:
            assert a[c].tolist() == b[c].tolist()
