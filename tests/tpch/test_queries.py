"""TPC-H query correctness: cross-mode equality and brute-force oracles.

The strongest check in the repository: after applying the refresh streams,
the no-updates scan of a *rebuilt* database, the positional (PDT) merge
scan, and the value-based (VDT) merge scan must produce identical results
for every one of the 22 queries.
"""

import numpy as np
import pytest

from repro.engine import functions as fn
from repro.tpch import (
    CleanSource,
    NON_UPDATED_QUERIES,
    PdtSource,
    RefreshApplier,
    VdtSource,
    generate,
    load_database,
    run_query,
)
from repro.tpch import schema as tpch_schema

SCALE = 0.002


@pytest.fixture(scope="module")
def env():
    """One generated dataset + the three run modes, updates applied."""
    data = generate(scale=SCALE, seed=1234)
    db = load_database(data, compressed=False)
    applier = RefreshApplier(data)

    applier.apply_all_pdt(db)
    vdts = applier.make_vdts()
    applier.apply_all_vdt(vdts)

    # Rebuild a reference database containing the post-update image.
    from repro.db import Database

    ref_db = Database(compressed=False)
    for name, schema in tpch_schema.SCHEMAS.items():
        if name in tpch_schema.UPDATED_TABLES:
            rows = applier.post_update_rows(name)
        else:
            rows = data.rows(name)
        ref_db.create_table(name, schema, rows)

    return {
        "data": data,
        "pdt": PdtSource(db),
        "vdt": VdtSource(db, vdts),
        "ref": CleanSource(ref_db),
        "clean": CleanSource(load_database(data, compressed=False)),
    }


def normalized(rel):
    """Rows with floats rounded for comparison."""
    out = []
    for row in rel.rows():
        norm = []
        for v in row:
            if isinstance(v, (float, np.floating)):
                norm.append(round(float(v), 4))
            elif isinstance(v, np.integer):
                norm.append(int(v))
            else:
                norm.append(v)
        out.append(tuple(norm))
    return out


@pytest.mark.parametrize("number", sorted(range(1, 23)))
def test_query_modes_agree(env, number):
    """PDT merge == VDT merge == rebuilt clean database, for every query."""
    ref = normalized(run_query(number, env["ref"]))
    pdt = normalized(run_query(number, env["pdt"]))
    vdt = normalized(run_query(number, env["vdt"]))
    assert pdt == ref, f"Q{number}: PDT result diverges from rebuilt truth"
    assert vdt == ref, f"Q{number}: VDT result diverges from rebuilt truth"


@pytest.mark.parametrize("number", NON_UPDATED_QUERIES)
def test_non_updated_queries_unchanged(env, number):
    """Q2, Q11, Q16 touch no updated tables: identical to the pre-update
    database (paper footnote 6)."""
    before = normalized(run_query(number, env["clean"]))
    after = normalized(run_query(number, env["pdt"]))
    assert before == after


class TestBruteForceOracles:
    """Hand-rolled reference implementations on raw rows."""

    def test_q01_matches_python(self, env):
        rows = env["data"].rows("lineitem")
        applier = RefreshApplier(env["data"])
        rows = applier.post_update_rows("lineitem")
        schema = tpch_schema.LINEITEM
        idx = {c: schema.column_index(c) for c in schema.column_names}
        cutoff = fn.add_days(fn.days(1998, 12, 1), -90)
        groups = {}
        for r in rows:
            if r[idx["l_shipdate"]] <= cutoff:
                key = (r[idx["l_returnflag"]], r[idx["l_linestatus"]])
                g = groups.setdefault(key, [0.0, 0.0, 0])
                g[0] += r[idx["l_quantity"]]
                price = r[idx["l_extendedprice"]]
                g[1] += price * (1 - r[idx["l_discount"]])
                g[2] += 1
        got = run_query(1, env["pdt"])
        got_map = {
            (rf, ls): (sq, sdp, c)
            for rf, ls, sq, sdp, c in zip(
                got["l_returnflag"], got["l_linestatus"], got["sum_qty"],
                got["sum_disc_price"], got["count_order"],
            )
        }
        assert set(got_map) == set(groups)
        for key, (sq, sdp, c) in groups.items():
            assert got_map[key][0] == pytest.approx(sq)
            assert got_map[key][1] == pytest.approx(sdp)
            assert got_map[key][2] == c

    def test_q06_matches_python(self, env):
        applier = RefreshApplier(env["data"])
        rows = applier.post_update_rows("lineitem")
        schema = tpch_schema.LINEITEM
        idx = {c: schema.column_index(c) for c in schema.column_names}
        lo, hi = fn.days(1994, 1, 1), fn.days(1995, 1, 1)
        expected = sum(
            r[idx["l_extendedprice"]] * r[idx["l_discount"]]
            for r in rows
            if lo <= r[idx["l_shipdate"]] < hi
            and 0.05 - 1e-9 <= r[idx["l_discount"]] <= 0.07 + 1e-9
            and r[idx["l_quantity"]] < 24
        )
        got = run_query(6, env["pdt"])
        assert float(got["revenue"][0]) == pytest.approx(expected)

    def test_q18_low_threshold_matches_python(self, env):
        applier = RefreshApplier(env["data"])
        rows = applier.post_update_rows("lineitem")
        schema = tpch_schema.LINEITEM
        ik, iq = schema.column_index("l_orderkey"), schema.column_index(
            "l_quantity"
        )
        sums = {}
        for r in rows:
            sums[r[ik]] = sums.get(r[ik], 0.0) + r[iq]
        threshold = 150
        expected_orders = {k for k, s in sums.items() if s > threshold}
        got = run_query(18, env["pdt"], quantity=threshold)
        assert set(got["o_orderkey"].tolist()) <= expected_orders
        assert len(got.rows()) == min(len(expected_orders), 100)


def test_query_results_are_nonempty(env):
    """Smoke: the headline queries return rows at this scale (guards
    against silently-empty plans)."""
    for number in (1, 3, 4, 5, 6, 9, 10, 12, 13, 14, 19):
        rel = run_query(number, env["pdt"])
        assert rel.num_rows > 0, f"Q{number} empty"


def test_unknown_query_number_rejected(env):
    with pytest.raises(ValueError):
        run_query(23, env["pdt"])
