"""TPC-H generator: determinism, conformance, refresh-stream shape."""

import numpy as np

from repro.engine import functions as fn
from repro.tpch import generate, load_database
from repro.tpch import schema as tpch_schema


def small():
    return generate(scale=0.002, seed=42)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a, b = generate(scale=0.002, seed=7), generate(scale=0.002, seed=7)
        for table in tpch_schema.SCHEMAS:
            for col, arr in a.tables[table].items():
                assert np.array_equal(arr, b.tables[table][col]), (table, col)
        assert a.refreshes[0].delete_orderkeys == \
            b.refreshes[0].delete_orderkeys

    def test_different_seed_differs(self):
        a, b = generate(scale=0.002, seed=1), generate(scale=0.002, seed=2)
        assert not np.array_equal(
            a.tables["orders"]["o_custkey"], b.tables["orders"]["o_custkey"]
        )


class TestConformance:
    def test_cardinality_ratios(self):
        data = small()
        n_orders = data.row_count("orders")
        assert data.row_count("region") == 5
        assert data.row_count("nation") == 25
        assert data.row_count("partsupp") == 4 * data.row_count("part")
        # ~4 lineitems per order on average (1..7 uniform).
        ratio = data.row_count("lineitem") / n_orders
        assert 3.0 < ratio < 5.0

    def test_tables_load_and_are_sorted(self):
        data = small()
        db = load_database(data, compressed=False)
        for name, schema in tpch_schema.SCHEMAS.items():
            table = db.table(name)
            keys = [table.sk_at(i) for i in range(0, table.num_rows,
                                                  max(table.num_rows // 50, 1))]
            assert keys == sorted(keys), name

    def test_orders_sorted_by_date_then_key(self):
        data = small()
        arrays = data.tables["orders"]
        pairs = list(zip(arrays["o_orderdate"], arrays["o_orderkey"]))
        assert pairs == sorted(pairs)

    def test_initial_orderkeys_even(self):
        data = small()
        assert (data.tables["orders"]["o_orderkey"] % 2 == 0).all()

    def test_lineitem_dates_consistent(self):
        data = small()
        li = data.tables["lineitem"]
        assert (li["l_receiptdate"] > li["l_shipdate"]).all()
        assert (li["l_shipdate"] >= fn.days(1992, 1, 1)).all()

    def test_phone_country_codes(self):
        data = small()
        cust = data.tables["customer"]
        for phone, nk in zip(cust["c_phone"][:50], cust["c_nationkey"][:50]):
            assert phone.startswith(f"{int(nk) + 10}-")

    def test_value_domains(self):
        data = small()
        part = data.tables["part"]
        assert set(np.unique(data.tables["customer"]["c_mktsegment"])) <= {
            "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"
        }
        assert ((part["p_size"] >= 1) & (part["p_size"] <= 50)).all()
        li = data.tables["lineitem"]
        assert set(np.unique(li["l_returnflag"])) <= {"A", "N", "R"}
        assert set(np.unique(li["l_linestatus"])) <= {"F", "O"}


class TestRefreshStreams:
    def test_pair_sizes(self):
        data = small()
        assert len(data.refreshes) == 2
        n_orders = data.row_count("orders")
        expected = max(int(n_orders * 0.001), 1)
        for pair in data.refreshes:
            assert len(pair.new_orders) == expected
            assert len(pair.delete_orderkeys) == expected
            assert len(pair.new_lineitems) >= expected

    def test_insert_keys_odd_and_unique(self):
        data = small()
        seen = set()
        for pair in data.refreshes:
            for row in pair.new_orders:
                key = row[1]
                assert key % 2 == 1
                assert key not in seen
                seen.add(key)

    def test_delete_keys_exist_and_unique(self):
        data = small()
        existing = set(data.tables["orders"]["o_orderkey"].tolist())
        seen = set()
        for pair in data.refreshes:
            for key in pair.delete_orderkeys:
                assert key in existing
                assert key not in seen
                seen.add(key)

    def test_new_lineitems_match_new_orders(self):
        data = small()
        for pair in data.refreshes:
            order_keys = {row[1] for row in pair.new_orders}
            line_keys = {row[0] for row in pair.new_lineitems}
            assert line_keys == order_keys
