"""Tests for the sparse (zone-map) index."""

from repro.storage import DataType, Schema, SparseIndex, StableTable


def keyed_table(n=100, granularity=None):
    schema = Schema.build(
        ("store", DataType.STRING),
        ("prod", DataType.INT64),
        ("qty", DataType.INT64),
        sort_key=("store", "prod"),
    )
    rows = [
        (f"store-{i // 10:02d}", i % 10, i) for i in range(n)
    ]  # 10 stores x 10 prods
    return StableTable.bulk_load("inv", schema, rows)


class TestSparseIndex:
    def test_full_range_without_bounds(self):
        table = keyed_table()
        idx = SparseIndex(table, granularity=16)
        rng = idx.sid_range_for_key_range(None, None)
        assert (rng.start, rng.stop) == (0, 100)

    def test_point_lookup_narrows(self):
        table = keyed_table()
        idx = SparseIndex(table, granularity=10)
        rng = idx.sid_range_for_point(("store-03", 5))
        assert rng.count <= 20
        # ground truth position
        sid = table.sk_lower_bound(("store-03", 5))
        assert rng.start <= sid < rng.stop

    def test_prefix_bounds(self):
        table = keyed_table()
        idx = SparseIndex(table, granularity=10)
        rng = idx.sid_range_for_key_range(("store-02",), ("store-04",))
        for sid in range(rng.start, rng.stop):
            pass  # range must cover all matching sids:
        lo = table.sk_lower_bound(("store-02",))
        hi = table.sk_upper_bound(("store-04", 9))
        assert rng.start <= lo and rng.stop >= hi

    def test_range_never_misses_keys(self):
        table = keyed_table()
        idx = SparseIndex(table, granularity=7)
        for sid in range(table.num_rows):
            sk = table.sk_at(sid)
            rng = idx.sid_range_for_point(sk)
            assert rng.start <= sid < rng.stop, (sid, sk)

    def test_out_of_range_high_key(self):
        table = keyed_table()
        idx = SparseIndex(table, granularity=10)
        rng = idx.sid_range_for_key_range(("store-99",), None)
        assert rng.count == 0 or rng.start >= 90

    def test_empty_table(self):
        schema = Schema.build(("k", DataType.INT64), sort_key=("k",))
        table = StableTable.empty("e", schema)
        idx = SparseIndex(table)
        rng = idx.sid_range_for_key_range((1,), (5,))
        assert rng.count == 0

    def test_granule_count(self):
        table = keyed_table(100)
        idx = SparseIndex(table, granularity=30)
        assert idx.num_granules == 4
        assert idx.memory_entries() == 4
