"""Kill-and-reopen recovery on the mmap backend — zero re-registration.

The in-process tests build a durable database, *abandon* it (losing every
RAM-resident PDT, exactly what a crash loses — the WAL is force-written
at commit and catalogs publish atomically), and reopen with
``Database.recover``; results must be byte-identical to the pre-crash
oracle. The subprocess test drives ``scripts/crash_matrix.py``, which
kills a child with ``os._exit`` at real WAL-record and
checkpoint-internal boundaries (including a live checkpoint in flight)
and verifies recovery after each.
"""

import os
import subprocess
import sys

import pytest

from repro import Database, DataType, Schema

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def schema():
    return Schema.build(("k", DataType.INT64), ("v", DataType.INT64),
                        ("tag", DataType.STRING), sort_key=("k",))


def build_db(root) -> tuple[Database, list, list]:
    db = Database(storage="mmap", storage_path=root, block_rows=32)
    db.create_table("inv", schema(),
                    [(i, i * 10, f"t{i % 3}") for i in range(100)])
    db.create_sharded_table(
        "orders", schema(), [(i, i, f"o{i % 5}") for i in range(150)],
        shards=3,
    )
    db.apply_batch("inv", [("ins", (900, 1, "new")), ("del", (5,)),
                           ("mod", (7,), "v", 777)])
    db.apply_batch("orders", [("ins", (901, 2, "x")), ("del", (30,)),
                              ("mod", (40,), "tag", "hot")])
    db.checkpoint("inv")
    db.apply_batch("inv", [("ins", (902, 3, "late"))])
    db.apply_batch("orders", [("mod", (60,), "v", 4)])
    return db, db.image_rows("inv"), sorted(db.image_rows("orders"))


class TestKillAndReopen:
    def test_recover_is_byte_identical(self, tmp_path):
        db, inv, orders = build_db(tmp_path / "db")
        del db  # crash: no close, no sync, PDTs gone

        revived = Database.recover(tmp_path / "db")
        try:
            assert revived.image_rows("inv") == inv
            assert sorted(revived.image_rows("orders")) == orders
            assert revived.query("inv", columns=["k", "v"]).num_rows == \
                len(inv)
            # sharded wrapper fully restored: routing + shard count
            assert revived.sharded("orders").num_shards == 3
            assert revived.query("orders", sk=(901,)).num_rows == 1
        finally:
            revived.close()

    def test_recovered_database_accepts_further_work(self, tmp_path):
        db, inv, _ = build_db(tmp_path / "db")
        del db
        revived = Database.recover(tmp_path / "db")
        try:
            revived.apply_batch("inv", [("ins", (999, 9, "post"))])
            revived.checkpoint("inv")
            assert revived.row_count("inv") == len(inv) + 1
        finally:
            revived.close()
        # ... and survives a second crash after the post-recovery work
        again = Database.recover(tmp_path / "db")
        try:
            assert again.query("inv", sk=(999,)).num_rows == 1
        finally:
            again.close()

    def test_recover_reads_persisted_blocks_not_reregistered_images(
            self, tmp_path):
        db, inv, _ = build_db(tmp_path / "db")
        del db
        revived = Database.recover(tmp_path / "db")
        try:
            # every stable image came from the backend's block files
            for name in revived.table_names():
                pool = revived.manager.state_of(name).stable.pool
                assert pool is not None
                assert pool.store.column_rows(name, "k") == \
                    revived.manager.state_of(name).stable.num_rows
        finally:
            revived.close()

    def test_torn_wal_tail_is_truncated_not_merged(self, tmp_path):
        """A kill mid-append leaves a partial WAL line; recovery must
        truncate it so the next fsynced commit starts a clean line —
        otherwise that commit merges with the fragment and is lost at
        the *second* recovery."""
        root = tmp_path / "db"
        db = Database(storage="mmap", storage_path=root, block_rows=32)
        db.create_table("inv", schema(),
                        [(i, i, "a") for i in range(10)])
        db.apply_batch("inv", [("ins", (100, 1, "pre"))])
        wal_path = db.manager.wal.path
        del db
        with open(wal_path, "a", encoding="utf-8") as fh:
            fh.write('{"lsn": 2, "tables": {"inv": [[0, ')  # torn append

        revived = Database.recover(root)
        assert revived.query("inv", sk=(100,)).num_rows == 1
        revived.apply_batch("inv", [("ins", (200, 2, "post"))])
        del revived  # crash again right after the acknowledged commit

        again = Database.recover(root)
        try:
            assert again.query("inv", sk=(200,)).num_rows == 1
            assert again.query("inv", sk=(100,)).num_rows == 1
        finally:
            again.close()

    def test_fresh_dir_is_a_fresh_database(self, tmp_path):
        db = Database(storage="mmap", storage_path=tmp_path / "new")
        try:
            assert db.table_names() == []
            assert db.recovered_lsn == 0
        finally:
            db.close()

    def test_storage_path_alone_implies_mmap(self, tmp_path):
        """A caller naming an on-disk root wants durable storage —
        storage_path without storage= must not silently build a
        volatile store (and memory+path is a contradiction)."""
        db = Database(storage_path=tmp_path / "db")
        db.create_table("inv", schema(), [(1, 1, "a")])
        db.close()
        revived = Database.recover(tmp_path / "db")
        try:
            assert revived.query("inv").num_rows == 1
        finally:
            revived.close()
        with pytest.raises(ValueError):
            Database(storage="memory", storage_path=tmp_path / "other")


class TestCrashMatrix:
    """Real ``os._exit`` kills at WAL-record and checkpoint-internal
    boundaries (subprocess per point); the full matrix runs in CI's
    durability job."""

    @pytest.mark.parametrize("points", [
        "commit:2,ckpt-post-publish,range-pre-publish,split-pre-wal",
    ])
    def test_crash_points_recover(self, points):
        script = os.path.join(REPO_ROOT, "scripts", "crash_matrix.py")
        proc = subprocess.run(
            [sys.executable, script, "--points", points, "--rows", "120"],
            env={**os.environ, "PYTHONPATH":
                 os.path.join(REPO_ROOT, "src")},
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, \
            f"crash matrix failed:\n{proc.stdout}\n{proc.stderr}"
