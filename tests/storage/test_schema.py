"""Unit tests for schema definitions."""

import numpy as np
import pytest

from repro.storage import ColumnSpec, DataType, Schema, SchemaError


def inventory_schema():
    return Schema.build(
        ("store", DataType.STRING),
        ("prod", DataType.STRING),
        ("new", DataType.STRING),
        ("qty", DataType.INT64),
        sort_key=("store", "prod"),
    )


class TestDataType:
    def test_numpy_dtypes(self):
        assert DataType.INT64.numpy_dtype == np.dtype(np.int64)
        assert DataType.DATE.numpy_dtype == np.dtype(np.int32)
        assert DataType.STRING.numpy_dtype == np.dtype(object)

    def test_is_numeric(self):
        assert DataType.INT64.is_numeric
        assert DataType.DATE.is_numeric
        assert not DataType.STRING.is_numeric

    def test_python_value_coercion(self):
        assert DataType.INT64.python_value("7") == 7
        assert DataType.STRING.python_value(7) == "7"
        assert DataType.FLOAT64.python_value("2.5") == 2.5
        assert DataType.BOOL.python_value(1) is True


class TestColumnSpec:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            ColumnSpec("", DataType.INT64)

    def test_frozen(self):
        spec = ColumnSpec("a", DataType.INT64)
        with pytest.raises(AttributeError):
            spec.name = "b"


class TestSchema:
    def test_basic_accessors(self):
        schema = inventory_schema()
        assert len(schema) == 4
        assert schema.column_names == ("store", "prod", "new", "qty")
        assert schema.sort_key == ("store", "prod")
        assert schema.sort_key_indexes == (0, 1)
        assert schema.column_index("qty") == 3
        assert schema.dtype_of("qty") is DataType.INT64
        assert "qty" in schema
        assert "missing" not in schema

    def test_sk_of(self):
        schema = inventory_schema()
        assert schema.sk_of(("London", "chair", "N", 30)) == ("London", "chair")

    def test_is_sk_column(self):
        schema = inventory_schema()
        assert schema.is_sk_column("store")
        assert not schema.is_sk_column("qty")

    def test_coerce_row(self):
        schema = inventory_schema()
        row = schema.coerce_row(["London", "chair", "N", "30"])
        assert row == ("London", "chair", "N", 30)

    def test_coerce_row_wrong_arity(self):
        with pytest.raises(SchemaError):
            inventory_schema().coerce_row(("x",))

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.build(
                ("a", DataType.INT64), ("a", DataType.INT64), sort_key=("a",)
            )

    def test_empty_sort_key_rejected(self):
        with pytest.raises(SchemaError):
            Schema.build(("a", DataType.INT64), sort_key=())

    def test_unknown_sort_key_rejected(self):
        with pytest.raises(SchemaError):
            Schema.build(("a", DataType.INT64), sort_key=("b",))

    def test_unknown_column_lookup(self):
        with pytest.raises(SchemaError):
            inventory_schema().column_index("nope")

    def test_sort_key_need_not_be_prefix(self):
        schema = Schema.build(
            ("a", DataType.INT64),
            ("b", DataType.INT64),
            sort_key=("b",),
        )
        assert schema.sort_key_indexes == (1,)
