"""Backend conformance suite: every StorageBackend obeys one contract.

Run against both shipped implementations (memory, mmap). Each case
exercises the contract through :class:`~repro.storage.blocks.BlockStore`
where layout is involved (round-trips, row counts) and directly where the
backend itself owns the behavior (catalog metadata, sync/reopen).
"""

import numpy as np
import pytest

from repro.storage import (
    BlockKey,
    BlockStore,
    DataType,
    MemoryBackend,
    MemoryStorage,
    MmapFileBackend,
    MmapStorage,
    Schema,
)


@pytest.fixture(params=["memory", "mmap"])
def backend_env(request, tmp_path):
    """(make_backend, reopen) pair per implementation.

    ``make_backend()`` returns a fresh backend; ``reopen(backend)``
    simulates a process restart — for mmap a brand-new instance over the
    same root (reading only what was published), for memory the same
    instance (its 'persistence' is the process lifetime).
    """
    if request.param == "memory":
        def make():
            return MemoryBackend()

        def reopen(backend):
            return backend
    else:
        def make():
            return MmapFileBackend(tmp_path / "store")

        def reopen(backend):
            backend.sync()
            backend.close()
            return MmapFileBackend(tmp_path / "store")

    return make, reopen


def make_store(backend, block_rows=8, compressed=True):
    return BlockStore(compressed=compressed, block_rows=block_rows,
                      backend=backend)


class TestBlockRoundTrip:
    def test_int_and_string_round_trip(self, backend_env):
        make, _ = backend_env
        store = make_store(make())
        store.store_column("t", "v", DataType.INT64, np.arange(20))
        store.store_column("t", "s", DataType.STRING,
                           np.array(["a", "bb", ""] * 7, dtype=object)[:20])
        assert store.column_rows("t", "v") == 20
        assert list(store.read_block(BlockKey("t", "v", 1))) == \
            list(range(8, 16))
        got = np.concatenate([
            store.read_block(BlockKey("t", "s", b)) for b in range(3)
        ])
        assert list(got) == (["a", "bb", ""] * 7)[:20]

    def test_empty_column_stores_one_empty_block(self, backend_env):
        make, _ = backend_env
        store = make_store(make())
        store.store_column("t", "v", DataType.INT64, [])
        assert store.column_rows("t", "v") == 0
        assert store.column_blocks("t", "v") == 1
        assert len(store.read_block(BlockKey("t", "v", 0))) == 0

    def test_partial_tail_block(self, backend_env):
        make, _ = backend_env
        store = make_store(make())
        store.store_column("t", "v", DataType.INT64, np.arange(11))
        assert store.column_blocks("t", "v") == 2
        assert list(store.read_block(BlockKey("t", "v", 1))) == [8, 9, 10]
        # stored size is the encoded size the I/O accounting charges
        assert store.stored_size(BlockKey("t", "v", 1)) == \
            len(store.backend.get_block("t", "v", 1))

    def test_restore_same_key_truncates_old_blocks(self, backend_env):
        make, _ = backend_env
        store = make_store(make())
        store.store_column("t", "v", DataType.INT64, np.arange(30))
        assert store.column_blocks("t", "v") == 4
        store.store_column("t", "v", DataType.INT64, np.arange(5))
        assert store.column_blocks("t", "v") == 1
        assert store.column_rows("t", "v") == 5
        with pytest.raises(LookupError):  # KeyError or IndexError per impl
            store.backend.get_block("t", "v", 3)

    def test_delete_table(self, backend_env):
        make, _ = backend_env
        store = make_store(make())
        store.store_column("t", "v", DataType.INT64, np.arange(10))
        store.store_column("u", "v", DataType.INT64, np.arange(10))
        store.drop_table("t")
        assert not store.has_column("t", "v")
        assert store.has_column("u", "v")
        assert store.tables() == ["u"]


class TestRowCountContract:
    """Row counts derive from per-block records — overwrites stay honest
    (the fix for the store-time-pinned ``_row_counts`` desync)."""

    def test_tail_overwrite_changes_row_count(self, backend_env):
        make, _ = backend_env
        store = make_store(make())
        store.store_column("t", "v", DataType.INT64, np.arange(11))
        assert store.column_rows("t", "v") == 11
        store.store_block("t", "v", 1, np.arange(7))
        assert store.column_rows("t", "v") == 15
        store.store_block("t", "v", 1, np.arange(1))
        assert store.column_rows("t", "v") == 9
        assert list(store.read_block(BlockKey("t", "v", 1))) == [0]

    def test_interior_overwrite_must_stay_full(self, backend_env):
        make, _ = backend_env
        store = make_store(make())
        store.store_column("t", "v", DataType.INT64, np.arange(20))
        with pytest.raises(ValueError):
            store.store_block("t", "v", 0, np.arange(3))
        store.store_block("t", "v", 0, np.arange(100, 108))
        assert store.column_rows("t", "v") == 20
        assert list(store.read_block(BlockKey("t", "v", 0))) == \
            list(range(100, 108))

    def test_append_block_requires_full_tail(self, backend_env):
        make, _ = backend_env
        store = make_store(make())
        store.store_column("t", "v", DataType.INT64, np.arange(11))
        with pytest.raises(ValueError):
            store.store_block("t", "v", 2, np.arange(4))  # tail has 3 rows
        store.store_block("t", "v", 1, np.arange(8))  # fill the tail
        store.store_block("t", "v", 2, np.arange(4))
        assert store.column_rows("t", "v") == 20
        assert store.column_blocks("t", "v") == 3

    def test_fast_accessors_track_per_block_records(self, backend_env):
        """column_dtype/column_rows are O(1) accessors but must stay
        consistent with the per-block catalog through overwrites."""
        make, _ = backend_env
        store = make_store(make())
        store.store_column("t", "v", DataType.INT64, np.arange(11))
        backend = store.backend
        assert backend.column_dtype("t", "v") is DataType.INT64
        assert backend.column_rows("t", "v") == \
            backend.column_meta("t", "v").row_count == 11
        store.store_block("t", "v", 1, np.arange(5))
        assert backend.column_rows("t", "v") == \
            backend.column_meta("t", "v").row_count == 13
        with pytest.raises(KeyError):
            backend.column_dtype("t", "missing")

    def test_oversized_block_rejected(self, backend_env):
        make, _ = backend_env
        store = make_store(make())
        store.store_column("t", "v", DataType.INT64, np.arange(8))
        with pytest.raises(ValueError):
            store.store_block("t", "v", 0, np.arange(9))


class TestSyncAndCatalogReopen:
    def test_reopen_sees_published_state(self, backend_env):
        make, reopen = backend_env
        store = make_store(make(), block_rows=4, compressed=False)
        store.store_column("t", "v", DataType.INT64, np.arange(10))
        store.sync()
        store2 = BlockStore(backend=reopen(store.backend))
        # store config adopted from the persisted catalog
        assert store2.block_rows == 4
        assert store2.compressed is False
        assert store2.column_rows("t", "v") == 10
        assert list(store2.read_block(BlockKey("t", "v", 2))) == [8, 9]

    def test_unsynced_writes_invisible_after_mmap_reopen(self, tmp_path):
        backend = MmapFileBackend(tmp_path / "store")
        store = make_store(backend)
        store.store_column("t", "v", DataType.INT64, np.arange(10))
        store.sync()
        store.store_column("u", "v", DataType.INT64, np.arange(5))
        backend.close()  # no sync: "u" was never published
        again = BlockStore(backend=MmapFileBackend(tmp_path / "store"))
        assert again.has_column("t", "v")
        assert not again.has_column("u", "v")

    def test_table_meta_round_trips(self, backend_env):
        make, reopen = backend_env
        store = make_store(make())
        schema = Schema.build(("k", DataType.INT64), ("s", DataType.STRING),
                              sort_key=("k",))
        store.store_column("t", "k", DataType.INT64, np.arange(3))
        store.set_table_schema("t", schema)
        store.set_image_lsn("t", 17)
        store.sync()
        store2 = BlockStore(backend=reopen(store.backend))
        assert store2.table_schema("t") == schema
        assert store2.image_lsn("t") == 17

    def test_delete_survives_reopen(self, backend_env):
        make, reopen = backend_env
        store = make_store(make())
        store.store_column("t", "v", DataType.INT64, np.arange(10))
        store.sync()
        store.drop_table("t")
        store.sync()
        store2 = BlockStore(backend=reopen(store.backend))
        assert store2.tables() == []

    def test_second_open_of_live_root_does_not_sweep_inflight_epoch(
            self, tmp_path):
        """The orphan-segment sweep only runs under the root's writer
        lock: a second open of a *live* root (its writer mid-rewrite,
        new epoch appended but unpublished) must not delete the live
        writer's in-flight segment files."""
        writer = MmapFileBackend(tmp_path / "store")
        store = make_store(writer)
        store.store_column("t", "v", DataType.INT64, np.arange(10))
        store.sync()
        store.drop_table("t")  # epoch bump: rewrite in flight
        store.store_column("t", "v", DataType.INT64, np.arange(20))
        seg_dir = tmp_path / "store" / "segments"
        inflight = sorted(seg_dir.glob("*.seg"))
        assert len(inflight) == 2  # published epoch + unpublished epoch

        reader = MmapFileBackend(tmp_path / "store")  # lock held by writer
        assert sorted(seg_dir.glob("*.seg")) == inflight
        assert reader.column_rows("t", "v") == 10  # published catalog
        reader.close()

        store.sync()  # the live writer publishes and reclaims normally
        writer.close()
        assert len(list(seg_dir.glob("*.seg"))) == 1
        reopened = BlockStore(backend=MmapFileBackend(tmp_path / "store"))
        assert reopened.column_rows("t", "v") == 20

    def test_mmap_segment_files_are_per_table_and_reclaimed(self, tmp_path):
        backend = MmapFileBackend(tmp_path / "store")
        store = make_store(backend)
        store.store_column("a", "v", DataType.INT64, np.arange(10))
        store.store_column("b", "v", DataType.INT64, np.arange(10))
        store.sync()
        seg_dir = tmp_path / "store" / "segments"
        assert len(list(seg_dir.glob("*.seg"))) == 2
        store.drop_table("a")
        store.sync()  # publish, then reclaim a's file
        assert len(list(seg_dir.glob("*.seg"))) == 1


class TestStorageFactories:
    def test_scopes_are_isolated(self, tmp_path):
        for factory in (MemoryStorage(), MmapStorage(tmp_path / "db")):
            main = BlockStore(backend=factory.open(""))
            shard = BlockStore(backend=factory.open("t__s0"))
            main.store_column("t", "v", DataType.INT64, np.arange(4))
            assert not shard.has_column("t", "v")
            factory.discard("t__s0")

    def test_discard_deletes_real_files(self, tmp_path):
        factory = MmapStorage(tmp_path / "db")
        store = BlockStore(backend=factory.open("t__s0"))
        store.store_column("t__s0", "v", DataType.INT64, np.arange(4))
        store.sync()
        assert "t__s0" in factory.scopes()
        factory.discard("t__s0")
        assert "t__s0" not in factory.scopes()
        assert not (tmp_path / "db" / "shards" / "t__s0").exists()

    def test_byte_identical_blobs_across_backends(self, tmp_path):
        """The mmap backend stores exactly the bytes the memory backend
        does — compression-dependent I/O volumes stay comparable."""
        mem = make_store(MemoryBackend())
        mm = make_store(MmapFileBackend(tmp_path / "store"))
        data = np.arange(100) * 3
        mem.store_column("t", "v", DataType.INT64, data)
        mm.store_column("t", "v", DataType.INT64, data)
        for b in range(mem.column_blocks("t", "v")):
            assert mem.backend.get_block("t", "v", b) == \
                bytes(mm.backend.get_block("t", "v", b))
