"""Unit and property tests for the generic B+-tree (VDT substrate)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BPlusTree


class TestBPlusTreeBasics:
    def test_insert_get(self):
        tree = BPlusTree(order=4)
        tree.insert((1, "a"), "x")
        tree.insert((0, "b"), "y")
        assert tree.get((1, "a")) == "x"
        assert tree.get((0, "b")) == "y"
        assert tree.get((9, "z")) is None
        assert len(tree) == 2

    def test_overwrite_keeps_count(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert len(tree) == 1
        assert tree.get(1) == "b"

    def test_delete(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        assert tree.delete(1)
        assert not tree.delete(1)
        assert len(tree) == 0
        assert 1 not in tree

    def test_items_sorted_after_many_inserts(self):
        tree = BPlusTree(order=4)
        keys = list(range(500))
        random.Random(7).shuffle(keys)
        for k in keys:
            tree.insert(k, k * 2)
        assert [k for k, _ in tree.items()] == list(range(500))
        tree.check_invariants()

    def test_range_items(self):
        tree = BPlusTree(order=4)
        for k in range(0, 100, 2):
            tree.insert(k, str(k))
        got = [k for k, _ in tree.range_items(10, 20)]
        assert got == [10, 12, 14, 16, 18]
        assert [k for k, _ in tree.range_items(None, 6)] == [0, 2, 4]
        assert [k for k, _ in tree.range_items(94, None)] == [94, 96, 98]

    def test_min_key(self):
        tree = BPlusTree(order=4)
        assert tree.min_key() is None
        tree.insert(5, "x")
        tree.insert(2, "y")
        assert tree.min_key() == 2

    def test_tuple_keys_ordering(self):
        tree = BPlusTree(order=4)
        tree.insert(("b", 1), 1)
        tree.insert(("a", 9), 2)
        tree.insert(("a", 2), 3)
        assert [k for k, _ in tree.items()] == [("a", 2), ("a", 9), ("b", 1)]

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_clear(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.clear()
        assert len(tree) == 0
        assert list(tree.items()) == []


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["ins", "del"]),
            st.integers(min_value=0, max_value=60),
        ),
        max_size=250,
    )
)
def test_btree_matches_dict_model(ops):
    tree = BPlusTree(order=4)
    model = {}
    for op, key in ops:
        if op == "ins":
            tree.insert(key, key * 3)
            model[key] = key * 3
        else:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
    assert list(tree.items()) == sorted(model.items())
    assert len(tree) == len(model)
    tree.check_invariants()


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 1000), unique=True, min_size=1, max_size=200),
    st.integers(0, 1000),
    st.integers(0, 1000),
)
def test_btree_range_scan_matches_sorted_slice(keys, lo, hi):
    lo, hi = min(lo, hi), max(lo, hi)
    tree = BPlusTree(order=6)
    for k in keys:
        tree.insert(k, None)
    expected = [k for k in sorted(keys) if lo <= k < hi]
    assert [k for k, _ in tree.range_items(lo, hi)] == expected
