"""Round-trip and size-behaviour tests for the columnar codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import DataType
from repro.storage import compression as comp


def roundtrip(arr, dtype, codec):
    blob = comp.encode(np.asarray(arr, dtype=dtype.numpy_dtype), dtype, codec)
    return comp.decode(blob, dtype)


class TestPlain:
    def test_int_roundtrip(self):
        data = [1, -5, 7, 2**40]
        out = roundtrip(data, DataType.INT64, comp.PLAIN)
        assert out.tolist() == data

    def test_string_roundtrip(self):
        data = np.empty(3, dtype=object)
        data[:] = ["a", "", "héllo"]
        blob = comp.encode(data, DataType.STRING, comp.PLAIN)
        out = comp.decode(blob, DataType.STRING)
        assert out.tolist() == ["a", "", "héllo"]

    def test_empty(self):
        out = roundtrip([], DataType.INT64, comp.PLAIN)
        assert len(out) == 0


class TestRLE:
    def test_runs_roundtrip(self):
        data = [5] * 100 + [7] * 3 + [5] * 10
        out = roundtrip(data, DataType.INT64, comp.RLE)
        assert out.tolist() == data

    def test_string_runs(self):
        data = np.empty(6, dtype=object)
        data[:] = ["x", "x", "y", "y", "y", "z"]
        blob = comp.encode(data, DataType.STRING, comp.RLE)
        out = comp.decode(blob, DataType.STRING)
        assert out.tolist() == ["x", "x", "y", "y", "y", "z"]

    def test_rle_smaller_on_constant_column(self):
        data = np.full(4096, 42, dtype=np.int64)
        rle = comp.encode(data, DataType.INT64, comp.RLE)
        plain = comp.encode(data, DataType.INT64, comp.PLAIN)
        assert len(rle) < len(plain) / 100


class TestDelta:
    def test_monotone_roundtrip(self):
        data = np.arange(0, 100000, 3, dtype=np.int64)
        out = roundtrip(data, DataType.INT64, comp.DELTA)
        assert np.array_equal(out, data)

    def test_negative_deltas(self):
        data = [100, 50, 75, -3, 0]
        out = roundtrip(data, DataType.INT64, comp.DELTA)
        assert out.tolist() == data

    def test_delta_smaller_on_sorted_keys(self):
        data = np.arange(10**6, 10**6 + 4096, dtype=np.int64)
        delta = comp.encode(data, DataType.INT64, comp.DELTA)
        plain = comp.encode(data, DataType.INT64, comp.PLAIN)
        assert len(delta) < len(plain) / 4

    def test_int32_date_roundtrip(self):
        data = np.array([8000, 8001, 8400], dtype=np.int32)
        out = roundtrip(data, DataType.DATE, comp.DELTA)
        assert out.dtype == np.int32
        assert out.tolist() == [8000, 8001, 8400]


class TestDict:
    def test_roundtrip(self):
        data = np.empty(1000, dtype=object)
        data[:] = [f"country-{i % 7}" for i in range(1000)]
        blob = comp.encode(data, DataType.STRING, comp.DICT)
        out = comp.decode(blob, DataType.STRING)
        assert out.tolist() == data.tolist()

    def test_dict_smaller_on_low_cardinality(self):
        data = np.empty(4096, dtype=object)
        data[:] = [f"status-{i % 3}" for i in range(4096)]
        dct = comp.encode(data, DataType.STRING, comp.DICT)
        plain = comp.encode(data, DataType.STRING, comp.PLAIN)
        assert len(dct) < len(plain) / 3


class TestEncodeBest:
    def test_picks_smallest(self):
        sorted_keys = np.arange(4096, dtype=np.int64)
        blob = comp.encode_best(sorted_keys, DataType.INT64)
        assert comp.codec_of(blob) in (comp.DELTA, comp.RLE)
        out = comp.decode(blob, DataType.INT64)
        assert np.array_equal(out, sorted_keys)

    def test_random_data_falls_back(self):
        rng = np.random.RandomState(0)
        data = rng.randint(-(2**62), 2**62, size=512, dtype=np.int64)
        blob = comp.encode_best(data, DataType.INT64)
        out = comp.decode(blob, DataType.INT64)
        assert np.array_equal(out, data)

    def test_unknown_codec_rejected(self):
        data = np.arange(4, dtype=np.int64)
        blob = comp.encode(data, DataType.INT64, comp.PLAIN)
        corrupted = b"XXX " + blob[4:]
        with pytest.raises(comp.CompressionError):
            comp.decode(corrupted, DataType.INT64)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=-(2**62), max_value=2**62), max_size=300))
def test_int_codecs_roundtrip_property(values):
    arr = np.array(values, dtype=np.int64)
    for codec in (comp.PLAIN, comp.RLE, comp.DELTA):
        if len(arr) == 0 and codec != comp.PLAIN:
            continue
        blob = comp.encode(arr, DataType.INT64, codec)
        assert np.array_equal(comp.decode(blob, DataType.INT64), arr), codec


@settings(max_examples=60, deadline=None)
@given(st.lists(st.text(max_size=20), min_size=1, max_size=120))
def test_string_codecs_roundtrip_property(values):
    arr = np.empty(len(values), dtype=object)
    arr[:] = values
    for codec in (comp.PLAIN, comp.RLE, comp.DICT):
        blob = comp.encode(arr, DataType.STRING, codec)
        assert comp.decode(blob, DataType.STRING).tolist() == values, codec


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=64), max_size=200
    )
)
def test_float_codecs_roundtrip_property(values):
    arr = np.array(values, dtype=np.float64)
    for codec in (comp.PLAIN, comp.RLE):
        if len(arr) == 0 and codec != comp.PLAIN:
            continue
        blob = comp.encode(arr, DataType.FLOAT64, codec)
        assert np.array_equal(comp.decode(blob, DataType.FLOAT64), arr), codec
