"""Tests for columns, block store, buffer pool, and stable tables."""

import numpy as np
import pytest

from repro.storage import (
    BlockKey,
    BlockStore,
    BufferPool,
    Column,
    DataType,
    IOStats,
    Schema,
    SchemaError,
    StableTable,
)


def small_schema():
    return Schema.build(
        ("k", DataType.INT64),
        ("v", DataType.INT64),
        ("s", DataType.STRING),
        sort_key=("k",),
    )


def make_table(n=100, name="t"):
    rows = [(i * 2, i * 10, f"row-{i}") for i in range(n)]
    return StableTable.bulk_load(name, small_schema(), rows)


class TestColumn:
    def test_from_python_strings(self):
        col = Column.from_python("s", DataType.STRING, ["a", 5, "c"])
        assert col.values.dtype == object
        assert col.tolist() == ["a", "5", "c"]

    def test_slice_and_take(self):
        col = Column("v", DataType.INT64, np.arange(10))
        assert col.slice(2, 5).tolist() == [2, 3, 4]
        assert col.take([0, 9]).tolist() == [0, 9]

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Column("v", DataType.INT64, np.zeros((2, 2)))

    def test_nbytes_string_counts_utf8(self):
        col = Column.from_python("s", DataType.STRING, ["ab", "c"])
        assert col.nbytes() == (2 + 4) + (1 + 4)


class TestStableTable:
    def test_bulk_load_sorts_by_sk(self):
        rows = [(5, 1, "a"), (1, 2, "b"), (3, 3, "c")]
        table = StableTable.bulk_load("t", small_schema(), rows)
        assert [r[0] for r in table.rows()] == [1, 3, 5]

    def test_duplicate_sk_rejected(self):
        rows = [(1, 1, "a"), (1, 2, "b")]
        with pytest.raises(SchemaError):
            StableTable.bulk_load("t", small_schema(), rows)

    def test_row_and_sk_at(self):
        table = make_table(10)
        assert table.row(3) == (6, 30, "row-3")
        assert table.sk_at(3) == (6,)
        with pytest.raises(IndexError):
            table.row(10)

    def test_scan_batches(self):
        table = make_table(10)
        batches = list(table.scan(columns=["v"], batch_rows=4))
        assert [b[0] for b in batches] == [0, 4, 8]
        assert batches[0][1]["v"].tolist() == [0, 10, 20, 30]
        assert batches[2][1]["v"].tolist() == [80, 90]

    def test_scan_range(self):
        table = make_table(10)
        batches = list(table.scan(columns=["k"], start=2, stop=5))
        assert len(batches) == 1
        assert batches[0][1]["k"].tolist() == [4, 6, 8]

    def test_sk_bounds(self):
        table = make_table(10)  # keys 0,2,...,18
        assert table.sk_lower_bound((6,)) == 3
        assert table.sk_lower_bound((7,)) == 4
        assert table.sk_upper_bound((6,)) == 4
        assert table.sk_lower_bound((100,)) == 10

    def test_from_arrays_validates_order(self):
        arrays = {
            "k": np.array([3, 1, 2]),
            "v": np.zeros(3, dtype=np.int64),
            "s": np.array(["a", "b", "c"], dtype=object),
        }
        with pytest.raises(SchemaError):
            StableTable.from_arrays("t", small_schema(), arrays)

    def test_empty_table(self):
        table = StableTable.empty("t", small_schema())
        assert len(table) == 0
        assert list(table.scan()) == []


class TestBlockStoreAndBufferPool:
    def test_store_and_read_roundtrip(self):
        store = BlockStore(compressed=True, block_rows=16)
        store.store_column("t", "v", DataType.INT64, np.arange(50))
        assert store.column_blocks("t", "v") == 4
        assert store.read_block(BlockKey("t", "v", 0)) is not None

    def test_buffer_pool_counts_misses_once(self):
        store = BlockStore(compressed=False, block_rows=16)
        store.store_column("t", "v", DataType.INT64, np.arange(64))
        io = IOStats()
        pool = BufferPool(store, io)
        pool.get_block("t", "v", 0)
        first = io.bytes_read
        assert first > 0
        pool.get_block("t", "v", 0)
        assert io.bytes_read == first  # hit: no extra I/O
        assert pool.hits == 1 and pool.misses == 1

    def test_read_rows_crosses_blocks(self):
        store = BlockStore(compressed=False, block_rows=10)
        store.store_column("t", "v", DataType.INT64, np.arange(35))
        pool = BufferPool(store)
        out = pool.read_rows("t", "v", 8, 23)
        assert out.tolist() == list(range(8, 23))

    def test_clear_makes_cold(self):
        store = BlockStore(compressed=False, block_rows=16)
        store.store_column("t", "v", DataType.INT64, np.arange(16))
        io = IOStats()
        pool = BufferPool(store, io)
        pool.get_block("t", "v", 0)
        pool.clear()
        pool.get_block("t", "v", 0)
        assert pool.misses == 2

    def test_warm_table_does_not_count_io(self):
        store = BlockStore(compressed=False, block_rows=16)
        store.store_column("t", "v", DataType.INT64, np.arange(64))
        io = IOStats()
        pool = BufferPool(store, io)
        pool.warm_table("t")
        assert io.bytes_read == 0
        pool.get_block("t", "v", 0)
        assert io.bytes_read == 0  # hot read

    def test_lru_eviction(self):
        store = BlockStore(compressed=False, block_rows=8)
        store.store_column("t", "v", DataType.INT64, np.arange(64))
        pool = BufferPool(store, capacity_bytes=8 * 8 * 2)  # two blocks
        pool.get_block("t", "v", 0)
        pool.get_block("t", "v", 1)
        pool.get_block("t", "v", 2)
        assert not pool.contains("t", "v", 0)
        assert pool.contains("t", "v", 2)

    def test_compression_reduces_io_volume(self):
        keys = np.arange(4096 * 4, dtype=np.int64)
        raw = BlockStore(compressed=False)
        compressed = BlockStore(compressed=True)
        raw.store_column("t", "k", DataType.INT64, keys)
        compressed.store_column("t", "k", DataType.INT64, keys)
        io_raw, io_comp = IOStats(), IOStats()
        BufferPool(raw, io_raw).read_rows("t", "k", 0, len(keys))
        BufferPool(compressed, io_comp).read_rows("t", "k", 0, len(keys))
        assert io_comp.bytes_read < io_raw.bytes_read / 4

    def test_attached_table_charges_io(self):
        table = make_table(100)
        store = BlockStore(compressed=False, block_rows=32)
        io = IOStats()
        pool = BufferPool(store, io)
        table.attach_storage(pool)
        out = table.read_rows("v", 0, 100)
        assert out.tolist() == [i * 10 for i in range(100)]
        assert io.bytes_read > 0
        by_col = set(io.bytes_by_column)
        assert ("t", "v") in by_col
        assert ("t", "k") not in by_col  # untouched column: no I/O

    def test_io_snapshot_delta(self):
        io = IOStats()
        io.record_read("t", "a", 100)
        snap = io.snapshot()
        io.record_read("t", "b", 50)
        delta = io.since(snap)
        assert delta.bytes_read == 50
        assert delta.bytes_by_column == {("t", "b"): 50}

    def test_simulated_seconds(self):
        io = IOStats(read_bandwidth_bytes_per_sec=100.0)
        io.record_read("t", "a", 250)
        assert io.simulated_seconds() == pytest.approx(2.5)
        assert IOStats().simulated_seconds() == 0.0
