"""Differential property suite under the process executor.

The same random workload grammar as the sharded-table property suite —
bulk batches, scalar updates, shard splits/merges, per-shard
checkpoints — but the system under test runs on mmap storage with
``executor="process"`` and a remote-eligibility floor of zero, so every
shard scan that *can* go to a worker process does, however small. The
oracle is an in-memory thread-mode unsharded table fed identical
updates; any divergence in the pin-vector serialization, the worker's
snapshot materialization, or the shared-memory block transport shows up
as a row-stream mismatch.
"""

import random
import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, DataType, Schema
from repro.shard import merge_adjacent, split_shard

from ..shard.test_sharded_property import KEY_RANGE, gen_batch

SCHEMA = Schema.build(
    ("k", DataType.INT64),
    ("a", DataType.INT64),
    ("b", DataType.STRING),
    sort_key=("k",),
)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n_rows=st.integers(0, 60),
    shards=st.integers(1, 4),
    n_steps=st.integers(1, 8),
)
def test_process_executor_matches_thread_oracle(seed, n_rows, shards,
                                                n_steps):
    rng = random.Random(seed)
    rows = sorted(
        (k, rng.randrange(1000), f"s{k}")
        for k in rng.sample(range(0, KEY_RANGE, 2), n_rows)
    )
    live = {r[0] for r in rows}

    root = tempfile.mkdtemp(prefix="exec-prop-")
    db = Database(compressed=False, storage="mmap", storage_path=root,
                  executor="process", workers=1)
    oracle = Database(compressed=False, executor="thread")
    try:
        assert db.exec_router.mode == "process"
        db.exec_router.min_remote_rows = 0  # remote-execute even tiny shards
        sharded = db.create_sharded_table("t", SCHEMA, rows, shards=shards)
        oracle.create_table("t", SCHEMA, rows)

        for _ in range(n_steps):
            action = rng.random()
            if action < 0.5:
                ops = gen_batch(rng, live, rng.randrange(1, 10))
                if ops:
                    db.apply_batch("t", ops)
                    oracle.apply_batch("t", ops)
            elif action < 0.65:
                split_shard(sharded, rng.randrange(sharded.num_shards))
            elif action < 0.8:
                if sharded.num_shards > 1:
                    merge_adjacent(
                        sharded, rng.randrange(sharded.num_shards - 1)
                    )
            else:
                from repro.txn import checkpoint_table

                shard = rng.choice(sharded.shard_names)
                checkpoint_table(db.manager, shard)
            assert db.query("t").rows() == oracle.query("t").rows()
            assert db.row_count("t") == oracle.row_count("t")

        db.checkpoint("t")
        oracle.checkpoint("t")
        assert db.query("t").rows() == oracle.query("t").rows()
    finally:
        db.close()
        oracle.close()
        shutil.rmtree(root, ignore_errors=True)
