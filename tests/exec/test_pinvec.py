"""Pin-vector round trip: serialized PDT layers rebuild byte-identically.

The differential oracle is the scan itself: merging the *rebuilt* layers
over the same stable image must produce exactly the blocks the original
in-memory layers produce, for every delta shape the WAL entry format can
carry (inserts, deletes, single-column modifies, same-key chains,
multi-layer stacks).
"""

import numpy as np
import pytest

from repro import Database, DataType, Schema
from repro.engine.scan import scan_pdt_blocks
from repro.exec.pinvec import rebuild_layers, scan_payload, serialize_layers


def make_db(ops):
    schema = Schema.build(
        ("k", DataType.INT64), ("a", DataType.INT64),
        ("s", DataType.STRING), sort_key=("k",),
    )
    db = Database(compressed=False)
    db.create_table("t", schema, [(i * 2, i, f"r{i}") for i in range(50)])
    if ops:
        db.apply_batch("t", ops)
    return db, schema


def stream_bytes(stable, layers, schema):
    out = []
    for rid, arrays in scan_pdt_blocks(stable, list(layers),
                                       columns=list(schema.column_names),
                                       block_rows=16):
        for c in schema.column_names:
            col = arrays[c]
            out.append((rid, c, col.tolist() if col.dtype == object
                        else col.tobytes()))
    return out


OPS_CASES = {
    "inserts": [("ins", (1, 100, "n1")), ("ins", (99, 101, "n2"))],
    "deletes": [("del", (0,)), ("del", (98,))],
    "modifies": [("mod", (4,), "a", -7), ("mod", (10,), "s", "patched")],
    "chains": [("del", (20,)), ("ins", (20, 999, "reborn")),
               ("mod", (20,), "a", 1000)],
    "mixed": [("ins", (3, 1, "i")), ("del", (6,)), ("mod", (8,), "a", 0),
              ("ins", (5, 2, "j")), ("del", (4,)),
              ("mod", (8,), "s", "x")],
    "empty": [],
}


@pytest.mark.parametrize("case", sorted(OPS_CASES))
def test_layer_roundtrip_scan_identical(case):
    db, schema = make_db(OPS_CASES[case])
    pin = db.pin_snapshot()
    try:
        pt = pin.table("t")
        rebuilt = rebuild_layers(schema, serialize_layers(pt.layers))
        assert stream_bytes(pt.stable, rebuilt, schema) \
            == stream_bytes(pt.stable, pt.layers, schema)
    finally:
        pin.release()
        db.close()


def test_multi_layer_stack_roundtrips():
    """A pinned Read-PDT + Write-PDT stack (pin taken mid-updates, then
    more updates land) serializes layer-by-layer in merge order."""
    db, schema = make_db([("mod", (2,), "a", -1)])
    pin = db.pin_snapshot()
    try:
        db.apply_batch("t", [("ins", (7, 7, "later")), ("del", (12,))])
        pt = pin.table("t")
        serialized = serialize_layers(pt.layers)
        rebuilt = rebuild_layers(schema, serialized)
        assert len(rebuilt) == len(serialized)
        assert stream_bytes(pt.stable, rebuilt, schema) \
            == stream_bytes(pt.stable, pt.layers, schema)
    finally:
        pin.release()
        db.close()


def test_empty_layers_are_elided():
    db, schema = make_db([])
    pin = db.pin_snapshot()
    try:
        assert serialize_layers(pin.table("t").layers) == []
        assert serialize_layers([None]) == []
    finally:
        pin.release()
        db.close()


def test_scan_payload_shape():
    db, schema = make_db(OPS_CASES["mixed"])
    pin = db.pin_snapshot()
    try:
        pt = pin.table("t")
        payload = scan_payload("/some/root", "t", 17, 3, pt.layers,
                               ["k", "a"], 0, 50, 1024)
        assert payload["root"] == "/some/root"
        assert payload["image_lsn"] == 17 and payload["epoch"] == 3
        assert payload["skip"] == 0
        assert payload["columns"] == ["k", "a"]
        assert (payload["sid_lo"], payload["sid_hi"]) == (0, 50)
        # The payload must survive the pipe: pickle round-trip keeps the
        # rebuilt layers equivalent.
        import pickle

        thawed = pickle.loads(pickle.dumps(payload))
        rebuilt = rebuild_layers(schema, thawed["layers"])
        assert stream_bytes(pt.stable, rebuilt, schema) \
            == stream_bytes(pt.stable, pt.layers, schema)
    finally:
        pin.release()
        db.close()
