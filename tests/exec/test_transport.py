"""Shared-memory ring transport unit tests (single-process harness).

The writer normally lives in a worker process, but the ring protocol is
process-agnostic bytes-in-shared-memory: attaching a writer to the
reader's segment inside one process exercises exactly the same code
paths (framing, alignment, wrap avoidance, flow control, inline
fallback, FIFO reclamation) deterministically.
"""

import gc

import numpy as np
import pytest

from repro.exec.transport import (
    ALIGN,
    ShmRingReader,
    ShmRingWriter,
    encode_frame_plan,
)


@pytest.fixture
def ring():
    reader = ShmRingReader(capacity=1 << 16)
    writer = ShmRingWriter(reader.name, capacity=1 << 16,
                           stall_timeout=0.05)
    yield reader, writer
    writer.close()
    reader.close()


def roundtrip(writer, reader, arrays):
    frame = writer.try_write(arrays)
    assert frame is not None
    return reader.decode(frame)


class TestFraming:
    def test_fixed_width_roundtrip_zero_copy(self, ring):
        reader, writer = ring
        arrays = {
            "a": np.arange(100, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 100),
            "c": np.arange(100, dtype=np.int32) % 3,
        }
        out = roundtrip(writer, reader, arrays)
        assert set(out) == set(arrays)
        for name, arr in arrays.items():
            assert out[name].dtype == arr.dtype
            assert np.array_equal(out[name], arr)
            # Views of the shared segment are read-only.
            with pytest.raises(ValueError):
                out[name][0] = 0

    def test_object_columns_travel_inline(self, ring):
        reader, writer = ring
        strings = np.array(["x", "yy", None], dtype=object)
        arrays = {"k": np.arange(3, dtype=np.int64), "s": strings}
        cols, inline, _total = encode_frame_plan(arrays)
        assert [c[0] for c in cols] == ["k"]
        assert list(inline) == ["s"]
        out = roundtrip(writer, reader, arrays)
        assert out["s"] is strings  # same-process: the pickled leg is a no-op
        assert np.array_equal(out["k"], arrays["k"])

    def test_all_inline_block(self, ring):
        reader, writer = ring
        arrays = {"s": np.array(["a", "b"], dtype=object)}
        frame = writer.try_write(arrays)
        assert frame is not None and frame["cols"] == []
        out = reader.decode(frame)
        assert list(out) == ["s"]

    def test_offsets_are_aligned(self):
        arrays = {
            "a": np.arange(3, dtype=np.int8),   # 3 bytes -> pad to 16
            "b": np.arange(5, dtype=np.int64),  # 40 bytes -> pad to 48
            "c": np.arange(2, dtype=np.int16),
        }
        cols, _inline, total = encode_frame_plan(arrays)
        for _name, _dt, _n, off, _nbytes in cols:
            assert off % ALIGN == 0
        assert total == 16 + 48 + 16  # every column padded to ALIGN

    def test_oversized_frame_rejected(self, ring):
        reader, writer = ring
        too_big = {"a": np.zeros((1 << 15) // 8 + 16, dtype=np.int64)}
        assert writer.try_write(too_big) is None  # > capacity // 2


class TestFlowControl:
    def test_ring_full_times_out_while_views_live(self, ring):
        reader, writer = ring
        block = {"a": np.zeros(3000, dtype=np.int64)}  # ~24KB per frame
        held = []
        wrote = 0
        for _ in range(8):
            frame = writer.try_write(block)
            if frame is None:
                break
            held.append(reader.decode(frame))
            wrote += 1
        # 64KB ring, 24KB frames, no reclamation: the third write cannot
        # fit and try_write gives up after the stall timeout.
        assert 0 < wrote < 8
        assert writer.try_write(block) is None

    def test_reclamation_unblocks_writer_fifo(self, ring):
        reader, writer = ring
        block = {"a": np.zeros(3000, dtype=np.int64)}
        held = [reader.decode(writer.try_write(block)) for _ in range(2)]
        assert writer.try_write(block) is None  # full
        # Dropping the *second* frame's views reclaims nothing (FIFO:
        # the first frame still pins the ring head) ...
        del held[1]
        gc.collect()
        assert writer.try_write(block) is None
        # ... but dropping the first releases both frames at once.
        del held[0]
        gc.collect()
        frame = writer.try_write(block)
        assert frame is not None
        assert np.array_equal(reader.decode(frame)["a"], block["a"])

    def test_wrapping_frames_skip_the_tail(self, ring):
        reader, writer = ring
        # Uneven frame sizes force the logical position to a point where
        # the next frame would straddle the ring edge; frames must stay
        # contiguous (decode never reassembles split buffers).
        rng = np.random.default_rng(7)
        for i in range(200):
            n = int(rng.integers(1, 1200))
            arrays = {"a": np.arange(n, dtype=np.int64),
                      "b": np.full(n, i, dtype=np.float64)}
            frame = writer.try_write(arrays)
            assert frame is not None
            off = frame["off"]
            total = sum(
                (nb + ALIGN - 1) & ~(ALIGN - 1)
                for *_x, nb in frame["cols"]
            )
            assert off + total <= reader.capacity  # no straddle
            out = reader.decode(frame)
            assert np.array_equal(out["a"], arrays["a"])
            assert np.array_equal(out["b"], arrays["b"])
            del out
            gc.collect()


class TestLifecycle:
    def test_reader_close_idempotent_with_live_views(self):
        reader = ShmRingReader(capacity=1 << 12)
        writer = ShmRingWriter(reader.name, capacity=1 << 12)
        out = reader.decode(writer.try_write(
            {"a": np.arange(10, dtype=np.int64)}))
        view = out["a"]
        writer.close()
        reader.close()  # live view -> BufferError swallowed, unlink done
        reader.close()  # idempotent
        assert int(view.sum()) == 45  # the mapping survives the unlink
        del out, view
        gc.collect()  # release the mapping before SharedMemory.__del__
