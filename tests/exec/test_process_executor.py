"""Process-pool execution: dispatch, crash isolation, lifecycle.

Every test builds its own mmap-backed database so the suite runs
identically under any ``REPRO_STORAGE_BACKEND`` / ``REPRO_EXECUTOR``
matrix cell. The oracle for byte-identity is always a thread-mode
database over the same rows — the contract is that the executor is
invisible in results, only in wall-clock.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import Database, DataType, Schema
from repro.exec import ExecutorRouter, StaleImage

SCHEMA = Schema.build(
    ("k", DataType.INT64), ("v", DataType.INT64), ("s", DataType.STRING),
    sort_key=("k",),
)
N_ROWS = 40_000  # 4 shards x 10k rows, comfortably above MIN_REMOTE_ROWS


def seed_arrays(n=N_ROWS):
    return {
        "k": np.arange(n, dtype=np.int64),
        "v": np.arange(n, dtype=np.int64) * 3,
        "s": np.array([f"s{i % 97}" for i in range(n)], dtype=object),
    }


def make_db(tmp_path, executor, workers=2, n=N_ROWS, name="t", shards=4):
    db = Database(storage="mmap", storage_path=str(tmp_path / executor),
                  executor=executor, workers=workers)
    db.create_sharded_table_from_arrays(name, SCHEMA, seed_arrays(n),
                                        shards=shards)
    return db


def assert_identical(rel, oracle_rel):
    assert rel.num_rows == oracle_rel.num_rows
    for c in SCHEMA.column_names:
        a, b = rel[c], oracle_rel[c]
        if a.dtype == object:
            assert a.tolist() == b.tolist(), c
        else:
            assert a.tobytes() == b.tobytes(), c


@pytest.fixture
def oracle(tmp_path):
    db = make_db(tmp_path, "thread")
    yield db
    db.close()


class TestRemoteDispatch:
    def test_remote_scan_byte_identical(self, tmp_path, oracle):
        db = make_db(tmp_path, "process")
        try:
            rel = db.query("t")
            assert db.exec_router.remote_jobs >= 4  # one per shard
            assert_identical(rel, oracle.query("t"))
            # Workers exist and are live children.
            assert len(db.exec_router.worker_pids()) >= 1
        finally:
            db.close()

    def test_remote_scan_with_deltas_and_pin(self, tmp_path, oracle):
        db = make_db(tmp_path, "process")
        try:
            ops = [("mod", (i,), "v", -i) for i in range(0, N_ROWS, 997)]
            ops += [("del", (i,)) for i in range(1, N_ROWS, 1999)]
            db.apply_batch("t", ops)
            oracle.apply_batch("t", ops)
            pin = db.pin_snapshot()
            more = [("mod", (i,), "s", "later") for i in range(2, 2000, 7)]
            db.apply_batch("t", more)
            before = db.exec_router.remote_jobs
            pinned_rel = db.query("t", pin=pin)
            assert db.exec_router.remote_jobs > before
            assert_identical(pinned_rel, oracle.query("t"))
            pin.release()
            oracle.apply_batch("t", more)
            assert_identical(db.query("t"), oracle.query("t"))
        finally:
            db.close()

    def test_service_runs_jobs_remotely(self, tmp_path, oracle):
        db = make_db(tmp_path, "process")
        try:
            with db.serve(workers=2) as svc:
                before = db.exec_router.remote_jobs
                cur = svc.submit_query("t")
                rel = cur.to_relation()
                assert db.exec_router.remote_jobs > before
                assert_identical(rel, oracle.query("t"))
        finally:
            db.close()

    def test_env_var_selects_process_mode(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        db = Database(storage="mmap", storage_path=str(tmp_path / "env"))
        try:
            assert db.exec_router.mode == "process"
        finally:
            db.close()
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        db = Database(storage="mmap", storage_path=str(tmp_path / "env2"))
        try:
            assert db.exec_router.mode == "thread"
        finally:
            db.close()


class TestEligibility:
    def test_memory_storage_degrades_to_threads(self):
        # storage= explicit: under REPRO_STORAGE_BACKEND=mmap the default
        # is file-backed, which would NOT degrade.
        db = Database(storage="memory", executor="process")
        try:
            assert db.exec_router.mode == "thread"
            db.create_sharded_table_from_arrays("t", SCHEMA,
                                                seed_arrays(8000), shards=2)
            assert db.query("t").num_rows == 8000
            assert db.exec_router.remote_jobs == 0
        finally:
            db.close()

    def test_small_tables_stay_local(self, tmp_path):
        db = make_db(tmp_path, "process", n=1000, shards=2)
        try:
            rel = db.query("t")
            assert rel.num_rows == 1000
            assert db.exec_router.remote_jobs == 0
            assert db.exec_router.local_jobs >= 2
            assert db.exec_router.worker_pids() == []  # nothing spawned
        finally:
            db.close()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ExecutorRouter("fibers")

    def test_stale_image_falls_back_to_local(self, tmp_path, oracle):
        """A payload whose image LSN the published catalog does not carry
        must fail closed: the worker reports stale, the router reruns the
        job locally, and the result is still exact."""
        db = make_db(tmp_path, "process")
        try:
            pin = db.pin_snapshot()
            shard = db.sharded("t").shard_names[0]
            pt = pin.table(shard)
            router = db.exec_router
            payload = router.payload_for(
                pt.stable, pt.layers, tuple(SCHEMA.column_names),
                0, pt.stable.num_rows, 1024, image_lsn=pt.image_lsn,
            )
            assert payload is not None
            payload["image_lsn"] += 1_000_000  # never published
            blocks = list(router.stream_blocks(payload, lambda: iter(())))
            assert blocks == []  # remote refused; empty local stand-in ran
            assert router.stale_fallbacks == 1
            assert router.remote_jobs == 0
            pin.release()
            # The database as a whole still answers correctly.
            assert_identical(db.query("t"), oracle.query("t"))
        finally:
            db.close()


class TestCrashIsolation:
    def _kill_one_worker(self, db, killed):
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            pids = db.exec_router.worker_pids()
            if pids:
                os.kill(pids[0], signal.SIGKILL)
                killed.append(pids[0])
                return
            time.sleep(0.002)

    def test_kill_worker_mid_scan_redispatches(self, tmp_path, oracle):
        db = make_db(tmp_path, "process")
        try:
            db.exec_router.block_delay_s = 0.01  # widen the kill window
            killed = []
            killer = threading.Thread(
                target=self._kill_one_worker, args=(db, killed))
            killer.start()
            rel = db.query("t")
            killer.join()
            db.exec_router.block_delay_s = 0.0
            assert killed, "no worker appeared to kill"
            assert db.exec_router.redispatches >= 1
            assert_identical(rel, oracle.query("t"))
            # The database keeps serving — still remotely.
            before = db.exec_router.remote_jobs
            assert_identical(db.query("t"), oracle.query("t"))
            assert db.exec_router.remote_jobs > before
            assert killed[0] not in db.exec_router.worker_pids()
        finally:
            db.close()

    def test_exhausted_redispatch_falls_back_local(self, tmp_path, oracle):
        """With a redispatch budget of zero, a single death routes the
        in-flight job to the thread fallback, continuing exactly where
        the dead worker stopped."""
        db = make_db(tmp_path, "process")
        try:
            db.exec_router.max_redispatch = 0
            db.exec_router.block_delay_s = 0.01
            killed = []
            killer = threading.Thread(
                target=self._kill_one_worker, args=(db, killed))
            killer.start()
            rel = db.query("t")
            killer.join()
            db.exec_router.block_delay_s = 0.0
            assert killed
            assert db.exec_router.redispatches >= 1
            assert db.exec_router.local_jobs >= 1
            assert_identical(rel, oracle.query("t"))
        finally:
            db.close()


class TestLifecycle:
    def test_close_reaps_workers(self, tmp_path):
        db = make_db(tmp_path, "process")
        db.query("t")
        pids = db.exec_router.worker_pids()
        assert pids
        db.close()
        for pid in pids:
            # close() joins each worker; a joined child is fully reaped,
            # so signalling it must fail (no zombies, no orphans).
            with pytest.raises((ProcessLookupError, OSError)):
                os.kill(pid, 0)
        assert db.exec_router.worker_pids() == []

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_close_idempotent(self, tmp_path, executor):
        db = make_db(tmp_path, executor, n=4000, shards=2)
        db.query("t")
        db.close()
        db.close()
        db.close()

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_context_manager_reaps(self, tmp_path, executor):
        with make_db(tmp_path, executor) as db:
            db.query("t")
            pids = db.exec_router.worker_pids()
        for pid in pids:
            with pytest.raises((ProcessLookupError, OSError)):
                os.kill(pid, 0)

    def test_queries_after_close_still_answer(self, tmp_path, oracle):
        """Parity with thread mode: a closed database still serves reads
        from in-memory state (pins over it included) — the router just
        stops offering remote execution."""
        db = make_db(tmp_path, "process")
        rel_before = db.query("t")
        db.close()
        assert db.exec_router.fanout_executor() is None
        rel_after = db.query("t")
        assert_identical(rel_after, oracle.query("t"))
        assert_identical(rel_before, rel_after)
