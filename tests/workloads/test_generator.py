"""Workload generator: op validity and PDT/VDT image equality."""

import pytest

from repro.core import merge_rows
from repro.vdt import vdt_merge_rows
from repro.workloads import (
    apply_ops_pdt,
    apply_ops_vdt,
    build_table,
    build_workload,
    generate_ops,
    micro_schema,
)


class TestTableBuilder:
    def test_int_keys_sorted_with_gaps(self):
        table = build_table(100, key_type="int")
        keys = table.column("k0").values
        assert (keys % 2 == 0).all()
        assert list(keys) == sorted(keys)

    def test_str_keys_sorted(self):
        table = build_table(50, key_type="str")
        keys = list(table.column("k0").values)
        assert keys == sorted(keys)
        assert keys[0].startswith("key-")

    def test_multi_key_lexicographic(self):
        table = build_table(2000, n_key_cols=3)
        sks = [table.sk_at(i) for i in range(0, 2000, 97)]
        assert sks == sorted(sks)
        # The deeper key columns carry the distinguishing values (so
        # value-based comparisons must examine several columns).
        assert len({k[1] for k in sks}) > 1
        assert len({k[-1] for k in sks}) > 1

    def test_column_counts(self):
        schema = micro_schema(2, "int", 4)
        assert len(schema) == 6
        assert schema.sort_key == ("k0", "k1")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            micro_schema(5, "int", 4)
        with pytest.raises(ValueError):
            micro_schema(1, "float", 4)


class TestOpsGeneration:
    def test_rate_controls_volume(self):
        table = build_table(1000)
        assert len(generate_ops(table, 1.0)) == 10
        assert len(generate_ops(table, 2.5)) == 25
        assert len(generate_ops(table, 0.0)) == 0

    def test_ops_are_deterministic(self):
        table = build_table(500)
        assert generate_ops(table, 2.0, seed=5) == \
            generate_ops(table, 2.0, seed=5)

    def test_targets_are_distinct(self):
        table = build_table(2000)
        ops = generate_ops(table, 2.5)
        targets = [op[1] for op in ops]
        assert len(set(map(str, targets))) == len(targets)


@pytest.mark.parametrize("key_type", ["int", "str"])
@pytest.mark.parametrize("n_key_cols", [1, 2, 4])
def test_pdt_and_vdt_images_agree(key_type, n_key_cols):
    """Applying the same generated stream through positional and
    value-based machinery must yield the same table image."""
    wl = build_workload(
        800, updates_per_100=2.5, n_key_cols=n_key_cols, key_type=key_type
    )
    pdt = apply_ops_pdt(wl.table, wl.ops, wl.sparse_index)
    vdt = apply_ops_vdt(wl.table, wl.ops)
    rows = wl.table.rows()
    assert merge_rows(rows, pdt) == vdt_merge_rows(rows, vdt)
    assert pdt.count() > 0


def test_update_counts_match_structures():
    wl = build_workload(1000, updates_per_100=2.0)
    pdt = apply_ops_pdt(wl.table, wl.ops, wl.sparse_index)
    vdt = apply_ops_vdt(wl.table, wl.ops)
    n_ins = sum(1 for op in wl.ops if op[0] == "ins")
    n_del = sum(1 for op in wl.ops if op[0] == "del")
    n_mod = sum(1 for op in wl.ops if op[0] == "mod")
    assert pdt.count() == n_ins + n_del + n_mod
    assert vdt.insert_count() == n_ins + n_mod
    assert vdt.delete_count() == n_del + n_mod
