"""Database facade and update-processor tests."""

import pytest

from repro import Database, DataType, Schema
from repro.db import (
    DuplicateKey,
    KeyNotFound,
    PositionalUpdater,
    find_insert_position,
    find_rid_by_key,
)
from repro.core import PDT
from repro.storage import SparseIndex, StableTable


def schema3():
    return Schema.build(
        ("k", DataType.INT64),
        ("a", DataType.INT64),
        ("b", DataType.STRING),
        sort_key=("k",),
    )


def make_db(n=20, **kwargs):
    db = Database(compressed=False, **kwargs)
    db.create_table("t", schema3(), [(i * 10, i, f"s{i}") for i in range(n)])
    return db


class TestDatabaseFacade:
    def test_create_query_roundtrip(self):
        db = make_db(5)
        rel = db.query("t")
        assert rel.num_rows == 5
        assert rel.rows()[0] == (0, 0, "s0")

    def test_autocommit_ops(self):
        db = make_db(5)
        db.insert("t", (5, 9, "new"))
        db.modify("t", (10,), "a", 77)
        db.delete("t", (20,))
        rows = db.image_rows("t")
        assert (5, 9, "new") in rows
        assert (10, 77, "s1") in rows
        assert all(r[0] != 20 for r in rows)
        assert db.row_count("t") == 5

    def test_insert_many_single_commit(self):
        db = make_db(5)
        db.insert_many("t", [(1, 0, "a"), (2, 0, "b"), (3, 0, "c")])
        assert len(db.manager.wal) == 1
        assert db.row_count("t") == 8

    def test_duplicate_insert_rejected(self):
        db = make_db(5)
        with pytest.raises(DuplicateKey):
            db.insert("t", (10, 0, "dup"))

    def test_delete_missing_key_rejected(self):
        db = make_db(5)
        with pytest.raises(KeyNotFound):
            db.delete("t", (999,))

    def test_sk_modify_rejected(self):
        db = make_db(5)
        with pytest.raises(ValueError, match="sort key"):
            db.modify("t", (10,), "k", 11)

    def test_query_projection_skips_key_io(self):
        db = make_db(100)
        db.insert("t", (5, 1, "x"))
        db.make_cold()
        db.io.reset()
        db.query("t", columns=["a"])
        assert ("t", "k") not in db.io.bytes_by_column
        assert ("t", "a") in db.io.bytes_by_column

    def test_cold_vs_hot_io(self):
        db = make_db(500)
        db.make_cold()
        db.io.reset()
        db.query("t", columns=["a"])
        cold = db.io.bytes_read
        assert cold > 0
        db.io.reset()
        db.query("t", columns=["a"])  # pool is now warm
        assert db.io.bytes_read == 0

    def test_unknown_table(self):
        db = make_db(1)
        with pytest.raises(KeyError):
            db.query("missing")

    def test_empty_table_operations(self):
        db = Database(compressed=False)
        db.create_table("e", schema3(), [])
        db.insert("e", (1, 1, "first"))
        assert db.image_rows("e") == [(1, 1, "first")]
        db.delete("e", (1,))
        assert db.image_rows("e") == []


class TestUpdateProcessor:
    def make_parts(self, n=50, granularity=8):
        rows = [(i * 2, i, f"s{i}") for i in range(n)]  # even keys
        stable = StableTable.bulk_load("t", schema3(), rows)
        index = SparseIndex(stable, granularity=granularity)
        pdt = PDT(stable.schema)
        return stable, index, pdt

    def test_find_insert_position_basics(self):
        stable, index, pdt = self.make_parts()
        assert find_insert_position(stable, [pdt], index, (-5,)) == 0
        assert find_insert_position(stable, [pdt], index, (1,)) == 1
        assert find_insert_position(stable, [pdt], index, (997,)) == 50

    def test_find_insert_position_sees_pdt_inserts(self):
        stable, index, pdt = self.make_parts()
        up = PositionalUpdater(stable, [pdt], index)
        up.insert((1, 0, "one"))
        # Image is now 0, 1, 2, 4, ...: key 3 goes at rid 3 (the insert at
        # rid 1 shifted everything after it).
        assert find_insert_position(stable, [pdt], index, (3,)) == 3
        with pytest.raises(DuplicateKey):
            find_insert_position(stable, [pdt], index, (1,))

    def test_find_rid_by_key(self):
        stable, index, pdt = self.make_parts()
        assert find_rid_by_key(stable, [pdt], index, (0,)) == 0
        assert find_rid_by_key(stable, [pdt], index, (98,)) == 49
        with pytest.raises(KeyNotFound):
            find_rid_by_key(stable, [pdt], index, (1,))

    def test_rids_shift_after_deletes(self):
        stable, index, pdt = self.make_parts()
        up = PositionalUpdater(stable, [pdt], index)
        up.delete_by_key((0,))
        assert find_rid_by_key(stable, [pdt], index, (2,)) == 0

    def test_stale_sparse_index_still_correct(self):
        """Heavy updates never invalidate the TABLE0 sparse index thanks to
        ghost-respecting SID assignment."""
        stable, index, pdt = self.make_parts(n=100, granularity=10)
        up = PositionalUpdater(stable, [pdt], index)
        for k in range(0, 200, 4):  # delete half the even keys
            if k % 4 == 0 and k < 200 and k % 2 == 0:
                try:
                    up.delete_by_key((k,))
                except KeyNotFound:
                    pass
        for k in range(1, 200, 8):  # scatter odd inserts
            up.insert((k, 0, f"odd{k}"))
        # Every remaining live key must still be findable via the index.
        from repro.core.stack import image_rows

        for row in image_rows(stable, [pdt]):
            rid = find_rid_by_key(stable, [pdt], index, (row[0],))
            assert image_rows(stable, [pdt])[rid] == row

    def test_image_size(self):
        stable, index, pdt = self.make_parts(n=10)
        up = PositionalUpdater(stable, [pdt], index)
        assert up.image_size() == 10
        up.insert((1, 0, "x"))
        up.delete_by_key((0,))
        up.delete_by_key((2,))
        assert up.image_size() == 9

    def test_updater_requires_layers(self):
        stable, index, pdt = self.make_parts(n=5)
        with pytest.raises(ValueError):
            PositionalUpdater(stable, [], index)

    def test_works_without_sparse_index(self):
        stable, _, pdt = self.make_parts(n=10)
        up = PositionalUpdater(stable, [pdt], None)
        up.insert((1, 0, "x"))
        assert find_rid_by_key(stable, [pdt], None, (1,)) == 1


def test_query_results_cannot_corrupt_storage_via_aliasing():
    """Pass-through blocks alias storage; writes must raise, not corrupt."""
    import numpy as np
    import pytest

    from repro import Database, DataType, Schema

    schema = Schema.build(("k", DataType.INT64), ("v", DataType.INT64),
                          sort_key=("k",))
    db = Database(block_rows=1024)
    db.create_table("t", schema, [(i, i) for i in range(100)])
    rel = db.query("t", columns=["v"])
    with pytest.raises(ValueError):
        rel["v"][0] = 777_777
    again = db.query("t", columns=["v"])
    assert int(again["v"][0]) == 0  # storage unharmed
