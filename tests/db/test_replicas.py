"""Replicated ordered storage: fan-out updates, routed queries."""

import random

import pytest

from repro import Database, DataType, Schema
from repro.db.replicas import ReplicatedTable


def base_schema():
    return Schema.build(
        ("order_id", DataType.INT64),
        ("date", DataType.INT64),
        ("amount", DataType.INT64),
        sort_key=("order_id",),
    )


def make_replicated(n=40):
    db = Database(compressed=False, sparse_granularity=8)
    rows = [(i, 1000 + (i * 37) % 90, i * 10) for i in range(n)]
    rep = ReplicatedTable(
        db, "sales", base_schema(),
        sort_orders=[("order_id",), ("date", "order_id")],
        rows=rows,
    )
    return db, rep, rows


class TestReplicaMaintenance:
    def test_replicas_created_with_own_orders(self):
        db, rep, rows = make_replicated()
        by_id = db.image_rows("sales__r0")
        by_date = db.image_rows("sales__r1")
        assert sorted(by_id) == sorted(by_date)
        assert [r[0] for r in by_id] == sorted(r[0] for r in by_id)
        dates = [r[1] for r in by_date]
        assert dates == sorted(dates)

    def test_insert_fans_out(self):
        db, rep, rows = make_replicated()
        rep.insert((100, 1001, 5))
        rep.check_replicas_consistent()
        assert (100, 1001, 5) in rep.image_rows()

    def test_delete_fans_out(self):
        db, rep, rows = make_replicated()
        rep.delete((7,))
        rep.check_replicas_consistent()
        assert all(r[0] != 7 for r in rep.image_rows())

    def test_modify_non_key_everywhere(self):
        db, rep, rows = make_replicated()
        rep.modify((5,), "amount", 999)
        rep.check_replicas_consistent()
        assert [r for r in rep.image_rows() if r[0] == 5][0][2] == 999

    def test_modify_of_replica_sort_key_is_delete_insert(self):
        """'date' is a key column of replica 1: the modify must relocate
        the tuple there while replica 0 modifies in place."""
        db, rep, rows = make_replicated()
        rep.modify((5,), "date", 2000)
        rep.check_replicas_consistent()
        by_date = db.image_rows("sales__r1")
        assert by_date[-1][0] == 5  # relocated to the end (max date)

    def test_missing_key_raises(self):
        db, rep, rows = make_replicated()
        with pytest.raises(KeyError):
            rep.delete((424242,))

    def test_random_workload_stays_consistent(self):
        db, rep, rows = make_replicated()
        rng = random.Random(3)
        live = {r[0] for r in rows}
        for _ in range(60):
            c = rng.random()
            if c < 0.4 or not live:
                k = rng.randrange(500)
                if k not in live:
                    rep.insert((k, 1000 + k % 90, k))
                    live.add(k)
            elif c < 0.6:
                k = rng.choice(sorted(live))
                rep.delete((k,))
                live.discard(k)
            elif c < 0.8:
                k = rng.choice(sorted(live))
                rep.modify((k,), "amount", rng.randrange(10**6))
            else:
                k = rng.choice(sorted(live))
                rep.modify((k,), "date", 1000 + rng.randrange(90))
        rep.check_replicas_consistent()
        assert {r[0] for r in rep.image_rows()} == live


class TestReplicaBatchFanOut:
    """apply_batch must behave like the equivalent scalar method
    sequence: one transaction, every replica consistent, and later ops
    seeing earlier ops' effects."""

    def test_batch_matches_scalar_sequence(self):
        db_b, rep_b, rows = make_replicated()
        db_s, rep_s, _ = make_replicated()
        ops = (
            [("ins", (100 + i, 1000 + i % 90, i)) for i in range(10)]
            + [("del", (i,)) for i in range(0, 10, 2)]
            + [("mod", (i,), "amount", 7 * i) for i in range(11, 20, 2)]
            + [("mod", (21,), "date", 1099)]  # replica-1 sort-key column
        )
        rep_b.apply_batch(ops)
        for op in ops:
            if op[0] == "ins":
                rep_s.insert(op[1])
            elif op[0] == "del":
                rep_s.delete(op[1])
            else:
                rep_s.modify(op[1], op[2], op[3])
        for replica in rep_b.replica_names:
            assert db_b.image_rows(replica) == db_s.image_rows(replica)
        rep_b.check_replicas_consistent()

    def test_batch_is_one_transaction(self):
        db, rep, rows = make_replicated()
        before = db.manager.stats.commits
        rep.apply_batch([("ins", (200, 1001, 5)), ("del", (3,)),
                         ("mod", (5,), "amount", 1)])
        assert db.manager.stats.commits == before + 1

    def test_insert_then_modify_same_key(self):
        db, rep, rows = make_replicated()
        rep.apply_batch([("ins", (300, 1005, 1)),
                         ("mod", (300,), "amount", 42)])
        rep.check_replicas_consistent()
        assert [r for r in rep.image_rows() if r[0] == 300][0][2] == 42

    def test_modify_then_delete_same_key(self):
        db, rep, rows = make_replicated()
        rep.apply_batch([("mod", (7,), "date", 1077), ("del", (7,))])
        rep.check_replicas_consistent()
        assert all(r[0] != 7 for r in rep.image_rows())

    def test_primary_key_rename_then_address_new_key(self):
        """A primary-SK column modify renames the row; later ops must
        address it by the new key (and the old key must be gone)."""
        schema = Schema.build(
            ("order_id", DataType.INT64), ("amount", DataType.INT64),
            sort_key=("order_id",),
        )
        db = Database(compressed=False)
        rep = ReplicatedTable(db, "t", schema,
                              sort_orders=[("order_id",), ("amount",)],
                              rows=[(i, 50 + i) for i in range(10)])
        rep.apply_batch([("mod", (4,), "order_id", 400),
                         ("mod", (400,), "amount", 9)])
        rep.check_replicas_consistent()
        rows = rep.image_rows()
        assert all(r[0] != 4 for r in rows)
        assert [r for r in rows if r[0] == 400][0][1] == 9
        with pytest.raises(KeyError):
            rep.apply_batch([("mod", (4,), "amount", 1)])

    def test_unresolvable_key_raises_before_applying(self):
        db, rep, rows = make_replicated()
        before = {r: db.image_rows(r) for r in rep.replica_names}
        with pytest.raises(KeyError):
            rep.apply_batch([("ins", (500, 1000, 1)), ("del", (424242,))])
        for replica, image in before.items():
            assert db.image_rows(replica) == image

    def test_random_batches_stay_consistent(self):
        db, rep, rows = make_replicated()
        rng = random.Random(17)
        live = {r[0] for r in rows}
        for _ in range(8):
            ops, touched = [], set()
            for _ in range(rng.randrange(2, 12)):
                k = rng.randrange(500)
                if k in touched:
                    continue
                touched.add(k)
                if k not in live:
                    ops.append(("ins", (k, 1000 + k % 90, k)))
                    live.add(k)
                elif rng.random() < 0.4:
                    ops.append(("del", (k,)))
                    live.discard(k)
                elif rng.random() < 0.5:
                    ops.append(("mod", (k,), "amount", rng.randrange(10**6)))
                else:
                    ops.append(("mod", (k,), "date",
                                1000 + rng.randrange(90)))
            rep.apply_batch(ops)
        rep.check_replicas_consistent()
        assert {r[0] for r in rep.image_rows()} == live


class TestReplicaRouting:
    def test_replica_for_prefix(self):
        db, rep, rows = make_replicated()
        assert rep.replica_for(["order_id"]) == "sales__r0"
        assert rep.replica_for(["date"]) == "sales__r1"
        assert rep.replica_for(["date", "order_id"]) == "sales__r1"
        assert rep.replica_for(["amount"]) == "sales__r0"  # fallback

    def test_range_query_on_secondary_order(self):
        db, rep, rows = make_replicated()
        rep.insert((100, 1005, 1))
        rel = rep.query_range("date", 1000, 1010, columns=["order_id",
                                                           "date"])
        got = rel.rows()
        assert all(1000 <= r[1] <= 1010 for r in got)
        expected = sorted(
            (r[0], r[1]) for r in rep.image_rows() if 1000 <= r[1] <= 1010
        )
        assert sorted(got) == expected

    def test_range_query_prunes_io_on_matching_replica(self):
        db = Database(compressed=False, sparse_granularity=16,
                      block_rows=32)
        rows = [(i, i, i) for i in range(2000)]
        rep = ReplicatedTable(
            db, "big", base_schema(),
            sort_orders=[("order_id",), ("date", "order_id")], rows=rows,
        )
        db.make_cold()
        db.io.reset()
        rep.query_range("date", 100, 120, columns=["amount"])
        pruned = db.io.bytes_read
        db.make_cold()
        db.io.reset()
        rep.query_range("amount", 100, 120, columns=["amount"])  # no order
        full = db.io.bytes_read
        assert pruned < full / 5

    def test_unordered_predicate_falls_back_to_filter(self):
        db, rep, rows = make_replicated()
        rel = rep.query_range("amount", 50, 100, columns=["order_id"])
        expected = sorted(r[0] for r in rep.image_rows()
                          if 50 <= r[2] <= 100)
        assert sorted(rel["order_id"].tolist()) == expected
