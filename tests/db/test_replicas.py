"""Replicated ordered storage: fan-out updates, routed queries."""

import random

import pytest

from repro import Database, DataType, Schema
from repro.db.replicas import ReplicatedTable


def base_schema():
    return Schema.build(
        ("order_id", DataType.INT64),
        ("date", DataType.INT64),
        ("amount", DataType.INT64),
        sort_key=("order_id",),
    )


def make_replicated(n=40):
    db = Database(compressed=False, sparse_granularity=8)
    rows = [(i, 1000 + (i * 37) % 90, i * 10) for i in range(n)]
    rep = ReplicatedTable(
        db, "sales", base_schema(),
        sort_orders=[("order_id",), ("date", "order_id")],
        rows=rows,
    )
    return db, rep, rows


class TestReplicaMaintenance:
    def test_replicas_created_with_own_orders(self):
        db, rep, rows = make_replicated()
        by_id = db.image_rows("sales__r0")
        by_date = db.image_rows("sales__r1")
        assert sorted(by_id) == sorted(by_date)
        assert [r[0] for r in by_id] == sorted(r[0] for r in by_id)
        dates = [r[1] for r in by_date]
        assert dates == sorted(dates)

    def test_insert_fans_out(self):
        db, rep, rows = make_replicated()
        rep.insert((100, 1001, 5))
        rep.check_replicas_consistent()
        assert (100, 1001, 5) in rep.image_rows()

    def test_delete_fans_out(self):
        db, rep, rows = make_replicated()
        rep.delete((7,))
        rep.check_replicas_consistent()
        assert all(r[0] != 7 for r in rep.image_rows())

    def test_modify_non_key_everywhere(self):
        db, rep, rows = make_replicated()
        rep.modify((5,), "amount", 999)
        rep.check_replicas_consistent()
        assert [r for r in rep.image_rows() if r[0] == 5][0][2] == 999

    def test_modify_of_replica_sort_key_is_delete_insert(self):
        """'date' is a key column of replica 1: the modify must relocate
        the tuple there while replica 0 modifies in place."""
        db, rep, rows = make_replicated()
        rep.modify((5,), "date", 2000)
        rep.check_replicas_consistent()
        by_date = db.image_rows("sales__r1")
        assert by_date[-1][0] == 5  # relocated to the end (max date)

    def test_missing_key_raises(self):
        db, rep, rows = make_replicated()
        with pytest.raises(KeyError):
            rep.delete((424242,))

    def test_random_workload_stays_consistent(self):
        db, rep, rows = make_replicated()
        rng = random.Random(3)
        live = {r[0] for r in rows}
        for _ in range(60):
            c = rng.random()
            if c < 0.4 or not live:
                k = rng.randrange(500)
                if k not in live:
                    rep.insert((k, 1000 + k % 90, k))
                    live.add(k)
            elif c < 0.6:
                k = rng.choice(sorted(live))
                rep.delete((k,))
                live.discard(k)
            elif c < 0.8:
                k = rng.choice(sorted(live))
                rep.modify((k,), "amount", rng.randrange(10**6))
            else:
                k = rng.choice(sorted(live))
                rep.modify((k,), "date", 1000 + rng.randrange(90))
        rep.check_replicas_consistent()
        assert {r[0] for r in rep.image_rows()} == live


class TestReplicaRouting:
    def test_replica_for_prefix(self):
        db, rep, rows = make_replicated()
        assert rep.replica_for(["order_id"]) == "sales__r0"
        assert rep.replica_for(["date"]) == "sales__r1"
        assert rep.replica_for(["date", "order_id"]) == "sales__r1"
        assert rep.replica_for(["amount"]) == "sales__r0"  # fallback

    def test_range_query_on_secondary_order(self):
        db, rep, rows = make_replicated()
        rep.insert((100, 1005, 1))
        rel = rep.query_range("date", 1000, 1010, columns=["order_id",
                                                           "date"])
        got = rel.rows()
        assert all(1000 <= r[1] <= 1010 for r in got)
        expected = sorted(
            (r[0], r[1]) for r in rep.image_rows() if 1000 <= r[1] <= 1010
        )
        assert sorted(got) == expected

    def test_range_query_prunes_io_on_matching_replica(self):
        db = Database(compressed=False, sparse_granularity=16,
                      block_rows=32)
        rows = [(i, i, i) for i in range(2000)]
        rep = ReplicatedTable(
            db, "big", base_schema(),
            sort_orders=[("order_id",), ("date", "order_id")], rows=rows,
        )
        db.make_cold()
        db.io.reset()
        rep.query_range("date", 100, 120, columns=["amount"])
        pruned = db.io.bytes_read
        db.make_cold()
        db.io.reset()
        rep.query_range("amount", 100, 120, columns=["amount"])  # no order
        full = db.io.bytes_read
        assert pruned < full / 5

    def test_unordered_predicate_falls_back_to_filter(self):
        db, rep, rows = make_replicated()
        rel = rep.query_range("amount", 50, 100, columns=["order_id"])
        expected = sorted(r[0] for r in rep.image_rows()
                          if 50 <= r[2] <= 100)
        assert sorted(rel["order_id"].tolist()) == expected
