"""Database-wide snapshot pins: one commit point, held against the world.

The contract under test: a reader holding a :class:`repro.SnapshotPin`
observes byte-identical results forever — across concurrent commits,
Write→Read propagations (copy-on-write under pins), full and incremental
checkpoint folds (old stable images detach instead of dying), and shard
rebalancer splits/merges (retired shard storage is dropped only once the
pins that captured it drain). Live readers meanwhile see every new commit
and the new layouts.
"""

import pytest

from repro import Database, DataType, Schema
from repro.shard import merge_adjacent, split_shard
from repro.txn.checkpoint import checkpoint_table_range


def make_schema():
    return Schema.build(
        ("k", DataType.INT64), ("v", DataType.INT64),
        ("tag", DataType.STRING), sort_key=("k",),
    )


def seed_rows(n=800):
    return [(i * 2, i, f"t{i % 5}") for i in range(n)]


def snapshot_bytes(db, table, pin=None, low=None, high=None):
    if low is None and high is None:
        rel = db.query(table, pin=pin)
    else:
        rel = db.query_range(table, low=low, high=high, pin=pin)
    return {
        c: rel[c].tolist() if rel[c].dtype == object else rel[c].tobytes()
        for c in rel.column_names
    }


@pytest.fixture
def sharded_db():
    db = Database(compressed=False)
    db.create_sharded_table("t", make_schema(), seed_rows(), shards=4)
    yield db
    db.close()


class TestPinBasics:
    def test_pin_freezes_version_against_writers(self, sharded_db):
        db = sharded_db
        pin = db.pin_snapshot()
        before = snapshot_bytes(db, "t", pin=pin)
        db.apply_batch("t", [("mod", (10,), "v", 777),
                             ("ins", (3,), ),][:1])
        db.insert("t", (3, -1, "new"))
        db.delete("t", (20,))
        assert snapshot_bytes(db, "t", pin=pin) == before
        live = db.query("t")
        assert 777 in live["v"]
        assert -1 in live["v"]
        pin.release()

    def test_lsn_vector_names_every_shard(self, sharded_db):
        db = sharded_db
        db.modify("t", (10,), "v", 1)
        pin = db.pin_snapshot()
        vector = pin.lsn_vector()
        shard_names = db.sharded("t").shard_names
        assert set(shard_names) <= set(vector)
        # the shard owning key 10 committed at a later LSN than the rest
        hot = db.sharded("t").physical_for((10,))
        assert vector[hot] == max(vector.values())
        pin.release()

    def test_context_manager_and_idempotent_release(self, sharded_db):
        db = sharded_db
        with db.pin_snapshot() as pin:
            assert db.manager.pin_count() == 1
            assert db.manager.is_pinned(db.sharded("t").shard_names[0])
        assert db.manager.pin_count() == 0
        pin.release()  # second release is a no-op
        assert db.manager.pin_count() == 0

    def test_unknown_table_raises(self, sharded_db):
        pin = sharded_db.pin_snapshot()
        with pytest.raises(KeyError):
            sharded_db.query("nope", pin=pin)
        pin.release()

    def test_pin_on_unsharded_table(self):
        with Database(compressed=False) as db:
            db.create_table("u", make_schema(), seed_rows(100))
            pin = db.pin_snapshot()
            before = snapshot_bytes(db, "u", pin=pin)
            db.apply_batch("u", [("mod", (0,), "v", 123)])
            assert snapshot_bytes(db, "u", pin=pin) == before
            assert db.query("u")["v"][0] == 123
            pin.release()

    def test_pins_share_write_loans_at_one_lsn(self, sharded_db):
        db = sharded_db
        db.modify("t", (10,), "v", 5)  # non-empty Write-PDT
        copies_before = db.manager.stats.snapshot_copies
        a = db.pin_snapshot()
        b = db.pin_snapshot()
        # Pinning loans the master Write-PDT by reference: both pins hold
        # the same object and no copy is taken at pin time.
        assert db.manager.stats.snapshot_copies == copies_before
        shared = [
            (a.tables[n].write_pdt, b.tables[n].write_pdt)
            for n in a.tables if a.tables[n].write_pdt is not None
        ]
        assert shared and all(x is y for x, y in shared)
        # A commit on a pinned shard must copy-on-commit, not mutate the
        # loaned object under the pins.
        before = snapshot_bytes(db, "t", pin=a)
        db.modify("t", (10,), "v", 6)
        assert db.manager.stats.snapshot_copies > copies_before
        assert snapshot_bytes(db, "t", pin=a) == before
        assert snapshot_bytes(db, "t", pin=b) == before
        a.release()
        b.release()

    def test_pinned_range_query_prunes_and_matches(self, sharded_db):
        db = sharded_db
        pin = db.pin_snapshot()
        oracle = snapshot_bytes(db, "t", low=(100,), high=(300,))
        db.apply_batch("t", [("mod", (150,), "v", -99)])
        assert snapshot_bytes(db, "t", pin=pin, low=(100,),
                              high=(300,)) == oracle
        pin.release()


class TestPinsVsMaintenance:
    def test_propagate_is_copy_on_write_under_pins(self, sharded_db):
        db = sharded_db
        db.apply_batch("t", [("mod", (k,), "v", k) for k in range(0, 60, 2)])
        pin = db.pin_snapshot()
        before = snapshot_bytes(db, "t", pin=pin)
        shard = db.sharded("t").shard_names[0]
        pinned_read = pin.table(shard).read_pdt
        db.manager.propagate_write_to_read(shard)
        # the live Read-PDT was migrated into a fresh copy, not mutated
        assert db.manager.state_of(shard).read_pdt is not pinned_read
        assert snapshot_bytes(db, "t", pin=pin) == before
        pin.release()

    def test_full_checkpoint_fold_under_pin(self, sharded_db):
        db = sharded_db
        db.apply_batch("t", [("mod", (k,), "v", -k) for k in range(0, 80, 2)])
        pin = db.pin_snapshot()
        before = snapshot_bytes(db, "t", pin=pin)
        live_before = snapshot_bytes(db, "t")
        db.checkpoint("t")  # rewrites every shard's stable image
        assert snapshot_bytes(db, "t", pin=pin) == before
        assert snapshot_bytes(db, "t") == live_before
        for state in db.sharded("t").shard_states():
            assert state.read_pdt.is_empty() and state.write_pdt.is_empty()
        pin.release()

    def test_incremental_range_fold_under_pin(self):
        with Database(compressed=False, block_rows=128) as db:
            db.create_table("u", make_schema(), seed_rows(600))
            db.apply_batch("u", [("mod", (k,), "v", 1)
                                 for k in range(0, 100, 2)])
            pin = db.pin_snapshot()
            before = snapshot_bytes(db, "u", pin=pin)
            folded = checkpoint_table_range(db.manager, "u", 0, 256)
            assert folded > 0
            assert snapshot_bytes(db, "u", pin=pin) == before
            pin.release()

    def test_scheduler_defers_folds_until_pins_drain(self):
        with Database(compressed=False, checkpoint_policy="updates:10") as db:
            db.create_sharded_table("t", make_schema(), seed_rows(),
                                    shards=2)
            pin = db.pin_snapshot()
            db.apply_batch("t", [("mod", (k,), "v", 9)
                                 for k in range(0, 80, 2)])
            # the policy fired but every fold was deferred by the pin
            assert db.scheduler.pending()
            assert db.scheduler.stats.checkpoints == 0
            db.query("t")  # between-queries drain: still pinned, still deferred
            assert db.scheduler.pending()
            pin.release()
            db.query("t")  # pin drained: the fold runs now
            assert not db.scheduler.pending()
            assert db.scheduler.stats.checkpoints > 0


class TestPinsVsRebalance:
    def test_pinned_reads_identical_across_split_and_fold(self, sharded_db):
        """The acceptance criterion: a pin-holding reader sees identical
        results before and after a concurrent rebalancer split *and* a
        concurrent checkpoint fold — no torn cross-shard reads."""
        db = sharded_db
        sharded = db.sharded("t")
        db.apply_batch("t", [("ins", (k, k, "hot")) for k in range(1, 200, 2)])
        pin = db.pin_snapshot()
        before_full = snapshot_bytes(db, "t", pin=pin)
        before_range = snapshot_bytes(db, "t", pin=pin, low=(50,),
                                      high=(500,))
        n_before = sharded.num_shards
        assert split_shard(sharded, 0)  # concurrent split (explicit)
        assert sharded.num_shards == n_before + 1
        assert snapshot_bytes(db, "t", pin=pin) == before_full
        assert snapshot_bytes(db, "t", pin=pin, low=(50,),
                              high=(500,)) == before_range
        db.checkpoint("t")  # concurrent fold of every (new) shard
        assert snapshot_bytes(db, "t", pin=pin) == before_full
        assert snapshot_bytes(db, "t", pin=pin, low=(50,),
                              high=(500,)) == before_range
        # live readers see the same logical data through the new layout
        assert db.query("t")["k"].tobytes() == before_full["k"]
        pin.release()

    def test_pinned_reads_identical_across_merge(self, sharded_db):
        db = sharded_db
        sharded = db.sharded("t")
        pin = db.pin_snapshot()
        before = snapshot_bytes(db, "t", pin=pin)
        assert merge_adjacent(sharded, 1)
        assert snapshot_bytes(db, "t", pin=pin) == before
        pin.release()

    def test_retired_storage_deferred_until_pins_drain(self, sharded_db):
        db = sharded_db
        sharded = db.sharded("t")
        pin = db.pin_snapshot()
        retired = sharded.shard_names[0]
        retired_store = db.manager.state_of(retired).stable.pool.store
        assert split_shard(sharded, 0)
        # the retired shard's blocks are still alive for the pin
        assert sharded.drain_retired() == 1
        assert retired_store.has_column(retired, "k")
        pin.release()
        assert sharded.drain_retired() == 0
        assert not retired_store.has_column(retired, "k")

    def test_autonomous_rebalancer_defers_under_pins(self, sharded_db):
        db = sharded_db
        sharded = db.sharded("t")
        sharded.split_rows = 100  # every shard is over threshold
        pin = db.pin_snapshot()
        assert sharded.maybe_rebalance() == 0
        pin.release()
        assert sharded.maybe_rebalance() > 0

    def test_split_then_release_then_query_is_consistent(self, sharded_db):
        db = sharded_db
        sharded = db.sharded("t")
        pin = db.pin_snapshot()
        assert split_shard(sharded, 1)
        expected = snapshot_bytes(db, "t", pin=pin)
        pin.release()
        assert snapshot_bytes(db, "t") == expected  # no data was lost
        db.query("t")  # rebalance/maintenance point drains retired storage
        assert sharded.drain_retired() == 0
