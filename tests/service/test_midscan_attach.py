"""Mid-scan consumer attachment: deferred feeds + catch-up sub-scans.

The scheduler-level tests drive a :class:`ShardScanJob` through a gated
runner (each block is released by the test), making "the job has emitted
exactly N blocks" a deterministic state to attach in. The service-level
test opens the window with a slowed block pipeline and asserts the
``jobs_attached`` stat moved while both cursors stayed exact.
"""

import threading
import time

import pytest

from repro import Database, DataType, Schema
from repro.service.jobs import DeferredFeed, JobScheduler, ShardFeed
from repro.service.plan import ShardScanSpec, plan_scan


def make_schema():
    return Schema.build(
        ("k", DataType.INT64), ("v", DataType.INT64), sort_key=("k",),
    )


@pytest.fixture
def db():
    database = Database(compressed=False)
    database.create_table("t", make_schema(),
                          [(i, i * 11) for i in range(100)])
    yield database
    database.close()


@pytest.fixture
def pinned(db):
    pin = db.pin_snapshot()
    yield pin
    pin.release()


def spec_for(pinned, sid_lo=0, sid_hi=100):
    base = plan_scan(pinned, "t").parts[0]
    return ShardScanSpec(base.pinned, base.scan_cols, sid_lo, sid_hi)


def drain(feed):
    return list(feed.blocks())


def block_bytes(blocks):
    return [(rid, {c: a.tobytes() for c, a in arrays.items()})
            for rid, arrays in blocks]


class GatedRunner:
    """Runner whose *first* invocation yields one block per released
    permit; catch-up invocations (and any later job) run ungated."""

    def __init__(self):
        self._sem = threading.Semaphore(0)
        self.calls = []

    def release(self, n=1):
        self._sem.release(n)

    def __call__(self, spec, sid_lo, sid_hi, block_rows):
        first = not self.calls
        self.calls.append((sid_lo, sid_hi))

        def gen():
            for block in spec.stream(sid_lo, sid_hi, block_rows):
                if first:
                    self._sem.acquire()
                yield block

        return gen()


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "timed out"
        time.sleep(0.002)


class TestSchedulerAttach:
    def test_attach_mid_scan_gets_exact_full_stream(self, pinned):
        scheduler = JobScheduler()
        runner = GatedRunner()
        spec = spec_for(pinned)
        feed1, job, shared, catch_up = scheduler.schedule(spec, 10, runner)
        assert not shared and catch_up is None
        worker = threading.Thread(target=scheduler.run_job, args=(job,))
        worker.start()
        runner.release(3)
        wait_for(lambda: job._emitted == 3)

        feed2, job2, shared2, catch_up2 = scheduler.schedule(spec, 10)
        assert shared2 and job2 is job
        assert isinstance(feed2, DeferredFeed) and catch_up2 is not None
        # The catch-up replays the missed prefix through the same runner.
        catch_up2()
        assert runner.calls == [(0, 100), (0, 100)]

        runner.release(100)  # let the live scan finish
        worker.join()
        blocks1, blocks2 = drain(feed1), drain(feed2)
        assert len(blocks1) == 10  # 100 rows / block_rows=10
        assert block_bytes(blocks2) == block_bytes(blocks1)

    def test_attach_before_start_is_plain_feed(self, pinned):
        scheduler = JobScheduler()
        spec = spec_for(pinned, 0, 40)
        feed1, job, _, _ = scheduler.schedule(spec, 10)
        # A pre-start attach may extend the union range.
        feed2, job2, shared, catch_up = scheduler.schedule(
            spec_for(pinned, 20, 100), 10)
        assert shared and job2 is job and catch_up is None
        assert type(feed2) is ShardFeed
        assert (job.sid_lo, job.sid_hi) == (0, 100)
        scheduler.run_job(job)
        assert block_bytes(drain(feed1)) == block_bytes(drain(feed2))

    def test_range_outside_frozen_union_gets_fresh_job(self, pinned):
        scheduler = JobScheduler()
        runner = GatedRunner()
        spec = spec_for(pinned, 0, 50)
        feed1, job, _, _ = scheduler.schedule(spec, 10, runner)
        worker = threading.Thread(target=scheduler.run_job, args=(job,))
        worker.start()
        runner.release(1)
        wait_for(lambda: job._emitted == 1)
        # Started: the union is frozen at [0, 50); a wider spec cannot
        # join and must get its own job.
        feed2, job2, shared, catch_up = scheduler.schedule(
            spec_for(pinned, 0, 100), 10)
        assert not shared and job2 is not job and catch_up is None
        runner.release(100)
        worker.join()
        scheduler.run_job(job2)
        assert len(drain(feed1)) == 5
        assert len(drain(feed2)) == 10

    def test_attach_after_finish_gets_fresh_job(self, pinned):
        scheduler = JobScheduler()
        spec = spec_for(pinned)
        feed1, job, _, _ = scheduler.schedule(spec, 10)
        scheduler.run_job(job)
        drain(feed1)
        feed2, job2, shared, _ = scheduler.schedule(spec, 10)
        assert not shared and job2 is not job
        scheduler.run_job(job2)
        assert len(drain(feed2)) == 10

    def test_started_but_nothing_emitted_attaches_plain(self, pinned):
        scheduler = JobScheduler()
        runner = GatedRunner()
        spec = spec_for(pinned)
        feed1, job, _, _ = scheduler.schedule(spec, 10, runner)
        worker = threading.Thread(target=scheduler.run_job, args=(job,))
        worker.start()
        wait_for(lambda: job._started)
        feed2, _job2, shared, catch_up = scheduler.schedule(spec, 10)
        assert shared and catch_up is None and type(feed2) is ShardFeed
        runner.release(100)
        worker.join()
        assert block_bytes(drain(feed2)) == block_bytes(drain(feed1))

    def test_failed_catch_up_fails_only_the_late_consumer(self, pinned):
        scheduler = JobScheduler()
        runner = GatedRunner()
        spec = spec_for(pinned)
        feed1, job, _, _ = scheduler.schedule(spec, 10, runner)
        worker = threading.Thread(target=scheduler.run_job, args=(job,))
        worker.start()
        runner.release(2)
        wait_for(lambda: job._emitted == 2)
        feed2, _j, _s, catch_up = scheduler.schedule(spec, 10)

        def boom(s, lo, hi, br):
            raise RuntimeError("catch-up storage gone")

        job._runner = boom  # sabotage only the re-scan
        catch_up()
        job._runner = runner
        runner.release(100)
        worker.join()
        assert len(drain(feed1)) == 10  # the live consumer is untouched
        with pytest.raises(RuntimeError, match="catch-up storage gone"):
            drain(feed2)


class TestServiceAttach:
    def test_late_query_attaches_and_stays_exact(self):
        db = Database(compressed=False)
        db.create_table("t", make_schema(),
                        [(i, i * 7) for i in range(30_000)])
        oracle = db.query("t")
        original_stream = ShardScanSpec.stream

        def slowed(self, *args, **kwargs):
            for block in original_stream(self, *args, **kwargs):
                time.sleep(0.005)
                yield block

        ShardScanSpec.stream = slowed
        # The monkeypatch above only slows parent-side (thread-mode)
        # scans; when REPRO_EXECUTOR=process routes the job into a
        # worker, the worker-side hook is the one that paces blocks.
        db.exec_router.block_delay_s = 0.005
        try:
            with db.serve(workers=2) as svc:
                attached = 0
                for _ in range(5):  # timing-dependent; retry the window
                    cur1 = svc.submit_query("t")
                    time.sleep(0.04)  # let the job start and emit blocks
                    cur2 = svc.submit_query("t")
                    rel1, rel2 = cur1.to_relation(), cur2.to_relation()
                    for rel in (rel1, rel2):
                        for c in ("k", "v"):
                            assert rel[c].tobytes() == oracle[c].tobytes()
                    attached = svc.stats.jobs_attached
                    if attached:
                        break
                assert attached >= 1
        finally:
            ShardScanSpec.stream = original_stream
            db.close()
