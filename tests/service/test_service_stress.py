"""Concurrency stress: N streaming readers against M writers.

Every reader pins a snapshot, streams one full-table and one range cursor
through the service while writers (scalar and batch, through the same
service) keep committing, and records the streamed results. After the dust
settles, each reader's streams are compared against the pinned-snapshot
oracle — the same pin re-read synchronously — so any torn read, lost
block, double-merged I/O path, or cross-shard inconsistency shows up as a
byte difference. A second variant lets the autonomous maintenance (folds
via the checkpoint policy, splits via the rebalancer thresholds) run
between requests while the stress is ongoing.
"""

import random
import threading

import pytest

from repro import Database, DataType, Schema

N_READERS = 6
M_WRITERS = 3
WRITES_PER_WRITER = 12


def make_schema():
    return Schema.build(
        ("k", DataType.INT64), ("v", DataType.INT64), sort_key=("k",),
    )


def rel_values(rel):
    return {
        c: rel[c].tolist() if rel[c].dtype == object else rel[c].tobytes()
        for c in rel.column_names
    }


def run_stress(db, svc, *, seed: int) -> None:
    table = "t"
    errors: list[BaseException] = []
    results: list[tuple] = []  # (pin, low, high, streamed_full, streamed_rng)
    results_lock = threading.Lock()
    start = threading.Barrier(N_READERS + M_WRITERS)

    def reader(i: int) -> None:
        rng = random.Random(seed + i)
        try:
            start.wait()
            pin = svc.pin()
            lo = rng.randrange(0, 1200)
            hi = lo + rng.randrange(100, 900)
            full_cur, range_cur = svc.submit_many(
                [{"table": table},
                 {"table": table, "low": (lo,), "high": (hi,)}],
                pin=pin,
            )
            streamed_full = rel_values(full_cur.to_relation())
            streamed_rng = rel_values(range_cur.to_relation())
            with results_lock:
                results.append((pin, lo, hi, streamed_full, streamed_rng))
        except BaseException as exc:  # surface in the main thread
            errors.append(exc)

    def writer(i: int) -> None:
        rng = random.Random(10_000 + seed + i)
        try:
            start.wait()
            for n in range(WRITES_PER_WRITER):
                if n % 3 == 0:  # scalar op
                    svc.submit_update(
                        table,
                        ("mod", (rng.randrange(500) * 2,), "v",
                         rng.randrange(10**6)),
                    ).result()
                else:  # bulk batch: mods plus the occasional fresh insert
                    ops = [
                        ("mod", (rng.randrange(500) * 2,), "v",
                         rng.randrange(10**6))
                        for _ in range(8)
                    ]
                    ops.append(("ins", (1001 + 2 * (i * 1000 + n), -1)))
                    deduped, seen = [], set()
                    for op in ops:
                        key = op[1]
                        if key in seen:
                            continue
                        seen.add(key)
                        deduped.append(op)
                    svc.submit_batch(table, deduped).result()
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=reader, args=(i,))
               for i in range(N_READERS)]
    threads += [threading.Thread(target=writer, args=(i,))
                for i in range(M_WRITERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(t.is_alive() for t in threads), "stress threads hung"
    assert not errors, errors

    # Every streamed cursor must equal its pinned-snapshot oracle.
    assert len(results) == N_READERS
    for pin, lo, hi, streamed_full, streamed_rng in results:
        assert streamed_full == rel_values(db.query(table, pin=pin))
        assert streamed_rng == rel_values(
            db.query_range(table, low=(lo,), high=(hi,), pin=pin))
        pin.release()

    # and the final live image is exactly what the committed writes built
    final = db.query(table)
    inserted = M_WRITERS * (WRITES_PER_WRITER
                            - (WRITES_PER_WRITER + 2) // 3)
    assert final.num_rows == 500 + inserted


@pytest.mark.parametrize("seed", [7, 21])
def test_readers_vs_writers_pinned_oracle(seed):
    with Database(compressed=False) as db:
        db.create_sharded_table(
            "t", make_schema(), [(i * 2, i) for i in range(500)], shards=4)
        with db.serve(workers=4) as svc:
            run_stress(db, svc, seed=seed)


def test_stress_with_autonomous_maintenance_and_rebalancing():
    """Folds (checkpoint policy) and splits (rebalancer thresholds) run at
    the service's between-requests maintenance points while readers and
    writers hammer the table; pinned oracles must still match."""
    with Database(compressed=False, checkpoint_policy="updates:64") as db:
        db.create_sharded_table(
            "t", make_schema(), [(i * 2, i) for i in range(500)],
            shards=2, split_rows=400, merge_rows=50)
        with db.serve(workers=4) as svc:
            run_stress(db, svc, seed=3)
        # maintenance really happened at some drain point, or is pending
        stats = db.scheduler.stats
        assert stats.deferrals + stats.checkpoints + stats.propagations > 0
