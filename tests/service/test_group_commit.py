"""Multi-writer group commit through the service: correctness under
concurrency, acknowledgement-implies-durable, and the PR's regression
fixes (lease double release, closed-service stats)."""

import threading
from concurrent.futures import wait

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, DataType, Schema
from repro.service import ServiceClosed
from repro.txn import WriteAheadLog
from repro.txn.group_commit import GroupCommitPolicy

SCHEMA = Schema.build(
    ("k", DataType.INT64), ("v", DataType.INT64), sort_key=("k",),
)

N_ROWS = 200


def make_db(storage_backend, root=None, **kwargs):
    if storage_backend.startswith("mmap"):
        kwargs.setdefault("storage_path", root)
        db = Database(compressed=False, storage="mmap", **kwargs)
    else:
        db = Database(compressed=False, storage="memory", **kwargs)
    db.create_sharded_table(
        "t", SCHEMA, [(i, 0) for i in range(N_ROWS)], shards=4)
    return db


def image(db):
    rel = db.query("t")
    return list(zip(rel["k"].tolist(), rel["v"].tolist()))


def writer_ops(writer: int, n: int):
    """Disjoint keys per writer, one op per key: the final image is
    independent of execution order, so a concurrent run must equal the
    serial oracle exactly (n <= 20)."""
    base = (writer + 1) * 10_000
    ops = [("ins", (base + i, writer)) for i in range(n)]
    ops += [("mod", (writer * 20 + i,), "v", writer * 100 + i)
            for i in range(n)]
    return ops


class TestConcurrentWritersMatchSerialOracle:
    @pytest.mark.parametrize("writers", [2, 8])
    def test_final_state_matches_serial(self, storage_backend, tmp_path,
                                        writers):
        serial = make_db(storage_backend, tmp_path / "serial")
        for w in range(writers):
            for op in writer_ops(w, 12):
                serial.apply_batch("t", [op])
        oracle = image(serial)
        serial.close()

        db = make_db(storage_backend, tmp_path / "conc")
        with db.serve(workers=writers) as svc:
            futures = [
                svc.submit_update("t", op)
                for w in range(writers)
                for op in writer_ops(w, 12)
            ]
            done, not_done = wait(futures, timeout=120)
            assert not not_done
            for f in done:
                f.result()
        assert sorted(image(db)) == sorted(oracle)
        db.close()

    def test_concurrent_batches_coalesce(self, tmp_path):
        # A lingering policy makes coalescing deterministic: the first
        # leader waits out the delay, the other writers' records join it.
        db = make_db("mmap", tmp_path / "db",
                     group_commit=GroupCommitPolicy(max_delay_s=0.05))
        with db.serve(workers=4) as svc:
            futures = [
                svc.submit_batch("t", writer_ops(w, 6)) for w in range(4)
            ]
            for f in futures:
                f.result(timeout=120)
            stats = svc.stats
            assert stats.group_commits == 4
            assert stats.group_commits_coalesced >= 2
            assert db.manager.wal.group.stats.max_group >= 2
        db.close()


class TestAcknowledgementImpliesDurable:
    def test_acked_commits_survive_load(self, tmp_path):
        db = make_db("mmap", tmp_path / "db")
        with db.serve(workers=4) as svc:
            futures = [svc.submit_batch("t", writer_ops(w, 4))
                       for w in range(4)]
            for f in futures:
                f.result(timeout=120)
            # Every acknowledged commit must already be on disk, without
            # any close/flush help.
            loaded = WriteAheadLog.load(db.manager.wal.path)
            assert len(loaded.records) >= 4
            assert {r.lsn for r in loaded.records} \
                == {r.lsn for r in db.manager.wal.records}
        db.close()

    def test_reopen_after_concurrent_writes(self, tmp_path):
        # Kill-at-boundary coverage lives in scripts/crash_matrix.py; this
        # covers the plain close-and-recover path under grouped commits.
        root = tmp_path / "db"
        db = make_db("mmap", root)
        with db.serve(workers=4) as svc:
            futures = [
                svc.submit_update("t", op)
                for w in range(4) for op in writer_ops(w, 8)
            ]
            for f in futures:
                f.result(timeout=120)
        oracle = image(db)
        db.close()
        again = Database.recover(root)
        assert image(again) == oracle
        again.close()


class TestLeaseDoubleRelease:
    def test_cursor_closed_after_service_close_releases_pin_once(self):
        db = make_db("memory")
        svc = db.serve(workers=2)
        cursor = svc.submit_query("t")  # never drained
        manager = db.manager
        releases = []
        original = manager.release_pin

        def counting_release(pin):
            releases.append(pin.pin_id)
            original(pin)

        manager.release_pin = counting_release
        svc.close()          # force-releases the leftover lease's pin
        cursor.close()       # late cursor close must NOT release again
        assert len(releases) == 1
        assert manager.pin_count() == 0
        db.close()

    def test_normal_cursor_lifecycle_still_releases(self):
        db = make_db("memory")
        with db.serve(workers=2) as svc:
            cursor = svc.submit_query("t")
            cursor.to_relation()
            assert db.manager.pin_count() == 0
        db.close()


class TestClosedServiceStats:
    def test_rejected_submissions_do_not_count(self):
        db = make_db("memory")
        svc = db.serve(workers=1)
        svc.submit_batch("t", [("mod", (0,), "v", 1)]).result(timeout=60)
        svc.submit_update("t", ("mod", (1,), "v", 1)).result(timeout=60)
        svc.close()
        assert svc.stats.batches == 1
        assert svc.stats.updates == 1
        with pytest.raises(ServiceClosed):
            svc.submit_batch("t", [("mod", (0,), "v", 2)])
        with pytest.raises(ServiceClosed):
            svc.submit_update("t", ("mod", (1,), "v", 2))
        assert svc.stats.batches == 1  # rejections not counted
        assert svc.stats.updates == 1
        db.close()


class TestPinAgeSurfacing:
    def test_overdue_pin_warning_counted(self, caplog):
        db = Database(compressed=False, checkpoint_policy="updates:1",
                      max_pin_age_s=0.0)
        db.create_table("t", SCHEMA, [(i, 0) for i in range(50)])
        pin = db.pin_snapshot()
        db.apply_batch("t", [("mod", (0,), "v", 1),
                             ("mod", (1,), "v", 2)])  # triggers a consult
        stats = db.scheduler.stats
        assert stats.pin_deferrals >= 1
        assert stats.overdue_pin_warnings >= 1
        assert stats.oldest_pin_age_s >= 0.0
        assert any("max_pin_age_s" in r.getMessage()
                   for r in caplog.records)
        pin.release()
        db.close()

    def test_young_pins_do_not_warn(self):
        db = Database(compressed=False, checkpoint_policy="updates:1",
                      max_pin_age_s=3600.0)
        db.create_table("t", SCHEMA, [(i, 0) for i in range(50)])
        pin = db.pin_snapshot()
        db.apply_batch("t", [("mod", (0,), "v", 1),
                             ("mod", (1,), "v", 2)])
        assert db.scheduler.stats.pin_deferrals >= 1
        assert db.scheduler.stats.overdue_pin_warnings == 0
        pin.release()
        db.close()


group_sizes = st.lists(st.integers(1, 4), min_size=1, max_size=5)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(sizes=group_sizes, checkpoint_after=st.integers(0, 4),
       max_group=st.integers(1, 8))
def test_group_sizes_with_midstream_checkpoints(tmp_path, sizes,
                                                checkpoint_after,
                                                max_group):
    """Any mix of concurrent group sizes and a mid-stream checkpoint
    (whose WAL rebase drains staged tickets) must leave the database
    equal to the serial application of the same ops and recoverable to
    exactly that state."""
    import shutil

    root = tmp_path / f"gdb-{abs(hash((tuple(sizes), checkpoint_after, max_group))) % (1 << 30)}"
    if root.exists():  # hypothesis reuses tmp_path across examples
        shutil.rmtree(root)
    db = Database(
        compressed=False, storage="mmap", storage_path=root,
        group_commit=GroupCommitPolicy(max_group=max_group),
    )
    db.create_table("t", SCHEMA, [(i, 0) for i in range(40)])
    expected = {i: 0 for i in range(40)}
    with db.serve(workers=4) as svc:
        for round_no, size in enumerate(sizes):
            futures = []
            for w in range(size):
                key = 1000 + round_no * 10 + w
                expected[key] = w
                futures.append(
                    svc.submit_batch("t", [("ins", (key, w))]))
            for f in futures:
                f.result(timeout=120)
            if round_no == checkpoint_after:
                db.checkpoint("t")  # rebases the WAL mid-stream
    assert dict(zip(db.query("t")["k"].tolist(),
                    db.query("t")["v"].tolist())) == expected
    db.close()
    again = Database.recover(root)
    assert dict(zip(again.query("t")["k"].tolist(),
                    again.query("t")["v"].tolist())) == expected
    again.close()
