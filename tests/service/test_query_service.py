"""QueryService behavior: cursors, sharing, admission, writes, shutdown."""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro import Database, DataType, Schema
from repro.service import ServiceClosed, ServiceSaturated
from repro.service.jobs import ShardFeed


def make_schema():
    return Schema.build(
        ("k", DataType.INT64), ("a", DataType.INT64),
        ("b", DataType.INT64), sort_key=("k",),
    )


def seed_rows(n=1000):
    return [(i * 2, i, i % 7) for i in range(n)]


def rel_values(rel):
    return {
        c: rel[c].tolist() if rel[c].dtype == object else rel[c].tobytes()
        for c in rel.column_names
    }


@pytest.fixture
def db():
    database = Database(compressed=False)
    database.create_sharded_table("t", make_schema(), seed_rows(), shards=4)
    database.create_table("flat", make_schema(), seed_rows(200))
    yield database
    database.close()


@pytest.fixture
def svc(db):
    with db.serve(workers=2) as service:
        yield service


class TestCursorResults:
    def test_full_scan_matches_sync_query(self, db, svc):
        cur = svc.submit_query("t")
        assert rel_values(cur.to_relation()) == rel_values(db.query("t"))
        assert cur.stats.rows == 1000
        assert cur.stats.shards == 4

    def test_range_scan_matches_sync_query_range(self, db, svc):
        cur = svc.submit_range("t", low=(100,), high=(500,), columns=["k", "a"])
        oracle = db.query_range("t", low=(100,), high=(500,),
                                columns=["k", "a"])
        assert rel_values(cur.to_relation()) == rel_values(oracle)

    def test_unsharded_table_single_job(self, db, svc):
        cur = svc.submit_query("flat", columns=["k"])
        assert cur.stats.shards == 1
        assert rel_values(cur.to_relation()) \
            == rel_values(db.query("flat", columns=["k"]))

    def test_block_protocol_rids_are_contiguous(self, db, svc):
        cur = svc.submit_query("t", columns=["k"])
        expect_rid = 0
        total = 0
        for rid, arrays in cur:
            assert rid == expect_rid
            n = len(arrays["k"])
            assert n > 0
            expect_rid += n
            total += n
        assert total == 1000
        assert cur.next_block() is None  # exhausted cursors stay exhausted

    def test_range_pruning_skips_cold_shards(self, db, svc):
        # keys 0..1998; shard 3 owns the top quarter
        cur = svc.submit_range("t", low=(0,), high=(100,))
        assert cur.stats.shards == 1
        cur.to_relation()

    def test_streaming_before_later_shards_finish(self, db):
        # One worker: shard jobs run serially, but the first block must
        # arrive while later shards haven't even started.
        with db.serve(workers=1) as svc:
            cur = svc.submit_query("t", columns=["k"])
            first = cur.next_block()
            assert first is not None and first[0] == 0
            cur.close()

    def test_cursor_context_manager_and_close(self, db, svc):
        with svc.submit_query("t") as cur:
            cur.next_block()
        assert cur.next_block() is None
        assert svc.inflight() == 0

    def test_results_are_a_snapshot_not_live(self, db, svc):
        pin = svc.pin()
        cur = svc.submit_query("t", columns=["a"], pin=pin)
        svc.submit_batch("t", [("mod", (0,), "a", 12345)]).result()
        rel = cur.to_relation()
        assert rel["a"][0] == 0  # pinned before the write committed
        live = svc.submit_query("t", columns=["a"]).to_relation()
        assert live["a"][0] == 12345
        pin.release()


class TestSharedScans:
    def test_submit_many_shares_jobs(self, db, svc):
        pin = svc.pin()
        cursors = svc.submit_many(
            [{"table": "t", "low": (0,), "high": (800,), "columns": ["k"]}
             for _ in range(4)],
            pin=pin,
        )
        # first cursor scheduled real jobs; the rest attached to them
        assert cursors[0].stats.shared_jobs == 0
        assert all(c.stats.shared_jobs == c.stats.shards
                   for c in cursors[1:])
        oracle = rel_values(db.query_range("t", low=(0,), high=(800,),
                                           columns=["k"]))
        for cur in cursors:
            assert rel_values(cur.to_relation()) == oracle
        pin.release()

    def test_shared_jobs_serve_different_ranges(self, db, svc):
        """Overlapping-but-distinct ranges share the union scan; each
        cursor's own filter trims it back to exactly its range."""
        pin = svc.pin()
        ranges = [(0, 400), (100, 500), (200, 600), (50, 450)]
        cursors = svc.submit_many(
            [{"table": "t", "low": (lo,), "high": (hi,)}
             for lo, hi in ranges],
            pin=pin,
        )
        for cur, (lo, hi) in zip(cursors, ranges):
            oracle = db.query_range("t", low=(lo,), high=(hi,))
            assert rel_values(cur.to_relation()) == rel_values(oracle)
        assert svc.stats.jobs_shared > 0
        pin.release()

    def test_same_lsn_pins_coalesce_across_submissions(self, db, svc):
        """Separate requests under separate pins still share scans while
        no commit intervenes (the snapshot cache hands both pins the same
        Write-PDT copy, so the version identity matches)."""
        db.apply_batch("t", [("mod", (0,), "a", 5)])  # non-empty Write-PDT
        a = svc.submit_range("t", low=(0,), high=(300,), columns=["k"])
        b = svc.submit_range("t", low=(0,), high=(300,), columns=["k"])
        assert rel_values(a.to_relation()) == rel_values(b.to_relation())

    def test_attaching_to_an_instantly_finishing_job_keeps_the_pin(self, db):
        """A shared job from an earlier submission can finish while a new
        batch is still being planned; its done-callback must not drain
        the new lease's count to zero mid-submit (the pin would release
        under the batch's own not-yet-started jobs)."""
        from repro.service.jobs import ShardScanJob

        original = ShardScanJob.add_done_callback

        def eager(self, callback):
            # Simulate the racing worker: the shared job completes the
            # instant a later submission registers its lease hold.
            callback()
            original(self, lambda: None)

        with db.serve(workers=1) as svc:
            first = svc.submit_query("t", columns=["k"])
            ShardScanJob.add_done_callback = eager
            try:
                second = svc.submit_query("t", columns=["k"])
            finally:
                ShardScanJob.add_done_callback = original
            assert db.manager.pin_count() >= 1  # second's pin survived
            assert first.to_relation().num_rows == 1000
            assert second.to_relation().num_rows == 1000

    def test_inverted_range_bounds_yield_empty_cursor(self, db, svc):
        cur = svc.submit_range("t", low=(500,), high=(100,))
        assert cur.to_relation().num_rows == 0
        pin = db.pin_snapshot()
        assert db.query_range("t", low=(500,), high=(100,),
                              pin=pin).num_rows == 0
        pin.release()

    def test_no_sharing_across_different_versions(self, db, svc):
        a = svc.submit_query("t", columns=["k"])
        svc.submit_batch("t", [("ins", (1, 0, 0))]).result()
        b = svc.submit_query("t", columns=["k"])
        assert a.to_relation().num_rows == 1000
        assert b.to_relation().num_rows == 1001


class TestAdmissionControl:
    def test_saturation_raises_with_timeout(self, db):
        with db.serve(workers=1, max_inflight=1,
                      admission_timeout=0.05) as svc:
            held = svc.submit_query("t")
            with pytest.raises(ServiceSaturated):
                svc.submit_query("t")
            held.close()
            svc.submit_query("t").close()  # slot freed
            assert svc.admission.rejected == 1

    def test_backpressure_blocks_then_admits(self, db):
        with db.serve(workers=2, max_inflight=1) as svc:
            held = svc.submit_query("t")
            admitted = []

            def second():
                admitted.append(svc.submit_query("t", columns=["k"]))

            thread = threading.Thread(target=second)
            thread.start()
            time.sleep(0.05)
            assert not admitted  # blocked on the single slot
            held.close()
            thread.join(timeout=5)
            assert admitted
            admitted[0].close()

    def test_batch_larger_than_limit_rejected(self, db):
        with db.serve(max_inflight=2) as svc:
            with pytest.raises(ValueError):
                svc.submit_many([{"table": "t"}] * 3)
            assert svc.inflight() == 0

    def test_failed_submission_releases_slots_pins_and_jobs(self, db):
        """A bad request must not leak admission slots, pin leases, or
        half-registered scan jobs."""
        with db.serve(max_inflight=2) as svc:
            for _ in range(4):  # > max_inflight: any leak would wedge this
                with pytest.raises(KeyError):
                    svc.submit_many([{"table": "t"},
                                     {"table": "missing"}])
            assert svc.inflight() == 0
            assert db.manager.pin_count() == 0
            assert not svc._scheduler._open  # no stranded jobs to attach to
            cur = svc.submit_query("t")  # service still fully usable
            assert cur.to_relation().num_rows == 1000

    def test_batch_admission_is_all_or_nothing(self, db):
        """A batch never holds partial slots while waiting (the
        hold-and-wait deadlock two concurrent batches could hit)."""
        with db.serve(max_inflight=4, admission_timeout=0.05) as svc:
            held = svc.submit_many([{"table": "t"}] * 3)
            with pytest.raises(ServiceSaturated):
                svc.submit_many([{"table": "t"}] * 3)
            assert svc.inflight() == 3  # the failed batch kept nothing
            for cur in held:
                cur.close()
            svc.submit_many([{"table": "t"}] * 3)  # admits once freed

    def test_peak_inflight_tracked(self, db, svc):
        cursors = svc.submit_many([{"table": "t"}] * 3)
        assert svc.admission.peak_inflight >= 3
        for cur in cursors:
            cur.close()
        assert svc.inflight() == 0


class TestWrites:
    def test_scalar_updates_and_batches(self, db, svc):
        assert svc.submit_update("t", ("ins", (1, -1, -1))).result() is None
        assert svc.submit_batch("t", [("mod", (0,), "a", 42),
                                      ("del", (2,))]).result() == 2
        rel = svc.submit_query("t").to_relation()
        assert rel.num_rows == 1000  # +1 insert, -1 delete
        assert rel["a"][0] == 42 and rel["a"][1] == -1
        assert svc.stats.updates == 1 and svc.stats.batches == 1

    def test_write_errors_propagate_through_future(self, db, svc):
        with pytest.raises(Exception):
            svc.submit_batch("t", [("del", (99999,))]).result()

    def test_bad_op_kind_rejected(self, db, svc):
        with pytest.raises(ValueError):
            svc.submit_update("t", ("upsert", (1, 2, 3)))

    def test_concurrent_writers_serialize(self, db, svc):
        futures = [
            svc.submit_batch("t", [("mod", (k * 2,), "b", i)])
            for i, k in enumerate(range(20))
        ]
        assert [f.result() for f in futures] == [1] * 20
        assert db.manager.stats.commits >= 20


class TestMaintenanceHook:
    def test_deferred_folds_drain_between_requests(self, db):
        with Database(compressed=False,
                      checkpoint_policy="updates:16") as folding:
            folding.create_sharded_table("t", make_schema(), seed_rows(),
                                         shards=2)
            with folding.serve(workers=2) as svc:
                pin = svc.pin()
                cur = svc.submit_query("t", pin=pin)
                svc.submit_batch(
                    "t", [("mod", (k,), "a", 1) for k in range(0, 80, 2)]
                ).result()
                # policy fired mid-request; the pin deferred the fold
                assert folding.scheduler.pending()
                cur.to_relation()
                pin.release()
                deadline = time.time() + 5
                while folding.scheduler.pending() and time.time() < deadline:
                    time.sleep(0.01)
                assert not folding.scheduler.pending()
                assert svc.stats.maintenance_runs > 0


class TestAsyncFacade:
    def test_async_query_and_iteration(self, db, svc):
        async def main():
            cur = await svc.query("t", columns=["k"])
            total = 0
            async for _, arrays in cur:
                total += len(arrays["k"])
            return total

        assert asyncio.run(main()) == 1000

    def test_async_mixed_workload(self, db, svc):
        async def analytics():
            cur = await svc.query_range("t", low=(0,), high=(600,))
            rel = await asyncio.to_thread(cur.to_relation)
            return rel.num_rows

        async def refresh():
            return await svc.apply_batch(
                "t", [("mod", (10,), "a", -5), ("ins", (3, 0, 0))])

        async def main():
            return await asyncio.gather(analytics(), refresh(),
                                        analytics())

        n1, applied, n2 = asyncio.run(main())
        assert applied == 2
        assert n1 in (301, 302) and n2 in (301, 302)  # before/after insert

    def test_async_scalar_update(self, db, svc):
        asyncio.run(svc.update("t", ("mod", (0,), "a", 7)))
        assert db.query("t", sk=(0,)).rows()[0][1] == 7


class TestLifecycle:
    def test_closed_service_rejects_submissions(self, db):
        svc = db.serve()
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.submit_query("t")
        with pytest.raises(ServiceClosed):
            svc.submit_batch("t", [])
        svc.close()  # idempotent

    def test_database_close_joins_service_workers(self, db):
        svc = db.serve(workers=2)
        cur = svc.submit_query("t")
        db.close()
        assert svc.closed
        assert cur.to_relation().num_rows == 1000  # buffered blocks drain

    def test_early_cursor_close_keeps_pin_until_jobs_finish(self, db):
        """Closing a cursor must not release its pin while the shard jobs
        are still scanning the pinned objects: the job's lease hold keeps
        maintenance deferred until the scan actually stops."""
        from repro.service.jobs import ShardScanJob

        started = threading.Event()
        release = threading.Event()
        original_run = ShardScanJob.run

        def slow_run(self):
            started.set()
            release.wait(timeout=10)
            original_run(self)

        ShardScanJob.run = slow_run
        try:
            with db.serve(workers=1) as svc:
                cur = svc.submit_query("t")
                assert started.wait(timeout=10)  # first job is scanning
                cur.close()  # early close while jobs still run
                assert db.manager.pin_count() == 1, \
                    "pin released while shard jobs were still running"
                release.set()
        finally:
            ShardScanJob.run = original_run
            release.set()
        assert db.manager.pin_count() == 0  # drained once jobs finished

    def test_close_releases_unfinished_pin_leases(self, db):
        svc = db.serve()
        svc.submit_query("t")  # cursor never consumed
        svc.close()
        assert db.manager.pin_count() == 0

    def test_job_failure_propagates_to_consumer(self):
        feed = ShardFeed()
        feed.put((0, {"k": np.arange(3)}))
        feed.fail(RuntimeError("shard scan died"))
        blocks = feed.blocks()
        assert next(blocks)[0] == 0
        with pytest.raises(RuntimeError, match="shard scan died"):
            next(blocks)
