"""Property test: pushed-down filter+aggregate ≡ central evaluation.

Hypothesis generates random predicate trees (every leaf op, AND/OR/NOT
combinators) and random partial-aggregate specs, then asserts the
service's pushed-down answer is byte-identical to filtering/aggregating
the full scan centrally — on both the thread and the process executor,
over a table carrying deltas on top of its published image.

Determinism notes: integer measures and dyadic floats (multiples of
0.25) make every aggregation order-independent and exact, so the
comparison is on bytes, not approximate. The two-request examples
submit both queries in one batch, exercising the share/no-share
decision (identical predicates share one pass; different ones must
not), mirroring mid-scan arrivals whose filters are incompatible.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, DataType, Schema
from repro.engine import expr as ex
from repro.engine.relation import Relation

SCHEMA = Schema.build(
    ("k", DataType.INT64), ("cat", DataType.INT64),
    ("v", DataType.INT64), ("w", DataType.FLOAT64),
    ("s", DataType.STRING),
    sort_key=("k",),
)
N_ROWS = 12_000  # 4 shards x 3k, above the router's MIN_REMOTE_ROWS


def seed_arrays(n=N_ROWS):
    rng = np.random.default_rng(11)
    return {
        "k": np.arange(n, dtype=np.int64),
        "cat": rng.integers(0, 5, n).astype(np.int64),
        "v": rng.integers(-200, 200, n).astype(np.int64),
        "w": (rng.integers(-30, 30, n) / 4.0),  # dyadic: exact sums
        "s": np.array([f"t{i % 7}" for i in range(n)], dtype=object),
    }


@pytest.fixture(scope="module")
def envs(tmp_path_factory):
    built = {}
    for executor in ("thread", "process"):
        root = tmp_path_factory.mktemp(f"push-{executor}")
        db = Database(storage="mmap", storage_path=str(root),
                      executor=executor, workers=2)
        db.create_sharded_table_from_arrays("t", SCHEMA, seed_arrays(),
                                            shards=4)
        ops = [("mod", (i,), "v", 999) for i in range(0, N_ROWS, 301)]
        ops += [("del", (i,)) for i in range(1, N_ROWS, 701)]
        ops += [("ins", (N_ROWS + i, i % 5, -7, 1.25, "tx"))
                for i in range(64)]
        db.apply_batch("t", ops)
        svc = db.serve(workers=3)
        full = svc.submit_query("t").to_relation()
        built[executor] = (db, svc, full)
    yield built
    for db, _svc, _full in built.values():
        db.close()


# -- strategies -------------------------------------------------------------

int_leaf = st.one_of(
    st.builds(ex.between, st.just("k"),
              st.integers(0, N_ROWS), st.integers(0, N_ROWS)),
    st.builds(ex.ge, st.just("k"), st.integers(0, N_ROWS + 100)),
    st.builds(ex.lt, st.just("k"), st.integers(0, N_ROWS + 100)),
    st.builds(ex.eq, st.just("cat"), st.integers(0, 6)),
    st.builds(ex.ne, st.just("cat"), st.integers(0, 6)),
    st.builds(ex.isin, st.just("cat"),
              st.lists(st.integers(0, 6), min_size=1, max_size=4)),
    st.builds(ex.gt, st.just("v"), st.integers(-250, 1000)),
    st.builds(ex.le, st.just("v"), st.integers(-250, 1000)),
    st.builds(ex.ge, st.just("w"), st.integers(-10, 10).map(
        lambda i: i / 2.0)),
)

str_leaf = st.one_of(
    st.builds(ex.eq, st.just("s"),
              st.sampled_from(["t0", "t3", "tx", "zz"])),
    st.builds(ex.isin, st.just("s"),
              st.lists(st.sampled_from(["t1", "t2", "tx", "nope"]),
                       min_size=1, max_size=3)),
    st.builds(ex.starts_with, st.just("s"), st.sampled_from(["t", "z"])),
    st.builds(ex.contains, st.just("s"), st.sampled_from(["x", "1"])),
    st.builds(ex.like, st.just("s"), st.sampled_from(["t%", "%x", "t_"])),
)

leaf = st.one_of(int_leaf, str_leaf)

where_strategy = st.recursive(
    leaf,
    lambda children: st.one_of(
        st.builds(lambda a, b: ex.and_(a, b), children, children),
        st.builds(lambda a, b: ex.or_(a, b), children, children),
        st.builds(ex.not_, children),
    ),
    max_leaves=5,
)

AGG_CHOICES = [
    ("total_v", ("v", "sum")),
    ("total_w", ("w", "sum")),
    ("n", ("*", "count")),
    ("avg_v", ("v", "avg")),
    ("avg_w", ("w", "avg")),
    ("min_v", ("v", "min")),
    ("max_w", ("w", "max")),
]

agg_strategy = st.builds(
    lambda group_by, picks: ex.AggSpec(
        tuple(group_by), {name: spec for name, spec in picks}),
    st.sampled_from([(), ("cat",), ("s",), ("cat", "s")]),
    st.lists(st.sampled_from(AGG_CHOICES), min_size=1, max_size=4,
             unique_by=lambda p: p[0]),
)


def central(rel: Relation, where=None, agg=None) -> Relation:
    if where is not None:
        rel = rel.filter(where.mask({c: rel[c] for c in rel.column_names}))
    if agg is not None:
        return rel.group_by(*agg.group_by).agg(
            **{name: (col, func) for name, col, func in agg.aggs})
    return rel.select("k", "cat", "v", "w", "s")


def assert_bytes_equal(got: Relation, want: Relation):
    assert got.column_names == want.column_names
    assert got.num_rows == want.num_rows
    for c in want.column_names:
        a, b = got[c], want[c]
        if a.dtype == object or b.dtype == object:
            assert a.tolist() == b.tolist(), c
        else:
            assert a.dtype == b.dtype, c
            assert a.tobytes() == b.tobytes(), c


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(where=where_strategy, agg=st.one_of(st.none(), agg_strategy))
def test_pushed_equals_central_on_both_executors(envs, where, agg):
    for executor, (_db, svc, full) in envs.items():
        got = svc.submit_query("t", where=where, agg=agg).to_relation()
        assert_bytes_equal(got, central(full, where, agg))


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(where_a=where_strategy, where_b=where_strategy,
       agg=st.one_of(st.none(), agg_strategy))
def test_batched_mixed_predicates_stay_exact(envs, where_a, where_b, agg):
    """Two requests in one batch — equal predicates share a pass,
    different ones must not contaminate each other either way."""
    _db, svc, full = envs["thread"]
    cursors = svc.submit_many([
        {"table": "t", "where": where_a, "agg": agg},
        {"table": "t", "where": where_b, "agg": agg},
    ])
    rel_a, rel_b = (c.to_relation() for c in cursors)
    assert_bytes_equal(rel_a, central(full, where_a, agg))
    assert_bytes_equal(rel_b, central(full, where_b, agg))
