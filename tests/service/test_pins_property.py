"""Property test: snapshot pins survive any maintenance interleaving.

Hypothesis drives a random sequence of update batches interleaved with
shard splits, merges, full checkpoints, and Write→Read propagations,
taking snapshot pins at random points along the way (simulating readers
mid-stream). Invariant: every live pin keeps observing exactly the rows
it pinned — full scans and range scans both — no matter which maintenance
ran after it, and the live image always reflects every applied batch.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, DataType, Schema
from repro.shard import merge_adjacent, split_shard

SCHEMA = Schema.build(
    ("k", DataType.INT64), ("v", DataType.INT64), sort_key=("k",),
)

N_ROWS = 120


def rel_rows(db, pin=None, low=None, high=None):
    if low is None:
        rel = db.query("t", pin=pin)
    else:
        rel = db.query_range("t", low=low, high=high, pin=pin)
    return list(zip(rel["k"].tolist(), rel["v"].tolist()))


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("mod"), st.integers(0, N_ROWS - 1),
                  st.integers(-999, 999)),
        st.tuples(st.just("ins"), st.integers(0, 400),
                  st.integers(-999, 999)),
        st.tuples(st.just("del"), st.integers(0, N_ROWS - 1)),
    ),
    min_size=1, max_size=12,
)

step_strategy = st.tuples(
    ops_strategy,
    st.booleans(),                      # take a pin after this batch?
    st.sampled_from(
        ["none", "split", "merge", "checkpoint", "propagate"]),
)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(steps=st.lists(step_strategy, min_size=2, max_size=6),
       range_lo=st.integers(0, 200))
def test_pins_survive_splits_merges_and_folds(steps, range_lo):
    db = Database(compressed=False)
    db.create_sharded_table(
        "t", SCHEMA, [(i * 2, i) for i in range(N_ROWS)], shards=2)
    sharded = db.sharded("t")
    live_image = {i * 2: i for i in range(N_ROWS)}
    pins = []  # (pin, full_rows_at_pin, range_rows_at_pin)
    lo, hi = (range_lo,), (range_lo + 80,)
    try:
        for ops, take_pin, action in steps:
            batch, touched = [], set()
            for op in ops:
                if op[0] == "mod":
                    key = op[1] * 2
                    if key in touched or key not in live_image:
                        continue
                    batch.append(("mod", (key,), "v", op[2]))
                    live_image[key] = op[2]
                elif op[0] == "ins":
                    key = op[1] * 2 + 1  # odd: never collides with seeds
                    if key in touched or key in live_image:
                        continue
                    batch.append(("ins", (key, op[2])))
                    live_image[key] = op[2]
                else:
                    key = op[1] * 2
                    if key in touched or key not in live_image:
                        continue
                    batch.append(("del", (key,)))
                    del live_image[key]
                touched.add(key)
            if batch:
                db.apply_batch("t", batch)

            if take_pin:
                pin = db.pin_snapshot()
                pins.append((pin, rel_rows(db, pin=pin),
                             rel_rows(db, pin=pin, low=lo, high=hi)))

            if action == "split":
                footprints = sharded.footprints()
                hottest = max(range(len(footprints)),
                              key=footprints.__getitem__)
                split_shard(sharded, hottest)
            elif action == "merge" and sharded.num_shards > 1:
                merge_adjacent(sharded, 0)
            elif action == "checkpoint":
                db.checkpoint("t")
            elif action == "propagate":
                for shard in sharded.shard_names:
                    db.manager.propagate_write_to_read(shard)

            # live reads track the oracle image through everything
            expected_live = sorted(live_image.items())
            assert rel_rows(db) == expected_live
            # every pin still sees exactly its pinned version
            for pin, full_at_pin, range_at_pin in pins:
                assert rel_rows(db, pin=pin) == full_at_pin
                assert rel_rows(db, pin=pin, low=lo, high=hi) \
                    == range_at_pin
    finally:
        for pin, _, _ in pins:
            pin.release()
        db.close()
    # with pins drained, retirement and rebalancing fully settle
    db2_rows = rel_rows(db)
    assert db2_rows == sorted(live_image.items())
    assert sharded.drain_retired() == 0
