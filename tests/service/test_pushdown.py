"""Predicate & partial-aggregate push-down: equivalence and sharing.

The contract under test: a pushed-down ``where`` / ``agg`` produces
results *byte-identical* to scanning everything and evaluating centrally
— across thread and process executors, under deltas, with shard pruning
— while the service's cooperative-scan sharing keeps working (compatible
pushed computations share one physical pass; incompatible ones get a
private pass without poisoning the shared one).

Numeric data is ints and multiples of 0.5 (dyadic floats): both make
every aggregation order-independent and exact, so "identical" really
means identical bytes, not approximately equal.
"""

import threading

import numpy as np
import pytest

from repro import Database, DataType, Schema
from repro.engine import expr as ex
from repro.engine import functions as fn
from repro.engine.relation import Relation
from repro.service.jobs import JobScheduler
from repro.service.plan import plan_scan

SCHEMA = Schema.build(
    ("k", DataType.INT64), ("cat", DataType.INT64),
    ("v", DataType.INT64), ("w", DataType.FLOAT64),
    ("s", DataType.STRING),
    sort_key=("k",),
)
N_ROWS = 20_000  # 4 shards x 5k, above the router's MIN_REMOTE_ROWS


def seed_arrays(n=N_ROWS):
    rng = np.random.default_rng(7)
    return {
        "k": np.arange(n, dtype=np.int64),
        "cat": rng.integers(0, 6, n).astype(np.int64),
        "v": rng.integers(-500, 500, n).astype(np.int64),
        # multiples of 0.5: dyadic, exact under any summation order
        "w": (rng.integers(-40, 40, n) / 2.0),
        "s": np.array([f"g{i % 11}" for i in range(n)], dtype=object),
    }


def make_db(tmp_path, executor):
    db = Database(storage="mmap", storage_path=str(tmp_path / executor),
                  executor=executor, workers=2)
    db.create_sharded_table_from_arrays("t", SCHEMA, seed_arrays(),
                                        shards=4)
    # Deltas on top of the published image: mods, deletes, inserts.
    ops = [("mod", (i,), "v", -1000 - i) for i in range(0, N_ROWS, 503)]
    ops += [("del", (i,)) for i in range(1, N_ROWS, 997)]
    ops += [("ins", (N_ROWS + i, i % 6, 7, 0.5, "gx"))
            for i in range(200)]
    db.apply_batch("t", ops)
    return db


def assert_bytes_equal(got: Relation, want: Relation):
    assert got.column_names == want.column_names
    assert got.num_rows == want.num_rows
    for c in want.column_names:
        a, b = got[c], want[c]
        if a.dtype == object or b.dtype == object:
            assert a.tolist() == b.tolist(), c
        else:
            assert a.dtype == b.dtype, c
            assert a.tobytes() == b.tobytes(), c


WHERE = ex.and_(ex.between("k", 2_000, 15_000), ex.isin("cat", [1, 3, 5]))
AGG = ex.AggSpec(
    ("cat",),
    {"total": ("v", "sum"), "n": ("*", "count"), "avg_w": ("w", "avg"),
     "lo": ("v", "min"), "hi": ("v", "max")},
)


def central(rel: Relation, where=None, agg=None, columns=None) -> Relation:
    if where is not None:
        rel = rel.filter(where.mask({c: rel[c] for c in rel.column_names}))
    if agg is not None:
        return rel.group_by(*agg.group_by).agg(
            **{name: (col, func) for name, col, func in agg.aggs})
    if columns is not None:
        rel = rel.select(*columns)
    return rel


class TestExprUnit:
    def test_mask_matches_engine_functions(self):
        arrays = seed_arrays(500)
        e = ex.and_(
            ex.or_(ex.ge("v", 100), ex.lt("w", -3.0)),
            ex.not_(ex.eq("s", "g3")),
            ex.between("k", 10, 400),
        )
        want = (
            ((arrays["v"] >= 100) | (arrays["w"] < -3.0))
            & ~(arrays["s"] == "g3")
            & fn.between(arrays["k"], 10, 400)
        )
        assert ex.Expr.mask(e, arrays).tolist() == want.tolist()

    def test_string_ops(self):
        arrays = {"s": np.array(["alpha", "beta", "gamma", "alabama"],
                                dtype=object)}
        assert ex.starts_with("s", "al").mask(arrays).tolist() == \
            [True, False, False, True]
        assert ex.ends_with("s", "a").mask(arrays).tolist() == \
            [True, True, True, True]
        assert ex.contains("s", "am").mask(arrays).tolist() == \
            [False, False, True, True]
        assert ex.like("s", "a%a").mask(arrays).tolist() == \
            [True, False, False, True]

    def test_payload_roundtrip_preserves_key(self):
        e = ex.or_(WHERE, ex.like("s", "g%"), ex.not_(ex.ne("v", 0)))
        back = ex.expr_from_payload(e.to_payload())
        assert back == e and back.key() == e.key()
        a = ex.agg_from_payload(AGG.to_payload())
        assert a.key() == AGG.key()

    def test_isin_order_insensitive_key(self):
        assert ex.isin("cat", [3, 1, 5]).key() == \
            ex.isin("cat", [5, 3, 1]).key()

    def test_unknown_payload_rejected(self):
        with pytest.raises(ex.PushdownUnsupported):
            ex.expr_from_payload({"op": "regex", "column": "s",
                                  "value": ".*"})
        with pytest.raises(ex.PushdownUnsupported):
            ex.agg_from_payload({"group_by": [],
                                 "aggs": [["d", "v", "count_distinct"]]})

    def test_sk_bounds_conservative(self):
        sk = ("k",)
        assert ex.between("k", 5, 9).sk_bounds(sk) == ((5,), (9,))
        lo, hi = ex.and_(ex.ge("k", 3), ex.eq("cat", 1)).sk_bounds(sk)
        assert lo == (3,) and hi is None
        # OR of two ranges: the union's hull
        lo, hi = ex.or_(ex.between("k", 2, 4),
                        ex.between("k", 10, 20)).sk_bounds(sk)
        assert lo == (2,) and hi == (20,)
        # NOT and non-key predicates give no bounds
        assert ex.not_(ex.between("k", 2, 4)).sk_bounds(sk) == (None, None)
        assert ex.eq("cat", 1).sk_bounds(sk) == (None, None)


class TestPartialAggregator:
    @pytest.mark.parametrize("splits", [1, 3, 7])
    def test_merge_across_splits_identical_to_central(self, splits):
        arrays = seed_arrays(3_000)
        rel = Relation(arrays)

        class _S:
            def dtype_of(self, name):
                return SCHEMA.column(name).dtype

        spec = ex.AggSpec(
            ("cat", "s"),
            {"total": ("v", "sum"), "n": ("*", "count"),
             "avg_w": ("w", "avg"), "lo": ("v", "min")},
        ).bind(_S())
        merger = spec.aggregator()
        bounds = np.linspace(0, 3_000, splits + 1).astype(int)
        for lo, hi in zip(bounds, bounds[1:]):
            part = spec.aggregator()
            part.add_block({c: a[lo:hi] for c, a in arrays.items()})
            merger.merge(part.partial_arrays())
        want = rel.group_by("cat", "s").agg(
            total=("v", "sum"), n=("*", "count"), avg_w=("w", "avg"),
            lo=("v", "min"))
        assert_bytes_equal(Relation(merger.finalize()), want)

    def test_empty_grouped_and_global(self):
        class _S:
            def dtype_of(self, name):
                return SCHEMA.column(name).dtype

        grouped = ex.AggSpec(("cat",), {"n": ("*", "count")}).bind(_S())
        out = Relation(grouped.aggregator().finalize())
        want = Relation(seed_arrays(10)).filter(
            np.zeros(10, bool)).group_by("cat").agg(n=("*", "count"))
        assert_bytes_equal(out, want)

        glob = ex.AggSpec((), {"n": ("*", "count"),
                               "tot": ("v", "sum")}).bind(_S())
        out = Relation(glob.aggregator().finalize())
        want = Relation(seed_arrays(10)).filter(
            np.zeros(10, bool)).group_by().agg(n=("*", "count"),
                                               tot=("v", "sum"))
        assert_bytes_equal(out, want)


@pytest.mark.parametrize("executor", ["thread", "process"])
class TestServicePushdown:
    def test_filter_agg_and_both_match_central(self, tmp_path, executor):
        db = make_db(tmp_path, executor)
        try:
            with db.serve(workers=3) as svc:
                full = svc.submit_query("t").to_relation()
                cases = [
                    dict(where=WHERE, agg=None, columns=["k", "v", "s"]),
                    dict(where=None, agg=AGG, columns=None),
                    dict(where=WHERE, agg=AGG, columns=None),
                    dict(where=ex.eq("s", "no-such-group"), agg=AGG,
                         columns=None),  # empty input to the aggregate
                    dict(where=None,
                         agg=ex.AggSpec((), {"n": ("*", "count"),
                                             "tot": ("w", "sum")}),
                         columns=None),  # global aggregate
                ]
                for case in cases:
                    got = svc.submit_query(
                        "t", columns=case["columns"], where=case["where"],
                        agg=case["agg"]).to_relation()
                    want = central(full, case["where"], case["agg"],
                                   case["columns"])
                    assert_bytes_equal(got, want)
                stats = svc.stats.as_dict()
                assert stats["pushdown_jobs"] > 0
                assert stats["rows_pushed_down"] > 0
                if executor == "process":
                    assert db.exec_router.remote_jobs > 0
                    assert db.exec_router.expr_fallbacks == 0
        finally:
            db.close()

    def test_range_plus_pushdown(self, tmp_path, executor):
        db = make_db(tmp_path, executor)
        try:
            with db.serve(workers=3) as svc:
                full = svc.submit_query("t").to_relation()
                in_range = (fn.lex_ge([full["k"]], (4_000,))
                            & fn.lex_le([full["k"]], (12_000,)))
                want = central(full.filter(in_range), ex.ge("v", 0), AGG)
                got = svc.submit_range(
                    "t", low=(4_000,), high=(12_000,),
                    where=ex.ge("v", 0), agg=AGG).to_relation()
                assert_bytes_equal(got, want)
        finally:
            db.close()

    def test_sort_key_predicate_prunes_scanned_rows(self, tmp_path,
                                                    executor):
        db = make_db(tmp_path, executor)
        try:
            with db.serve(workers=3) as svc:
                narrow = ex.between("k", 100, 600)  # one shard's prefix
                full = svc.submit_query("t").to_relation()
                got = svc.submit_query("t", where=narrow,
                                       columns=["k", "v"]).to_relation()
                assert_bytes_equal(got, central(full, narrow,
                                                columns=["k", "v"]))
                stats = svc.stats.as_dict()
                # Shard routing + sparse-index pruning: the pushed scan
                # read far fewer rows than the preceding full scan did.
                pushed_scan = stats["rows_scanned"]
                assert 0 < pushed_scan < full.num_rows / 2
        finally:
            db.close()


class TestSharing:
    def test_compatible_filters_share_one_pass(self, tmp_path):
        db = make_db(tmp_path, "thread")
        try:
            with db.serve(workers=3) as svc:
                full = svc.submit_query("t").to_relation()
                cursors = svc.submit_many([
                    {"table": "t", "where": WHERE, "columns": ["k", "v"]},
                    {"table": "t", "where": WHERE, "columns": ["k", "v"]},
                ])
                rels = [c.to_relation() for c in cursors]
                want = central(full, WHERE, columns=["k", "v"])
                for rel in rels:
                    assert_bytes_equal(rel, want)
                assert svc.stats.jobs_shared > 0
        finally:
            db.close()

    def test_incompatible_filters_do_not_share(self, tmp_path):
        db = make_db(tmp_path, "thread")
        try:
            with db.serve(workers=3) as svc:
                full = svc.submit_query("t").to_relation()
                shared_before = svc.stats.jobs_shared
                other = ex.lt("v", 0)
                cursors = svc.submit_many([
                    {"table": "t", "where": WHERE, "columns": ["k", "v"]},
                    {"table": "t", "where": other, "columns": ["k", "v"]},
                ])
                rels = [c.to_relation() for c in cursors]
                assert_bytes_equal(rels[0],
                                   central(full, WHERE,
                                           columns=["k", "v"]))
                assert_bytes_equal(rels[1],
                                   central(full, other,
                                           columns=["k", "v"]))
                assert svc.stats.jobs_shared == shared_before
        finally:
            db.close()

    def test_midscan_attach_incompatible_filter_gets_private_pass(self):
        """A consumer arriving mid-scan with a *different* predicate must
        get its own job — never a deferred feed on the shared pass."""
        db = Database(compressed=False)
        db.create_table(
            "t", Schema.build(("k", DataType.INT64),
                              ("v", DataType.INT64), sort_key=("k",)),
            [(i, i * 3 - 50) for i in range(200)])
        pin = db.pin_snapshot()
        try:
            base = plan_scan(pin, "t", where=ex.ge("v", 0)).parts[0]
            other = plan_scan(pin, "t", where=ex.lt("v", 0)).parts[0]
            assert base.share_key != other.share_key

            scheduler = JobScheduler()
            sem = threading.Semaphore(0)
            calls = []

            def gated(spec, sid_lo, sid_hi, block_rows, counter=None):
                first = not calls
                calls.append(spec.share_key)

                def gen():
                    stream = spec.pushed_stream(sid_lo, sid_hi,
                                                block_rows,
                                                counter=counter)
                    for block in stream:
                        if first:
                            sem.acquire()
                        yield block

                return gen()

            feed1, job1, _, _ = scheduler.schedule(base, 10, gated)
            worker = threading.Thread(target=scheduler.run_job,
                                      args=(job1,))
            worker.start()
            sem.release(2)
            import time
            t0 = time.monotonic()
            while job1._emitted < 2:
                assert time.monotonic() - t0 < 5.0
                time.sleep(0.002)
            # Mid-scan arrival with an incompatible filter: fresh job.
            feed2, job2, shared, catch_up = scheduler.schedule(
                other, 10, gated)
            assert not shared and job2 is not job1 and catch_up is None
            sem.release(1000)
            worker.join()
            scheduler.run_job(job2)
            rows1 = sum(len(a["k"]) for _rid, a in feed1.blocks())
            rows2 = sum(len(a["k"]) for _rid, a in feed2.blocks())
            full = db.query("t", pin=pin)
            assert rows1 == int((full["v"] >= 0).sum())
            assert rows2 == int((full["v"] < 0).sum())
        finally:
            pin.release()
            db.close()


class TestWorkerFallback:
    def test_unsupported_expression_falls_back_byte_identical(
            self, tmp_path, monkeypatch):
        """A worker that does not speak the pushed vocabulary answers
        ``unsupported``; the router must run the identical pushed
        pipeline locally and count the fallback."""
        from repro.service.plan import ShardScanSpec

        db = make_db(tmp_path, "process")
        try:
            original = ShardScanSpec.push_payload

            def alien_payload(self):
                payload = original(self)
                if payload is not None:
                    payload["alien_field"] = {"op": "quantum"}
                return payload

            monkeypatch.setattr(ShardScanSpec, "push_payload",
                                alien_payload)
            with db.serve(workers=3) as svc:
                full = svc.submit_query("t").to_relation()
                got = svc.submit_query("t", where=WHERE,
                                       agg=AGG).to_relation()
                assert_bytes_equal(got, central(full, WHERE, AGG))
                assert db.exec_router.expr_fallbacks > 0
        finally:
            db.close()


class TestDatabaseQueryPushdown:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_query_and_query_range_kwargs(self, tmp_path, executor):
        db = make_db(tmp_path, executor)
        try:
            full = db.query("t")
            got = db.query("t", where=WHERE, aggregate=AGG)
            assert_bytes_equal(got, central(full, WHERE, AGG))
            got = db.query("t", columns=["k", "s"], where=WHERE)
            assert_bytes_equal(got, central(full, WHERE,
                                            columns=["k", "s"]))
            in_range = (fn.lex_ge([full["k"]], (500,))
                        & fn.lex_le([full["k"]], (1_500,)))
            got = db.query_range("t", low=(500,), high=(1_500,),
                                 where=ex.ge("v", 0),
                                 columns=["k", "v"])
            want = central(full.filter(in_range), ex.ge("v", 0),
                           columns=["k", "v"])
            assert_bytes_equal(got, want)
        finally:
            db.close()

    def test_pdt_source_where_hint_matches_unhinted(self, tmp_path):
        from repro.tpch.sources import PdtSource

        db = make_db(tmp_path, "thread")
        try:
            src = PdtSource(db)
            plain = src.scan("t", ["k", "v", "cat"])
            mask = WHERE.mask({c: plain[c] for c in plain.column_names})
            hinted = src.scan("t", ["k", "v", "cat"], where=WHERE)
            assert_bytes_equal(hinted, plain.filter(mask))
        finally:
            db.close()
