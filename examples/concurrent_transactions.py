"""Lock-free transactions on three PDT layers (paper section 3.3).

Demonstrates: snapshot isolation (readers never block or see concurrent
commits), the Figure 15 three-transaction schedule with Serialize-based
re-basing, write-write conflict detection (optimistic abort), reconciled
same-tuple different-column modifies, and Write->Read propagation.

Run: ``python examples/concurrent_transactions.py``
"""

from repro import Database, DataType, Schema, TransactionConflict


def build_db() -> Database:
    schema = Schema.build(
        ("account", DataType.STRING),
        ("balance", DataType.INT64),
        ("branch", DataType.STRING),
        sort_key=("account",),
    )
    db = Database(compressed=False)
    db.create_table(
        "accounts",
        schema,
        [
            ("alice", 1_000, "north"),
            ("bob", 2_000, "south"),
            ("carol", 3_000, "north"),
            ("dave", 4_000, "south"),
        ],
    )
    return db


def show(db: Database, label: str) -> None:
    print(f"{label}:")
    for row in db.image_rows("accounts"):
        print("   ", row)


def main() -> None:
    db = build_db()
    show(db, "initial table")

    # --- snapshot isolation ---------------------------------------------
    print("\n[1] snapshot isolation")
    reader = db.begin()
    writer = db.begin()
    writer.modify("accounts", ("alice",), "balance", 500)
    writer.commit()
    balance_seen = [
        r for r in reader.image_rows("accounts") if r[0] == "alice"
    ][0][1]
    print(f"  reader (older snapshot) still sees alice = {balance_seen}")
    reader.commit()
    print(f"  new queries see alice = "
          f"{[r for r in db.image_rows('accounts') if r[0] == 'alice'][0][1]}")

    # --- Figure 15 schedule ------------------------------------------------
    print("\n[2] Figure 15: overlapping commits re-based with Serialize")
    a = db.begin()
    b = db.begin()
    b.insert("accounts", ("beth", 100, "east"))
    b.commit()  # t2: commits while a runs
    c = db.begin()
    a.insert("accounts", ("aaron", 200, "east"))
    a.commit()  # t3: serialized against b's trans-PDT
    c.insert("accounts", ("cathy", 300, "east"))
    c.commit()  # t4: serialized against a's
    print("  three overlapping inserts committed without locks:")
    show(db, "  table")
    stats = db.manager.stats
    print(f"  commits={stats.commits}, conflicts={stats.conflicts}, "
          f"snapshot copies={stats.snapshot_copies}")

    # --- write-write conflict ------------------------------------------------
    print("\n[3] optimistic conflict detection")
    t1 = db.begin()
    t2 = db.begin()
    t1.modify("accounts", ("bob",), "balance", 2_500)
    t2.modify("accounts", ("bob",), "balance", 9_999)
    t1.commit()
    try:
        t2.commit()
    except TransactionConflict as exc:
        print(f"  second writer aborted: {exc}")

    # --- reconcilable modifies --------------------------------------------------
    print("\n[4] different columns of the same tuple reconcile")
    t1 = db.begin()
    t2 = db.begin()
    t1.modify("accounts", ("carol",), "balance", 3_333)
    t2.modify("accounts", ("carol",), "branch", "west")
    t1.commit()
    t2.commit()
    carol = [r for r in db.image_rows("accounts") if r[0] == "carol"][0]
    print(f"  both committed: carol = {carol}")

    # --- layer maintenance ----------------------------------------------------
    print("\n[5] write->read propagation (keeps the Write-PDT snapshot-copy "
          "cheap)")
    state = db.manager.state_of("accounts")
    print(f"  write-PDT entries before: {state.write_pdt.count()}")
    db.manager.propagate_write_to_read("accounts")
    print(f"  write-PDT entries after:  {state.write_pdt.count()}, "
          f"read-PDT entries: {state.read_pdt.count()}")
    show(db, "  table unchanged")


if __name__ == "__main__":
    main()
