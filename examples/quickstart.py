"""Quickstart: an updatable columnar database with PDT update handling.

Creates an ordered table, runs trickle updates through transactions, shows
that read queries never touch columns they don't name, and folds deltas
back into stable storage with a checkpoint.

Run: ``python examples/quickstart.py``
"""

from repro import Database, DataType, Schema


def main() -> None:
    schema = Schema.build(
        ("country", DataType.STRING),
        ("city", DataType.STRING),
        ("population", DataType.INT64),
        ("area_km2", DataType.FLOAT64),
        sort_key=("country", "city"),
    )
    db = Database(compressed=True)
    db.create_table(
        "cities",
        schema,
        [
            ("france", "lyon", 522_000, 47.9),
            ("france", "paris", 2_102_000, 105.4),
            ("netherlands", "amsterdam", 931_000, 219.3),
            ("netherlands", "rotterdam", 664_000, 324.1),
            ("poland", "warsaw", 1_863_000, 517.2),
        ],
    )

    # --- autocommit updates ------------------------------------------------
    db.insert("cities", ("germany", "berlin", 3_878_000, 891.7))
    db.modify("cities", ("france", "paris"), "population", 2_113_000)
    db.delete("cities", ("netherlands", "rotterdam"))

    # --- a multi-statement transaction --------------------------------------
    with db.transaction() as txn:
        txn.insert("cities", ("poland", "krakow", 804_000, 326.9))
        txn.insert("cities", ("germany", "hamburg", 1_906_000, 755.2))
        # The transaction reads its own writes:
        assert any(
            row[1] == "krakow" for row in txn.image_rows("cities")
        )

    print("current image (merged positionally, no sort-key reads needed):")
    for row in db.image_rows("cities"):
        print("   ", row)

    # --- projection queries skip unused columns entirely ---------------------
    db.make_cold()
    db.io.reset()
    populations = db.query("cities", columns=["population"])
    print(
        f"\nprojection of 1 column read {db.io.bytes_read} bytes; "
        f"columns touched: {sorted(c for _, c in db.io.bytes_by_column)}"
    )
    print(f"total population: {int(populations['population'].sum()):,}")

    # --- delta bookkeeping and checkpoint -----------------------------------
    print(f"\ndelta memory before checkpoint: {db.delta_bytes('cities')} B")
    db.checkpoint("cities")
    print(f"delta memory after checkpoint:  {db.delta_bytes('cities')} B")
    print(f"stable rows after checkpoint:   {db.table('cities').num_rows}")


if __name__ == "__main__":
    main()
