"""Observability: one metrics snapshot, stitched traces, slow-query log.

Builds a sharded table, runs writes and fanned-out reads with tracing
enabled, then walks the three telemetry surfaces:

* ``db.metrics()`` — one JSON-able snapshot: latency histograms
  (p50/p99), commit-stage timings, and the live stats sources (io, txn,
  scheduler, exec, group-commit, service) in a single dict, exportable
  as Prometheus text.
* the trace sink — every query is a span tree; with
  ``REPRO_EXECUTOR=process`` the worker-process scan spans (different
  pid) are stitched into the same tree as the parent-side spans.
* the slow-query log — queries over ``slow_query_ms`` are recorded with
  their full profile and rendered span tree.

Run: ``python examples/observability.py``
(honours ``REPRO_EXECUTOR=thread|process``)
"""

import logging
import os
import tempfile

import numpy as np

from repro import Database, DataType, Schema
from repro.engine import expr as ex
from repro.obs import prometheus_text

N_ROWS = 40_000  # 4 shards x 10k rows: enough to fan out to workers


def main() -> None:
    logging.basicConfig(level=logging.WARNING,
                        format="%(levelname)s %(name)s: %(message)s")
    schema = Schema.build(
        ("order_id", DataType.INT64),
        ("amount", DataType.INT64),
        sort_key=("order_id",),
    )
    arrays = {
        "order_id": np.arange(N_ROWS, dtype=np.int64),
        "amount": np.arange(N_ROWS, dtype=np.int64) % 500,
    }

    executor = os.environ.get("REPRO_EXECUTOR") or "thread"
    with tempfile.TemporaryDirectory() as root:
        # mmap storage so the process executor can hand shards to real
        # worker processes; slow_query_ms=0.0 logs every query so the
        # slow path is visible in a demo-sized run.
        db = Database(storage="mmap", storage_path=root,
                      executor=executor, workers=2,
                      trace=True, slow_query_ms=0.0)
        db.create_sharded_table_from_arrays("orders", schema, arrays,
                                            shards=4)
        print(f"executor={executor}  parent pid={os.getpid()}")

        # --- write path: commits observed stage by stage -----------------
        for i in range(10):
            db.insert("orders", (N_ROWS + i, i))

        # --- read path: a service query fans out across shards -----------
        db.make_cold()  # drop pools so the scan does visible IO
        with db.serve() as svc:
            cursor = svc.submit_query("orders")
            rel = cursor.to_relation()
            # Push-down: the predicate and partial aggregate run INSIDE
            # the shard jobs, so one partial block per shard — not rows —
            # streams back to the cursor.
            pushed = svc.submit_query(
                "orders", where=ex.lt("amount", 50),
                agg=ex.AggSpec((), {"total": ("amount", "sum"),
                                    "n": ("*", "count")}),
            ).to_relation()
            svc_stats = svc.stats.as_dict()
        print(f"query returned {rel.num_rows} rows "
              f"across {cursor.profile.shards} shards")
        print(f"pushed-down aggregate over amount<50: "
              f"n={int(pushed['n'][0])} total={int(pushed['total'][0])}")
        print(f"push-down: {svc_stats['rows_scanned']} rows scanned "
              f"in-job, {svc_stats['rows_pushed_down']} never streamed; "
              f"{svc_stats['rows_streamed']} rows streamed to cursors "
              f"overall (plain scan + partial blocks)")

        # --- the stitched span tree --------------------------------------
        print("\nspan tree (query -> shard.scan -> worker.scan):")
        print(db.obs.sink.render(cursor.profile.trace_id))
        worker_pids = {s.pid for s in db.obs.sink.spans()
                       if s.name == "worker.scan"}
        if worker_pids:
            print(f"worker-process scan spans from pids: "
                  f"{sorted(worker_pids)}")

        # --- one coherent metrics snapshot -------------------------------
        snap = db.metrics()
        q = snap["histograms"]["query_seconds"]
        print(f"\nqueries observed: {q['count']}  "
              f"p50={q['p50'] * 1e3:.2f}ms  p99={q['p99'] * 1e3:.2f}ms")
        for stage in ("serialize", "propagate", "wal_append",
                      "durability_wait"):
            hist = snap["histograms"][f"commit_{stage}_seconds"]
            print(f"commit stage {stage:16s} "
                  f"mean={hist['sum'] / hist['count'] * 1e6:7.1f}us")
        io = snap["sources"]["io"]
        print(f"io: {io['bytes_read']} bytes / {io['blocks_read']} blocks "
              f"(worker reads merged into the parent's counters)")
        print(f"exec: {snap['sources']['exec']}")

        # --- slow-query log ----------------------------------------------
        entries = db.obs.slow_log.entries()
        print(f"\nslow-query log holds {len(entries)} entries; last "
              f"profile: {entries[-1]['profile'] if entries else None}")

        # --- Prometheus exposition (scripts/export_metrics.py) -----------
        text = prometheus_text(snap)
        head = "\n".join(text.splitlines()[:8])
        print(f"\nprometheus text ({len(text.splitlines())} lines), "
              f"first 8:\n{head}")

        db.close()


if __name__ == "__main__":
    main()
