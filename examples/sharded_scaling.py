"""Sharded scaling: a range-partitioned table splitting under skew.

Creates a range-sharded table, drives a heavily skewed update stream at
one corner of the key space, and shows the autonomous rebalancer splitting
the hot shard between queries — while every query keeps seeing the full,
consistent logical image and cold shards are never touched. Finishes with
the per-shard layout, the aggregated I/O counters, and a WAL-recovery
round trip that restores the shard boundaries.

Run: ``python examples/sharded_scaling.py``
"""

import sys

from repro import Database, DataType, Schema
from repro.txn import recover_database


def layout_line(sharded) -> str:
    parts = []
    for i, state in enumerate(sharded.shard_states()):
        low, high = sharded.router.key_range(i)
        lo = "-inf" if low is None else low[0]
        hi = "+inf" if high is None else high[0]
        entries = state.read_pdt.count() + state.write_pdt.count()
        parts.append(
            f"[{lo}, {hi}): {state.stable.num_rows} rows, {entries} deltas"
        )
    return "\n    ".join(parts)


def main() -> None:
    n_rows = 4000
    schema = Schema.build(
        ("user_id", DataType.INT64),
        ("score", DataType.INT64),
        ("region", DataType.STRING),
        sort_key=("user_id",),
    )
    rows = [(i * 10, i % 997, f"r{i % 7}") for i in range(n_rows)]

    db = Database(compressed=True, checkpoint_policy="updates:600")
    sharded = db.create_sharded_table(
        "users", schema, rows,
        shards=4,
        split_rows=n_rows // 2,   # split a shard outgrowing half the load
        merge_rows=n_rows // 8,   # merge neighbours that fall underfull
    )
    print(f"initial layout ({sharded.num_shards} shards):")
    print("   ", layout_line(sharded))

    # --- skewed stream: every new user lands in the lowest key range --------
    hot_keys = iter(range(1, 10 * n_rows, 2))  # odd keys, ascending
    expected = n_rows
    for burst in range(8):
        batch = [("ins", (next(hot_keys), burst, "hot")) for _ in range(150)]
        db.apply_batch("users", batch)
        expected += len(batch)
        rel = db.query("users", columns=["user_id"])  # rebalance runs here
        assert len(rel["user_id"]) == expected, "torn read!"
    print(f"\nafter {8 * 150} skewed inserts "
          f"({sharded.num_shards} shards — hot range split):")
    print("   ", layout_line(sharded))

    # --- cold shards stayed cold --------------------------------------------
    db.make_cold()
    db.io.reset()
    db.query_range("users", low=(30_000,), high=(35_000,), columns=["score"])
    touched = {t for t, _ in db.io.bytes_by_column}
    print(f"\nrange query touched shards: {sorted(touched)} "
          f"of {sharded.num_shards}")

    # --- crash recovery restores boundaries ---------------------------------
    recovered = Database(compressed=True)
    for shard in sharded.shard_names:
        recovered.create_table(
            shard, schema, db.manager.state_of(shard).stable.rows()
        )
    recover_database(recovered, db.manager.wal)
    assert recovered.sharded("users").boundaries == sharded.boundaries
    assert recovered.row_count("users") == expected
    print(f"\nrecovered from WAL: {recovered.sharded('users').num_shards} "
          f"shards, boundaries intact, {recovered.row_count('users')} rows")

    # join both databases' shard-scan executors so the interpreter exits
    # cleanly (Database is also usable as a context manager)
    recovered.close()
    db.close()


if __name__ == "__main__":
    sys.argv = sys.argv[:1]  # scale-factor args of sibling examples ignored
    main()
