"""Durable storage end to end: kill a database mid-flight, reopen, verify.

Runs the same story twice:

1. A *child process* builds a database on the mmap storage backend —
   bulk load, committed batches, a checkpoint, more batches — and then
   dies hard with ``os._exit`` (no close, no flush; the RAM-resident
   PDTs are simply gone, like any crash).
2. The parent reopens the directory with ``Database.recover``: tables
   (sharded and unsharded) are rebuilt from the persisted block files
   and catalogs, the WAL replays the committed-but-not-checkpointed
   deltas, and query results come back byte-identical — after which the
   revived database keeps taking writes.

Run: ``PYTHONPATH=src python examples/durability.py``
(extra numeric arguments, as the CI example runner passes, are ignored).
A denser crash matrix — kills *inside* checkpoint windows, shard splits,
WAL rebases — lives in ``scripts/crash_matrix.py``.
"""

import json
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import Database, DataType, Schema  # noqa: E402

SCHEMA = Schema.build(
    ("city", DataType.STRING), ("product", DataType.STRING),
    ("qty", DataType.INT64), sort_key=("city", "product"),
)


def workload(root: str) -> None:
    """Child: build durable state, record the oracle, crash."""
    db = Database(storage="mmap", storage_path=root)
    db.create_table("inventory", SCHEMA, [
        (city, product, 10 * (i + 1))
        for i, (city, product) in enumerate(
            (c, p) for c in ("Amsterdam", "Berlin", "Lisbon", "Porto")
            for p in ("chair", "desk", "lamp"))
    ])
    db.create_sharded_table("orders", SCHEMA, [
        (f"city{i % 20:02d}", f"sku{i:04d}", i) for i in range(400)
    ], shards=4)

    db.apply_batch("inventory", [
        ("ins", ("Zurich", "rug", 5)),
        ("mod", ("Berlin", "desk"), "qty", 99),
        ("del", ("Porto", "lamp")),
    ])
    db.checkpoint("inventory")          # folds deltas into persisted blocks
    db.apply_batch("inventory", [("ins", ("Athens", "vase", 7))])
    db.apply_batch("orders", [
        ("mod", ("city05", "sku0105"), "qty", 12345),
        ("ins", ("city99", "sku9999", 1)),
    ])

    oracle = {
        "inventory": [[str(a), str(b), int(c)]
                      for a, b, c in db.image_rows("inventory")],
        "orders_rows": int(db.row_count("orders")),
        "hot_qty": int(db.query("orders",
                                sk=("city05", "sku0105"))["qty"][0]),
    }
    with open(os.path.join(root, "oracle.json"), "w") as fh:
        json.dump(oracle, fh)
        fh.flush()
        os.fsync(fh.fileno())
    print("child: committed state built — crashing without close()")
    os._exit(1)  # the crash: no shutdown path runs


def main() -> None:
    root = tempfile.mkdtemp(prefix="repro-durability-")
    print(f"storage root: {root}")

    print("\n-- phase 1: run workload in a child process, kill it")
    child = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--workload", root],
        env={**os.environ,
             "PYTHONPATH": os.path.join(
                 os.path.dirname(os.path.abspath(__file__)), "..", "src")},
    )
    assert child.returncode == 1, "child should have crashed"

    print("\n-- phase 2: reopen the directory and verify")
    with open(os.path.join(root, "oracle.json")) as fh:
        oracle = json.load(fh)
    db = Database.recover(root)
    inventory = [[str(a), str(b), int(c)]
                 for a, b, c in db.image_rows("inventory")]
    assert inventory == oracle["inventory"], "inventory diverged!"
    assert db.row_count("orders") == oracle["orders_rows"]
    assert int(db.query("orders",
                        sk=("city05", "sku0105"))["qty"][0]) == \
        oracle["hot_qty"]
    print(f"recovered {len(inventory)} inventory rows + "
          f"{oracle['orders_rows']} sharded order rows — byte-identical")
    print(f"recovery replayed WAL up to LSN {db.recovered_lsn}")

    print("\n-- phase 3: the revived database keeps working")
    db.apply_batch("inventory", [("ins", ("Oslo", "stool", 3))])
    db.checkpoint("inventory")
    assert db.query("inventory", sk=("Oslo", "stool")).num_rows == 1
    db.close()
    print("post-recovery write + checkpoint + clean close: ok")

    import shutil
    shutil.rmtree(root, ignore_errors=True)
    print("\ndurability demo passed")


if __name__ == "__main__":
    if len(sys.argv) >= 3 and sys.argv[1] == "--workload":
        workload(sys.argv[2])
    else:
        main()
