"""TPC-H analytics under an update load: no-updates vs VDT vs PDT.

A miniature of the paper's Figure 19 experiment: generate TPC-H, apply the
refresh streams (scattered inserts+deletes on orders/lineitem), then run a
few queries in all three modes, comparing wall time and simulated I/O.

Run: ``python examples/tpch_analytics.py [scale]`` (default scale 0.005)
"""

import sys
import time

from repro.tpch import (
    CleanSource,
    PdtSource,
    RefreshApplier,
    VdtSource,
    generate,
    load_database,
    run_query,
)

QUERIES = (1, 3, 6, 12, 14)


class ServiceSource:
    """PDT scans routed through a :class:`QueryService`, so the queries'
    ``where`` hints push into the shard scan jobs and the service's
    streamed-vs-scanned row counters are visible."""

    def __init__(self, svc):
        self.svc = svc

    def scan(self, table, columns=None, where=None):
        return self.svc.submit_query(table, columns=columns,
                                     where=where).to_relation()


def main(scale: float = 0.005) -> None:
    print(f"generating TPC-H at SF={scale} ...")
    data = generate(scale=scale)
    # Telemetry on: every query lands in the latency histograms, and
    # anything slower than 50 ms is captured by the slow-query log with
    # its span tree.
    db = load_database(data, compressed=False, trace=True,
                       slow_query_ms=50.0)
    print(
        f"  lineitem: {data.row_count('lineitem'):,} rows, "
        f"orders: {data.row_count('orders'):,} rows"
    )

    applier = RefreshApplier(data)
    applier.apply_all_pdt(db)
    vdts = applier.make_vdts()
    applier.apply_all_vdt(vdts)
    n_updates = sum(
        len(p.new_orders) + len(p.new_lineitems) + len(p.delete_orderkeys)
        for p in data.refreshes
    )
    print(f"  applied {n_updates} scattered updates "
          f"(2 refresh pairs, ~0.1% of orders each)\n")

    sources = {
        "no-updates": CleanSource(db),
        "VDT": VdtSource(db, vdts),
        "PDT": PdtSource(db),
    }

    header = f"{'query':>6} | " + " | ".join(
        f"{m:>18}" for m in sources
    )
    print(header)
    print("-" * len(header))
    for number in QUERIES:
        cells = []
        for mode, src in sources.items():
            db.make_cold()
            db.io.reset()
            start = time.perf_counter()
            run_query(number, src)
            elapsed = (time.perf_counter() - start) * 1000
            mib = db.io.bytes_read / (1 << 20)
            cells.append(f"{elapsed:7.1f}ms {mib:6.2f}MiB")
        print(f"   Q{number:02d} | " + " | ".join(
            f"{c:>18}" for c in cells
        ))

    print(
        "\nNote how the PDT column reads the same volume as no-updates —\n"
        "positional merging never needs the sort-key columns — while the\n"
        "VDT run must scan them for every query."
    )

    # --- push-down: streamed vs scanned rows -----------------------------
    # The same queries through the query service: each query's `where`
    # hint is evaluated INSIDE the shard scan jobs, so rows it rejects
    # are counted (rows_pushed_down) but never streamed to the cursor.
    with db.serve() as svc:
        src = ServiceSource(svc)
        for number in QUERIES:
            run_query(number, src)
        stats = svc.stats.as_dict()
    print(
        f"\npush-down (same queries via the query service): "
        f"{stats['pushdown_jobs']} scan jobs carried a predicate —\n"
        f"  {stats['rows_scanned']:,} rows scanned in-job, "
        f"{stats['rows_pushed_down']:,} filtered before streaming; "
        f"{stats['rows_streamed']:,} rows streamed to cursors in total"
    )

    hist = db.metrics()["histograms"]["query_seconds"]
    print(f"\ntelemetry: {hist['count']} queries observed, "
          f"p50={hist['p50'] * 1e3:.0f}ms p99={hist['p99'] * 1e3:.0f}ms")
    slow = db.obs.slow_log.entries()
    print(f"slow-query log (>50ms): {len(slow)} entries")
    if slow:
        worst = max(slow, key=lambda e: e["profile"]["total_s"])
        print(f"worst: {worst['profile']['table']} "
              f"{worst['profile']['total_s'] * 1e3:.0f}ms — span tree:")
        print(worst["span_tree"])


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.005)
