"""The paper's running example (section 2.1, Figures 1-13), narrated.

Walks the inventory table through the three update batches of the paper,
printing the PDT's entries, value space, and the merged table image after
each batch — the same states Figures 3-13 show. Also demonstrates the
ghost-respecting SID assignment that keeps the TABLE0 sparse index valid.

Run: ``python examples/inventory_example.py``
"""

from repro import DataType, PDT, Schema, SparseIndex, StableTable, merge_rows
from repro.core.types import kind_name
from repro.db import PositionalUpdater


def print_pdt(pdt: PDT, label: str) -> None:
    print(f"\n--- {label} ---")
    print("PDT entries (sid, rid, kind -> payload):")
    for entry in pdt.iter_entries():
        payload = pdt.values.value_of(entry.kind, entry.ref)
        print(
            f"   sid={entry.sid} rid={entry.rid} "
            f"{kind_name(entry.kind):<10} {payload}"
        )
    print(f"total delta: {pdt.total_delta():+d}, "
          f"memory (paper model): {pdt.memory_usage()} B")


def print_image(stable_rows, pdt) -> None:
    print("merged table image:")
    for rid, row in enumerate(merge_rows(stable_rows, pdt)):
        print(f"   rid={rid}  {row}")


def main() -> None:
    schema = Schema.build(
        ("store", DataType.STRING),
        ("prod", DataType.STRING),
        ("new", DataType.STRING),
        ("qty", DataType.INT64),
        sort_key=("store", "prod"),
    )
    stable = StableTable.bulk_load(
        "inventory",
        schema,
        [  # Figure 1: TABLE0
            ("London", "chair", "N", 30),
            ("London", "stool", "N", 10),
            ("London", "table", "N", 20),
            ("Paris", "rug", "N", 1),
            ("Paris", "stool", "N", 5),
        ],
    )
    index = SparseIndex(stable, granularity=2)
    pdt = PDT(schema, fanout=4)
    updater = PositionalUpdater(stable, [pdt], index)
    stable_rows = stable.rows()

    print("TABLE0 (Figure 1):")
    print_image(stable_rows, PDT(schema))

    # BATCH1 (Figure 2): three inserts landing at the table head.
    updater.insert(("Berlin", "table", "Y", 10))
    updater.insert(("Berlin", "cloth", "Y", 5))
    updater.insert(("Berlin", "chair", "Y", 20))
    print_pdt(pdt, "after BATCH1 (Figures 3-5)")
    print_image(stable_rows, pdt)

    # BATCH2 (Figure 6): in-place modify of an insert, a stable modify,
    # deletion of an insert (vanishes), deletion of a stable tuple (ghost).
    updater.modify_by_key(("Berlin", "cloth"), "qty", 1)
    updater.modify_by_key(("London", "stool"), "qty", 9)
    updater.delete_by_key(("Berlin", "table"))
    updater.delete_by_key(("Paris", "rug"))
    print_pdt(pdt, "after BATCH2 (Figures 7-9)")
    print_image(stable_rows, pdt)

    # BATCH3 (Figure 10): inserts interacting with the ghost tuple.
    updater.insert(("Paris", "rack", "Y", 4))
    updater.insert(("London", "rack", "Y", 4))
    updater.insert(("Berlin", "rack", "Y", 4))
    print_pdt(pdt, "after BATCH3 (Figures 11-13)")
    print_image(stable_rows, pdt)

    # The paper's sparse-index query: store='Paris' AND prod<'rug'.
    # (Paris, rack) respects the (Paris, rug) ghost, so the *stale* TABLE0
    # index still yields a correct SID range.
    rng = index.sid_range_for_key_range(("Paris",), ("Paris", "rug"))
    print(
        f"\nsparse index (built on TABLE0, never updated) says Paris rows "
        f"live in SID range [{rng.start}, {rng.stop})"
    )
    rack = [
        pdt.values.get_insert(e.ref)
        for e in pdt.iter_entries()
        if e.is_insert and pdt.values.get_insert(e.ref)[0] == "Paris"
    ]
    print(f"and indeed the merged range contains the new tuple: {rack[0]}")


if __name__ == "__main__":
    main()
