"""Async query service: concurrent analytics over a live refresh stream.

Starts a :class:`repro.QueryService` over a 4-shard table, then runs — on
one asyncio event loop — a continuous refresh stream (bulk update batches)
*and* a fleet of concurrent analytics queries. Each analytics query pins a
database-wide snapshot, streams its result blocks as shards complete, and
verifies its own consistency (every cross-shard read sees exactly one
commit point, however the refresh stream interleaves). Skewed concurrent
scans share physical shard scans through the cooperative job scheduler;
the run ends with the service's stats and a clean ``db.close()``.

Run: ``python examples/async_service.py``
"""

import asyncio
import random
import sys

from repro import Database, DataType, Schema

N_ROWS = 8000
N_ANALYSTS = 6
N_REFRESH_BATCHES = 10


def build_database() -> Database:
    schema = Schema.build(
        ("order_id", DataType.INT64), ("qty", DataType.INT64),
        ("price", DataType.INT64), sort_key=("order_id",),
    )
    db = Database(compressed=True, checkpoint_policy="updates:3000")
    db.create_sharded_table(
        "orders", schema,
        [(i * 2, 1 + i % 9, (i * 37) % 1000) for i in range(N_ROWS)],
        shards=4, split_rows=3 * N_ROWS, merge_rows=N_ROWS // 8,
    )
    return db


async def refresh_stream(svc, done: asyncio.Event) -> int:
    """TPC-H-style refresh: bulk batches of modifies + fresh inserts."""
    rng = random.Random(11)
    applied = 0
    next_new = 2 * N_ROWS + 1
    for _ in range(N_REFRESH_BATCHES):
        ops, touched = [], set()
        for _ in range(120):
            key = rng.randrange(N_ROWS // 2) * 2  # skewed: hot low range
            if key in touched:
                continue
            touched.add(key)
            ops.append(("mod", (key,), "price", rng.randrange(1000)))
        ops.append(("ins", (next_new, 1, 0)))
        next_new += 2
        applied += await svc.apply_batch("orders", ops)
        await asyncio.sleep(0)  # let analytics interleave
    done.set()
    return applied


async def analyst(svc, i: int) -> tuple:
    """One concurrent analytics query: pin, stream, verify consistency."""
    lo = (i * 400,)
    hi = (i * 400 + N_ROWS,)
    pin = await asyncio.to_thread(svc.pin)
    try:
        cursor = await svc.query_range(
            "orders", low=lo, high=hi, columns=["order_id", "qty"],
            pin=pin)
        rows = 0
        qty_sum = 0
        async for _, arrays in cursor:
            rows += len(arrays["order_id"])
            qty_sum += int(arrays["qty"].sum())
        # the pinned synchronous oracle must agree block for block: one
        # commit point across every shard, despite the refresh stream
        oracle = svc._db.query_range("orders", low=lo, high=hi,
                                     columns=["order_id", "qty"], pin=pin)
        assert rows == oracle.num_rows, "torn cross-shard read!"
        assert qty_sum == int(oracle["qty"].sum())
        return rows, cursor.stats.shared_jobs, cursor.stats.time_to_first_block
    finally:
        pin.release()


async def main() -> None:
    db = build_database()
    with db, db.serve(workers=4) as svc:
        done = asyncio.Event()
        refresh_task = asyncio.create_task(refresh_stream(svc, done))
        analysts = [analyst(svc, i % 4) for i in range(N_ANALYSTS)]
        results = await asyncio.gather(*analysts)
        applied = await refresh_task

        print(f"refresh stream: {applied} ops in {N_REFRESH_BATCHES} "
              f"batches, concurrent with {N_ANALYSTS} analysts")
        for i, (rows, shared, ttfb) in enumerate(results):
            print(f"  analyst {i}: {rows} rows streamed, "
                  f"{shared} shard scans shared, "
                  f"first block after {ttfb * 1e3:.2f} ms")
        stats = svc.stats
        print(f"service: {stats.range_queries} range queries, "
              f"{stats.batches} batches, {stats.jobs_scheduled} shard jobs "
              f"scanned + {stats.jobs_shared} shared, "
              f"{stats.rows_streamed} rows streamed, "
              f"peak in-flight {svc.admission.peak_inflight}, "
              f"{stats.maintenance_runs} maintenance drains")
        assert stats.rows_streamed == sum(r for r, _, _ in results)
    print("clean shutdown: service workers joined, shard executors closed")


if __name__ == "__main__":
    sys.argv = sys.argv[:1]  # scale-factor args of sibling examples ignored
    asyncio.run(main())
