"""Ablation — vectorized bulk-update path vs per-row scalar updates.

The write-side twin of the block-merge ablation: the same scattered
update stream applied through the scalar :class:`PositionalUpdater`
(one index-probed MergeScan restart per operation — the seed's only
path) and through :class:`BatchUpdater` (sort the batch, resolve every
target position in one index-guided sweep with per-block
``searchsorted``, ingest the run with one bulk PDT append). The paper's
update-throughput results (Figure 16) hinge on batch application;
Krueger et al. make the same point for delta ingestion generally.

The acceptance configuration is the 100k-row stable table with a
10k-operation batch (10 updates/100), where the bulk path must be ≥ 3×
the scalar path; the final report prints the measured speedup per rate.

Run: ``pytest benchmarks/bench_ablation_bulk_updates.py -q -s``
"""

from __future__ import annotations

import time

import pytest

from repro.bench import Report, scaled
from repro.workloads import apply_ops_pdt, build_workload

N_ROWS = scaled(100_000)
RATES = [0.5, 2.0, 10.0]  # 10.0 == the 10k-op acceptance point
GRANULARITY = 4096

_report = Report(
    f"Ablation: bulk vs scalar update application ({N_ROWS} rows), ms",
    ["updates_per_100", "variant", "ms"],
)
_times: dict[tuple, float] = {}


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    if not _report.rows:
        return
    _report.print()
    _report.save("ablation_bulk_updates")
    speedup = Report(
        "Ablation: bulk update path speedup over scalar per-row path",
        ["updates_per_100", "speedup_x"],
    )
    for rate in RATES:
        scalar_ms = _times.get((rate, "scalar"))
        bulk_ms = _times.get((rate, "bulk"))
        if scalar_ms is None or bulk_ms is None:
            continue
        speedup.add(rate, scalar_ms / bulk_ms)
    if speedup.rows:
        speedup.print()
        speedup.save("ablation_bulk_updates_speedup")


@pytest.fixture(scope="module")
def cases():
    cache = {}
    for rate in RATES:
        cache[rate] = build_workload(
            N_ROWS, updates_per_100=rate, seed=int(rate * 3) + 1,
            granularity=GRANULARITY,
        )
    return cache


def _best_of(fn, n):
    best = float("inf")
    result = None
    for _ in range(n):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.mark.parametrize("rate", RATES)
def test_bulk_path(cases, rate):
    wl = cases[rate]
    secs, pdt = _best_of(
        lambda: apply_ops_pdt(wl.table, wl.ops, wl.sparse_index, bulk=True),
        n=3,
    )
    assert pdt.count() > 0
    _report.add(rate, "bulk", secs * 1000)
    _times[(rate, "bulk")] = secs * 1000


@pytest.mark.parametrize("rate", RATES)
def test_scalar_path(cases, rate):
    wl = cases[rate]
    secs, pdt = _best_of(
        lambda: apply_ops_pdt(wl.table, wl.ops, wl.sparse_index, bulk=False),
        n=1,
    )
    assert pdt.count() > 0
    _report.add(rate, "scalar", secs * 1000)
    _times[(rate, "scalar")] = secs * 1000


def test_acceptance_speedup(cases):
    """The PR's acceptance bar, asserted: ≥ 3× at 100k stable rows with a
    10k-operation batch. Both paths produce identical PDTs (the property
    suite proves it); here only the clock differs."""
    wl = cases[10.0]
    bulk_s, bulk_pdt = _best_of(
        lambda: apply_ops_pdt(wl.table, wl.ops, wl.sparse_index, bulk=True),
        n=3,
    )
    scalar_s, scalar_pdt = _best_of(
        lambda: apply_ops_pdt(wl.table, wl.ops, wl.sparse_index, bulk=False),
        n=1,
    )
    assert bulk_pdt.count() == scalar_pdt.count()
    ratio = scalar_s / bulk_s
    print(f"\nacceptance: bulk {bulk_s*1e3:.1f} ms, "
          f"scalar {scalar_s*1e3:.1f} ms, speedup {ratio:.2f}x "
          f"({len(wl.ops)} ops over {wl.table.num_rows} rows)")
    assert ratio >= 3.0
