"""Ablation — PDT fan-out sensitivity.

The paper picks F=8 so leaves span two CPU cache lines (section 3.1). That
argument does not transfer to Python objects, so this ablation measures
how fan-out actually trades off here: update cost (deeper trees vs wider
in-leaf shifts) and full-iteration cost, at a fixed entry count.

Run: ``pytest benchmarks/bench_ablation_fanout.py --benchmark-only``
"""

from __future__ import annotations

import bisect
import random

import pytest

from repro.bench import Report, scaled
from repro.core.pdt import PDT
from repro.workloads import micro_schema

FANOUTS = [4, 8, 16, 32, 64]
SIZE = scaled(50_000)
BATCH = 400

_report = Report(
    "Ablation: PDT fan-out (insert us/op and full-iteration ms at "
    f"{SIZE} entries)",
    ["fanout", "depth", "insert_us_per_op", "iterate_ms"],
)
_rows_tmp = {}


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    if _report.rows:
        _report.print()
        _report.save("ablation_fanout")


def _grow(fanout: int):
    schema = micro_schema(1, "int", 2)
    pdt = PDT(schema, fanout=fanout)
    keys = [i * 2 for i in range(SIZE)]
    rng = random.Random(7)
    next_fresh = SIZE * 2 + 1
    while pdt.count() < SIZE:
        key = rng.randrange(next_fresh) * 2 + 1
        rid = bisect.bisect_left(keys, key)
        if rid < len(keys) and keys[rid] == key:
            key = next_fresh
            next_fresh += 2
            rid = bisect.bisect_left(keys, key)
        keys.insert(rid, key)
        pdt.add_insert(pdt.sk_rid_to_sid((key,), rid), rid, [key, 0, 0])
    return pdt, keys, rng


@pytest.fixture(scope="module")
def grown():
    return {fanout: _grow(fanout) for fanout in FANOUTS}


@pytest.mark.parametrize("fanout", FANOUTS)
def test_fanout_insert(benchmark, grown, fanout):
    pdt, keys, rng = grown[fanout]

    def setup():
        batch = []
        next_fresh = (keys[-1] if keys else 0) + 1
        for _ in range(BATCH):
            key = next_fresh
            next_fresh += 2
            rid = len(keys)
            keys.append(key)
            batch.append(((key,), rid, [key, 0, 0]))
        return (batch,), {}

    def run(batch):
        for sk, rid, row in batch:
            pdt.add_insert(pdt.sk_rid_to_sid(sk, rid), rid, row)

    benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    _rows_tmp.setdefault(fanout, {})["insert"] = (
        benchmark.stats["mean"] / BATCH * 1e6
    )
    _rows_tmp[fanout]["depth"] = pdt.depth()


@pytest.mark.parametrize("fanout", FANOUTS)
def test_fanout_iterate(benchmark, grown, fanout):
    pdt, _, _ = grown[fanout]

    def run():
        n = 0
        for _ in pdt.iter_entries():
            n += 1
        return n

    count = benchmark.pedantic(run, rounds=3, iterations=1)
    assert count == pdt.count()
    cell = _rows_tmp.setdefault(fanout, {})
    cell["iterate"] = benchmark.stats["mean"] * 1000
    if "insert" in cell:
        _report.add(fanout, cell.get("depth", pdt.depth()),
                    cell["insert"], cell["iterate"])
