"""Ablation — stacked-layer depth and Propagate cost.

The three-layer architecture (Trans/Write/Read) buys lock-free isolation;
this ablation measures what the stacking itself costs: merge-scan time
through 1, 2, or 3 layers holding the same total update volume, and the
cost of Propagate folding the top layer down (the operation that bounds
Write-PDT size; paper section 3.3).

Run: ``pytest benchmarks/bench_ablation_layers.py --benchmark-only``
"""

from __future__ import annotations

import random

import pytest

from repro.bench import Report, consume, scaled
from repro.core import merge_scan_layers, propagate
from repro.core.pdt import PDT
from repro.db.update_processor import PositionalUpdater
from repro.storage.sparse_index import SparseIndex
from repro.workloads import build_table, generate_ops

N_ROWS = scaled(50_000)
TOTAL_RATE = 2.4  # updates per 100 tuples across the whole stack
LAYER_COUNTS = [1, 2, 3]

_report = Report(
    f"Ablation: layered merge ({N_ROWS} rows, {TOTAL_RATE}/100 updates "
    f"total), ms",
    ["n_layers", "merge_ms", "propagate_top_ms"],
)
_results = {}


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    for n_layers in sorted(_results):
        cell = _results[n_layers]
        if "merge" in cell and "propagate" in cell:
            _report.add(n_layers, cell["merge"], cell["propagate"])
    if _report.rows:
        _report.print()
        _report.save("ablation_layers")


def _build_stack(n_layers: int):
    """Split one op volume across ``n_layers`` stacked PDTs."""
    table = build_table(N_ROWS, seed=3)
    index = SparseIndex(table, granularity=256)
    per_layer_rate = TOTAL_RATE / n_layers
    layers = []
    rng = random.Random(11)
    for i in range(n_layers):
        pdt = PDT(table.schema)
        layers.append(pdt)
        updater = PositionalUpdater(table, layers, index)
        ops = generate_ops(table, per_layer_rate, seed=rng.randrange(10**6))
        for op in ops:
            try:
                if op[0] == "ins":
                    updater.insert(op[1])
                elif op[0] == "del":
                    updater.delete_by_key(op[1])
                else:
                    updater.modify_by_key(op[1], op[2], op[3])
            except (KeyError, ValueError):
                # Op streams for different layers may collide on a key
                # (deleted below, re-used above): skip those.
                continue
    return table, layers


@pytest.fixture(scope="module")
def stacks():
    return {n: _build_stack(n) for n in LAYER_COUNTS}


@pytest.mark.parametrize("n_layers", LAYER_COUNTS)
def test_layered_merge_scan(benchmark, stacks, n_layers):
    table, layers = stacks[n_layers]
    cols = [c for c in table.schema.column_names
            if c not in table.schema.sort_key]
    benchmark.pedantic(
        lambda: consume(
            merge_scan_layers(table, layers, columns=cols, batch_rows=4096)
        ),
        rounds=3, iterations=1,
    )
    _results.setdefault(n_layers, {})["merge"] = (
        benchmark.stats["mean"] * 1000
    )


@pytest.mark.parametrize("n_layers", LAYER_COUNTS)
def test_propagate_top_layer(benchmark, stacks, n_layers):
    table, layers = stacks[n_layers]
    if len(layers) < 2:
        base_proto, top = layers[0], None
    else:
        base_proto, top = layers[-2], layers[-1]

    def setup():
        if top is None:
            return (PDT(table.schema), layers[0]), {}
        return (base_proto.copy(), top), {}

    def run(base, upper):
        propagate(base, upper)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    _results.setdefault(n_layers, {})["propagate"] = (
        benchmark.stats["mean"] * 1000
    )
