"""Group commit — sustained multi-writer durable commit throughput.

Concurrent writers submit single-op batches through the query service
and wait for each acknowledgement; throughput is acknowledged commits
per second. Two configurations of the *same* workload are compared:

* **baseline** — ``group_commit=False``: every commit fsyncs its own WAL
  append before acknowledging (the per-commit-fsync discipline, with the
  fsync inside the service's write lock).
* **group** — ``group_commit=True``: commits stage their records, one
  leader fsyncs the whole group, and acknowledgement waits happen
  outside the write lock so follower CPU overlaps the leader's fsync.

The table is deliberately tiny and the batches single-op: this bench
isolates the *commit path* (txn machinery + WAL durability), not query
or merge work.

Group commit amortizes fsync latency, so its win scales with the
device's sync cost. The ``fsync_floor`` column reports the emulated
device latency in milliseconds, applied identically to both modes by
wrapping ``os.fsync`` with a post-sync sleep (the sleep releases the
GIL, exactly like a real device wait):

* ``fsync_floor = 0`` — the host's raw fsync (CI/dev machines often sit
  on fast local ext4 where fsync costs ~0.1 ms, *below* the Python
  commit CPU — the regime where group commit can't help much and the
  bench documents that honestly).
* ``fsync_floor = 1`` — a 1 ms durable write, conservative for cloud
  block storage and commodity SSDs with real write barriers (the regime
  the mmap backend targets). The ≥3x acceptance gate runs here.

The memory backend has no WAL file at all; its rows pin the no-durable
cost of the shared submission harness (speedup ~1.0 by construction).

Run: ``pytest benchmarks/bench_group_commit.py -q -s``
"""

from __future__ import annotations

import contextlib
import os
import threading
import time

import pytest

from repro import Database, DataType, Schema
from repro.bench import Report, scaled

WRITERS_SERIES = [1, 4, 8]
N_COMMITS = scaled(200, minimum=60)          # per writer, raw-fsync series
N_COMMITS_FLOORED = scaled(100, minimum=30)  # per writer, emulated device

SCHEMA = Schema.build(
    ("k", DataType.INT64), ("v", DataType.INT64), sort_key=("k",),
)

_report = Report(
    "Group commit: N concurrent writers, single-op acknowledged batches "
    "via the query service — per-commit fsync vs coalesced, commits/s "
    "(fsync_floor = emulated device sync latency, ms)",
    ["writers", "backend", "fsync_floor", "baseline_cps", "group_cps",
     "speedup_x"],
)


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    if _report.rows:
        _report.print()
        _report.save("group_commit")


@contextlib.contextmanager
def fsync_floor(floor_ms: float):
    """Emulate a durable device: every fsync costs at least ``floor_ms``.

    The sleep happens *after* the real fsync and releases the GIL — the
    same overlap opportunity a real device wait gives — and applies to
    baseline and group modes alike.
    """
    if floor_ms <= 0:
        yield
        return
    real_fsync = os.fsync

    def floored(fd):
        real_fsync(fd)
        time.sleep(floor_ms / 1e3)

    os.fsync = floored
    try:
        yield
    finally:
        os.fsync = real_fsync


def make_db(backend: str, root, group: bool, rows: int) -> Database:
    kwargs = {"compressed": False, "group_commit": group}
    if backend == "mmap":
        kwargs.update(storage="mmap", storage_path=root)
    db = Database(**kwargs)
    db.create_table("t", SCHEMA, [(i, 0) for i in range(rows)])
    return db


def run_writers(db: Database, writers: int, n: int) -> tuple[float, dict]:
    """``writers`` threads each submit ``n`` acknowledged single-op
    commits on disjoint keys; returns (commits/s, final expected image).
    """
    expected = {}
    errors: list = []
    with db.serve(workers=writers) as svc:
        def writer(w: int) -> None:
            try:
                for i in range(n):
                    key = w * n + i
                    svc.submit_batch(
                        "t", [("mod", (key,), "v", i + 1)]).result(timeout=120)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        for w in range(writers):
            for i in range(n):
                expected[w * n + i] = i + 1
        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(writers)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
    assert not errors, errors
    return writers * n / elapsed, expected


def check_image(db: Database, expected: dict) -> None:
    got = {k: v for k, v in zip(db.query("t")["k"].tolist(),
                                db.query("t")["v"].tolist())
           if k in expected}
    assert got == expected, "concurrent commits corrupted the image"


def measure(backend, tmp_path, writers, floor_ms, n) -> tuple[float, float]:
    rows = writers * n
    with fsync_floor(floor_ms):
        base_db = make_db(backend, tmp_path / "base", group=False, rows=rows)
        base_cps, expected = run_writers(base_db, writers, n)
        check_image(base_db, expected)
        base_db.close()
        grp_db = make_db(backend, tmp_path / "group", group=True, rows=rows)
        grp_cps, expected = run_writers(grp_db, writers, n)
        check_image(grp_db, expected)
        grp_db.close()
    return base_cps, grp_cps


@pytest.mark.parametrize("writers", WRITERS_SERIES)
@pytest.mark.parametrize("backend", ["memory", "mmap"])
def test_throughput_series(tmp_path, backend, writers):
    """Raw-hardware series (fsync_floor = 0), memory vs mmap."""
    base_cps, grp_cps = measure(backend, tmp_path, writers, 0.0, N_COMMITS)
    _report.add(writers, backend, 0.0, base_cps, grp_cps,
                grp_cps / base_cps)


@pytest.mark.parametrize("writers", WRITERS_SERIES)
def test_durable_device_series(tmp_path, writers):
    """Emulated 1 ms durable device on the mmap backend."""
    base_cps, grp_cps = measure("mmap", tmp_path, writers, 1.0,
                                N_COMMITS_FLOORED)
    _report.add(writers, "mmap", 1.0, base_cps, grp_cps,
                grp_cps / base_cps)


def test_acceptance_group_speedup(tmp_path):
    """Gate: ≥3x acknowledged commits/s at 8 concurrent writers on the
    mmap backend vs the per-commit-fsync baseline, at the 1 ms emulated
    device floor (the fsync-bound regime group commit exists for); the
    raw-fsync run on the same hardware must also win whenever several
    writers contend, with real coalescing observed."""
    base_cps, grp_cps = measure("mmap", tmp_path, 8, 1.0, N_COMMITS_FLOORED)
    ratio = grp_cps / base_cps
    print(f"\nacceptance (1 ms device): baseline {base_cps:.0f} c/s, "
          f"group {grp_cps:.0f} c/s, speedup {ratio:.2f}x")
    assert ratio >= 3.0

    raw_db = make_db("mmap", tmp_path / "raw", group=True, rows=8 * 40)
    raw_cps, expected = run_writers(raw_db, 8, 40)
    stats = raw_db.manager.wal.group.stats
    check_image(raw_db, expected)
    raw_db.close()
    print(f"raw fsync: group {raw_cps:.0f} c/s, "
          f"{stats.coalesced}/{stats.staged} records coalesced, "
          f"max group {stats.max_group}")
    assert stats.coalesced > 0, "8 writers must actually form groups"
