"""Parallel scan — process-worker scaling over sharded mmap storage.

Two gates:

* **Correctness**: the process-mode scan must be *byte-identical* to
  the thread-mode scan of the same table (compressed blocks, a delta
  batch folded over every region so each block pays real MergeScan
  work). Runs on every host.
* **Speedup**: at 4 process workers, draining a full fan-out scan of an
  8-shard table must run ≥ 2x faster than with 1 worker. The scan is
  CPU-bound Python/numpy (block decompression + PDT merge), so thread
  fan-out is GIL-serialized and only worker processes buy wall-clock.
  The gate (and the recorded speedup series) needs real cores: on
  hosts with fewer than 4 the series still runs, but the acceptance
  assert skips and ``benchmarks/results/parallel_scan_speedup.json``
  carries a ``"skipped"`` marker that the regression gate honors.

Timings are min-of-3 per worker count; the worker-count series
(1/2/4 process workers) is recorded under
``benchmarks/results/parallel_scan.json``.

Run: ``pytest benchmarks/bench_parallel_scan.py -q -s``
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import Database, DataType, Schema
from repro.bench import Report, consume, scaled

N_ROWS = scaled(200_000)
SHARDS = 8
WORKER_SERIES = [1, 2, 4]
MEASURE_RUNS = 3
MIN_CORES = 4
SPEEDUP_FLOOR = 2.0

SCHEMA = Schema.build(
    ("k", DataType.INT64), ("v0", DataType.INT64),
    ("v1", DataType.INT64), ("v2", DataType.INT64),
    sort_key=("k",),
)

_report = Report(
    f"Parallel scan: 8-shard mmap fan-out vs process workers "
    f"({N_ROWS} rows, compressed, delta-merged), ms",
    ["workers", "ms", "remote_jobs"],
)
_times: dict[int, float] = {}


def host_cores() -> int:
    return os.cpu_count() or 1


def seed_arrays():
    rng = np.random.default_rng(11)
    return {
        "k": np.arange(N_ROWS, dtype=np.int64) * 2,
        "v0": rng.integers(0, 10**6, N_ROWS),
        "v1": rng.integers(0, 10**6, N_ROWS),
        "v2": rng.integers(0, 10**6, N_ROWS),
    }


def delta_ops():
    """Scattered modifies + inserts touching every block region, so no
    scan can skip the PDT merge path."""
    ops = []
    for k in range(0, N_ROWS * 2, 797 * 2):
        ops.append(("mod", (k,), "v0", -k))
    for k in range(1, N_ROWS * 2, 1511 * 2):
        ops.append(("ins", (k, 1, 2, 3)))
    return ops


def build_db(root, executor: str, workers: int) -> Database:
    db = Database(compressed=True, storage="mmap", storage_path=str(root),
                  executor=executor, workers=workers)
    db.create_sharded_table_from_arrays("t", SCHEMA, seed_arrays(),
                                        shards=SHARDS)
    db.apply_batch("t", delta_ops())
    return db


def drain(db) -> int:
    return consume(db.sharded("t").scan_blocks())


def measure(db) -> float:
    drain(db)  # warm: spawn workers, fault in segments
    best = float("inf")
    for _ in range(MEASURE_RUNS):
        t0 = time.perf_counter()
        rows = drain(db)
        best = min(best, time.perf_counter() - t0)
        assert rows > N_ROWS  # inserts included: the scan did real work
    return best


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    if not _times:
        return
    _report.print()
    _report.save("parallel_scan")
    base = _times.get(1)
    speedup = Report(
        "Parallel scan speedup over 1 process worker",
        ["workers", "speedup_x"],
    )
    payload = {
        "title": speedup.title,
        "columns": speedup.columns,
        "rows": [],
    }
    for workers in WORKER_SERIES:
        if base is None or workers not in _times:
            continue
        speedup.add(workers, base / _times[workers])
        payload["rows"].append([workers, base / _times[workers]])
    if host_cores() < MIN_CORES:
        # The ratio is meaningless without cores to scale onto; mark the
        # results so scripts/check_bench_regression.py skips the series
        # instead of failing it against the checked-in baseline.
        payload["skipped"] = (
            f"host has {host_cores()} cores (< {MIN_CORES}); "
            f"process-worker speedup not measurable"
        )
    if speedup.rows:
        speedup.print()
    out = Path(__file__).resolve().parent / "results"
    out.mkdir(parents=True, exist_ok=True)
    (out / "parallel_scan_speedup.json").write_text(
        json.dumps(payload, indent=2))


@pytest.mark.parametrize("workers", WORKER_SERIES)
def test_scaling_series(tmp_path, workers):
    db = build_db(tmp_path / f"w{workers}", "process", workers)
    try:
        elapsed = measure(db)
        assert db.exec_router.remote_jobs >= SHARDS  # really ran remote
        _report.add(workers, elapsed * 1000, db.exec_router.remote_jobs)
        _times[workers] = elapsed * 1000
    finally:
        db.close()


def test_acceptance_correctness(tmp_path):
    """Gate (a): process-mode results byte-identical to thread mode."""
    proc = build_db(tmp_path / "proc", "process", 4)
    thread = build_db(tmp_path / "thread", "thread", 4)
    try:
        a, b = proc.query("t"), thread.query("t")
        assert proc.exec_router.remote_jobs >= SHARDS
        for c in SCHEMA.column_names:
            assert a[c].tobytes() == b[c].tobytes(), f"column {c} differs"
    finally:
        proc.close()
        thread.close()


def test_acceptance_speedup():
    """Gate (b): >= 2x at 4 process workers vs 1 (needs >= 4 cores)."""
    if host_cores() < MIN_CORES:
        pytest.skip(f"{host_cores()} cores < {MIN_CORES}: "
                    f"speedup gate needs real parallelism")
    assert _times.get(1) and _times.get(4), "scaling series did not run"
    speedup = _times[1] / _times[4]
    assert speedup >= SPEEDUP_FLOOR, (
        f"4-worker speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x"
    )
