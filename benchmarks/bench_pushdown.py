"""Push-down — filtered-aggregate shard scans vs central evaluation.

A TPC-H Q6-style filtered aggregate over a 4-shard lineitem-like table
(sorted by ship date, carrying a delta batch), run two ways per
executor leg:

* **central** — stream every qualifying-scan row to the cursor, filter
  and aggregate in the consumer (how every query ran before push-down);
* **pushed** — ship the predicate + partial-aggregate spec into the
  shard scan jobs; only per-shard partial blocks reach the cursor.

Two gates:

* **Correctness**: the pushed answer is byte-identical to the central
  one, on the thread *and* the process executor leg.
* **Reduction**: rows streamed to the cursor drop by >= 5x on the
  pushed run (the recorded series feeds the regression gate via
  ``speedup_x`` = central-streamed / pushed-streamed).

Run: ``pytest benchmarks/bench_pushdown.py -q -s``
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import Database, DataType, Schema
from repro.bench import Report, scaled
from repro.engine import expr as ex

N_ROWS = scaled(120_000)
SHARDS = 4
REDUCTION_FLOOR = 5.0

SCHEMA = Schema.build(
    ("l_shipdate", DataType.INT64), ("l_orderkey", DataType.INT64),
    ("l_quantity", DataType.INT64), ("l_extendedprice", DataType.INT64),
    ("l_discount", DataType.FLOAT64), ("l_returnflag", DataType.STRING),
    sort_key=("l_shipdate", "l_orderkey"),
)

# ~1 year out of ~7 qualifies on shipdate; discount/quantity cut further.
DATE_LO, DATE_HI = 2_000, 2_365
WHERE = ex.and_(
    ex.ge("l_shipdate", DATE_LO), ex.lt("l_shipdate", DATE_HI),
    ex.between("l_discount", 4 / 256.0, 8 / 256.0),
    ex.lt("l_quantity", 24),
)
AGG = ex.AggSpec(
    ("l_returnflag",),
    {"sum_price": ("l_extendedprice", "sum"),
     "sum_qty": ("l_quantity", "sum"),
     "avg_disc": ("l_discount", "avg"),
     "n": ("*", "count")},
)

_report = Report(
    f"Push-down: filtered aggregate over {SHARDS}-shard lineitem-style "
    f"table ({N_ROWS} rows), rows streamed to the cursor",
    ["executor", "mode", "ms", "rows_streamed"],
)
_streamed: dict[tuple[str, str], int] = {}


def seed_arrays():
    rng = np.random.default_rng(19)
    dates = np.sort(rng.integers(0, 2_556, N_ROWS)).astype(np.int64)
    return {
        "l_shipdate": dates,
        "l_orderkey": np.arange(N_ROWS, dtype=np.int64),
        "l_quantity": rng.integers(1, 51, N_ROWS).astype(np.int64),
        "l_extendedprice": rng.integers(900, 105_000, N_ROWS).astype(
            np.int64),
        # Dyadic discounts (multiples of 1/256): float sums are exact in
        # any order, so pushed partial-merge == central single-pass on
        # bytes, not just approximately.
        "l_discount": rng.integers(0, 16, N_ROWS) / 256.0,
        "l_returnflag": np.array(
            [("R", "A", "N")[i % 3] for i in range(N_ROWS)], dtype=object),
    }


def build_db(root, executor: str) -> Database:
    db = Database(compressed=True, storage="mmap", storage_path=str(root),
                  executor=executor, workers=4)
    db.create_sharded_table_from_arrays("t", SCHEMA, seed_arrays(),
                                        shards=SHARDS)
    keys = seed_arrays()
    ops = [("mod", (int(keys["l_shipdate"][i]), i), "l_quantity", 5)
           for i in range(0, N_ROWS, 1_013)]
    db.apply_batch("t", ops)
    return db


def run_leg(svc, pushed: bool):
    t0 = time.perf_counter()
    before = svc.stats.rows_streamed
    if pushed:
        rel = svc.submit_query("t", where=WHERE, agg=AGG).to_relation()
    else:
        rel = svc.submit_query("t").to_relation()
        mask = WHERE.mask({c: rel[c] for c in rel.column_names})
        rel = rel.filter(mask).group_by("l_returnflag").agg(
            sum_price=("l_extendedprice", "sum"),
            sum_qty=("l_quantity", "sum"),
            avg_disc=("l_discount", "avg"),
            n=("*", "count"),
        )
    elapsed = (time.perf_counter() - t0) * 1000
    streamed = svc.stats.rows_streamed - before
    return rel, elapsed, streamed


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    if not _streamed:
        return
    _report.print()
    _report.save("pushdown")
    reduction = Report(
        "Push-down streamed-row reduction (central / pushed)",
        ["executor", "speedup_x"],
    )
    payload = {"title": reduction.title, "columns": reduction.columns,
               "rows": []}
    for executor in ("thread", "process"):
        central = _streamed.get((executor, "central"))
        pushed = _streamed.get((executor, "pushed"))
        if not central or not pushed:
            continue
        ratio = central / pushed
        reduction.add(executor, ratio)
        payload["rows"].append([executor, ratio])
    reduction.print()
    out = Path(__file__).resolve().parent / "results"
    out.mkdir(parents=True, exist_ok=True)
    (out / "pushdown_reduction.json").write_text(
        json.dumps(payload, indent=2))


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_pushdown_reduction(tmp_path, executor):
    db = build_db(tmp_path / executor, executor)
    try:
        with db.serve(workers=4) as svc:
            central_rel, central_ms, central_rows = run_leg(svc, False)
            pushed_rel, pushed_ms, pushed_rows = run_leg(svc, True)
            # Gate (a): byte-identical to central evaluation.
            assert pushed_rel.column_names == central_rel.column_names
            for c in central_rel.column_names:
                a, b = pushed_rel[c], central_rel[c]
                if a.dtype == object:
                    assert a.tolist() == b.tolist(), c
                else:
                    assert a.tobytes() == b.tobytes(), c
            if executor == "process":
                assert db.exec_router.remote_jobs > 0
                assert db.exec_router.expr_fallbacks == 0
            _report.add(executor, "central", central_ms, central_rows)
            _report.add(executor, "pushed", pushed_ms, pushed_rows)
            _streamed[(executor, "central")] = central_rows
            _streamed[(executor, "pushed")] = pushed_rows
            # Gate (b): >= 5x fewer rows reach the cursor.
            reduction = central_rows / max(pushed_rows, 1)
            assert reduction >= REDUCTION_FLOOR, (
                f"{executor}: streamed-row reduction {reduction:.1f}x "
                f"< {REDUCTION_FLOOR}x "
                f"({central_rows} central vs {pushed_rows} pushed)"
            )
    finally:
        db.close()
