"""Figure 19 — TPC-H under an update load: no-updates vs VDT vs PDT.

Reproduces all five plots of the paper's Figure 19 on the simulated-disk
substrate (scale factor via ``REPRO_TPCH_SF``, default 0.01; the paper
used SF-30 compressed on a server and SF-10 uncompressed on a
workstation). The official-style refresh streams (insert+delete ~0.1% of
orders and lineitem, scattered) are applied before measuring.

* Plot 1/3 analogue — **cold** execution times, compressed/uncompressed:
  buffer pool cleared before every query; reported time = CPU time + I/O
  volume converted through a bandwidth model.
* Plot 2/5 analogue — **I/O volume** per query, compressed/uncompressed:
  bytes read from the simulated disk (VDT must read sort-key columns).
* Plot 4 analogue — **hot** execution times, uncompressed: pool pre-warmed,
  measuring the pure CPU cost of merging (scan vs processing split
  recorded via ScanTimer).

Queries 2, 11, 16 touch no updated tables and serve as built-in controls.

Run: ``pytest benchmarks/bench_fig19_tpch.py --benchmark-only -s``
"""

from __future__ import annotations

import pytest

from repro.bench import Report, time_once, tpch_sf
from repro.engine import ScanTimer
from repro.tpch import (
    CleanSource,
    PdtSource,
    RefreshApplier,
    VdtSource,
    generate,
    load_database,
    run_query,
)

SF = tpch_sf()
QUERIES = list(range(1, 23))
MODES = ("none", "vdt", "pdt")

#: Paper workstation read bandwidth: 150 MB/s (section 4). Used to convert
#: simulated I/O volume into cold-run seconds.
READ_BANDWIDTH = 150e6


def _build_env(compressed: bool):
    data = generate(scale=SF, seed=20100608)
    db = load_database(data, compressed=compressed)
    db.io.read_bandwidth = READ_BANDWIDTH
    applier = RefreshApplier(data)
    applier.apply_all_pdt(db)
    vdts = applier.make_vdts()
    applier.apply_all_vdt(vdts)
    timer = ScanTimer()
    sources = {
        "none": CleanSource(db, timer),
        "vdt": VdtSource(db, vdts, timer),
        "pdt": PdtSource(db, timer),
    }
    return db, sources, timer


@pytest.fixture(scope="module")
def uncompressed_env():
    return _build_env(compressed=False)


@pytest.fixture(scope="module")
def compressed_env():
    return _build_env(compressed=True)


# ---------------------------------------------------------------------------
# Plot 4 analogue: hot uncompressed, per-query timed benchmarks


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("query", QUERIES)
def test_fig19_plot4_hot_uncompressed(benchmark, uncompressed_env, query,
                                      mode):
    db, sources, timer = uncompressed_env
    src = sources[mode]
    run_query(query, src)  # warm the buffer pool and caches

    def run():
        timer.reset()
        return run_query(query, src)

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["query"] = query
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["scan_seconds"] = timer.seconds


# ---------------------------------------------------------------------------
# Report-style plots (one-shot measurements over all queries)


def _collect(db, sources, timer, cold: bool):
    """Per (query, mode): seconds, scan seconds, and I/O bytes."""
    rows = []
    for query in QUERIES:
        for mode in MODES:
            src = sources[mode]
            if cold:
                db.make_cold()
            else:
                run_query(query, src)  # warm
            timer.reset()
            before = db.io.snapshot()
            seconds = time_once(lambda: run_query(query, src))
            io = db.io.since(before)
            io_seconds = io.bytes_read / READ_BANDWIDTH
            rows.append(
                {
                    "query": query,
                    "mode": mode,
                    "cpu_s": seconds,
                    "scan_s": timer.seconds,
                    "io_bytes": io.bytes_read,
                    "total_s": seconds + (io_seconds if cold else 0.0),
                }
            )
    return rows


def _normalized_report(rows, metric, title, name):
    report = Report(title, ["query", "none", "vdt", "pdt", "vdt_abs"])
    by_query = {}
    for row in rows:
        by_query.setdefault(row["query"], {})[row["mode"]] = row[metric]
    for query in QUERIES:
        values = by_query[query]
        base = values["vdt"] or 1e-12
        report.add(
            f"Q{query:02d}",
            round(values["none"] / base, 3),
            1.0,
            round(values["pdt"] / base, 3),
            values["vdt"],
        )
    report.print()
    report.save(name)
    return report


@pytest.mark.parametrize("storage", ["compressed", "uncompressed"])
def test_fig19_cold_and_io_report(benchmark, request, storage):
    """Plots 1+2 (compressed) and 3+5 (uncompressed): cold times and I/O
    volumes for all 22 queries, normalized to the VDT run as in the paper.
    """
    env = request.getfixturevalue(f"{storage}_env")
    db, sources, timer = env

    rows = benchmark.pedantic(
        lambda: _collect(db, sources, timer, cold=True),
        rounds=1, iterations=1,
    )
    plot_time = "1" if storage == "compressed" else "3"
    plot_io = "2" if storage == "compressed" else "5"
    _normalized_report(
        rows, "total_s",
        f"Fig 19 Plot {plot_time}: cold {storage} times "
        f"(normalized to VDT; vdt_abs in s)",
        f"fig19_plot{plot_time}_cold_{storage}",
    )
    _normalized_report(
        rows, "io_bytes",
        f"Fig 19 Plot {plot_io}: {storage} I/O volume "
        f"(normalized to VDT; vdt_abs in bytes)",
        f"fig19_plot{plot_io}_io_{storage}",
    )
    # Sanity: control queries (2, 11, 16) identical I/O across modes.
    by_query = {}
    for row in rows:
        by_query.setdefault(row["query"], {})[row["mode"]] = row["io_bytes"]
    for query in (2, 11, 16):
        assert len(set(by_query[query].values())) == 1


def test_fig19_plot4_report(benchmark, uncompressed_env):
    """Plot 4: hot uncompressed CPU times with the scan/processing split."""
    db, sources, timer = uncompressed_env
    rows = benchmark.pedantic(
        lambda: _collect(db, sources, timer, cold=False),
        rounds=1, iterations=1,
    )
    report = Report(
        "Fig 19 Plot 4: hot uncompressed times, scan fraction "
        "(normalized to VDT)",
        ["query", "none", "vdt", "pdt", "pdt_scan_frac", "vdt_scan_frac"],
    )
    by_query = {}
    for row in rows:
        by_query.setdefault(row["query"], {})[row["mode"]] = row
    for query in QUERIES:
        modes = by_query[query]
        base = modes["vdt"]["cpu_s"] or 1e-12
        report.add(
            f"Q{query:02d}",
            round(modes["none"]["cpu_s"] / base, 3),
            1.0,
            round(modes["pdt"]["cpu_s"] / base, 3),
            round(modes["pdt"]["scan_s"] / max(modes["pdt"]["cpu_s"], 1e-12),
                  3),
            round(modes["vdt"]["scan_s"] / max(modes["vdt"]["cpu_s"], 1e-12),
                  3),
        )
    report.print()
    report.save("fig19_plot4_hot_uncompressed")
