"""Figure 18 — MergeScan with single- vs multi-column sort keys.

A 6-column table whose sort key uses 1..4 of the columns (int or string).
The query projects the remaining non-key columns. Expected shape (paper):
VDT time *grows* with the number of key columns (more columns scanned and
compared per delta), while PDT time *decreases* (fewer non-key columns to
project) and is insensitive to key complexity.

Run: ``pytest benchmarks/bench_fig18_multicolumn_keys.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from repro.bench import Report, consume, scaled
from repro.core import merge_scan
from repro.vdt import vdt_merge_scan
from repro.workloads import apply_ops_pdt, apply_ops_vdt, build_workload

N_ROWS = scaled(100_000)
N_COLUMNS = 6
KEY_COUNTS = [1, 2, 3, 4]
RATES = [1.0, 2.5]
BATCH_ROWS = 4096

_report = Report(
    "Figure 18: MergeScan time (ms) vs number of key columns",
    ["key_type", "updates_per_100", "n_keys", "structure", "ms"],
)


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    if _report.rows:
        _report.print()
        _report.save("fig18_multicolumn_keys")


@pytest.fixture(scope="module")
def cases():
    cache = {}
    for key_type in ("int", "str"):
        for n_keys in KEY_COUNTS:
            for rate in RATES:
                wl = build_workload(
                    N_ROWS,
                    updates_per_100=rate,
                    n_key_cols=n_keys,
                    key_type=key_type,
                    n_data_cols=N_COLUMNS - n_keys,
                    seed=n_keys * 10 + int(rate),
                    granularity=256,
                )
                pdt = apply_ops_pdt(wl.table, wl.ops, wl.sparse_index)
                vdt = apply_ops_vdt(wl.table, wl.ops)
                cache[(key_type, n_keys, rate)] = (wl, pdt, vdt)
    return cache


def _params():
    for key_type in ("int", "str"):
        for rate in RATES:
            for n_keys in KEY_COUNTS:
                yield key_type, rate, n_keys


@pytest.mark.parametrize("key_type,rate,n_keys", list(_params()))
def test_fig18_pdt(benchmark, cases, key_type, rate, n_keys):
    wl, pdt, _ = cases[(key_type, n_keys, rate)]
    cols = list(wl.data_columns)  # project the non-key columns only

    rows = benchmark.pedantic(
        lambda: consume(
            merge_scan(wl.table, pdt, columns=cols, batch_rows=BATCH_ROWS)
        ),
        rounds=3, iterations=1,
    )
    assert rows == wl.table.num_rows + pdt.total_delta()
    _report.add(key_type, rate, n_keys, "PDT",
                benchmark.stats["mean"] * 1000)


@pytest.mark.parametrize("key_type,rate,n_keys", list(_params()))
def test_fig18_vdt(benchmark, cases, key_type, rate, n_keys):
    wl, _, vdt = cases[(key_type, n_keys, rate)]
    cols = list(wl.data_columns)

    rows = benchmark.pedantic(
        lambda: consume(
            vdt_merge_scan(wl.table, vdt, columns=cols,
                           batch_rows=BATCH_ROWS)
        ),
        rounds=3, iterations=1,
    )
    assert rows == wl.table.num_rows + vdt.total_delta()
    _report.add(key_type, rate, n_keys, "VDT",
                benchmark.stats["mean"] * 1000)
