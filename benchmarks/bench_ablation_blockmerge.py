"""Ablation — block-oriented vs tuple-at-a-time MergeScan.

The paper (section 3.1) notes its evaluation Merge operator "was adapted
to use block-oriented pipelined processing ... in many cases this allows
to pass through entire blocks of tuples unmodified". This ablation
quantifies that choice in our substrate: the vectorized BlockMerger vs the
faithful Algorithm-2 next() loop, across update rates.

Run: ``pytest benchmarks/bench_ablation_blockmerge.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from repro.bench import Report, consume, scaled
from repro.core import merge_scan
from repro.core.merge import merge_row_stream
from repro.workloads import apply_ops_pdt, build_workload

N_ROWS = scaled(50_000)
RATES = [0.0, 0.5, 2.5]

_report = Report(
    f"Ablation: block-oriented vs tuple-at-a-time merge ({N_ROWS} rows), ms",
    ["updates_per_100", "variant", "ms"],
)


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    if _report.rows:
        _report.print()
        _report.save("ablation_blockmerge")


@pytest.fixture(scope="module")
def cases():
    cache = {}
    for rate in RATES:
        wl = build_workload(N_ROWS, updates_per_100=rate, seed=int(rate * 7),
                            granularity=256)
        pdt = apply_ops_pdt(wl.table, wl.ops, wl.sparse_index)
        cache[rate] = (wl, pdt)
    return cache


@pytest.mark.parametrize("rate", RATES)
def test_block_oriented(benchmark, cases, rate):
    wl, pdt = cases[rate]
    cols = list(wl.data_columns)
    rows = benchmark.pedantic(
        lambda: consume(merge_scan(wl.table, pdt, columns=cols,
                                   batch_rows=4096)),
        rounds=3, iterations=1,
    )
    assert rows == wl.table.num_rows + pdt.total_delta()
    _report.add(rate, "block", benchmark.stats["mean"] * 1000)


@pytest.mark.parametrize("rate", RATES)
def test_tuple_at_a_time(benchmark, cases, rate):
    wl, pdt = cases[rate]
    stable_rows = wl.table.rows()

    def run():
        n = 0
        for _ in merge_row_stream(stable_rows, pdt):
            n += 1
        return n

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    assert rows == wl.table.num_rows + pdt.total_delta()
    _report.add(rate, "tuple", benchmark.stats["mean"] * 1000)
