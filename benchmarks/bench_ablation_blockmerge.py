"""Ablation — block-pipelined vectorized vs tuple-at-a-time MergeScan.

The paper (section 3.1) notes its evaluation Merge operator "was adapted
to use block-oriented pipelined processing ... in many cases this allows
to pass through entire blocks of tuples unmodified". This ablation
quantifies that choice in our substrate: the run-splicing vectorized
:class:`~repro.core.merge.BlockMerger` (one splice plan per block, whole
``ndarray`` slice copies, zero-copy pass-through of untouched blocks)
against the faithful Algorithm-2 next() loop, across update rates.

The acceptance configuration is the 100k-row table at 1.0 updates/100
(≈1k PDT entries), where the block path must be ≥ 3× the tuple path; the
final report prints the measured speedup per rate.

Run: ``pytest benchmarks/bench_ablation_blockmerge.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from repro.bench import Report, consume, scaled
from repro.core import merge_scan
from repro.core.merge import MERGE_BLOCK_ROWS, merge_row_stream
from repro.workloads import apply_ops_pdt, build_workload

N_ROWS = scaled(100_000)
RATES = [0.0, 0.5, 1.0, 2.5]  # 1.0 == the 1k-entry acceptance point
BATCH_ROWS = [MERGE_BLOCK_ROWS, 4096]

_report = Report(
    f"Ablation: block-pipelined vs tuple-at-a-time merge ({N_ROWS} rows), ms",
    ["updates_per_100", "variant", "ms"],
)
_times: dict[tuple, float] = {}


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    if not _report.rows:
        return
    _report.print()
    _report.save("ablation_blockmerge")
    speedup = Report(
        "Ablation: vectorized block MergeScan speedup over tuple-at-a-time",
        ["updates_per_100", "block_rows", "speedup_x"],
    )
    for (rate, br), block_ms in sorted(_times.items(),
                                       key=lambda kv: (kv[0][0],
                                                       str(kv[0][1]))):
        tuple_ms = _times.get((rate, "tuple"))
        if br == "tuple" or tuple_ms is None:
            continue
        speedup.add(rate, br, tuple_ms / block_ms)
    if speedup.rows:
        speedup.print()
        speedup.save("ablation_blockmerge_speedup")


@pytest.fixture(scope="module")
def cases():
    cache = {}
    for rate in RATES:
        wl = build_workload(N_ROWS, updates_per_100=rate, seed=int(rate * 7),
                            granularity=256)
        pdt = apply_ops_pdt(wl.table, wl.ops, wl.sparse_index)
        cache[rate] = (wl, pdt)
    return cache


@pytest.mark.parametrize("rate", RATES)
@pytest.mark.parametrize("batch_rows", BATCH_ROWS)
def test_block_pipelined(benchmark, cases, rate, batch_rows):
    wl, pdt = cases[rate]
    cols = list(wl.data_columns)
    rows = benchmark.pedantic(
        lambda: consume(merge_scan(wl.table, pdt, columns=cols,
                                   batch_rows=batch_rows)),
        rounds=5, iterations=1,
    )
    assert rows == wl.table.num_rows + pdt.total_delta()
    ms = benchmark.stats["mean"] * 1000
    _report.add(rate, f"block[{batch_rows}]", ms)
    # The speedup series (and the CI regression gate on it) uses the best
    # round: the min is what the code can do, the mean also measures the
    # runner's noise.
    _times[(rate, batch_rows)] = benchmark.stats["min"] * 1000


@pytest.mark.parametrize("rate", RATES)
def test_tuple_at_a_time(benchmark, cases, rate):
    wl, pdt = cases[rate]
    stable_rows = wl.table.rows()

    def run():
        n = 0
        for _ in merge_row_stream(stable_rows, pdt):
            n += 1
        return n

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    assert rows == wl.table.num_rows + pdt.total_delta()
    ms = benchmark.stats["mean"] * 1000
    _report.add(rate, "tuple", ms)
    _times[(rate, "tuple")] = benchmark.stats["min"] * 1000


def test_acceptance_speedup(cases):
    """The PR's acceptance bar, asserted: ≥3× at 100k rows / ~1k entries.

    Measured directly (best-of-N wall clock) so the check does not depend
    on pytest-benchmark run ordering.
    """
    import time

    wl, pdt = cases[1.0]
    cols = list(wl.data_columns)
    stable_rows = wl.table.rows()

    def best_of(fn, n=5):
        best = float("inf")
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    block_s = best_of(lambda: consume(
        merge_scan(wl.table, pdt, columns=cols, batch_rows=4096)))
    tuple_s = best_of(
        lambda: sum(1 for _ in merge_row_stream(stable_rows, pdt)), n=3)
    ratio = tuple_s / block_s
    print(f"\nacceptance: block {block_s*1e3:.2f} ms, "
          f"tuple {tuple_s*1e3:.2f} ms, speedup {ratio:.2f}x "
          f"({pdt.count()} PDT entries over {wl.table.num_rows} rows)")
    assert ratio >= 3.0
