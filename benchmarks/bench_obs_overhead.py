"""Observability overhead — full instrumentation must stay within 5%.

Two copies of the same workload run side by side:

* **plain** — the product default: the metrics registry and the always-on
  latency/commit-stage histograms are live, tracing and the slow-query
  log are off.
* **traced** — everything on: span trees recorded into the ring sink for
  every query and commit, profiles checked against a slow-query
  threshold (set high enough that nothing logs — the check itself is
  part of the cost).

The gate covers the two hot paths the instrumentation touches:

* **parallel_scan** — service queries fanning out across 4 shards
  (root span + per-shard scan spans + per-block profile counting).
* **group_commit** — acknowledged single-op service commits through the
  staged WAL (service.write / wal.ack_wait / txn.commit / group-flush
  spans plus the commit-stage timings), at the same 1 ms emulated
  device floor the group-commit bench's acceptance gate uses. On a raw
  fast-ext4 fsync the Python commit CPU dominates and a ~60 µs span
  budget reads as >10%; against a real durable device it is noise, and
  that device is the regime the commit path exists for.

Methodology: rounds alternate plain/traced so clock drift and cache
state hit both modes equally, and the gate compares the **min across
rounds of the per-round median op latency** — the median absorbs
per-op scheduler hiccups, the min picks each mode's quietest round, so
a noisy-neighbour burst cannot poison either side. ``speedup_x`` is
plain/traced (~1.0 when the instrumentation is free) and the checked-in
baseline wires it into the standard regression gate.

Run: ``pytest benchmarks/bench_obs_overhead.py -q -s``
"""

from __future__ import annotations

import contextlib
import os
import statistics
import time

import numpy as np
import pytest

from repro import Database, DataType, Schema
from repro.bench import Report, scaled

# The scan size is deliberately NOT scaled by REPRO_SCALE: the span
# budget per query is fixed (~tens of µs), so against a toy scan it
# reads as a huge fraction and the 5% gate stops measuring anything.
# A ~3 ms fanned scan is the smallest op the gate is honest about, and
# the whole series still runs in well under a second.
N_ROWS = 200_000
N_SHARDS = 4
SCAN_ROUNDS = 8
SCANS_PER_ROUND = 10
COMMITS_PER_ROUND = scaled(100, minimum=40)
COMMIT_ROUNDS = 4
MAX_OVERHEAD = 0.05   # the acceptance gate: ≤5% slower with tracing on
NOISE_FLOOR_S = 1e-4  # absolute per-op jitter allowance on the median
FSYNC_FLOOR_MS = 1.0  # bench_group_commit's emulated-device regime

SCHEMA = Schema.build(
    ("k", DataType.INT64), ("v", DataType.INT64), sort_key=("k",),
)

_report = Report(
    "Observability overhead: identical workloads with tracing + slow-log "
    "off (plain, the default) vs fully on (traced); median per-op "
    "latency",
    ["bench", "plain_ms", "traced_ms", "speedup_x"],
)


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    if _report.rows:
        _report.print()
        _report.save("obs_overhead")


@contextlib.contextmanager
def fsync_floor(floor_ms: float):
    """Emulate a durable device (same helper as bench_group_commit):
    every fsync costs at least ``floor_ms``; the sleep releases the GIL
    like a real device wait and applies to both modes alike."""
    real_fsync = os.fsync

    def floored(fd):
        real_fsync(fd)
        time.sleep(floor_ms / 1e3)

    os.fsync = floored
    try:
        yield
    finally:
        os.fsync = real_fsync


def make_db(root, instrumented: bool, **kwargs) -> Database:
    obs = {"trace": True, "slow_query_ms": 60_000.0} if instrumented else {}
    return Database(storage="mmap", storage_path=str(root),
                    compressed=False, **obs, **kwargs)


def make_scan_db(root, instrumented: bool) -> Database:
    db = make_db(root, instrumented, workers=N_SHARDS)
    arrays = {
        "k": np.arange(N_ROWS, dtype=np.int64),
        "v": np.arange(N_ROWS, dtype=np.int64) % 1000,
    }
    db.create_sharded_table_from_arrays("t", SCHEMA, arrays,
                                        shards=N_SHARDS)
    return db


def scan_round(svc) -> list[float]:
    """Per-query latencies for one round of fanned-out service scans."""
    times = []
    for _ in range(SCANS_PER_ROUND):
        t0 = time.perf_counter()
        rel = svc.submit_query("t").to_relation()
        times.append(time.perf_counter() - t0)
        assert rel.num_rows == N_ROWS
    return times


def commit_round(svc, value: int) -> list[float]:
    """Per-commit ack latencies for one round of acknowledged single-op
    commits on pre-created keys — the group-commit bench's workload
    shape, steady across rounds."""
    times = []
    for i in range(COMMITS_PER_ROUND):
        t0 = time.perf_counter()
        svc.submit_batch("t", [("mod", (i,), "v", value)]).result(
            timeout=120)
        times.append(time.perf_counter() - t0)
    return times


def within_gate(plain_s: float, traced_s: float) -> bool:
    return traced_s <= plain_s * (1.0 + MAX_OVERHEAD) + NOISE_FLOOR_S


def report_and_gate(bench: str, plain: list[list[float]],
                    traced: list[list[float]]) -> None:
    plain_s = min(statistics.median(r) for r in plain)
    traced_s = min(statistics.median(r) for r in traced)
    _report.add(bench, plain_s * 1e3, traced_s * 1e3, plain_s / traced_s)
    assert within_gate(plain_s, traced_s), (
        f"tracing made {bench} {traced_s / plain_s - 1:.1%} slower at "
        f"the median (gate {MAX_OVERHEAD:.0%} + {NOISE_FLOOR_S * 1e6:.0f}"
        f"us)")


def test_parallel_scan_overhead(tmp_path):
    plain = make_scan_db(tmp_path / "plain", instrumented=False)
    traced = make_scan_db(tmp_path / "traced", instrumented=True)
    try:
        with plain.serve() as psvc, traced.serve() as tsvc:
            scan_round(psvc)  # warm both pools before measuring
            scan_round(tsvc)
            plain_times, traced_times = [], []
            for _ in range(SCAN_ROUNDS):
                plain_times.append(scan_round(psvc))
                traced_times.append(scan_round(tsvc))
        # The traced runs really did record full trees for every query.
        assert len(traced.obs.sink.trace_ids()) == \
            (SCAN_ROUNDS + 1) * SCANS_PER_ROUND
        assert traced.obs.slow_log.entries() == []
    finally:
        plain.close()
        traced.close()
    report_and_gate("parallel_scan", plain_times, traced_times)


def test_group_commit_overhead(tmp_path):
    plain = make_db(tmp_path / "plain", instrumented=False)
    traced = make_db(tmp_path / "traced", instrumented=True)
    try:
        for db in (plain, traced):
            db.create_table("t", SCHEMA,
                            [(i, 0) for i in range(COMMITS_PER_ROUND)])
        with fsync_floor(FSYNC_FLOOR_MS), \
                plain.serve() as psvc, traced.serve() as tsvc:
            commit_round(psvc, 0)  # warm the WAL + commit path
            commit_round(tsvc, 0)
            plain_times, traced_times = [], []
            for r in range(1, COMMIT_ROUNDS + 1):
                plain_times.append(commit_round(psvc, r))
                traced_times.append(commit_round(tsvc, r))
        names = {s.name for s in traced.obs.sink.spans()}
        assert {"service.write", "txn.commit", "wal.group_flush"} <= names
    finally:
        plain.close()
        traced.close()
    report_and_gate("group_commit", plain_times, traced_times)
