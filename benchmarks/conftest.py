"""Benchmark-suite configuration."""

import pytest


def pytest_configure(config):
    # The figure benchmarks print Report tables; keep them visible.
    config.option.verbose = max(config.option.verbose, 0)


@pytest.fixture(scope="session")
def print_reports():
    """Reports registered here are printed once the session ends."""
    reports = []
    yield reports
    for report in reports:
        report.print()
