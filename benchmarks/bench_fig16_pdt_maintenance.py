"""Figure 16 — PDT maintenance cost vs PDT size.

The paper grows a PDT to 1M update entries and plots per-operation cost
for inserts, modifies, and deletes, showing logarithmic growth with
inserts the most expensive (they compare sort keys to compute insert
SIDs). This benchmark reproduces the series at scaled-down sizes
(``REPRO_SCALE`` multiplies them); per-op microseconds are printed in a
Figure-16-style table and stored in each benchmark's ``extra_info``.

Run: ``pytest benchmarks/bench_fig16_pdt_maintenance.py --benchmark-only -s``
"""

from __future__ import annotations

import bisect
import random

import pytest

from repro.bench import Report, scaled
from repro.core.pdt import PDT
from repro.workloads import micro_schema

SIZES = [scaled(1_000), scaled(50_000), scaled(125_000), scaled(250_000)]
BATCH = 400

_report = Report(
    "Figure 16: PDT maintenance cost (us/op) vs PDT size",
    ["pdt_size", "operation", "us_per_op"],
)


class _GrowingImage:
    """Tracks the merged image's keys so ops can be planned with valid
    (sk, rid) pairs without scanning anything during timing."""

    def __init__(self, n_stable: int, seed: int):
        self.schema = micro_schema(1, "int", 2)
        self.keys = [i * 2 for i in range(n_stable)]
        self.rng = random.Random(seed)
        self.next_fresh = n_stable * 2 + 1

    def plan_insert(self):
        key = self.rng.randrange(self.next_fresh) * 2 + 1
        rid = bisect.bisect_left(self.keys, key)
        if rid < len(self.keys) and self.keys[rid] == key:
            key = self.next_fresh
            self.next_fresh += 2
            rid = bisect.bisect_left(self.keys, key)
        self.keys.insert(rid, key)
        return (key,), rid, (key, 0, 0)

    def plan_modify(self):
        rid = self.rng.randrange(len(self.keys))
        return rid, 1, self.rng.randrange(10**6)

    def plan_delete(self):
        rid = self.rng.randrange(len(self.keys))
        key = self.keys.pop(rid)
        return rid, (key,)


def _grow_pdt(size: int, seed: int = 0):
    """PDT with ``size`` entries, grown by scattered inserts/modifies."""
    image = _GrowingImage(n_stable=max(size, 1000), seed=seed)
    pdt = PDT(image.schema)
    rng = random.Random(seed + 1)
    while pdt.count() < size:
        if rng.random() < 0.7:
            sk, rid, row = image.plan_insert()
            pdt.add_insert(pdt.sk_rid_to_sid(sk, rid), rid, list(row))
        else:
            rid, col, value = image.plan_modify()
            pdt.add_modify(rid, col, value)
    return pdt, image


@pytest.fixture(scope="module")
def grown():
    cache = {}
    for size in SIZES:
        cache[size] = _grow_pdt(size)
    return cache


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    if _report.rows:
        _report.print()
        _report.save("fig16_pdt_maintenance")


def _record(benchmark, size, op):
    per_op_us = benchmark.stats["mean"] / BATCH * 1e6
    benchmark.extra_info["pdt_size"] = size
    benchmark.extra_info["us_per_op"] = per_op_us
    _report.add(size, op, per_op_us)


@pytest.mark.parametrize("size", SIZES)
def test_fig16_insert(benchmark, grown, size):
    pdt, image = grown[size]

    def setup():
        batch = [image.plan_insert() for _ in range(BATCH)]
        return (pdt, batch), {}

    def run(pdt, batch):
        for sk, rid, row in batch:
            pdt.add_insert(pdt.sk_rid_to_sid(sk, rid), rid, list(row))

    benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    _record(benchmark, size, "insert")


@pytest.mark.parametrize("size", SIZES)
def test_fig16_modify(benchmark, grown, size):
    pdt, image = grown[size]

    def setup():
        batch = [image.plan_modify() for _ in range(BATCH)]
        return (pdt, batch), {}

    def run(pdt, batch):
        for rid, col, value in batch:
            pdt.add_modify(rid, col, value)

    benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    _record(benchmark, size, "modify")


@pytest.mark.parametrize("size", SIZES)
def test_fig16_delete(benchmark, grown, size):
    pdt, image = grown[size]

    def setup():
        batch = [image.plan_delete() for _ in range(BATCH)]
        return (pdt, batch), {}

    def run(pdt, batch):
        for rid, sk in batch:
            pdt.add_delete(rid, sk)

    benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    _record(benchmark, size, "delete")


# -- checkpoint-scheduler companion series -----------------------------------
#
# The paper's maintenance costs assume something keeps the PDT small. This
# series trickles the same scattered update stream through a Database under
# each scheduler policy and reports total wall clock plus the residual
# delta footprint — the amortization trade the scheduler buys.

_sched_report = Report(
    "Figure 16 companion: trickle updates under checkpoint policies",
    ["policy", "total_ms", "residual_entries", "checkpoints", "range_folds"],
)

_POLICIES = [
    ("manual-never", None),
    ("updates-cap", "updates:2000"),
    ("hot-ranges", "hot-ranges:4"),
]


@pytest.fixture(scope="module", autouse=True)
def sched_report_at_end():
    yield
    if _sched_report.rows:
        _sched_report.print()
        _sched_report.save("fig16_checkpoint_policies")


@pytest.mark.parametrize("label,spec", _POLICIES)
def test_fig16_scheduler_amortization(benchmark, label, spec):
    from repro import Database
    from repro.workloads import build_table, generate_ops

    n_rows = scaled(50_000)
    table = build_table(n_rows, n_data_cols=2)
    ops = generate_ops(table, updates_per_100=5.0, seed=3)

    def setup():
        db = Database(block_rows=4096, checkpoint_policy=spec)
        db.create_table_from_arrays(
            "micro", table.schema,
            {c: table.column(c).values for c in table.schema.column_names},
        )
        return (db,), {}

    def run(db):
        for op in ops:
            if op[0] == "ins":
                db.insert("micro", op[1])
            elif op[0] == "del":
                db.delete("micro", op[1])
            else:
                db.modify("micro", op[1], op[2], op[3])
        _sched_report.add(
            label,
            0.0,  # patched below with the measured mean
            db.manager.state_of("micro").read_pdt.count()
            + db.manager.state_of("micro").write_pdt.count(),
            db.scheduler.stats.checkpoints,
            db.scheduler.stats.range_checkpoints,
        )

    benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    _sched_report.rows[-1][1] = benchmark.stats["mean"] * 1000
