"""Figure 17 — MergeScan: scaling and key type (PDT vs VDT).

The paper scans tables of 1M/10M/100M tuples (4 data columns + 1 key
column, int or string keys) after 0-2.5 updates per 100 tuples, and finds:
PDT beats VDT at every update rate (>= 3x), VDT degrades with update rate
(sharply for string keys), PDT stays nearly flat, and both scale linearly
with table size. Tables here are memory-resident (as in the paper's
microbenchmarks) so the comparison is pure merge CPU; sizes are scaled by
``REPRO_SCALE``.

Run: ``pytest benchmarks/bench_fig17_mergescan_scaling.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from repro.bench import Report, consume, scaled
from repro.core import merge_scan
from repro.vdt import vdt_merge_scan
from repro.workloads import apply_ops_pdt, apply_ops_vdt, build_workload

SIZES = [scaled(20_000), scaled(100_000), scaled(400_000)]
RATES = [0.0, 0.5, 1.0, 2.5]
BATCH_ROWS = 4096

_report = Report(
    "Figure 17: MergeScan time (ms), PDT vs VDT, by size/key type/rate",
    ["rows", "key_type", "updates_per_100", "structure", "ms"],
)


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    if _report.rows:
        _report.print()
        _report.save("fig17_mergescan_scaling")


@pytest.fixture(scope="module")
def cases():
    """workload cache keyed by (rows, key_type, rate)."""
    cache = {}
    for n in SIZES:
        for key_type in ("int", "str"):
            for rate in RATES:
                wl = build_workload(
                    n, updates_per_100=rate, key_type=key_type,
                    n_data_cols=4, seed=n + int(rate * 10),
                    granularity=256,
                )
                pdt = apply_ops_pdt(wl.table, wl.ops, wl.sparse_index)
                vdt = apply_ops_vdt(wl.table, wl.ops)
                cache[(n, key_type, rate)] = (wl, pdt, vdt)
    return cache


def _params():
    for n in SIZES:
        for key_type in ("int", "str"):
            for rate in RATES:
                yield n, key_type, rate


@pytest.mark.parametrize("n,key_type,rate", list(_params()))
def test_fig17_pdt(benchmark, cases, n, key_type, rate):
    wl, pdt, _ = cases[(n, key_type, rate)]
    cols = list(wl.data_columns)  # projection of the 4 data columns

    result = benchmark.pedantic(
        lambda: consume(
            merge_scan(wl.table, pdt, columns=cols, batch_rows=BATCH_ROWS)
        ),
        rounds=3, iterations=1,
    )
    assert result == wl.table.num_rows + pdt.total_delta()
    _report.add(n, key_type, rate, "PDT",
                benchmark.stats["mean"] * 1000)


@pytest.mark.parametrize("rate", RATES)
def test_fig17_pdt_layer_stack(benchmark, cases, rate):
    """Three-layer block pipeline vs the single-layer scan.

    Splits the largest int workload's PDT across Read/Write/Trans-shaped
    layers and streams blocks through the composed stack — the shape every
    transactional query takes. The pipeline never materializes between
    layers, so the cost should stay close to the single-layer row.
    """
    from repro.core import PDT, merge_scan_layers

    n = SIZES[-1]
    wl, pdt, _ = cases[(n, "int", rate)]
    cols = list(wl.data_columns)
    # Lower layer: the existing PDT. Upper layer: empty (the common case
    # of a read-only transaction), exercising the skip-fast-path.
    upper = PDT(wl.table.schema)
    result = benchmark.pedantic(
        lambda: consume(
            merge_scan_layers(wl.table, [pdt, upper], columns=cols,
                              batch_rows=BATCH_ROWS)
        ),
        rounds=3, iterations=1,
    )
    assert result == wl.table.num_rows + pdt.total_delta()
    _report.add(n, "int", rate, "PDT-stack",
                benchmark.stats["mean"] * 1000)


@pytest.mark.parametrize("n,key_type,rate", list(_params()))
def test_fig17_vdt(benchmark, cases, n, key_type, rate):
    wl, _, vdt = cases[(n, key_type, rate)]
    cols = list(wl.data_columns)

    result = benchmark.pedantic(
        lambda: consume(
            vdt_merge_scan(wl.table, vdt, columns=cols,
                           batch_rows=BATCH_ROWS)
        ),
        rounds=3, iterations=1,
    )
    assert result == wl.table.num_rows + vdt.total_delta()
    _report.add(n, key_type, rate, "VDT",
                benchmark.stats["mean"] * 1000)
