"""Ablation — range-sharded vs single-table scan+update workloads.

Two gates:

* **Correctness**: at 100k stable rows / 10k scattered ops, the sharded
  (4-shard) database must produce *byte-identical* scan results to the
  unsharded oracle — before updates, after the bulk batch, and after a
  full checkpoint (per-shard stable images concatenated vs the oracle's
  rewrite).
* **Speedup**: a skewed scan+update workload under the autonomous
  checkpoint scheduler must run ≥ 1.5× faster with 4 shards than with 1.
  The win is the tentpole's point: per-shard maintenance folds the *hot
  shard* (≈ rows/shards stable rows) where the 1-shard configuration
  rewrites the whole table, and cold shards are never touched. Scan
  fan-out additionally runs one MergeScan pipeline per shard on a thread
  pool (a further win on multi-core hosts; the maintenance asymmetry
  does not depend on it).

The shard-count scaling series (1/2/4/8 shards) is recorded under
``benchmarks/results/ablation_shards.json``.

Run: ``pytest benchmarks/bench_ablation_shards.py -q -s``
"""

from __future__ import annotations

import time

import pytest

from repro import Database
from repro.bench import Report, scaled
from repro.workloads import build_table, canonical_ops, generate_ops

N_ROWS = scaled(100_000)
SHARD_SERIES = [1, 2, 4, 8]
ROUNDS = 6
BATCH = max(N_ROWS // 40, 50)          # hot ops per round
FOLD_AT = max(int(N_ROWS * 0.04), 120)  # per-shard checkpoint threshold

_report = Report(
    f"Ablation: skewed scan+update workload vs shard count "
    f"({N_ROWS} rows, {ROUNDS}x{BATCH} hot ops), ms",
    ["shards", "ms", "checkpoints"],
)
_times: dict[int, float] = {}


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    if not _report.rows:
        return
    _report.print()
    _report.save("ablation_shards")
    speedup = Report(
        "Ablation: sharded scan+update speedup over 1-shard configuration",
        ["shards", "speedup_x"],
    )
    base = _times.get(1)
    for shards in SHARD_SERIES:
        if base is None or shards not in _times:
            continue
        speedup.add(shards, base / _times[shards])
    if speedup.rows:
        speedup.print()
        speedup.save("ablation_shards_speedup")


def seed_rows():
    """The microbenchmark table (keys 0,2,...,2N; 4 data columns) as
    sorted row tuples, the form both table builders accept."""
    table = build_table(N_ROWS, n_data_cols=4, seed=3)
    names = list(table.schema.column_names)
    return table.schema, list(zip(*(table.column(c).values for c in names)))


@pytest.fixture(scope="module")
def base():
    return seed_rows()


def hot_batches(schema, rng_seed: int = 5):
    """ROUNDS update batches, every key inside the first quarter of the
    key space — the skew that leaves 3 of 4 shards cold."""
    import random

    rng = random.Random(rng_seed)
    hot_hi = N_ROWS // 2  # stable keys are 2i; first quarter of rows
    batches = []
    next_odd = 1
    for _ in range(ROUNDS):
        ops = []
        for _ in range(BATCH):
            if rng.random() < 0.25:
                ops.append(("ins", (next_odd, 0, 0, 0, 0)))
                next_odd += 2
                if next_odd >= hot_hi:
                    next_odd = 1  # wrapped; fall back to modifies
                    ops.pop()
                    continue
            else:
                k = rng.randrange(hot_hi // 2) * 2
                ops.append(("mod", (k,), f"v{rng.randrange(4)}",
                            rng.randrange(10**6)))
        batches.append(ops)
    return batches


def run_workload(schema, rows, shards: int) -> tuple[float, Database]:
    """Skewed update batches interleaved with full scans, maintenance
    running autonomously under the per-(shard-)table scheduler."""
    db = Database(compressed=False,
                  checkpoint_policy=f"updates:{FOLD_AT}")
    db.create_sharded_table("workload", schema, rows, shards=shards)
    batches = hot_batches(schema)
    t0 = time.perf_counter()
    for ops in batches:
        seen = {}
        deduped = []
        for op in ops:  # same-key mods collapse; keeps batches clean
            key = (op[0], tuple(op[1]) if op[0] != "ins" else op[1][0],
                   op[2] if op[0] == "mod" else None)
            if key in seen:
                continue
            seen[key] = True
            deduped.append(op)
        db.apply_batch("workload", deduped)
        rel = db.query("workload", columns=["v0"])
        assert len(rel["v0"]) > 0
    elapsed = time.perf_counter() - t0
    return elapsed, db


@pytest.mark.parametrize("shards", SHARD_SERIES)
def test_scaling_series(base, shards):
    schema, rows = base
    elapsed, db = run_workload(schema, rows, shards)
    _report.add(shards, elapsed * 1000, db.scheduler.stats.checkpoints)
    _times[shards] = elapsed * 1000
    db.close()


def test_acceptance_correctness(base):
    """Gate (a): sharded scan + bulk-update results byte-identical to the
    unsharded oracle at 100k rows / 10k ops."""
    schema, rows = base
    oracle = Database(compressed=False)
    oracle.create_table("t", schema, rows)
    db = Database(compressed=False)
    db.create_sharded_table("t", schema, rows, shards=4)

    table = build_table(N_ROWS, n_data_cols=4, seed=3)
    ops = canonical_ops(generate_ops(table, updates_per_100=10.0, seed=11))

    def identical():
        a = db.query("t")
        b = oracle.query("t")
        for c in schema.column_names:
            assert a[c].tobytes() == b[c].tobytes(), f"column {c} differs"

    identical()
    assert db.apply_batch("t", ops) == oracle.apply_batch("t", ops) \
        == len(ops)
    identical()
    db.checkpoint("t")
    oracle.checkpoint("t")
    identical()
    # the concatenated shard stable images are the oracle's stable image
    import numpy as np

    for c in schema.column_names:
        shard_arrays = [
            s.stable.column(c).values for s in db.sharded("t").shard_states()
        ]
        assert np.concatenate(shard_arrays).tobytes() \
            == oracle.table("t").column(c).values.tobytes()
    print(f"\ncorrectness: {len(ops)} ops over {N_ROWS} rows, "
          f"4-shard results byte-identical to oracle")
    db.close()
    oracle.close()


def test_acceptance_speedup(base):
    """Gate (b): ≥ 1.5× wall clock for the 4-shard configuration over
    1-shard on the skewed parallel scan+update workload."""
    schema, rows = base
    single_s, single_db = run_workload(schema, rows, shards=1)
    sharded_s, sharded_db = run_workload(schema, rows, shards=4)
    assert single_db.row_count("workload") \
        == sharded_db.row_count("workload")
    assert single_db.scheduler.stats.checkpoints > 0, \
        "workload must trigger autonomous maintenance"
    ratio = single_s / sharded_s
    print(f"\nacceptance: 4-shard {sharded_s*1e3:.1f} ms, "
          f"1-shard {single_s*1e3:.1f} ms, speedup {ratio:.2f}x "
          f"({ROUNDS} rounds x {BATCH} hot ops over {N_ROWS} rows, "
          f"fold threshold {FOLD_AT})")
    single_db.close()
    sharded_db.close()
    assert ratio >= 1.5