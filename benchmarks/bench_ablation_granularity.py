"""Ablation — sparse-index granularity vs update positioning cost.

Value-addressed updates locate their RIDs with a sparse-index-restricted
MergeScan (paper section 3.2). Finer granules mean less scanning per
update but a larger index; this ablation measures the trade-off that the
PositionalUpdater inherits.

Run: ``pytest benchmarks/bench_ablation_granularity.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from repro.bench import Report, scaled
from repro.storage.sparse_index import SparseIndex
from repro.workloads import apply_ops_pdt, build_table, generate_ops

N_ROWS = scaled(100_000)
GRANULES = [64, 256, 1024, 4096, 16384]
RATE = 1.0

_report = Report(
    f"Ablation: sparse-index granularity ({N_ROWS} rows, "
    f"{RATE}/100 updates)",
    ["granularity", "index_entries", "apply_ms"],
)


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    if _report.rows:
        _report.print()
        _report.save("ablation_granularity")


@pytest.fixture(scope="module")
def base():
    table = build_table(N_ROWS, seed=17)
    ops = generate_ops(table, RATE, seed=18)
    return table, ops


@pytest.mark.parametrize("granularity", GRANULES)
def test_positioning_cost(benchmark, base, granularity):
    table, ops = base
    index = SparseIndex(table, granularity=granularity)

    benchmark.pedantic(
        lambda: apply_ops_pdt(table, ops, index),
        rounds=3, iterations=1,
    )
    _report.add(granularity, index.memory_entries(),
                benchmark.stats["mean"] * 1000)
