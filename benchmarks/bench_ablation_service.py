"""Ablation — async query service vs serial query issuance.

Two gates:

* **Correctness**: streamed service cursors must be *byte-identical* to
  the synchronous ``Database.query_range`` oracle — checked live under
  concurrent writers (each cursor against its own pinned snapshot re-read
  through the sync API) and at quiescence (cursor vs the plain sync call).
* **Speedup**: 8 concurrent skewed range scans submitted through the
  service must beat issuing the same 8 scans serially by ≥ 1.5× on a
  4-shard table. The win is cooperative scan sharing, not parallelism
  (CI runs single-core): the skewed scans all want the same hot shards at
  the same pinned version, so the per-shard job scheduler runs *one*
  MergeScan per shard and fans its blocks to every attached cursor, whose
  own key filters trim the union back — 8 requests, ~2 physical merges.

The concurrency scaling series (1/2/4/8 concurrent scans) is recorded
under ``benchmarks/results/ablation_service.json``.

Run: ``pytest benchmarks/bench_ablation_service.py -q -s``
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro import Database, DataType, Schema
from repro.bench import Report, scaled

N_ROWS = scaled(100_000)
N_DELTAS = N_ROWS // 5          # hot-range PDT entries the merges pay for
CONCURRENCY_SERIES = [1, 2, 4, 8]
HOT_HI = N_ROWS // 2            # keys are 2i: first quarter of key space

_report = Report(
    f"Ablation: {N_ROWS}-row 4-shard table, skewed range scans, "
    f"{N_DELTAS} hot deltas — serial issuance vs query service, ms",
    ["concurrency", "serial_ms", "service_ms", "speedup_x", "jobs_shared"],
)


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    if _report.rows:
        _report.print()
        _report.save("ablation_service")


def make_db() -> Database:
    schema = Schema.build(
        ("k", DataType.INT64), ("v0", DataType.INT64),
        ("v1", DataType.INT64), ("v2", DataType.INT64), sort_key=("k",),
    )
    db = Database(compressed=False)
    db.create_sharded_table(
        "t", schema, [(i * 2, i, i % 13, i % 101) for i in range(N_ROWS)],
        shards=4,
    )
    rng = random.Random(5)
    ops = {}
    while len(ops) < N_DELTAS:
        key = (rng.randrange(HOT_HI // 2) * 2,)
        ops[key] = ("mod", key, "v0", rng.randrange(10**6))
    db.apply_batch("t", list(ops.values()))
    # Keep the Write-PDT small, as the paper's maintenance contract says:
    # pins then capture the Read-PDT by reference and copy nothing.
    for shard in db.sharded("t").shard_names:
        db.manager.propagate_write_to_read(shard)
    return db


@pytest.fixture(scope="module")
def db():
    database = make_db()
    yield database
    database.close()


def skewed_scans(n: int) -> list[tuple]:
    """``n`` overlapping ranges inside the hot half of the key space."""
    step = max(HOT_HI // 32, 1)
    return [
        ((lo,), (lo + HOT_HI * 3 // 4,))
        for lo in range(0, n * step, step)
    ]


def run_serial(db, scans) -> tuple[float, list]:
    start = time.perf_counter()
    rels = [
        db.query_range("t", low=lo, high=hi, columns=["k", "v0"])
        for lo, hi in scans
    ]
    return time.perf_counter() - start, rels


def run_service(db, svc, scans) -> tuple[float, list]:
    start = time.perf_counter()
    with svc.pin() as pin:
        cursors = svc.submit_many(
            [{"table": "t", "low": lo, "high": hi, "columns": ["k", "v0"]}
             for lo, hi in scans],
            pin=pin,
        )
        rels = [cursor.to_relation() for cursor in cursors]
    return time.perf_counter() - start, rels


@pytest.mark.parametrize("concurrency", CONCURRENCY_SERIES)
def test_scaling_series(db, concurrency):
    scans = skewed_scans(concurrency)
    serial_s, serial_rels = run_serial(db, scans)
    with db.serve(workers=4) as svc:
        service_s, service_rels = run_service(db, svc, scans)
        shared = svc.stats.jobs_shared
    for got, expect in zip(service_rels, serial_rels):
        for c in ("k", "v0"):
            assert got[c].tobytes() == expect[c].tobytes()
    _report.add(concurrency, serial_s * 1e3, service_s * 1e3,
                serial_s / service_s, shared)


def test_acceptance_correctness():
    """Gate (a): streamed cursors byte-identical to the synchronous
    ``query_range`` oracle — under concurrent writers (pinned) and at
    quiescence (unpinned)."""
    db = make_db()
    try:
        svc = db.serve(workers=4)
        stop = threading.Event()
        write_errors: list = []

        def writer():
            rng = random.Random(99)
            while not stop.is_set():
                try:
                    svc.submit_batch("t", [
                        ("mod", (rng.randrange(HOT_HI // 2) * 2,), "v1",
                         rng.randrange(10**6)),
                    ]).result()
                except BaseException as exc:
                    write_errors.append(exc)
                    return

        writers = [threading.Thread(target=writer) for _ in range(2)]
        for thread in writers:
            thread.start()
        streamed = []
        try:
            for lo, hi in skewed_scans(6):
                pin = svc.pin()
                cursor = svc.submit_range("t", low=lo, high=hi, pin=pin)
                rel = cursor.to_relation()
                streamed.append((pin, lo, hi, rel))
        finally:
            stop.set()
            for thread in writers:
                thread.join(timeout=30)
        assert not write_errors, write_errors
        # each cursor vs the sync oracle evaluated at its pinned version
        for pin, lo, hi, rel in streamed:
            oracle = db.query_range("t", low=lo, high=hi, pin=pin)
            for c in rel.column_names:
                assert rel[c].tobytes() == oracle[c].tobytes(), \
                    f"column {c} differs under concurrent writers"
            pin.release()
        # at quiescence: cursor vs the plain synchronous call
        lo, hi = (100,), (HOT_HI,)
        cursor_rel = svc.submit_range("t", low=lo, high=hi).to_relation()
        oracle = db.query_range("t", low=lo, high=hi)
        for c in cursor_rel.column_names:
            assert cursor_rel[c].tobytes() == oracle[c].tobytes()
        print(f"\ncorrectness: {len(streamed)} streamed cursors "
              f"byte-identical to pinned sync oracles under "
              f"{len(writers)} writers; quiescent cursor identical to "
              f"query_range")
    finally:
        db.close()


def test_acceptance_speedup(db):
    """Gate (b): ≥ 1.5× aggregate throughput for 8 concurrent skewed
    range scans via the service vs issuing them serially (4 shards)."""
    scans = skewed_scans(8)
    serial_s, serial_rels = run_serial(db, scans)
    with db.serve(workers=4) as svc:
        service_s, service_rels = run_service(db, svc, scans)
        shared = svc.stats.jobs_shared
        scheduled = svc.stats.jobs_scheduled
    for got, expect in zip(service_rels, serial_rels):
        for c in ("k", "v0"):
            assert got[c].tobytes() == expect[c].tobytes()
    ratio = serial_s / service_s
    print(f"\nacceptance: 8 scans serial {serial_s*1e3:.1f} ms, "
          f"service {service_s*1e3:.1f} ms, speedup {ratio:.2f}x "
          f"({scheduled} jobs scanned, {shared} shared, {N_ROWS} rows, "
          f"{N_DELTAS} deltas)")
    assert shared > 0, "skewed concurrent scans must share jobs"
    assert ratio >= 1.5
