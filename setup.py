"""Legacy setup shim: enables `pip install -e .` in offline environments
where the `wheel` package (needed by PEP 517 editable installs) is absent."""

from setuptools import setup

setup()
