#!/usr/bin/env python
"""Prometheus-text exporter for ``Database.metrics()`` snapshots.

``Database.metrics()`` returns one JSON-able dict (instrument values plus
the six live stats surfaces). This script renders such a snapshot in the
Prometheus text exposition format — the glue between a repro process
that periodically dumps ``json.dump(db.metrics(), f)`` and a node
exporter's textfile collector (or any scrape-side tooling).

Usage::

    # A snapshot dumped by your process:
    python scripts/export_metrics.py snapshot.json
    python scripts/export_metrics.py - < snapshot.json   # stdin

    # No snapshot at hand? Run a tiny self-contained workload and
    # export its live metrics (demonstrates the full pipeline):
    python scripts/export_metrics.py --demo

Multiple snapshot files merge into one exposition (counters and
histogram buckets sum — per-process snapshots roll up)::

    python scripts/export_metrics.py shard0.json shard1.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import MetricsRegistry, prometheus_text  # noqa: E402


def demo_snapshot() -> dict:
    from repro import Database, DataType, Schema

    schema = Schema.build(("k", DataType.INT64), ("v", DataType.INT64),
                          sort_key=("k",))
    with Database() as db:
        db.create_sharded_table("t", schema,
                                [(i, i) for i in range(5_000)], shards=4)
        db.insert("t", (5_001, 1))
        db.query("t")
        db.query_range("t", low=(10,), high=(99,))
        return db.metrics()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("snapshots", nargs="*",
                        help="metrics snapshot JSON files ('-' = stdin)")
    parser.add_argument("--demo", action="store_true",
                        help="run a tiny workload and export its metrics")
    parser.add_argument("--namespace", default="repro",
                        help="metric name prefix (default: repro)")
    args = parser.parse_args(argv)

    if args.demo:
        snapshots = [demo_snapshot()]
    elif args.snapshots:
        snapshots = []
        for name in args.snapshots:
            if name == "-":
                snapshots.append(json.load(sys.stdin))
            else:
                snapshots.append(json.loads(Path(name).read_text()))
    else:
        parser.error("provide snapshot files (or '-' for stdin), "
                     "or --demo")

    merged = snapshots[0]
    for snap in snapshots[1:]:
        merged = MetricsRegistry.merge_snapshots(merged, snap)
    sys.stdout.write(prometheus_text(merged, namespace=args.namespace))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
