#!/usr/bin/env python
"""Benchmark regression gate: fresh ablation speedups vs checked-in
baselines.

Scans the baseline directory for result JSONs that carry a ``speedup_x``
column (the ablation acceptance series), matches each row of the freshly
measured results to its baseline row by the configuration key columns
(everything before the measurement columns — per-run timings like
``*_ms`` and incidental counters are not part of the key), and fails when
any measured speedup regressed by more than ``--threshold`` (default 30%)
relative to its baseline.

Speedup *ratios* are compared rather than absolute times because ratios
are far more stable across runner hardware; the checked-in baselines are
generated at the same ``REPRO_SCALE`` CI runs the benches with.

Usage (what CI does)::

    cp -r benchmarks/results /tmp/bench-baseline
    ... run the ablation benches (they overwrite benchmarks/results) ...
    python scripts/check_bench_regression.py \
        --baseline /tmp/bench-baseline --results benchmarks/results
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

MEASUREMENT_COLUMNS = {"speedup_x", "jobs_shared"}


def _is_measurement(col: str) -> bool:
    # *_ms = per-run timings, *_cps = per-run throughput rates; neither
    # is part of a row's configuration key.
    return (col in MEASUREMENT_COLUMNS or col.endswith("_ms")
            or col.endswith("_cps"))


def _keyed_speedups(payload: dict) -> dict[tuple, float]:
    columns = payload["columns"]
    if "speedup_x" not in columns:
        return {}
    key_idx = [i for i, c in enumerate(columns) if not _is_measurement(c)]
    spd_idx = columns.index("speedup_x")
    out = {}
    for row in payload["rows"]:
        key = tuple(row[i] for i in key_idx)
        out[key] = float(row[spd_idx])
    return out


def check(baseline_dir: Path, results_dir: Path,
          threshold: float) -> list[str]:
    failures: list[str] = []
    checked = 0
    for base_path in sorted(baseline_dir.glob("*.json")):
        base = json.loads(base_path.read_text())
        base_speedups = _keyed_speedups(base)
        if not base_speedups:
            continue
        fresh_path = results_dir / base_path.name
        if not fresh_path.exists():
            failures.append(f"{base_path.name}: no fresh results "
                            f"(bench did not run?)")
            continue
        fresh_payload = json.loads(fresh_path.read_text())
        if fresh_payload.get("skipped"):
            # The bench ran but declared its series unmeasurable on this
            # host (e.g. the parallel-scan speedup on < 4 cores). An
            # explicit skip marker is not a regression — only a missing
            # or degraded measurement is.
            print(f"  skipped  {base_path.name}: "
                  f"{fresh_payload['skipped']}")
            continue
        fresh_speedups = _keyed_speedups(fresh_payload)
        for key, base_spd in sorted(base_speedups.items()):
            fresh_spd = fresh_speedups.get(key)
            if fresh_spd is None:
                failures.append(
                    f"{base_path.name} {key}: missing from fresh results"
                )
                continue
            checked += 1
            floor = base_spd * (1.0 - threshold)
            status = "ok" if fresh_spd >= floor else "REGRESSED"
            print(f"{status:>9}  {base_path.name} {key}: "
                  f"{fresh_spd:.2f}x vs baseline {base_spd:.2f}x "
                  f"(floor {floor:.2f}x)")
            if fresh_spd < floor:
                failures.append(
                    f"{base_path.name} {key}: {fresh_spd:.2f}x < "
                    f"{floor:.2f}x ({threshold:.0%} below baseline "
                    f"{base_spd:.2f}x)"
                )
    print(f"\nchecked {checked} speedup series")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True,
                        help="directory with the checked-in result JSONs")
    parser.add_argument("--results", type=Path, required=True,
                        help="directory with the freshly measured JSONs")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max allowed relative regression (default 0.30)")
    args = parser.parse_args(argv)

    failures = check(args.baseline, args.results, args.threshold)
    if failures:
        print("\nregression gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
