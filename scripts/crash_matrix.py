#!/usr/bin/env python
"""Crash matrix: kill a durable database at every interesting boundary,
reopen, and verify byte-identity against a pre-crash oracle.

For each crash point the parent spawns a child process that runs a
deterministic workload — commits, full checkpoints, a sharded table with
per-shard checkpoints, an incremental range checkpoint, and a shard
split — against the mmap storage backend, and dies with ``os._exit``
exactly at the chosen boundary:

* ``commit:<k>``        — right after the k-th committed batch
* ``ckpt-pre-publish``  — inside a checkpoint, after the new image's
                          blocks were appended but *before* the catalog
                          publish (the old image must recover)
* ``ckpt-post-publish`` — after the catalog publish but *before* the WAL
                          rebase (image-aware replay must skip the folded
                          history)
* ``shard-ckpt-mid``    — between two shards' checkpoints of one sharded
                          table
* ``range-pre-publish`` / ``range-post-publish`` — the same two windows
                          around an incremental range checkpoint (whose
                          surviving deltas ride a tagged snapshot record)
* ``split-pre-wal``     — mid shard-split, new shards installed but the
                          WAL layout rewrite never landed
* ``split-post-wal``    — layout committed but the retired shard's files
                          never dropped
* ``abandon``           — after the whole workload, no clean close

Group-commit boundaries run a *different* child: four concurrent writers
submit batches through the query service (striped WAL, coalesced
fsyncs), and each writer appends the batch id to an fsynced ``acks``
file only after its future resolved — so the acks file is exactly the
set of acknowledged commits at the kill. The kill lands inside the
leader's shared flush via the coordinator's crash hook:

* ``group-pre-fsync``   — batch lines written, no file fsynced yet
* ``group-mid-fsync``   — some stream files fsynced, others not
* ``group-post-fsync``  — everything fsynced, no ticket resolved (and so
                          nothing acknowledged)
* ``group-torn-write``  — like pre-fsync, plus the last file's tail is
                          truncated mid-record (a torn append)

Recovery must show every *acknowledged* batch fully applied and every
batch — acknowledged or not — applied all-or-nothing (each batch mixes
one insert with spread modifies, and every modified key is touched by
exactly one batch, so partial application is detectable per key).

The child appends the full logical row image of every table to an
``oracle.json`` (written atomically, fsynced) after each commit; since
commits are WAL-fsynced, the last published oracle is exactly the state
the reopened database must serve — checkpoints, splits, and the crash
windows inside them never change logical contents. The parent runs
``Database.recover(root)`` and compares row-for-row, then verifies the
recovered database still accepts writes.

Usage::

    python scripts/crash_matrix.py                 # full matrix
    python scripts/crash_matrix.py --points commit:2,ckpt-pre-publish
    python scripts/crash_matrix.py --rows 600      # bigger workload
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

CRASH_EXIT = 77

MAINTENANCE_POINTS = [
    "ckpt-pre-publish",
    "ckpt-post-publish",
    "shard-ckpt-mid",
    "range-pre-publish",
    "range-post-publish",
    "split-pre-wal",
    "split-post-wal",
]

GROUP_POINTS = [
    "group-pre-fsync",
    "group-mid-fsync",
    "group-post-fsync",
    "group-torn-write",
]


def default_points(n_commits: int) -> list[str]:
    return [f"commit:{k}" for k in range(1, n_commits + 1)] \
        + MAINTENANCE_POINTS + ["abandon"] + GROUP_POINTS


# ---------------------------------------------------------------------------
# child: run the workload, die at the chosen point


class _Crasher:
    """Arms os._exit at named maintenance-internal boundaries."""

    def __init__(self, point: str):
        self.point = point
        self.armed: str | None = None

    def arm(self, name: str) -> None:
        self.armed = name

    def disarm(self) -> None:
        self.armed = None

    def maybe_die(self, name: str) -> None:
        if self.point == name and self.armed == name:
            os._exit(CRASH_EXIT)


def _install_hooks(crasher: _Crasher) -> None:
    import repro.txn.checkpoint as ckpt_mod
    from repro.shard.sharded import ShardedTable
    from repro.storage.blocks import BlockStore
    from repro.txn.wal import WriteAheadLog

    orig_sync = BlockStore.sync

    def sync(self):
        # pre-publish points die *instead of* publishing the catalog.
        crasher.maybe_die("ckpt-pre-publish")
        crasher.maybe_die("range-pre-publish")
        orig_sync(self)

    BlockStore.sync = sync

    orig_rebase = WriteAheadLog.rebase_table

    def rebase_table(self, table, snapshot_pdt=None, lsn=0,
                     for_image_lsn=None):
        # post-publish points die after the catalog landed, before the
        # WAL drops the folded history.
        crasher.maybe_die("ckpt-post-publish")
        crasher.maybe_die("range-post-publish")
        orig_rebase(self, table, snapshot_pdt=snapshot_pdt, lsn=lsn,
                    for_image_lsn=for_image_lsn)

    WriteAheadLog.rebase_table = rebase_table

    orig_ckpt = ckpt_mod.checkpoint_table
    state = {"calls": 0}

    def checkpoint_table(manager, table):
        if crasher.armed == "shard-ckpt-mid":
            state["calls"] += 1
            if state["calls"] == 2:
                crasher.maybe_die("shard-ckpt-mid")
        return orig_ckpt(manager, table)

    ckpt_mod.checkpoint_table = checkpoint_table

    orig_rewrite = WriteAheadLog._rewrite_file

    def _rewrite_file(self):
        # the commit write of a deferred (atomic) multi-step rewrite —
        # the shard split's layout commit point.
        if not self._defer_rewrites:
            crasher.maybe_die("split-pre-wal")
        orig_rewrite(self)

    WriteAheadLog._rewrite_file = _rewrite_file

    orig_drop = ShardedTable._drop_shard_storage

    def _drop_shard_storage(self, shard_name, pool):
        crasher.maybe_die("split-post-wal")
        orig_drop(self, shard_name, pool)

    ShardedTable._drop_shard_storage = _drop_shard_storage


def _rows(db, table, sort=False):
    """Logical rows as plain-Python lists (numpy scalars unwrapped) so
    JSON round-trips compare exactly."""
    out = [
        [v.item() if hasattr(v, "item") else v for v in row]
        for row in db.image_rows(table)
    ]
    return sorted(out) if sort else out


def _dump_oracle(root: str, db) -> None:
    """Atomically publish the expected logical contents of every table."""
    oracle = {
        "inv": _rows(db, "inv"),
        "orders": _rows(db, "orders", sort=True),
    }
    path = os.path.join(root, "oracle.json")
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(oracle, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def run_child(root: str, point: str, rows: int) -> None:
    from repro import Database, DataType, Schema
    from repro.shard.rebalance import split_shard
    from repro.txn.checkpoint import checkpoint_table_range

    crasher = _Crasher(point)
    _install_hooks(crasher)

    schema = Schema.build(
        ("k", DataType.INT64), ("v", DataType.INT64),
        ("tag", DataType.STRING), sort_key=("k",),
    )
    db = Database(storage="mmap", storage_path=root, block_rows=64)
    db.create_table(
        "inv", schema, [(i, i * 10, f"r{i % 7}") for i in range(rows)]
    )
    db.create_sharded_table(
        "orders", schema,
        [(i, i, f"o{i % 5}") for i in range(rows * 2)], shards=3,
    )
    _dump_oracle(root, db)

    commit_no = 0

    def commit(table, ops):
        nonlocal commit_no
        db.apply_batch(table, ops)
        commit_no += 1
        _dump_oracle(root, db)
        if point == f"commit:{commit_no}":
            os._exit(CRASH_EXIT)

    base = rows * 10
    commit("inv", [("ins", (base + 1, 1, "new")), ("del", (3,)),
                   ("mod", (7,), "v", 777)])
    commit("orders", [("ins", (base + 2, 2, "new")), ("del", (10,)),
                      ("mod", (20,), "v", 555)])
    commit("inv", [("ins", (base + 3, 3, "x")), ("mod", (11,), "tag", "hot")])

    if point in ("ckpt-pre-publish", "ckpt-post-publish"):
        crasher.arm(point)
    db.checkpoint("inv")
    crasher.disarm()

    commit("orders", [("del", (30,)), ("ins", (base + 4, 4, "y"))])

    if point == "shard-ckpt-mid":
        crasher.arm(point)
    db.checkpoint("orders")
    crasher.disarm()

    commit("inv", [("mod", (15,), "v", 1), ("mod", (int(rows * 0.9),),
                                            "v", 2)])

    # Incremental range checkpoint: folds the first half, re-logs the
    # surviving second-half deltas as a tagged snapshot.
    db.manager.propagate_write_to_read("inv")
    if point in ("range-pre-publish", "range-post-publish"):
        crasher.arm(point)
    checkpoint_table_range(db.manager, "inv", 0, rows // 2)
    crasher.disarm()

    commit("orders", [("ins", (base + 5, 5, "z")), ("mod", (40,), "v", 9)])

    if point in ("split-pre-wal", "split-post-wal"):
        crasher.arm(point)
    split_shard(db.sharded("orders"), 0)
    crasher.disarm()

    commit("inv", [("ins", (base + 6, 6, "tail")), ("del", (21,))])

    if point == "abandon":
        os._exit(CRASH_EXIT)
    db.close()
    os._exit(0)


# ---------------------------------------------------------------------------
# group-commit child: concurrent writers, kill inside the shared fsync

GROUP_WRITERS = 4
GROUP_BATCHES = 60          # per writer
GROUP_SEED_ROWS = 800       # seeded keys 0..799, v == k
GROUP_WITNESS_BASE = 10_000
# Wait until this many flushes landed before killing, so recovery has
# both durable history and an in-flight group to reason about.
GROUP_MIN_FLUSHES = 4
# orders__s0..3 hash onto two of four WAL streams (crc32 % 4), which is
# what makes the mid-fsync boundary reachable: a coalesced flush spans
# two files and the kill lands between their fsyncs.
GROUP_WAL_STREAMS = 4


def group_batch_ops(batch_id: int):
    """The deterministic op list for one batch.

    One *witness* insert (key ``GROUP_WITNESS_BASE + batch_id``) plus
    three modifies of seeded keys. Modified keys are spread over the full
    key range (hence over every shard) by a multiplicative scramble, and
    each seeded key ``4*m + w`` belongs to exactly one ``(writer, seq)``
    pair — so after a crash, every key independently reveals whether its
    batch was applied, making partial application detectable.
    """
    writer, seq = divmod(batch_id, GROUP_BATCHES)
    span = 3 * GROUP_BATCHES
    ops = [("ins", (GROUP_WITNESS_BASE + batch_id, batch_id,
                    f"b{batch_id}"))]
    for j in range(3):
        m = ((3 * seq + j) * 37) % span
        ops.append(("mod", (4 * m + writer,), "v", batch_id))
    return ops


def run_group_child(root: str, point: str) -> None:
    import threading

    from repro import Database, DataType, Schema
    from repro.txn.group_commit import GroupCommitPolicy

    schema = Schema.build(
        ("k", DataType.INT64), ("v", DataType.INT64),
        ("tag", DataType.STRING), sort_key=("k",),
    )
    db = Database(
        storage="mmap", storage_path=root, block_rows=64,
        wal_streams=GROUP_WAL_STREAMS,
        group_commit=GroupCommitPolicy(max_delay_s=0.002),
    )
    db.create_sharded_table(
        "orders", schema,
        [(i, i, f"o{i % 5}") for i in range(GROUP_SEED_ROWS)], shards=4,
    )

    acks_path = os.path.join(root, "acks.jsonl")
    ack_lock = threading.Lock()

    def ack(batch_id: int) -> None:
        # fsync before returning: a line in this file is a *promise* that
        # the commit was acknowledged as durable before the kill.
        with ack_lock:
            with open(acks_path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(batch_id) + "\n")
                fh.flush()
                os.fsync(fh.fileno())

    target = "group-pre-fsync" if point == "group-torn-write" else point
    flushes = {"n": 0}

    def crash_hook(name, paths):
        if name == "group-pre-fsync":
            flushes["n"] += 1
        if name != target or flushes["n"] < GROUP_MIN_FLUSHES:
            return
        if point == "group-torn-write":
            # Tear the tail of the last file written in this flush: the
            # final record line loses its closing bytes, exactly what a
            # crash mid-append leaves behind.
            tail = paths[-1]
            size = os.path.getsize(tail)
            with open(tail, "r+b") as fh:
                fh.truncate(max(0, size - 4))
        os._exit(CRASH_EXIT)

    db.manager.wal.group.crash_hook = crash_hook

    def writer(w: int, svc) -> None:
        for i in range(GROUP_BATCHES):
            batch_id = w * GROUP_BATCHES + i
            future = svc.submit_batch("orders", group_batch_ops(batch_id))
            future.result(timeout=60)
            ack(batch_id)

    with db.serve(workers=GROUP_WRITERS) as svc:
        threads = [
            threading.Thread(target=writer, args=(w, svc), daemon=True)
            for w in range(GROUP_WRITERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    # The armed boundary never fired: exit distinctly so the parent
    # reports a configuration failure rather than a recovery one.
    os._exit(3)


def verify_group_recovery(root: str, point: str) -> None:
    from repro import Database

    acked = set()
    acks_path = os.path.join(root, "acks.jsonl")
    if os.path.exists(acks_path):
        with open(acks_path, encoding="utf-8") as fh:
            raw = fh.read()
        # A line is only an acknowledgement once its newline landed; the
        # kill can tear the final append mid-line.
        for line in raw[: raw.rfind("\n") + 1].splitlines():
            if line.strip():
                acked.add(json.loads(line))
    if not acked:
        raise AssertionError(f"[{point}] no acknowledged batches before "
                             "the kill; workload misconfigured")

    db = Database.recover(root, wal_streams=GROUP_WAL_STREAMS)
    try:
        rows = {r[0]: (r[1], r[2]) for r in db.image_rows("orders")}
        total = GROUP_WRITERS * GROUP_BATCHES
        for batch_id in range(total):
            applied = (GROUP_WITNESS_BASE + batch_id) in rows
            if batch_id in acked and not applied:
                raise AssertionError(
                    f"[{point}] acknowledged batch {batch_id} lost")
            # All-or-nothing: every key this batch modified must carry
            # the batch's value iff the witness insert is present.
            for op in group_batch_ops(batch_id)[1:]:
                key = op[1][0]
                v, _tag = rows[key]
                if applied and v != batch_id:
                    raise AssertionError(
                        f"[{point}] batch {batch_id} applied but key "
                        f"{key} has v={v}: partial application")
                if not applied and v != key:
                    raise AssertionError(
                        f"[{point}] batch {batch_id} not applied but key "
                        f"{key} has v={v}: partial application")
        # The recovered database keeps accepting writes.
        db.apply_batch("orders", [("ins", (10 ** 7, 1, "post-recovery"))])
        assert any(r[0] == 10 ** 7 for r in db.image_rows("orders"))
    finally:
        db.close()


# ---------------------------------------------------------------------------
# parent: spawn, recover, verify


def verify_recovery(root: str, point: str) -> None:
    from repro import Database

    with open(os.path.join(root, "oracle.json"), encoding="utf-8") as fh:
        oracle = json.load(fh)
    db = Database.recover(root)
    try:
        got_inv = _rows(db, "inv")
        got_orders = _rows(db, "orders", sort=True)
        if got_inv != oracle["inv"]:
            raise AssertionError(
                f"[{point}] inv mismatch: {len(got_inv)} rows recovered "
                f"vs {len(oracle['inv'])} expected"
            )
        if got_orders != oracle["orders"]:
            raise AssertionError(
                f"[{point}] orders mismatch: {len(got_orders)} rows "
                f"recovered vs {len(oracle['orders'])} expected"
            )
        # Query results (not just image_rows) must match too.
        q = sorted(tuple(r) for r in
                   db.query("inv", columns=["k", "v", "tag"]).rows())
        if q != sorted(tuple(r) for r in oracle["inv"]):
            raise AssertionError(f"[{point}] inv query mismatch")
        # The recovered database keeps working.
        db.apply_batch("inv", [("ins", (10 ** 7, 1, "post-recovery"))])
        assert db.query("inv", sk=(10 ** 7,)).num_rows == 1
    finally:
        db.close()


def run_matrix(points: list[str], rows: int, keep: bool = False) -> int:
    base = tempfile.mkdtemp(prefix="crash-matrix-")
    failures = 0
    for point in points:
        root = os.path.join(base, point.replace(":", "_"))
        child = subprocess.run(
            [sys.executable, os.path.abspath(__file__),
             "--child", root, point, "--rows", str(rows)],
            env={**os.environ,
                 "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
            capture_output=True, text=True, timeout=120,
        )
        expected = 0 if point == "clean" else CRASH_EXIT
        if child.returncode != expected:
            print(f"FAIL [{point}]: child exited {child.returncode}, "
                  f"expected {expected}\n{child.stderr[-2000:]}")
            failures += 1
            continue
        try:
            if point in GROUP_POINTS:
                verify_group_recovery(root, point)
            else:
                verify_recovery(root, point)
            print(f"ok   [{point}]")
        except Exception as exc:  # noqa: BLE001 - report and count
            print(f"FAIL [{point}]: {exc}")
            failures += 1
        if not keep:
            shutil.rmtree(root, ignore_errors=True)
    if not keep:
        shutil.rmtree(base, ignore_errors=True)
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--child", nargs=2, metavar=("ROOT", "POINT"),
                        help="internal: run the workload and die at POINT")
    parser.add_argument("--points", default=None,
                        help="comma-separated crash points (default: all)")
    parser.add_argument("--rows", type=int, default=300)
    parser.add_argument("--keep", action="store_true",
                        help="keep the crash directories for inspection")
    args = parser.parse_args(argv)

    if args.child:
        root, point = args.child
        if point in GROUP_POINTS:
            run_group_child(root, point)
        else:
            run_child(root, point, args.rows)
        return 0  # unreachable: the child always _exits

    points = (args.points.split(",") if args.points
              else default_points(n_commits=6))
    failures = run_matrix(points, args.rows, keep=args.keep)
    if failures:
        print(f"\n{failures} crash point(s) failed")
        return 1
    print(f"\nall {len(points)} crash points recovered byte-identically")
    return 0


if __name__ == "__main__":
    sys.exit(main())
