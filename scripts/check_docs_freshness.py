#!/usr/bin/env python
"""Docs freshness gate: every runnable entry point must be documented.

Scans ``examples/*.py``, ``scripts/*.py``, and ``benchmarks/bench_*.py``
and fails if any of them is never mentioned (by file name) in README.md
or in any tracked markdown under ``docs/``. The inverse direction is
checked too: a doc that names an example/script/bench file which no
longer exists is stale and also fails.

This is deliberately a plain-text mention check, not a link checker: a
file name appearing in prose, a fenced command, or a table all count.
Run it locally with::

    python scripts/check_docs_freshness.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

SCANNED_DIRS = {
    "examples": "examples/*.py",
    "scripts": "scripts/*.py",
    "benchmarks": "benchmarks/bench_*.py",
}

DOC_FILES = [ROOT / "README.md", ROOT / "DESIGN.md", ROOT / "ROADMAP.md"]


def doc_corpus() -> dict[Path, str]:
    docs = {}
    for path in DOC_FILES:
        if path.exists():
            docs[path] = path.read_text(encoding="utf-8")
    for path in sorted((ROOT / "docs").glob("**/*.md")):
        docs[path] = path.read_text(encoding="utf-8")
    return docs


def main() -> int:
    docs = doc_corpus()
    if not docs:
        print("docs-freshness: no README.md or docs/*.md found",
              file=sys.stderr)
        return 1
    corpus = "\n".join(docs.values())
    failures: list[str] = []

    # Forward: every runnable file is mentioned somewhere.
    known_names: set[str] = set()
    for _label, pattern in SCANNED_DIRS.items():
        for path in sorted(ROOT.glob(pattern)):
            if path.name == "conftest.py":
                continue
            known_names.add(path.name)
            if path.name not in corpus:
                failures.append(
                    f"{path.relative_to(ROOT)} is not mentioned in "
                    f"README.md or docs/ — document it or remove it"
                )

    # Reverse: docs must not name example/script/bench files that are
    # gone. Only file-shaped mentions under the scanned directories are
    # considered, so prose is free to discuss anything else.
    mention = re.compile(
        r"\b(?:examples|scripts|benchmarks)/([A-Za-z0-9_.-]+\.py)\b")
    for doc_path, text in docs.items():
        for match in mention.finditer(text):
            name = match.group(1)
            referenced = ROOT / match.group(0)
            if name != "conftest.py" and not referenced.exists():
                failures.append(
                    f"{doc_path.relative_to(ROOT)} mentions "
                    f"{match.group(0)}, which does not exist"
                )

    if failures:
        print("docs-freshness check FAILED:", file=sys.stderr)
        for failure in sorted(set(failures)):
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"docs-freshness: OK ({len(known_names)} runnable files, "
          f"{len(docs)} docs checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
