"""Pin-vector serialization: shipping a pinned shard version to a worker.

A snapshot pin names one version of a physical table as (stable image
LSN, Read-PDT, Write-PDT): the stable image is *already on disk* — the
mmap backend published it under its ``image_lsn`` — so only the delta
layers travel. They are exported with the same bulk entry-list format
the WAL uses for commit records (``(sid, kind, payload)`` triples in
(SID, RID) order) and rebuilt worker-side with ``bulk_append_entries``,
the exact round-trip WAL replay already relies on. Payloads ride the job
pipe (pickled — they are small, proportional to delta size, not table
size), never the block ring.
"""

from __future__ import annotations

from ..core.pdt import PDT
from ..core.types import KIND_DEL


def serialize_layers(layers) -> list[list]:
    """Entry lists for each non-empty PDT layer, in merge order."""
    from ..txn.wal import WriteAheadLog

    return [
        WriteAheadLog._serialize_pdt(layer)
        for layer in layers
        if layer is not None and not layer.is_empty()
    ]


def rebuild_layers(schema, serialized: list[list]) -> list[PDT]:
    """Inverse of :func:`serialize_layers`: fresh PDTs over ``schema``.

    Mirrors WAL replay's staging construction (delete payloads are
    SK tuples; bulk append builds the tree bottom-up in one pass).
    """
    layers = []
    for entries in serialized:
        pdt = PDT(schema)
        pdt.bulk_append_entries(
            (sid, kind, tuple(payload) if kind == KIND_DEL else payload)
            for sid, kind, payload in entries
        )
        layers.append(pdt)
    return layers


def scan_payload(root, table: str, image_lsn: int, epoch: int, layers,
                 columns, sid_lo, sid_hi, block_rows: int,
                 push: dict | None = None) -> dict:
    """The complete job payload for one remote shard scan.

    ``root`` is the shard scope's backend directory (the worker opens it
    read-only and verifies the published catalog still carries exactly
    the ``(image_lsn, epoch)`` pair before trusting the layers to be
    relative to it — the LSN ties the image to the pinned commit point,
    the segment epoch disambiguates republishes at one LSN).

    ``push`` is the optional pushed-down computation
    (:meth:`repro.service.plan.ShardScanSpec.push_payload`): serialized
    ``where`` predicate, ``agg`` partial-aggregate spec, and an
    aggregate job's explicit ``key_filter`` bounds. A worker that does
    not understand any part of it answers ``unsupported`` and the router
    runs the identical pushed pipeline locally.
    """
    payload = {
        "root": str(root),
        "table": table,
        "image_lsn": int(image_lsn),
        "epoch": int(epoch),
        "layers": serialize_layers(layers),
        "columns": list(columns),
        "sid_lo": sid_lo,
        "sid_hi": sid_hi,
        "block_rows": block_rows,
        "skip": 0,
    }
    if push:
        payload["push"] = push
    return payload
