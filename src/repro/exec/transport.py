"""Shared-memory ring transport: result blocks without pickling.

One :class:`multiprocessing.shared_memory.SharedMemory` segment per
worker carries scan result blocks from the worker process back to the
parent. The segment is a single-producer/single-consumer byte ring:

* the **worker** appends one *frame* per result block — the raw bytes of
  every fixed-width column, 16-byte aligned, never wrapping around the
  ring edge (a frame that would straddle it skips the tail) — and
  announces it with a small pickled control message over the job pipe
  (the pipe send is also the cross-process memory barrier: the parent
  only touches a frame after receiving its announcement);
* the **parent** wraps each announced column in a read-only
  ``np.frombuffer`` view of the shared segment — zero copies — and
  advances the ring's ``read_pos`` header word only when every view of
  the oldest outstanding frames has been garbage-collected
  (``weakref.finalize`` refcounts, FIFO reclamation).

Flow control is the header word: the worker polls ``read_pos`` and
blocks while the ring is full. A consumer that holds views for a long
time would park the worker forever, so after ``stall_timeout`` the
worker gives up on the ring for that block and ships it *inline*
(pickled through the pipe) — strictly slower, never stuck. Object-dtype
columns (STRING) have no stable byte representation and always travel
inline; everything else stays raw.
"""

from __future__ import annotations

import struct
import threading
import time
import weakref
from collections import OrderedDict
from multiprocessing import shared_memory

import numpy as np

HEADER_BYTES = 16  # read_pos (uint64) + padding; write side keeps its own
ALIGN = 16
DEFAULT_RING_BYTES = 8 << 20


def _align(n: int) -> int:
    return (n + ALIGN - 1) & ~(ALIGN - 1)


def encode_frame_plan(arrays: dict) -> tuple[list, dict, int]:
    """Split a block into ring-able columns and inline columns.

    Returns ``(cols, inline, total)``: ``cols`` is a list of
    ``[name, dtype_str, length, frame_offset, nbytes]`` descriptors for
    fixed-width columns laid out back to back (16-byte aligned) in a
    frame of ``total`` bytes; ``inline`` maps object-dtype column names
    to their arrays (pickled with the control message).
    """
    cols: list = []
    inline: dict = {}
    offset = 0
    for name, arr in arrays.items():
        if arr.dtype == object:
            inline[name] = arr
            continue
        arr = np.ascontiguousarray(arr)
        cols.append([name, arr.dtype.str, len(arr), offset, arr.nbytes])
        offset += _align(arr.nbytes)
    return cols, inline, offset


class ShmRingWriter:
    """Worker-side producer over an existing shared segment."""

    def __init__(self, name: str, capacity: int,
                 stall_timeout: float = 0.25):
        self._shm = shared_memory.SharedMemory(name=name)
        self.capacity = capacity
        self.stall_timeout = stall_timeout
        self._write_pos = 0  # monotonically increasing logical offset

    def _read_pos(self) -> int:
        return struct.unpack_from("<Q", self._shm.buf, 0)[0]

    def try_write(self, arrays: dict):
        """Write one block's fixed-width columns as a ring frame.

        Returns a control descriptor ``{"off", "end", "cols"}`` (plus the
        caller merges any inline columns), or ``None`` when the frame did
        not fit within ``stall_timeout`` (ring full — caller ships the
        whole block inline) or is larger than half the ring.
        """
        cols, inline, total = encode_frame_plan(arrays)
        if not cols:
            return None if not inline else {"off": 0, "end": self._write_pos,
                                            "cols": [], "inline": inline}
        if total > self.capacity // 2:
            return None
        deadline = time.monotonic() + self.stall_timeout
        while True:
            start = self._write_pos
            tail = self.capacity - (start % self.capacity)
            pad = tail if total > tail else 0  # never wrap a frame
            if self.capacity - (start - self._read_pos()) >= pad + total:
                break
            if time.monotonic() >= deadline:
                return None
            time.sleep(0.0005)
        start += pad
        phys = start % self.capacity
        base = HEADER_BYTES + phys
        for name, _dt, _n, off, nbytes in cols:
            if nbytes:
                self._shm.buf[base + off:base + off + nbytes] = \
                    np.ascontiguousarray(arrays[name]).tobytes()
        self._write_pos = start + total
        return {"off": phys, "end": self._write_pos, "cols": cols,
                "inline": inline}

    def close(self) -> None:
        self._shm.close()


class ShmRingReader:
    """Parent-side consumer: zero-copy views + FIFO reclamation."""

    def __init__(self, capacity: int):
        self._shm = shared_memory.SharedMemory(
            create=True, size=HEADER_BYTES + capacity)
        self.capacity = capacity
        self.name = self._shm.name
        struct.pack_into("<Q", self._shm.buf, 0, 0)
        self._lock = threading.Lock()
        # frame id -> [logical_end, outstanding view refs]; insertion
        # order is ring order, so reclamation is a head walk.
        self._frames: OrderedDict[int, list] = OrderedDict()
        self._next_frame = 0
        self._closed = False

    def decode(self, frame: dict) -> dict:
        """Materialize one announced frame as ``{column: ndarray}``.

        Fixed-width columns are read-only views of the shared segment;
        their ring bytes are recycled once every view is collected.
        """
        arrays = dict(frame.get("inline", ()))
        cols = frame["cols"]
        if not cols:
            return arrays
        with self._lock:
            frame_id = self._next_frame
            self._next_frame += 1
            self._frames[frame_id] = [frame["end"], len(cols)]
        base = HEADER_BYTES + frame["off"]
        for name, dt, n, off, _nbytes in cols:
            view = np.frombuffer(self._shm.buf, dtype=np.dtype(dt),
                                 count=n, offset=base + off)
            view.flags.writeable = False
            weakref.finalize(view, self._release, frame_id)
            arrays[name] = view
        return arrays

    def _release(self, frame_id: int) -> None:
        with self._lock:
            if self._closed:
                return
            entry = self._frames.get(frame_id)
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] > 0:
                return
            entry[0] = -entry[0]  # mark fully released (sign flag)
            advanced = None
            while self._frames:
                head_id, (end, _refs) = next(iter(self._frames.items()))
                if end > 0:
                    break  # head still has live views; stop the walk
                self._frames.pop(head_id)
                advanced = -end
            if advanced is not None:
                struct.pack_into("<Q", self._shm.buf, 0, advanced)

    def close(self) -> None:
        """Unlink the segment; the mapping itself lives on while any
        zero-copy view is still referenced (BufferError otherwise)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._frames.clear()
        try:
            self._shm.close()
        except BufferError:
            pass  # live views keep the map; the OS reclaims at exit
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
