"""The shard worker process: read-only scans over mmap'd segments.

``worker_main`` is the (spawn-safe, importable) entry point of one
:class:`ShardWorker` process. The worker owns nothing: it opens shard
storage scopes **read-only** (no writer lock, no orphan sweep, writes
rejected), rebuilds the pinned snapshot from the job's serialized pin
vector, and runs the very same ``scan_pdt_blocks`` pipeline the parent
would have run on a thread. Result blocks go out through the shared
ring (:mod:`repro.exec.transport`); only control frames cross the pipe.

Stable images are cached per ``(scope root, table)`` keyed by the
published ``(image_lsn, segment epoch)`` pair, so repeated jobs against
one pinned version pay the block decode once. The epoch matters: a
checkpoint that runs without an intervening commit republishes the same
table name at the *same* LSN, and only the never-reused epoch tells the
two images apart. A job whose pair does not match the published catalog
answers ``stale`` — the parent falls back to its thread path (the pinned
version is simply not on disk, e.g. the pin straddled an unpublished
checkpoint) — never a wrong result.

Crash contract: the parent counts delivered blocks per job. Because a
pinned scan is deterministic (same payload -> identical block sequence),
a re-dispatched job carries ``skip=N`` and the replacement worker
re-runs the stream, suppressing the first N blocks — the consumer's
byte stream continues exactly where the dead worker left it.
"""

from __future__ import annotations

import time

from .pinvec import rebuild_layers
from .transport import ShmRingWriter


class _Stale(Exception):
    """Published catalog does not carry the requested image version."""


class _Unsupported(Exception):
    """The job's pushed-down computation is outside this worker's
    vocabulary (version skew): the parent must run it locally. Distinct
    from ``_Stale`` so the router's stale-image counter stays honest."""


class _ScopeCache:
    """Per-worker cache of read-only storage scopes and stable images."""

    def __init__(self):
        self._backends: dict[str, object] = {}  # root -> MmapFileBackend
        self._tables: dict = {}  # (root, table) -> ((lsn, epoch), stable, pool)

    def _open(self, root: str, fresh: bool = False):
        from ..storage.mmap_backend import MmapFileBackend

        backend = None if fresh else self._backends.get(root)
        if backend is None:
            old = self._backends.pop(root, None)
            if old is not None:
                old.close()
            backend = MmapFileBackend(root, readonly=True)
            self._backends[root] = backend
        return backend

    def stable_for(self, payload: dict):
        """The stable image + buffer pool for a job's pinned version."""
        from ..storage.blocks import BlockStore
        from ..storage.buffer import BufferPool
        from ..storage.table import StableTable

        root, table = payload["root"], payload["table"]
        want = (payload["image_lsn"], payload["epoch"])
        cached = self._tables.get((root, table))
        if cached is not None and cached[0] == want:
            return cached[1], cached[2]
        # Cache miss or version moved on: reopen the scope so the check
        # runs against the *currently published* catalog, not a stale map.
        backend = self._open(root, fresh=cached is not None)
        have_lsn = backend.get_table_meta(table).get("image_lsn")
        have = (None if have_lsn is None else int(have_lsn),
                backend.table_epoch(table))
        if None in have or have != want:
            raise _Stale(
                f"{table}: published image (lsn, epoch) {have} "
                f"!= pinned {want}"
            )
        store = BlockStore(backend=backend)
        pool = BufferPool(store)
        schema = store.table_schema(table)
        if schema is None:
            raise _Stale(f"{table}: no schema in published catalog")
        stable = StableTable.from_storage(table, schema, pool)
        self._tables[(root, table)] = (want, stable, pool)
        return stable, pool

    def close(self) -> None:
        for backend in self._backends.values():
            backend.close()
        self._backends.clear()
        self._tables.clear()


def _decode_push(push: dict):
    """Rebuild the pushed-down computation from its payload, rejecting
    anything outside the supported vocabulary *before* the scan starts
    (so an unsupported job never half-streams)."""
    from ..engine import expr as ex

    known = {"where", "agg", "key_filter"}
    unknown = set(push) - known
    if unknown:
        raise _Unsupported(f"unknown push-down fields {sorted(unknown)}")
    try:
        where = (ex.expr_from_payload(push["where"])
                 if "where" in push else None)
        agg = (ex.agg_from_payload(push["agg"])
               if "agg" in push else None)
    except ex.PushdownUnsupported as exc:
        raise _Unsupported(str(exc)) from None
    key_cols, low, high = (), None, None
    key_filter = push.get("key_filter")
    if key_filter:
        key_cols = tuple(key_filter["cols"])
        low = (None if key_filter.get("low") is None
               else tuple(key_filter["low"]))
        high = (None if key_filter.get("high") is None
                else tuple(key_filter["high"]))
    return where, agg, key_cols, low, high


def _run_job(cache: _ScopeCache, ring, conn, job_id: int,
             payload: dict) -> None:
    from ..engine.scan import scan_pdt_blocks

    push = payload.get("push")
    pushed = _decode_push(push) if push else None
    stable, pool = cache.stable_for(payload)
    # Telemetry for the final frame: the parent merges the IO delta into
    # its db-level stats (exactly once, only for *completed* jobs — a
    # crashed attempt ships nothing and its redispatch re-reads honestly)
    # and stitches the span into its trace sink.
    io_before = pool.io.snapshot()
    trace_ctx = payload.get("trace")
    wall_start = time.time()
    t0 = time.perf_counter()
    layers = rebuild_layers(stable.schema, payload["layers"])
    stop = payload["sid_hi"]
    stream = scan_pdt_blocks(
        stable, layers, columns=payload["columns"],
        start=payload["sid_lo"],
        stop=None if stop is None else stop,
        block_rows=payload["block_rows"],
    )
    pushdown_counter = None
    if pushed is not None:
        # Same wrapper, same module, as the parent's local pipeline —
        # the reduced stream is byte-identical on either side, which
        # keeps skip-based crash re-dispatch exact for pushed jobs too.
        from ..engine.expr import pushdown_stream

        where, agg, key_cols, low, high = pushed
        pushdown_counter = {"rows_in": 0, "rows_out": 0}
        stream = pushdown_stream(stream, where=where, agg=agg,
                                 key_cols=key_cols, low=low, high=high,
                                 counter=pushdown_counter)
    skip = payload.get("skip", 0)
    delay = payload.get("block_delay_s") or 0.0
    produced = 0
    rows = 0
    for first_rid, arrays in stream:
        produced += 1
        if produced <= skip:
            continue
        if delay:
            time.sleep(delay)  # test hook: widen the mid-scan kill window
        if arrays:
            rows += len(next(iter(arrays.values())))
        frame = ring.try_write(arrays) if ring is not None else None
        if frame is None:
            # Ring full (a slow consumer pins the oldest frames) or
            # object-only block: ship inline. Slower, never stuck.
            conn.send(("block", job_id, first_rid,
                       {"off": 0, "end": 0, "cols": [], "inline": arrays}))
        else:
            conn.send(("block", job_id, first_rid, frame))
    io_delta = pool.io.since(io_before)
    extras: dict = {"io": io_delta}
    if pushdown_counter is not None:
        extras["pushdown"] = pushdown_counter
    if trace_ctx is not None:
        from ..obs.trace import worker_span_dict

        extras["spans"] = [worker_span_dict(
            trace_ctx, "worker.scan", wall_start,
            time.perf_counter() - t0,
            {
                "table": payload["table"],
                "blocks": max(0, produced - skip),
                "skip": skip,
                "rows": rows,
                "io_bytes": io_delta.bytes_read,
            },
        )]
    conn.send(("done", job_id, produced, extras))


def worker_main(conn, ring_name: str | None, ring_capacity: int) -> None:
    """Process entry point: serve scan jobs until ``close`` or EOF."""
    ring = (
        ShmRingWriter(ring_name, ring_capacity)
        if ring_name is not None else None
    )
    cache = _ScopeCache()
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op = msg[0]
            if op == "close":
                break
            if op == "ping":
                conn.send(("pong",))
                continue
            if op != "scan":
                conn.send(("error", None, f"unknown op {op!r}"))
                continue
            _op, job_id, payload = msg
            try:
                _run_job(cache, ring, conn, job_id, payload)
            except _Stale as exc:
                conn.send(("stale", job_id, str(exc)))
            except _Unsupported as exc:
                conn.send(("unsupported", job_id, str(exc)))
            except BaseException as exc:
                try:
                    conn.send(("error", job_id, repr(exc)))
                except (OSError, BrokenPipeError):
                    break
    finally:
        cache.close()
        if ring is not None:
            ring.close()
        try:
            conn.close()
        except OSError:
            pass
