"""Multiprocess shard execution: worker processes + shared-memory blocks.

The GIL caps every thread-based "parallel" path in the system at one
core. This package escapes it: per-shard scan jobs are dispatched to
:class:`ShardWorker` *processes* that mmap the same segment files the
parent published (read-only), rebuild the pinned snapshot state from a
serialized pin vector, run the ordinary ``scan_pdt_blocks`` pipeline
locally, and ship result blocks back through a
``multiprocessing.shared_memory`` ring buffer — the parent wraps each
frame in zero-copy numpy views, so only small control frames are ever
pickled. The :class:`ExecutorRouter` fronts the pool: it decides per job
whether process dispatch is safe (mmap-attached stable image whose
published ``image_lsn`` matches the pinned one), falls back to the
thread path otherwise, and survives worker crashes by re-dispatching
in-flight jobs with a deterministic skip-prefix.

See ``DESIGN.md`` ("Parallel execution") for the worker lifecycle, the
block frame protocol, and the crash re-dispatch contract.
"""

from .router import ExecutorRouter, ScanSource, WorkerCrashed, StaleImage
from .transport import ShmRingReader, ShmRingWriter

__all__ = [
    "ExecutorRouter",
    "ScanSource",
    "ShmRingReader",
    "ShmRingWriter",
    "StaleImage",
    "WorkerCrashed",
]
