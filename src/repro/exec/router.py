"""ExecutorRouter: per-job dispatch to shard workers, thread fallback.

The router is the single decision point every parallel scan path goes
through — ``ShardedTable.scan_blocks``, the pinned-plan fan-out, and the
query service's per-shard jobs. For each job it asks: *is this shard's
pinned version on disk where a worker process can mmap it?* If yes (mmap
backend, stable image still storage-attached, published ``image_lsn``
matching the pinned one, and enough rows to be worth a hop), the job is
serialized as a pin vector and dispatched to a :class:`ShardWorker`
process; otherwise it runs on the calling thread exactly as before. The
fallback is silent and per-job, so ``Database(executor="process")`` is
always safe — memory-backed databases, unpublished checkpoints, and
tiny tables simply stay on threads.

Crash isolation: a worker that dies mid-job (detected by pipe EOF or a
dead process with a drained pipe) is reaped and replaced; the in-flight
job is re-dispatched with ``skip=<blocks already delivered>`` — pinned
scans are deterministic, so the replacement (or, after
``max_redispatch`` deaths, the thread fallback) continues the byte
stream exactly where the dead worker left it. The database keeps
serving; nothing above the router notices beyond latency.

Thread-safety contract: the dispatch surface (``stream_blocks``,
``run_source``, ``submit_stream``, ``spec_runner``) may be called from
any thread concurrently — workers are handed out under the router's
lock, and each in-flight job owns its worker exclusively until the
final frame (so pipes and shm rings are never shared mid-job). The
counter fields are best-effort under concurrency; read them through
``as_dict()`` (the ``exec`` source of ``Database.metrics()``).

Lifecycle contract: the router is created by (and belongs to) one
``Database``; workers spawn lazily on first eligible dispatch and are
joined/reaped by ``close()``, which ``Database.close()`` calls — after
that, dispatches run on the calling thread. Workers hold **read-only**
mmaps of published segments and no WAL or catalog locks, so a leaked or
killed worker can never corrupt the database.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
from concurrent.futures import Future, ThreadPoolExecutor

from .pinvec import scan_payload
from .transport import DEFAULT_RING_BYTES, ShmRingReader

DEFAULT_WORKERS = 4
#: Below this many stable rows a process hop costs more than it saves.
MIN_REMOTE_ROWS = 2048


class WorkerCrashed(RuntimeError):
    """A worker process died while a job was in flight."""


class StaleImage(RuntimeError):
    """The worker's published catalog does not carry the pinned image."""


class ExprRejected(RuntimeError):
    """The worker rejected the job's pushed-down expression (vocabulary
    skew); the router re-runs the identical pushed pipeline locally."""


class _WorkerHandle:
    """One spawned worker process + its pipe and block ring."""

    _ids = itertools.count()

    def __init__(self, ring_bytes: int):
        import multiprocessing as mp

        from .worker import worker_main

        ctx = mp.get_context("spawn")
        self.reader = ShmRingReader(ring_bytes)
        self.conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(
            target=worker_main,
            args=(child_conn, self.reader.name, ring_bytes),
            name=f"repro-shard-worker-{next(self._ids)}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self._job_ids = itertools.count()
        self.dead = False

    @property
    def pid(self):
        return self.proc.pid

    def run_job(self, payload: dict, on_done=None):
        """Dispatch one scan job; yield ``(first_rid, arrays)`` blocks.

        ``on_done`` (if given) receives the telemetry extras dict the
        worker ships with its final frame — per-job IO counters and
        worker-side trace spans. Extras of an *abandoned* predecessor
        job are dropped with its blocks (the job-id check), so a retried
        job's counters are never ingested twice.

        Raises :class:`StaleImage` (job not runnable remotely, worker
        fine) or :class:`WorkerCrashed` (worker died; caller re-dispatches
        with the delivered-block count)."""
        job_id = next(self._job_ids)
        try:
            self.conn.send(("scan", job_id, payload))
        except (OSError, BrokenPipeError):
            self.dead = True
            raise WorkerCrashed("pipe to worker is gone") from None
        while True:
            try:
                if not self.conn.poll(0.05):
                    if not self.proc.is_alive() and not self.conn.poll(0):
                        self.dead = True
                        raise WorkerCrashed(
                            f"worker pid={self.pid} died mid-job"
                        )
                    continue
                msg = self.conn.recv()
            except (EOFError, OSError):
                self.dead = True
                raise WorkerCrashed(
                    f"worker pid={self.pid} died mid-job") from None
            op = msg[0]
            if op == "block":
                _op, got_id, first_rid, frame = msg
                if got_id != job_id:
                    continue  # tail of an abandoned predecessor job
                yield first_rid, self.reader.decode(frame)
            elif op == "done":
                if msg[1] == job_id:
                    if on_done is not None and len(msg) > 3:
                        on_done(msg[3])
                    return
            elif op == "stale":
                if msg[1] == job_id:
                    raise StaleImage(msg[2])
            elif op == "unsupported":
                if msg[1] == job_id:
                    raise ExprRejected(msg[2])
            elif op == "error":
                if msg[1] == job_id:
                    raise RuntimeError(f"shard worker failed: {msg[2]}")

    def close(self, timeout: float = 2.0) -> None:
        self.dead = True
        try:
            self.conn.send(("close",))
        except (OSError, BrokenPipeError):
            pass
        self.proc.join(timeout)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout)
        try:
            self.conn.close()
        except OSError:
            pass
        self.reader.close()
        self.proc.close()


class ScanSource:
    """One partition's scan: a local thunk plus optional remote identity.

    Callable (runs the local block pipeline — any plain executor can
    ``submit(lambda: list(source()))`` it), and carries the pinned-state
    references the router needs to build a pin-vector payload at
    dispatch time.
    """

    __slots__ = ("local", "stable", "layers", "columns", "sid_lo",
                 "sid_hi", "block_rows", "trace_ctx", "push")

    def __init__(self, local, stable=None, layers=(), columns=(),
                 sid_lo=0, sid_hi=None, block_rows=1024, trace_ctx=None,
                 push=None):
        self.local = local
        self.stable = stable
        self.layers = tuple(layers)
        self.columns = tuple(columns)
        self.sid_lo = sid_lo
        self.sid_hi = sid_hi
        self.block_rows = block_rows
        # Serialized span context captured on the *submitting* thread
        # (contextvars do not cross the driver pool): lets worker spans
        # stitch under the query span even for inline fan-out scans.
        self.trace_ctx = trace_ctx
        # Pushed-down computation payload; the local thunk must apply
        # the same evaluation (see ShardScanSpec.pushed_stream).
        self.push = push

    def __call__(self):
        return self.local()


class ExecutorRouter:
    """Routes per-shard scan jobs to worker processes or threads.

    ``mode`` is ``"thread"`` (every job local — the pre-existing
    behaviour, zero overhead) or ``"process"``. Workers are spawned
    lazily on first eligible dispatch, so a process-mode database that
    never scans a big mmap table never forks anything.
    """

    def __init__(self, mode: str = "thread", workers: int | None = None,
                 storage=None, ring_bytes: int = DEFAULT_RING_BYTES,
                 min_remote_rows: int = MIN_REMOTE_ROWS,
                 dispatch_timeout: float = 30.0,
                 max_redispatch: int = 2):
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown executor mode {mode!r}")
        if mode == "process" and not self._storage_supported(storage):
            # Memory (or custom non-mmap) storage has nothing a worker
            # could mmap; degrade silently so REPRO_EXECUTOR=process is
            # safe across the whole matrix.
            mode = "thread"
        self.mode = mode
        self.workers = max(1, workers if workers is not None
                           else min(DEFAULT_WORKERS, os.cpu_count() or 1))
        self.ring_bytes = ring_bytes
        self.min_remote_rows = min_remote_rows
        self.dispatch_timeout = dispatch_timeout
        self.max_redispatch = max_redispatch
        self.block_delay_s = 0.0  # test hook: per-block worker-side sleep
        self._handles: list[_WorkerHandle] = []
        self._free: queue.Queue = queue.Queue()
        self._spawned = 0
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False
        # observability ----------------------------------------------------
        self.remote_jobs = 0
        self.local_jobs = 0
        self.redispatches = 0
        self.stale_fallbacks = 0
        self.expr_fallbacks = 0  # worker rejected a pushed expression
        self.worker_io_merges = 0  # completed remote jobs whose IO merged
        # Set by the owning Database: worker-side IO deltas merge into
        # `io` (the db-level IOStats); `tracer` threads span context into
        # payloads and stitches worker spans back into the sink.
        self.io = None
        self.tracer = None

    def as_dict(self) -> dict:
        """JSON-able router counters for ``Database.metrics()``."""
        return {
            "mode": self.mode,
            "workers": self.workers,
            "remote_jobs": self.remote_jobs,
            "local_jobs": self.local_jobs,
            "redispatches": self.redispatches,
            "stale_fallbacks": self.stale_fallbacks,
            "expr_fallbacks": self.expr_fallbacks,
            "worker_io_merges": self.worker_io_merges,
            "live_workers": len(self.worker_pids()),
        }

    @staticmethod
    def _storage_supported(storage) -> bool:
        from ..storage.mmap_backend import MmapStorage

        return isinstance(storage, MmapStorage)

    # -- worker pool -------------------------------------------------------

    def worker_pids(self) -> list[int]:
        """PIDs of live workers (crash-injection tests kill these)."""
        with self._lock:
            return [h.pid for h in self._handles if not h.dead]

    def _checkout(self):
        if self.mode != "process" or self._closed:
            return None
        with self._lock:
            if self._closed:
                return None
            if self._spawned < self.workers:
                self._spawned += 1
                try:
                    handle = _WorkerHandle(self.ring_bytes)
                except BaseException:
                    self._spawned -= 1
                    raise
                self._handles.append(handle)
                return handle
        try:
            handle = self._free.get(timeout=self.dispatch_timeout)
        except queue.Empty:
            return None
        if handle is None or handle.dead:  # close() drained, or raced
            return None
        return handle

    def _checkin(self, handle) -> None:
        if handle.dead:
            with self._lock:
                if handle in self._handles:
                    self._handles.remove(handle)
                self._spawned -= 1
            handle.close(timeout=0.5)
            return
        if self._closed:
            return
        self._free.put(handle)

    # -- payloads ----------------------------------------------------------

    def payload_for(self, stable, layers, columns, sid_lo, sid_hi,
                    block_rows, image_lsn=None, push=None) -> dict | None:
        """A pin-vector job payload, or None when the job must stay
        local: thread mode, detached stable (a checkpoint retired the
        on-disk image), non-mmap scope, unpublished/mismatched image
        LSN, or a table too small to be worth the hop."""
        if self.mode != "process" or self._closed:
            return None
        pool = getattr(stable, "pool", None)
        if pool is None or stable.num_rows < self.min_remote_rows:
            return None
        from ..storage.mmap_backend import MmapFileBackend

        backend = pool.store.backend
        if not isinstance(backend, MmapFileBackend):
            return None
        if image_lsn is None:
            # The LSN stamped on the object when *this* image was
            # published — never the store's current value, which a
            # concurrent checkpoint may already have moved past.
            image_lsn = getattr(stable, "image_lsn", None)
        epoch = getattr(stable, "image_epoch", None)
        if image_lsn is None or epoch is None:
            return None
        payload = scan_payload(
            backend.root, stable.name, image_lsn, epoch, layers, columns,
            sid_lo, sid_hi, block_rows, push=push,
        )
        if self.block_delay_s:
            payload["block_delay_s"] = self.block_delay_s
        return payload

    # -- job execution -----------------------------------------------------

    def stream_blocks(self, payload: dict, local, trace_ctx=None,
                      counter=None):
        """Run one job remotely with crash re-dispatch; yield its blocks.

        ``local`` is the zero-argument thread fallback returning the same
        deterministic block stream — for pushed-down jobs it applies the
        identical predicate/aggregate pipeline, so a worker that rejects
        the expression (:class:`ExprRejected`, version skew) degrades to
        a byte-identical local pass. ``delivered`` blocks already yielded
        to the consumer are skipped on every re-run, so the output is
        byte-identical whether zero, one, or every worker died.
        ``counter`` receives the completed worker's push-down row
        accounting (``rows_in`` / ``rows_out`` extras); the local
        fallback is expected to fill the same counter itself.

        Telemetry: the worker ships per-job IO counters and its scan span
        with the final ``done`` frame; both are ingested here *exactly
        once per completed attempt* — a crashed attempt ships nothing
        (its span is recorded as an ``orphan`` instead, so redispatches
        stay visible in the trace tree rather than silently missing).
        ``trace_ctx`` overrides the ambient current span for callers
        driving this from a pool thread (see :class:`ScanSource`)."""
        tracer = self.tracer
        traced = tracer is not None and tracer.enabled
        cur = tracer.current() if traced else None
        ctx = trace_ctx if trace_ctx is not None else (
            cur.ctx() if cur is not None else None)
        if traced and ctx is not None:
            payload = dict(payload, trace=ctx)
        delivered = 0
        deaths = 0
        use_local = False
        while not use_local:
            handle = self._checkout()
            if handle is None:
                break
            extras: dict = {}
            try:
                for block in handle.run_job(dict(payload, skip=delivered),
                                            on_done=extras.update):
                    yield block
                    delivered += 1
                self.remote_jobs += 1
                self._ingest_extras(extras)
                if counter is not None and "pushdown" in extras:
                    for key, value in extras["pushdown"].items():
                        counter[key] = counter.get(key, 0) + value
                if cur is not None:
                    cur.attrs["remote_blocks"] = (
                        cur.attrs.get("remote_blocks", 0) + delivered)
                return
            except StaleImage:
                self.stale_fallbacks += 1
                use_local = True
            except ExprRejected:
                self.expr_fallbacks += 1
                use_local = True
            except WorkerCrashed:
                deaths += 1
                self.redispatches += 1
                if traced and ctx is not None:
                    tracer.record_orphan(
                        ctx, "worker.scan", pid=handle.pid,
                        delivered=delivered,
                        table=payload.get("table", "?"))
                if deaths > self.max_redispatch:
                    use_local = True
            finally:
                self._checkin(handle)
        self.local_jobs += 1
        local_blocks = 0
        for i, block in enumerate(local()):
            if i >= delivered:
                local_blocks += 1
                yield block
        if cur is not None:
            cur.attrs["local_blocks"] = (
                cur.attrs.get("local_blocks", 0) + local_blocks)
            if delivered:  # blocks a since-dead worker did deliver
                cur.attrs["remote_blocks"] = (
                    cur.attrs.get("remote_blocks", 0) + delivered)

    def _ingest_extras(self, extras: dict) -> None:
        """Fold one completed remote job's telemetry into parent state."""
        if not extras:
            return
        io_delta = extras.get("io")
        if io_delta is not None and self.io is not None:
            self.io.merge(io_delta)
            self.worker_io_merges += 1
        spans = extras.get("spans")
        if spans and self.tracer is not None and self.tracer.enabled:
            from ..obs.trace import Span

            for span_dict in spans:
                self.tracer.sink.record(Span.from_dict(span_dict))

    def run_source(self, source) -> list:
        """Materialize one :class:`ScanSource` (remote when eligible)."""
        payload = self.payload_for(
            source.stable, source.layers, source.columns,
            source.sid_lo, source.sid_hi, source.block_rows,
            push=source.push,
        )
        if payload is None:
            self.local_jobs += 1
            return list(source())
        return list(self.stream_blocks(payload, source.local,
                                       trace_ctx=source.trace_ctx))

    def submit_stream(self, source):
        """Executor hook for :func:`~repro.engine.scan.fanout_scan_blocks`:
        a future resolving to the source's materialized block list."""
        try:
            return self._driver_pool().submit(self.run_source, source)
        except RuntimeError:
            # Lost a race with close(): run inline on the caller's thread
            # (every job is local once closed), like the pre-router path.
            future: Future = Future()
            try:
                future.set_result(self.run_source(source))
            except BaseException as exc:
                future.set_exception(exc)
            return future

    def spec_runner(self):
        """The per-shard job runner the query service installs, or None
        in thread mode (the scheduler then keeps its zero-cost default).
        The runner signature matches ``ShardScanJob``'s contract:
        ``runner(spec, sid_lo, sid_hi, block_rows, counter=None) ->
        block iterable``. Pushed-down specs ship their predicate and
        partial-aggregate payload to the worker, which streams back the
        *reduced* blocks over the ring; ``counter`` collects the
        worker's rows_in/rows_out accounting (or the local pipeline's,
        on fallback) exactly once per completed pass."""
        if self.mode != "process":
            return None

        def run(spec, sid_lo, sid_hi, block_rows, counter=None):
            pinned = spec.pinned
            local = lambda: spec.pushed_stream(  # noqa: E731
                sid_lo, sid_hi, block_rows, counter=counter)
            payload = self.payload_for(
                pinned.stable, pinned.layers, spec.scan_cols,
                sid_lo, sid_hi, block_rows,
                image_lsn=getattr(pinned, "image_lsn", None),
                push=spec.push_payload(),
            )
            if payload is None:
                self.local_jobs += 1
                return local()
            return self.stream_blocks(payload, local, counter=counter)

        return run

    def fanout_executor(self):
        """Executor for block fan-out: the router itself in process mode
        (callers fall back to their own thread pools on None, including
        after close — a closed database that still serves reads keeps
        the pre-router thread behaviour)."""
        return self if self.mode == "process" and not self._closed else None

    def _driver_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                if self._closed:
                    raise RuntimeError("executor router is closed")
                # One driver thread per worker plus slack for local
                # fallbacks; drivers mostly block on worker pipes.
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers + 2,
                    thread_name_prefix="exec-router",
                )
            return self._pool

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Join and reap every worker process (idempotent): drivers are
        joined first so no job is mid-pipe, then each worker gets a
        close message, a join, and a terminate if it ignores both; ring
        segments are unlinked. No orphaned children survive."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
            handles, self._handles = self._handles, []
        if pool is not None:
            pool.shutdown(wait=True)
        while True:  # unblock any checkout still waiting on the queue
            try:
                self._free.get_nowait()
            except queue.Empty:
                break
        for handle in handles:
            handle.close()

    def __repr__(self) -> str:
        return (
            f"ExecutorRouter(mode={self.mode!r}, workers={self.workers}, "
            f"remote={self.remote_jobs}, local={self.local_jobs}, "
            f"redispatched={self.redispatches})"
        )
