"""Relational schema definitions for ordered columnar tables.

A :class:`Schema` describes the columns of a table together with its *sort
key* (SK): the sequence of attributes that defines the physical tuple order
of the stable table (the columnar equivalent of an index-organized table,
see paper section 2, "Ordered Tables").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class DataType(enum.Enum):
    """Logical column types supported by the storage layer.

    ``DATE`` is stored as int32 days-since-epoch; ``DECIMAL`` is stored as
    float64 (documented substitution: TPC-H decimals fit float64 exactly at
    the scales we generate).
    """

    INT64 = "int64"
    INT32 = "int32"
    FLOAT64 = "float64"
    STRING = "string"
    DATE = "date"
    BOOL = "bool"

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used to hold column vectors of this type."""
        return _NUMPY_DTYPES[self]

    @property
    def is_numeric(self) -> bool:
        return self in (
            DataType.INT64,
            DataType.INT32,
            DataType.FLOAT64,
            DataType.DATE,
            DataType.BOOL,
        )

    def python_value(self, value):
        """Coerce ``value`` to the canonical Python value for this type."""
        if self is DataType.STRING:
            return str(value)
        if self is DataType.FLOAT64:
            return float(value)
        if self is DataType.BOOL:
            return bool(value)
        return int(value)


_NUMPY_DTYPES = {
    DataType.INT64: np.dtype(np.int64),
    DataType.INT32: np.dtype(np.int32),
    DataType.FLOAT64: np.dtype(np.float64),
    DataType.STRING: np.dtype(object),
    DataType.DATE: np.dtype(np.int32),
    DataType.BOOL: np.dtype(np.bool_),
}


@dataclass(frozen=True)
class ColumnSpec:
    """Name and type of a single column."""

    name: str
    dtype: DataType

    def __post_init__(self):
        if not self.name:
            raise ValueError("column name must be non-empty")


class SchemaError(ValueError):
    """Raised for malformed schema definitions or unknown columns."""


@dataclass(frozen=True)
class Schema:
    """An ordered collection of columns plus the table's sort key.

    Parameters
    ----------
    columns:
        Column specifications, in physical order.
    sort_key:
        Names of the columns forming the SK, in significance order. Must be
        non-empty: the paper's setting is ordered (clustered) table storage,
        where the SK is also a key of the table.
    """

    columns: tuple[ColumnSpec, ...]
    sort_key: tuple[str, ...]
    _index: dict = field(init=False, repr=False, compare=False, hash=False)

    def __init__(self, columns, sort_key):
        object.__setattr__(self, "columns", tuple(columns))
        object.__setattr__(self, "sort_key", tuple(sort_key))
        object.__setattr__(
            self, "_index", {c.name: i for i, c in enumerate(self.columns)}
        )
        if len(self._index) != len(self.columns):
            raise SchemaError("duplicate column names")
        if not self.sort_key:
            raise SchemaError("sort key must have at least one column")
        for name in self.sort_key:
            if name not in self._index:
                raise SchemaError(f"sort key column {name!r} not in schema")

    @classmethod
    def build(cls, *cols: tuple[str, DataType], sort_key) -> "Schema":
        """Convenience constructor from ``(name, dtype)`` pairs."""
        return cls([ColumnSpec(n, t) for n, t in cols], sort_key)

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def sort_key_indexes(self) -> tuple[int, ...]:
        """Physical indexes of the sort-key columns, in SK order."""
        return tuple(self._index[n] for n in self.sort_key)

    def column_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}") from None

    def column(self, name: str) -> ColumnSpec:
        return self.columns[self.column_index(name)]

    def dtype_of(self, name: str) -> DataType:
        return self.column(name).dtype

    def sk_of(self, row) -> tuple:
        """Extract the sort-key values of a full tuple as a Python tuple."""
        return tuple(row[i] for i in self.sort_key_indexes)

    def coerce_row(self, row) -> tuple:
        """Validate and coerce a full tuple to canonical Python values."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"tuple has {len(row)} values, schema has {len(self.columns)}"
            )
        return tuple(
            spec.dtype.python_value(v) for spec, v in zip(self.columns, row)
        )

    def is_sk_column(self, name: str) -> bool:
        return name in self.sort_key

    # -- persistence (storage-backend catalogs) ----------------------------

    def to_dict(self) -> dict:
        """JSON-safe form, persisted in durable storage catalogs so a
        recovered database can rebuild tables without re-registration."""
        return {
            "columns": [[c.name, c.dtype.value] for c in self.columns],
            "sort_key": list(self.sort_key),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Schema":
        return cls(
            [ColumnSpec(name, DataType(dtype))
             for name, dtype in raw["columns"]],
            tuple(raw["sort_key"]),
        )
