"""Block-wise columnar storage over a pluggable backend.

Each column of a stable table is split into fixed-size row blocks; every
block is encoded (compressed or plain) to bytes and handed to a
:class:`~repro.storage.backend.StorageBackend` — an in-memory dict
(:class:`~repro.storage.backend.MemoryBackend`, the default simulated
disk) or real per-table segment files
(:class:`~repro.storage.mmap_backend.MmapFileBackend`). A block is
addressed by ``(table, column, block_index)`` and its row range is
derivable from the block size, which is exactly the "dense block-wise
storage with a sparse index with the start RID of each block"
organization the paper describes.

:class:`BlockStore` owns the layout and codec choices; the backend owns
the bytes and the catalog (per-block ``(size, rows)`` records, table
schemas, image LSNs). Row counts are *derived* from the per-block
records, so a per-block overwrite that changes the tail block's length
changes ``column_rows`` with it — the backend contract every
implementation is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import compression
from .backend import MemoryBackend, StorageBackend
from .schema import DataType, Schema

DEFAULT_BLOCK_ROWS = 4096


@dataclass(frozen=True)
class BlockKey:
    """Address of one stored column block."""

    table: str
    column: str
    block: int


class BlockStore:
    """Block layout + codecs over a storage backend.

    The store records the *stored* size of each block; buffer-pool misses
    are charged at that size, which makes compressed and uncompressed
    configurations produce different I/O volumes, as in the paper's
    server-vs-workstation comparison.

    When the backend carries persisted store metadata (a reopened mmap
    store), its ``block_rows``/``compressed`` are adopted — a recovered
    database always reads blocks with the layout they were written in.
    """

    def __init__(self, compressed: bool = True,
                 block_rows: int = DEFAULT_BLOCK_ROWS,
                 backend: StorageBackend | None = None):
        if block_rows <= 0:
            raise ValueError("block_rows must be positive")
        self.backend = backend if backend is not None else MemoryBackend()
        persisted = self.backend.get_store_meta()
        if persisted:
            compressed = bool(persisted["compressed"])
            block_rows = int(persisted["block_rows"])
        else:
            self.backend.set_store_meta(
                {"compressed": compressed, "block_rows": block_rows}
            )
        self.compressed = compressed
        self.block_rows = block_rows

    # -- writing ---------------------------------------------------------

    def _encode(self, chunk: np.ndarray, dtype: DataType) -> bytes:
        if self.compressed:
            return compression.encode_best(chunk, dtype)
        return compression.encode(chunk, dtype, compression.PLAIN)

    def store_column(self, table: str, column: str, dtype: DataType,
                     values) -> int:
        """Split ``values`` into blocks, encode, and store. Returns #blocks."""
        arr = np.asarray(values, dtype=dtype.numpy_dtype)
        self.backend.begin_column(table, column, dtype)
        n_blocks = 0
        for start in range(0, max(len(arr), 1), self.block_rows):
            chunk = arr[start: start + self.block_rows]
            self.backend.put_block(
                table, column, n_blocks, self._encode(chunk, dtype),
                rows=len(chunk),
            )
            n_blocks += 1
        return n_blocks

    def store_block(self, table: str, column: str, block: int,
                    values) -> None:
        """Overwrite (or append) a single block of an existing column.

        Only the tail block may hold fewer than ``block_rows`` rows —
        interior blocks must stay full so positional addressing
        (``block_range`` arithmetic) remains valid — and appending a new
        block requires the current tail to be full. The backend's
        per-block row records keep ``column_rows`` correct through any
        such overwrite; callers that cached decoded blocks (buffer pools)
        must evict the overwritten block themselves.
        """
        meta = self.backend.column_meta(table, column)
        if meta is None:
            raise KeyError(f"unknown column {table}.{column}")
        n_blocks = len(meta.blocks)
        arr = np.asarray(values, dtype=meta.dtype.numpy_dtype)
        if len(arr) > self.block_rows:
            raise ValueError(
                f"block holds at most {self.block_rows} rows, got {len(arr)}"
            )
        if block < 0 or block > n_blocks:
            raise IndexError(
                f"block {block} out of range for {n_blocks}-block column"
            )
        if block < n_blocks - 1 and len(arr) != self.block_rows:
            raise ValueError(
                f"interior block {block} must hold exactly "
                f"{self.block_rows} rows, got {len(arr)}"
            )
        if block == n_blocks and n_blocks and \
                meta.blocks[-1][1] != self.block_rows:
            raise ValueError(
                "cannot append: current tail block is not full"
            )
        self.backend.put_block(
            table, column, block, self._encode(arr, meta.dtype),
            rows=len(arr),
        )

    def drop_table(self, table: str) -> None:
        self.backend.delete_table(table)

    # -- reading ---------------------------------------------------------

    def read_block(self, key: BlockKey) -> np.ndarray:
        """Decode and return one block (the 'physical read' path)."""
        blob = self.backend.get_block(key.table, key.column, key.block)
        dtype = self.column_dtype(key.table, key.column)
        return compression.decode(blob, dtype)

    def stored_size(self, key: BlockKey) -> int:
        return self.backend.block_size(key.table, key.column, key.block)

    def has_column(self, table: str, column: str) -> bool:
        return self.backend.column_meta(table, column) is not None

    def column_dtype(self, table: str, column: str) -> DataType:
        return self.backend.column_dtype(table, column)

    def column_rows(self, table: str, column: str) -> int:
        return self.backend.column_rows(table, column)

    def column_blocks(self, table: str, column: str) -> int:
        meta = self.backend.column_meta(table, column)
        if meta is None:
            raise KeyError(f"unknown column {table}.{column}")
        return max(1, len(meta.blocks))

    def columns(self, table: str | None = None) -> list[tuple[str, str]]:
        """Stored ``(table, column)`` pairs, optionally for one table."""
        pairs = self.backend.columns()
        if table is None:
            return pairs
        return [p for p in pairs if p[0] == table]

    def tables(self) -> list[str]:
        return self.backend.tables()

    def block_range(self, block: int) -> tuple[int, int]:
        """Row range ``[start, stop)`` covered by block index ``block``."""
        start = block * self.block_rows
        return start, start + self.block_rows

    def aligned_stop(self, start_row: int, stop_row: int) -> int:
        """Clamp a batch ending at ``stop_row`` to the first block boundary
        after ``start_row``.

        Scan batches that never straddle a stored block decode to plain
        views of the cached block — the zero-copy pass-through the
        block-pipelined MergeScan relies on — instead of concatenations of
        partial blocks.
        """
        boundary = (start_row // self.block_rows + 1) * self.block_rows
        return min(stop_row, boundary)

    def blocks_for_rows(self, start_row: int, stop_row: int):
        """Block indexes overlapping the row range ``[start_row, stop_row)``."""
        if stop_row <= start_row:
            return range(0)
        first = start_row // self.block_rows
        last = (stop_row - 1) // self.block_rows
        return range(first, last + 1)

    def column_stored_bytes(self, table: str, column: str) -> int:
        """Total stored (possibly compressed) size of a column."""
        meta = self.backend.column_meta(table, column)
        if meta is None:
            return 0
        return meta.stored_bytes

    # -- table metadata (durable recovery) -------------------------------

    def set_table_schema(self, table: str, schema: Schema) -> None:
        self.backend.set_table_meta(table, schema=schema.to_dict())

    def table_schema(self, table: str) -> Schema | None:
        raw = self.backend.get_table_meta(table).get("schema")
        return Schema.from_dict(raw) if raw else None

    def set_image_lsn(self, table: str, lsn: int) -> None:
        """Record the LSN the table's stored image is consecutive to; WAL
        replay skips this table's records at or below it (they are folded
        into the image the catalog publishes)."""
        self.backend.set_table_meta(table, image_lsn=int(lsn))

    def image_lsn(self, table: str) -> int:
        return int(self.backend.get_table_meta(table).get("image_lsn", 0))

    def table_epoch(self, table: str) -> int | None:
        """Backend per-publish image identity (mmap segment epoch), or
        None on backends without one (memory)."""
        epoch_of = getattr(self.backend, "table_epoch", None)
        return None if epoch_of is None else epoch_of(table)

    # -- durability ------------------------------------------------------

    def sync(self) -> None:
        """Publish everything stored so far (the backend's atomic commit
        point; no-op on volatile backends)."""
        self.backend.sync()

    def close(self) -> None:
        self.backend.close()
