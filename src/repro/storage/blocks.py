"""Block-wise columnar storage over a simulated disk.

Each column of a stable table is split into fixed-size row blocks; every
block is encoded (compressed or plain) to bytes and held by a
:class:`BlockStore` — our stand-in for the disk. A block is addressed by
``(table, column, block_index)`` and its row range is derivable from the
block size, which is exactly the "dense block-wise storage with a sparse
index with the start RID of each block" organization the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import compression
from .schema import DataType

DEFAULT_BLOCK_ROWS = 4096


@dataclass(frozen=True)
class BlockKey:
    """Address of one stored column block."""

    table: str
    column: str
    block: int


class BlockStore:
    """Simulated disk: a mapping from block keys to encoded bytes.

    The store records the *stored* size of each block; buffer-pool misses
    are charged at that size, which makes compressed and uncompressed
    configurations produce different I/O volumes, as in the paper's
    server-vs-workstation comparison.
    """

    def __init__(self, compressed: bool = True, block_rows: int = DEFAULT_BLOCK_ROWS):
        if block_rows <= 0:
            raise ValueError("block_rows must be positive")
        self.compressed = compressed
        self.block_rows = block_rows
        self._blocks: dict[BlockKey, bytes] = {}
        self._dtypes: dict[tuple[str, str], DataType] = {}
        self._row_counts: dict[tuple[str, str], int] = {}

    # -- writing ---------------------------------------------------------

    def store_column(self, table: str, column: str, dtype: DataType, values) -> int:
        """Split ``values`` into blocks, encode, and store. Returns #blocks."""
        arr = np.asarray(values, dtype=dtype.numpy_dtype)
        self._dtypes[(table, column)] = dtype
        self._row_counts[(table, column)] = len(arr)
        n_blocks = 0
        for start in range(0, max(len(arr), 1), self.block_rows):
            chunk = arr[start : start + self.block_rows]
            if self.compressed:
                blob = compression.encode_best(chunk, dtype)
            else:
                blob = compression.encode(chunk, dtype, compression.PLAIN)
            self._blocks[BlockKey(table, column, n_blocks)] = blob
            n_blocks += 1
        return n_blocks

    def drop_table(self, table: str) -> None:
        self._blocks = {k: v for k, v in self._blocks.items() if k.table != table}
        self._dtypes = {k: v for k, v in self._dtypes.items() if k[0] != table}
        self._row_counts = {
            k: v for k, v in self._row_counts.items() if k[0] != table
        }

    # -- reading ---------------------------------------------------------

    def read_block(self, key: BlockKey) -> np.ndarray:
        """Decode and return one block (the 'physical read' path)."""
        blob = self._blocks[key]
        dtype = self._dtypes[(key.table, key.column)]
        return compression.decode(blob, dtype)

    def stored_size(self, key: BlockKey) -> int:
        return len(self._blocks[key])

    def has_column(self, table: str, column: str) -> bool:
        return (table, column) in self._dtypes

    def column_rows(self, table: str, column: str) -> int:
        return self._row_counts[(table, column)]

    def column_blocks(self, table: str, column: str) -> int:
        rows = self._row_counts[(table, column)]
        return max(1, -(-rows // self.block_rows))

    def block_range(self, block: int) -> tuple[int, int]:
        """Row range ``[start, stop)`` covered by block index ``block``."""
        start = block * self.block_rows
        return start, start + self.block_rows

    def aligned_stop(self, start_row: int, stop_row: int) -> int:
        """Clamp a batch ending at ``stop_row`` to the first block boundary
        after ``start_row``.

        Scan batches that never straddle a stored block decode to plain
        views of the cached block — the zero-copy pass-through the
        block-pipelined MergeScan relies on — instead of concatenations of
        partial blocks.
        """
        boundary = (start_row // self.block_rows + 1) * self.block_rows
        return min(stop_row, boundary)

    def blocks_for_rows(self, start_row: int, stop_row: int):
        """Block indexes overlapping the row range ``[start_row, stop_row)``."""
        if stop_row <= start_row:
            return range(0)
        first = start_row // self.block_rows
        last = (stop_row - 1) // self.block_rows
        return range(first, last + 1)

    def column_stored_bytes(self, table: str, column: str) -> int:
        """Total stored (possibly compressed) size of a column."""
        return sum(
            len(blob)
            for key, blob in self._blocks.items()
            if key.table == table and key.column == column
        )
