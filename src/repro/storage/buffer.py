"""Buffer pool with LRU eviction and cold/hot control.

Scans never touch the :class:`~repro.storage.blocks.BlockStore` directly;
they go through a :class:`BufferPool`, which caches decoded blocks and
charges a buffer miss to :class:`~repro.storage.io_stats.IOStats` at the
block's *stored* (compressed) size. This gives the two regimes of the
paper's Figure 19:

* **cold** — ``clear()`` the pool before the query: every block is a miss,
  so the reported I/O volume is exactly what the query had to read.
* **hot** — ``warm_table()`` (or simply a prior run with a large enough
  pool): all blocks hit, data access is "zero cost", and measured time is
  pure CPU — the regime of plot 4.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from .blocks import BlockKey, BlockStore
from .io_stats import IOStats


class BufferPool:
    """LRU cache of decoded column blocks over a simulated disk."""

    def __init__(
        self,
        store: BlockStore,
        io_stats: IOStats | None = None,
        capacity_bytes: int | None = None,
    ):
        self.store = store
        self.io = io_stats if io_stats is not None else IOStats()
        self.capacity_bytes = capacity_bytes
        self._cache: OrderedDict[BlockKey, np.ndarray] = OrderedDict()
        self._cached_bytes = 0
        self.hits = 0
        self.misses = 0
        # Concurrent service requests scan one shard through one pool;
        # LRU bookkeeping (move_to_end / evict / insert) must not race.
        self._lock = threading.RLock()

    # -- core access -----------------------------------------------------

    def get_block(self, table: str, column: str, block: int) -> np.ndarray:
        """Return the decoded block, reading from 'disk' on a miss."""
        key = BlockKey(table, column, block)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
        # Decode outside the lock so concurrent scans of one shard miss
        # in parallel; two workers racing on the same cold block decode
        # it twice (both charged — the 'disk' really was read twice) and
        # the second insert wins harmlessly.
        data = self.store.read_block(key)
        self.io.record_read(table, column, self.store.stored_size(key))
        with self._lock:
            self._insert(key, data)
        return data

    def read_rows(
        self, table: str, column: str, start_row: int, stop_row: int
    ) -> np.ndarray:
        """Materialize the value range ``[start_row, stop_row)`` of a column."""
        total = self.store.column_rows(table, column)
        stop_row = min(stop_row, total)
        if stop_row <= start_row:
            dtype = self.store.column_dtype(table, column)
            return np.empty(0, dtype=dtype.numpy_dtype)
        pieces = []
        for blk in self.store.blocks_for_rows(start_row, stop_row):
            blk_start, blk_stop = self.store.block_range(blk)
            data = self.get_block(table, column, blk)
            lo = max(start_row, blk_start) - blk_start
            hi = min(stop_row, blk_stop) - blk_start
            pieces.append(data[lo:hi])
        if len(pieces) == 1:
            return pieces[0]
        return np.concatenate(pieces)

    # -- temperature control ---------------------------------------------

    def clear(self) -> None:
        """Evict everything: the next query runs cold."""
        with self._lock:
            self._cache.clear()
            self._cached_bytes = 0

    def evict_table(self, table: str) -> None:
        """Evict one table's blocks, keeping the rest of the pool hot.

        Checkpoints rebuild a single table's stable image; evicting only
        its stale blocks means an incremental checkpoint does not turn
        every other table's next scan cold.
        """
        with self._lock:
            for key in [k for k in self._cache if k.table == table]:
                self._cached_bytes -= \
                    self._block_nbytes(self._cache.pop(key))

    def warm_table(self, table: str, columns=None) -> None:
        """Pre-load a table's blocks without counting the reads as query I/O.

        Used to set up 'hot' runs; the I/O counters are restored afterwards
        so warming is invisible to per-query accounting.
        """
        before = self.io.snapshot()
        for tbl, column in self.store.columns(table):
            if columns is not None and column not in columns:
                continue
            for blk in range(self.store.column_blocks(tbl, column)):
                self.get_block(tbl, column, blk)
        self.io.restore(before)

    # -- internals ---------------------------------------------------------

    def _insert(self, key: BlockKey, data: np.ndarray) -> None:
        # Cached blocks flow by reference through MergeScan pass-through
        # into query results; freeze them so an aliasing write raises
        # instead of silently corrupting every later read of the block.
        data.setflags(write=False)
        size = self._block_nbytes(data)
        if self.capacity_bytes is not None:
            while self._cached_bytes + size > self.capacity_bytes and self._cache:
                _, evicted = self._cache.popitem(last=False)
                self._cached_bytes -= self._block_nbytes(evicted)
        self._cache[key] = data
        self._cached_bytes += size

    @staticmethod
    def _block_nbytes(data: np.ndarray) -> int:
        if data.dtype == object:
            return int(sum(len(str(v)) + 50 for v in data))
        return int(data.nbytes)

    @property
    def cached_bytes(self) -> int:
        return self._cached_bytes

    def contains(self, table: str, column: str, block: int) -> bool:
        return BlockKey(table, column, block) in self._cache
