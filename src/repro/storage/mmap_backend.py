"""Mmap-file storage backend: real persisted blocks with crash-safe publish.

File layout under the backend root::

    <root>/
      catalog.json              # published catalog (atomic rename target)
      segments/<table>.<epoch>.seg   # encoded blocks, append-only per epoch

Every table's blocks live in one *segment file per epoch*. Writes append
to the table's current epoch; reads slice an ``mmap`` of the segment (so
repeated block reads after a buffer-pool miss are served from the page
cache, and stored sizes — compressed or plain — are exactly the bytes
read, keeping the I/O accounting honest). Rewriting a table
(``delete_table`` followed by new ``put_block`` calls — what a checkpoint
does) bumps the epoch: the new image is appended to a fresh segment file
while the old file stays on disk.

Durability protocol
-------------------
The in-memory catalog mutates freely; the *on-disk* catalog only changes
inside :meth:`sync`:

1. ``fsync`` every dirty segment file (block bytes durable first);
2. write ``catalog.json.tmp``, ``fsync``, then ``os.replace`` it over
   ``catalog.json`` (the **atomic commit point**) and ``fsync`` the
   directory;
3. unlink segment files no published catalog references (old epochs,
   deleted tables).

A kill anywhere leaves either the previous catalog (still pointing at
fully intact old segment files, because deletions are deferred to step 3)
or the new one (whose segment bytes were fsynced in step 1). Checkpoint
and WAL-truncation ordering on top of this commit point is handled in
:mod:`repro.txn.checkpoint`; the catalog additionally records each
table's ``image_lsn`` so WAL replay can tell which log records a
published image already folded in.
"""

from __future__ import annotations

import json
import mmap
import os
import shutil
import threading
import urllib.parse
from pathlib import Path

from .backend import (
    ColumnMeta,
    MAIN_SCOPE,
    StorageBackend,
    StorageFactory,
    ephemeral_mmap_root,
)
from .schema import DataType

CATALOG_NAME = "catalog.json"
SEGMENT_DIR = "segments"


def _safe_name(name: str) -> str:
    """Filesystem-safe, reversible encoding of a table/scope name."""
    return urllib.parse.quote(name, safe="")


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class _Segment:
    """One table-epoch segment file: append writes, mmap reads."""

    def __init__(self, path: Path, size: int):
        self.path = path
        self.size = size  # logical end of written data
        self._fd: int | None = None
        self._map: mmap.mmap | None = None
        self._mapped = 0
        self.dirty = False
        # True after this open *created* the file: its directory entry is
        # not durable until the segment directory is fsynced.
        self.needs_dirsync = False

    def _ensure_fd(self) -> int:
        if self._fd is None:
            existed = self.path.exists()
            self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            if not existed:
                self.needs_dirsync = True
        return self._fd

    def append(self, blob: bytes) -> int:
        fd = self._ensure_fd()
        offset = self.size
        os.lseek(fd, offset, os.SEEK_SET)
        view = memoryview(blob)
        while view:
            written = os.write(fd, view)
            view = view[written:]
        self.size = offset + len(blob)
        self.dirty = True
        return offset

    def read(self, offset: int, length: int) -> bytes:
        if length == 0:
            return b""
        if self._map is None or self._mapped < offset + length:
            if self._map is not None:
                self._map.close()
            fd = self._ensure_fd()
            file_size = os.fstat(fd).st_size
            self._map = mmap.mmap(fd, file_size, access=mmap.ACCESS_READ)
            self._mapped = file_size
        return self._map[offset:offset + length]

    def fsync(self) -> None:
        if self.dirty and self._fd is not None:
            os.fsync(self._fd)
        self.dirty = False

    def close(self) -> None:
        if self._map is not None:
            self._map.close()
            self._map = None
        self._mapped = 0
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


class MmapFileBackend(StorageBackend):
    """Per-table segment files + a small atomically-published catalog."""

    def __init__(self, root, do_fsync: bool = True, readonly: bool = False):
        self.root = Path(root)
        self.do_fsync = do_fsync
        # Read-only opens (shard worker processes) never take the writer
        # lock, never sweep, and reject every mutation: many workers can
        # mmap a live writer's root concurrently and only ever observe
        # atomically-published catalogs.
        self.readonly = readonly
        self.seg_dir = self.root / SEGMENT_DIR
        if not readonly:
            self.seg_dir.mkdir(parents=True, exist_ok=True)
        # catalog state ----------------------------------------------------
        self._columns: dict[tuple[str, str], "_MmapColumn"] = {}
        self._rows: dict[tuple[str, str], int] = {}  # incremental totals
        self._table_meta: dict[str, dict] = {}
        self._epochs: dict[str, int] = {}  # table -> current epoch
        self._store_meta: dict = {}
        # runtime state ----------------------------------------------------
        self._segments: dict[Path, _Segment] = {}
        self._pending_unlink: set[Path] = set()
        self._dirty = False
        # Concurrent scans through different buffer pools may miss on this
        # backend at once; segment remaps and appends must not race.
        self._lock = threading.RLock()
        # Advisory single-writer lock on the root. Held for this
        # backend's lifetime; auto-released by the OS when the process
        # dies, so a crashed writer never wedges recovery. A second open
        # of a *live* root proceeds (reads the published catalog) but
        # must not run the orphan-segment sweep — the "orphans" may be
        # the live writer's not-yet-published epoch.
        self._lock_fd: int | None = None
        if readonly:
            self._load_catalog()
            return
        try:
            import fcntl

            fd = os.open(self.root / ".lock", os.O_RDWR | os.O_CREAT, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                self._lock_fd = fd
            except OSError:
                os.close(fd)
        except ImportError:  # non-POSIX: no advisory lock, keep the sweep
            self._lock_fd = -1
        self._load_catalog()

    # -- segment plumbing -------------------------------------------------

    def _segment_path(self, table: str, epoch: int) -> Path:
        return self.seg_dir / f"{_safe_name(table)}.{epoch}.seg"

    def _segment(self, table: str) -> _Segment:
        path = self._segment_path(table, self._epochs[table])
        seg = self._segments.get(path)
        if seg is None:
            size = path.stat().st_size if path.exists() else 0
            seg = self._segments[path] = _Segment(path, size)
        return seg

    def _next_epoch(self, table: str) -> int:
        """First epoch index with no segment file on disk (never reuses
        an epoch, even across delete/recreate or a crashed predecessor)."""
        prefix = f"{_safe_name(table)}."
        existing = [-1]
        for p in self.seg_dir.glob(f"{prefix}*.seg"):
            stem = p.name[len(prefix):-len(".seg")]
            if stem.isdigit():
                existing.append(int(stem))
        return max(existing) + 1

    def _ensure_table(self, table: str) -> None:
        if table not in self._epochs:
            self._epochs[table] = self._next_epoch(table)

    def _require_writable(self, op: str) -> None:
        if self.readonly:
            raise PermissionError(f"read-only backend: {op} rejected")

    # -- StorageBackend: blocks ------------------------------------------

    def begin_column(self, table: str, column: str, dtype: DataType) -> None:
        self._require_writable("begin_column")
        with self._lock:
            self._ensure_table(table)
            self._columns[(table, column)] = _MmapColumn(dtype=dtype)
            self._rows[(table, column)] = 0
            self._dirty = True

    def put_block(self, table: str, column: str, block: int, blob: bytes,
                  rows: int) -> None:
        self._require_writable("put_block")
        with self._lock:
            col = self._columns.get((table, column))
            if col is None:
                raise KeyError(f"column {table}.{column} not registered")
            if block > len(col.blocks):
                raise IndexError(
                    f"block {block} leaves a gap (column has "
                    f"{len(col.blocks)} blocks)"
                )
            offset = self._segment(table).append(blob)
            entry = (offset, len(blob), rows)
            if block == len(col.blocks):
                col.blocks.append(entry)
                self._rows[(table, column)] += rows
            else:
                self._rows[(table, column)] += rows - col.blocks[block][2]
                col.blocks[block] = entry  # old bytes become dead space
            self._dirty = True

    def get_block(self, table: str, column: str, block: int) -> bytes:
        with self._lock:
            col = self._columns[(table, column)]
            offset, length, _rows = col.blocks[block]
            return self._segment(table).read(offset, length)

    def block_size(self, table: str, column: str, block: int) -> int:
        with self._lock:
            return self._columns[(table, column)].blocks[block][1]

    def delete_table(self, table: str) -> None:
        self._require_writable("delete_table")
        with self._lock:
            epoch = self._epochs.pop(table, None)
            if epoch is not None:
                path = self._segment_path(table, epoch)
                seg = self._segments.pop(path, None)
                if seg is not None:
                    seg.close()
                # The published catalog may still reference this file;
                # unlink only after the next sync publishes one that
                # does not.
                if path.exists():
                    self._pending_unlink.add(path)
            for key in [k for k in self._columns if k[0] == table]:
                del self._columns[key]
                self._rows.pop(key, None)
            self._table_meta.pop(table, None)
            self._dirty = True

    # -- StorageBackend: catalog -----------------------------------------

    def column_meta(self, table: str, column: str) -> ColumnMeta | None:
        with self._lock:
            col = self._columns.get((table, column))
            if col is None:
                return None
            return ColumnMeta(
                dtype=col.dtype,
                blocks=[(length, rows) for _, length, rows in col.blocks],
            )

    def column_dtype(self, table: str, column: str) -> DataType:
        with self._lock:
            try:
                return self._columns[(table, column)].dtype
            except KeyError:
                raise KeyError(f"unknown column {table}.{column}") from None

    def column_rows(self, table: str, column: str) -> int:
        with self._lock:
            try:
                return self._rows[(table, column)]
            except KeyError:
                raise KeyError(f"unknown column {table}.{column}") from None

    def columns(self) -> list[tuple[str, str]]:
        with self._lock:
            return list(self._columns)

    def tables(self) -> list[str]:
        with self._lock:
            names = {t for t, _ in self._columns}
            names.update(self._table_meta)
            return sorted(names)

    def table_epoch(self, table: str) -> int | None:
        """The table's current segment epoch — a per-publish identity.
        Unlike ``image_lsn`` (which two images of one table name share
        when no commit lands between publishes), epochs are never
        reused, so (name, epoch) names exactly one on-disk image."""
        with self._lock:
            return self._epochs.get(table)

    def set_table_meta(self, table: str, **meta) -> None:
        if self.readonly:
            return  # catalog is a published snapshot; nothing to record
        with self._lock:
            self._table_meta.setdefault(table, {}).update(meta)
            self._dirty = True

    def get_table_meta(self, table: str) -> dict:
        with self._lock:
            return dict(self._table_meta.get(table, {}))

    def set_store_meta(self, meta: dict) -> None:
        if self.readonly:
            return  # BlockStore adopts persisted meta; never re-publishes
        with self._lock:
            self._store_meta.update(meta)
            self._dirty = True

    def get_store_meta(self) -> dict:
        with self._lock:
            return dict(self._store_meta)

    # -- durability -------------------------------------------------------

    def sync(self) -> None:
        if self.readonly:
            return
        with self._lock:
            if not self._dirty and not self._pending_unlink:
                return
            if self.do_fsync:
                dirsync = False
                for seg in self._segments.values():
                    seg.fsync()
                    if seg.needs_dirsync:
                        dirsync = True
                        seg.needs_dirsync = False
                if dirsync:
                    # Newly created segment files: make their directory
                    # entries durable before the catalog publish can
                    # reference them.
                    _fsync_dir(self.seg_dir)
            payload = json.dumps(self._catalog_json(), indent=1)
            tmp = self.root / (CATALOG_NAME + ".tmp")
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                os.write(fd, payload.encode("utf-8"))
                if self.do_fsync:
                    os.fsync(fd)
            finally:
                os.close(fd)
            os.replace(tmp, self.root / CATALOG_NAME)  # atomic commit point
            if self.do_fsync:
                _fsync_dir(self.root)
            referenced = {
                self._segment_path(t, e) for t, e in self._epochs.items()
            }
            for path in list(self._pending_unlink):
                if path not in referenced:
                    path.unlink(missing_ok=True)
                self._pending_unlink.discard(path)
            self._dirty = False

    def close(self) -> None:
        with self._lock:
            for seg in self._segments.values():
                seg.close()
            self._segments.clear()
            if self._lock_fd is not None and self._lock_fd >= 0:
                os.close(self._lock_fd)  # releases the flock
                self._lock_fd = None

    # -- catalog (de)serialization ---------------------------------------

    def _catalog_json(self) -> dict:
        tables: dict[str, dict] = {}
        for (table, column), col in self._columns.items():
            entry = tables.setdefault(table, {
                "epoch": self._epochs[table],
                "meta": self._table_meta.get(table, {}),
                "columns": {},
            })
            entry["columns"][column] = {
                "dtype": col.dtype.value,
                "blocks": [[o, l, r] for o, l, r in col.blocks],
            }
        for table, meta in self._table_meta.items():
            tables.setdefault(table, {
                "epoch": self._epochs.get(table, 0),
                "meta": meta,
                "columns": {},
            })
        return {"version": 1, "store": self._store_meta, "tables": tables}

    def _load_catalog(self) -> None:
        path = self.root / CATALOG_NAME
        if not path.exists():
            self._sweep_orphan_segments()
            return
        raw = json.loads(path.read_text(encoding="utf-8"))
        self._store_meta = dict(raw.get("store", {}))
        for table, entry in raw.get("tables", {}).items():
            self._epochs[table] = int(entry["epoch"])
            self._table_meta[table] = dict(entry.get("meta", {}))
            for column, col in entry.get("columns", {}).items():
                loaded = _MmapColumn(
                    dtype=DataType(col["dtype"]),
                    blocks=[(int(o), int(l), int(r))
                            for o, l, r in col["blocks"]],
                )
                self._columns[(table, column)] = loaded
                self._rows[(table, column)] = sum(
                    r for _, _, r in loaded.blocks
                )
        self._sweep_orphan_segments()

    def _sweep_orphan_segments(self) -> None:
        """Delete segment files the published catalog does not reference —
        leftovers of a crash between block appends and the catalog
        publish (their data was never visible). Skipped when another
        live backend holds the root's writer lock: its in-flight epoch
        looks like an orphan but is about to be published."""
        if self._lock_fd is None:
            return
        referenced = {
            self._segment_path(t, e) for t, e in self._epochs.items()
        }
        for path in self.seg_dir.glob("*.seg"):
            if path not in referenced:
                path.unlink(missing_ok=True)


class _MmapColumn:
    """In-memory catalog entry: dtype + per-block (offset, length, rows)."""

    __slots__ = ("dtype", "blocks")

    def __init__(self, dtype: DataType, blocks=None):
        self.dtype = dtype
        self.blocks: list[tuple[int, int, int]] = list(blocks or [])


class MmapStorage(StorageFactory):
    """Factory rooting every scope under one directory::

        <root>/main/            # scope "" — the database's main tables
        <root>/shards/<name>/   # one scope (backend) per shard
        <root>/wal.jsonl        # the database's write-ahead log

    ``ephemeral()`` builds a self-cleaning temp-rooted instance (used by
    the ``REPRO_STORAGE_BACKEND=mmap`` test runs) with fsync disabled —
    functional parity without paying fsync latency; explicit-path
    instances default to full fsync durability.
    """

    persistent = True

    def __init__(self, root, do_fsync: bool = True):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = do_fsync
        self._backends: dict[str, MmapFileBackend] = {}
        self._tmp = None  # TemporaryDirectory keeping ephemeral roots alive

    @classmethod
    def ephemeral(cls) -> "MmapStorage":
        tmp = ephemeral_mmap_root()
        storage = cls(tmp.name, do_fsync=False)
        storage._tmp = tmp
        return storage

    def _scope_root(self, scope: str) -> Path:
        if scope == MAIN_SCOPE:
            return self.root / "main"
        return self.root / "shards" / _safe_name(scope)

    def open(self, scope: str) -> MmapFileBackend:
        backend = self._backends.get(scope)
        if backend is None:
            backend = MmapFileBackend(self._scope_root(scope),
                                      do_fsync=self.fsync)
            self._backends[scope] = backend
        return backend

    def discard(self, scope: str) -> None:
        backend = self._backends.pop(scope, None)
        if backend is not None:
            backend.close()
        shutil.rmtree(self._scope_root(scope), ignore_errors=True)

    def scopes(self) -> list[str]:
        found = []
        if (self.root / "main").exists():
            found.append(MAIN_SCOPE)
        shards = self.root / "shards"
        if shards.exists():
            found.extend(
                urllib.parse.unquote(p.name)
                for p in shards.iterdir() if p.is_dir()
            )
        return found

    def wal_path(self):
        return str(self.root / "wal.jsonl")

    def close(self) -> None:
        for backend in self._backends.values():
            backend.sync()
            backend.close()
        self._backends.clear()
