"""I/O accounting for the simulated disk.

The paper's Figure 19 (plots 2 and 5) reports per-query I/O *volume* for
no-updates, VDT, and PDT runs. Our disk is simulated, so instead of timing
physical reads we count the bytes each scan pulls from "disk" (i.e. buffer
pool misses, at the stored — possibly compressed — block size). An optional
bandwidth cost model converts volume into simulated seconds so that "cold"
runs can report an I/O-inclusive time.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class IOSnapshot:
    """Immutable view of counters, used to compute per-query deltas."""

    bytes_read: int = 0
    blocks_read: int = 0
    bytes_by_column: dict = field(default_factory=dict)

    def minus(self, earlier: "IOSnapshot") -> "IOSnapshot":
        by_col = {
            key: count - earlier.bytes_by_column.get(key, 0)
            for key, count in self.bytes_by_column.items()
            if count - earlier.bytes_by_column.get(key, 0)
        }
        return IOSnapshot(
            bytes_read=self.bytes_read - earlier.bytes_read,
            blocks_read=self.blocks_read - earlier.blocks_read,
            bytes_by_column=by_col,
        )

    def as_dict(self) -> dict:
        """JSON-able view; ``(table, column)`` keys join as "table.col"."""
        return {
            "bytes_read": self.bytes_read,
            "blocks_read": self.blocks_read,
            "bytes_by_column": {
                ".".join(key) if isinstance(key, tuple) else str(key): n
                for key, n in sorted(self.bytes_by_column.items())
            },
        }


class IOStats:
    """Mutable counters shared by a :class:`~repro.storage.buffer.BufferPool`.

    ``record_read`` is invoked on every buffer-pool miss. Columns are keyed
    by ``(table_name, column_name)`` so experiments can attribute I/O to
    sort-key columns specifically (the PDT-vs-VDT difference).
    """

    def __init__(self, read_bandwidth_bytes_per_sec: float | None = None):
        self.bytes_read = 0
        self.blocks_read = 0
        self.bytes_by_column: dict = defaultdict(int)
        self.read_bandwidth = read_bandwidth_bytes_per_sec
        # The query service scans one shard from several concurrent
        # requests; counter updates (and db-level merges) must not race.
        self._lock = threading.Lock()

    def record_read(self, table: str, column: str, nbytes: int) -> None:
        with self._lock:
            self.bytes_read += nbytes
            self.blocks_read += 1
            self.bytes_by_column[(table, column)] += nbytes

    def merge(self, other) -> "IOStats":
        """Fold another counter set (``IOStats`` or ``IOSnapshot``) into
        this one; returns ``self``.

        Shard fan-out records each shard's reads into a private, per-shard
        counter set (so parallel scan workers never race on one set of
        counters); the database-level stats stay meaningful by merging the
        per-shard deltas back after every fanned-out query.
        """
        if isinstance(other, IOStats):
            other = other.snapshot()
        with self._lock:
            self.bytes_read += other.bytes_read
            self.blocks_read += other.blocks_read
            for key, count in other.bytes_by_column.items():
                self.bytes_by_column[key] += count
        return self

    def snapshot(self) -> IOSnapshot:
        with self._lock:
            return IOSnapshot(
                bytes_read=self.bytes_read,
                blocks_read=self.blocks_read,
                bytes_by_column=dict(self.bytes_by_column),
            )

    def restore(self, snap: IOSnapshot) -> None:
        """Roll the counters back to ``snap`` (buffer-pool warming charges
        its pre-loads and then undoes them through this, under the lock)."""
        with self._lock:
            self.bytes_read = snap.bytes_read
            self.blocks_read = snap.blocks_read
            self.bytes_by_column.clear()
            self.bytes_by_column.update(snap.bytes_by_column)

    def since(self, snap: IOSnapshot) -> IOSnapshot:
        return self.snapshot().minus(snap)

    def simulated_seconds(self, nbytes: int | None = None) -> float:
        """Convert a byte count into simulated I/O seconds.

        Returns 0.0 when no bandwidth model is configured (pure counting
        mode, used by the I/O-volume benchmarks).
        """
        if not self.read_bandwidth:
            return 0.0
        if nbytes is None:
            nbytes = self.bytes_read
        return nbytes / self.read_bandwidth

    def reset(self) -> None:
        with self._lock:
            self.bytes_read = 0
            self.blocks_read = 0
            self.bytes_by_column.clear()

    def as_dict(self) -> dict:
        """Coherent JSON-able view (taken as one snapshot under the
        lock). Prefer this — or ``Database.metrics()`` — over reading
        the counter fields directly."""
        return self.snapshot().as_dict()

    def __repr__(self) -> str:
        return (f"IOStats(bytes_read={self.bytes_read}, "
                f"blocks_read={self.blocks_read}, "
                f"columns={len(self.bytes_by_column)})")
