"""In-memory B+-tree keyed by arbitrary orderable keys.

This is the substrate for the VDT baseline (paper section 2.1): the
value-based write-store keeps its insert table and delete table "organized
in sort key order ... it is natural to implement such tables as B-trees".
Keys here are sort-key tuples; values are arbitrary payloads (full tuples
for the insert table, None for the delete table).

The tree supports point insert/delete/get, ordered iteration, and range
scans — everything the MergeUnion/MergeDiff scan needs.
"""

from __future__ import annotations

import bisect


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf")

    def __init__(self, leaf: bool):
        self.keys: list = []
        self.children: list | None = None if leaf else []
        self.values: list | None = [] if leaf else None
        self.next_leaf: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class BPlusTree:
    """Ordered map with B+-tree leaves linked for cheap in-order scans."""

    def __init__(self, order: int = 64):
        if order < 4:
            raise ValueError("order must be >= 4")
        self.order = order
        self._root = _Node(leaf=True)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    # -- point operations --------------------------------------------------

    def get(self, key, default=None):
        leaf = self._find_leaf(key)
        i = bisect.bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            return leaf.values[i]
        return default

    def insert(self, key, value) -> None:
        """Insert or overwrite ``key``."""
        path = self._path_to_leaf(key)
        leaf = path[-1][0]
        i = bisect.bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            leaf.values[i] = value
            return
        leaf.keys.insert(i, key)
        leaf.values.insert(i, value)
        self._count += 1
        self._split_upward(path)

    def delete(self, key) -> bool:
        """Remove ``key`` if present. Returns True when removed.

        Underflow is tolerated (no rebalancing): VDT delta structures are
        RAM-resident and rebuilt at every checkpoint, so lazily shrinking
        nodes is the standard engineering choice; lookups stay correct.
        """
        leaf = self._find_leaf(key)
        i = bisect.bisect_left(leaf.keys, key)
        if i >= len(leaf.keys) or leaf.keys[i] != key:
            return False
        del leaf.keys[i]
        del leaf.values[i]
        self._count -= 1
        return True

    # -- iteration ---------------------------------------------------------

    def items(self):
        """All ``(key, value)`` pairs in key order."""
        leaf = self._leftmost_leaf()
        while leaf is not None:
            for key, value in zip(leaf.keys, leaf.values):
                if value is not _TOMBSTONE:
                    yield key, value
            leaf = leaf.next_leaf

    def keys(self):
        for key, _ in self.items():
            yield key

    def range_items(self, low=None, high=None):
        """Pairs with ``low <= key < high`` (None = unbounded)."""
        if low is None:
            leaf = self._leftmost_leaf()
            i = 0
        else:
            leaf = self._find_leaf(low)
            i = bisect.bisect_left(leaf.keys, low)
        while leaf is not None:
            while i < len(leaf.keys):
                key = leaf.keys[i]
                if high is not None and key >= high:
                    return
                yield key, leaf.values[i]
                i += 1
            leaf = leaf.next_leaf
            i = 0

    def min_key(self):
        leaf = self._leftmost_leaf()
        while leaf is not None and not leaf.keys:
            leaf = leaf.next_leaf
        return leaf.keys[0] if leaf is not None else None

    def clear(self) -> None:
        self._root = _Node(leaf=True)
        self._count = 0

    # -- internals -----------------------------------------------------------

    def _find_leaf(self, key) -> _Node:
        node = self._root
        while not node.is_leaf:
            i = bisect.bisect_right(node.keys, key)
            node = node.children[i]
        return node

    def _path_to_leaf(self, key):
        """Root-to-leaf path as ``[(node, child_index_taken), ...]``."""
        path = []
        node = self._root
        while not node.is_leaf:
            i = bisect.bisect_right(node.keys, key)
            path.append((node, i))
            node = node.children[i]
        path.append((node, -1))
        return path

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def _split_upward(self, path) -> None:
        node, _ = path[-1]
        level = len(path) - 1
        while len(node.keys) > self.order:
            mid = len(node.keys) // 2
            if node.is_leaf:
                right = _Node(leaf=True)
                right.keys = node.keys[mid:]
                right.values = node.values[mid:]
                node.keys = node.keys[:mid]
                node.values = node.values[:mid]
                right.next_leaf = node.next_leaf
                node.next_leaf = right
                sep = right.keys[0]
            else:
                right = _Node(leaf=False)
                sep = node.keys[mid]
                right.keys = node.keys[mid + 1 :]
                right.children = node.children[mid + 1 :]
                node.keys = node.keys[:mid]
                node.children = node.children[: mid + 1]
            if level == 0:
                new_root = _Node(leaf=False)
                new_root.keys = [sep]
                new_root.children = [node, right]
                self._root = new_root
                return
            parent, child_idx = path[level - 1]
            parent.keys.insert(child_idx, sep)
            parent.children.insert(child_idx + 1, right)
            node, level = parent, level - 1

    def check_invariants(self) -> None:
        """Validate key order and child/key counts (used by tests)."""
        previous = None
        for key in self.keys():
            if previous is not None and not previous < key:
                raise AssertionError(f"keys out of order: {previous!r} !< {key!r}")
            previous = key

        def visit(node):
            if node.is_leaf:
                return
            if len(node.children) != len(node.keys) + 1:
                raise AssertionError("inner node fan-out mismatch")
            for child in node.children:
                visit(child)

        visit(self._root)


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
_TOMBSTONE = _Missing()
