"""Typed column vectors backed by numpy arrays.

A :class:`Column` is an immutable-by-convention ordered sequence of values —
one attribute of an ordered columnar table. Numeric columns are contiguous
numpy arrays; string columns use object arrays (Python str elements), which
keeps comparisons honest (string compares cost more than int compares, an
effect the paper's Figures 17/18 measure).
"""

from __future__ import annotations

import numpy as np

from .schema import DataType


class Column:
    """One attribute of a table: a typed, positionally indexed value vector."""

    __slots__ = ("name", "dtype", "values")

    def __init__(self, name: str, dtype: DataType, values):
        self.name = name
        self.dtype = dtype
        arr = np.asarray(values, dtype=dtype.numpy_dtype)
        if arr.ndim != 1:
            raise ValueError("column values must be one-dimensional")
        # Column vectors flow by reference through MergeScan pass-through
        # into query results; freeze so aliasing writes raise instead of
        # silently mutating the stable image. (np.asarray returns the
        # caller's own array when dtypes match — that array is frozen too,
        # which is the immutability the stable table requires anyway.)
        arr.setflags(write=False)
        self.values = arr

    @classmethod
    def empty(cls, name: str, dtype: DataType) -> "Column":
        return cls(name, dtype, np.empty(0, dtype=dtype.numpy_dtype))

    @classmethod
    def from_python(cls, name: str, dtype: DataType, values) -> "Column":
        """Build a column from arbitrary Python values, coercing each."""
        coerced = [dtype.python_value(v) for v in values]
        if dtype is DataType.STRING:
            arr = np.empty(len(coerced), dtype=object)
            arr[:] = coerced
            return cls(name, dtype, arr)
        return cls(name, dtype, coerced)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, idx):
        return self.values[idx]

    def __iter__(self):
        return iter(self.values)

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.dtype.value}, n={len(self)})"

    def slice(self, start: int, stop: int) -> np.ndarray:
        """A (zero-copy where possible) view of rows ``[start, stop)``."""
        return self.values[start:stop]

    def take(self, positions) -> np.ndarray:
        return self.values[np.asarray(positions)]

    def nbytes(self) -> int:
        """Uncompressed physical size in bytes.

        For string columns this is the sum of UTF-8 encoded lengths plus a
        4-byte length prefix per value (the simulated on-disk layout), not
        the Python object overhead.
        """
        if self.dtype is DataType.STRING:
            return int(sum(len(str(v).encode("utf-8")) + 4 for v in self.values))
        return int(self.values.nbytes)

    def tolist(self) -> list:
        return self.values.tolist()
