"""Pluggable storage backends: where encoded column blocks actually live.

:class:`~repro.storage.blocks.BlockStore` owns the block *layout* (row
ranges, codecs, addressing arithmetic); a :class:`StorageBackend` owns the
block *bytes* and the small catalog describing them — per-column dtype and
per-block ``(size, rows)`` metadata, per-table schema/`image_lsn` metadata
used by durable recovery, and a store-level config record
(``block_rows``/``compressed``) so a persisted store can be reopened with
the layout it was written with.

Two implementations ship:

* :class:`MemoryBackend` — a dict of blobs, byte-compatible with the
  pre-backend ``BlockStore`` (the simulated disk of the paper benchmarks).
* :class:`~repro.storage.mmap_backend.MmapFileBackend` — per-table
  segment files read through ``mmap`` with an atomically-published JSON
  catalog; ``sync()`` is a real durability point (fsync segments, then
  rename the catalog). See that module for the crash protocol.

Backends are handed out by a :class:`StorageFactory`, keyed by *scope*:
the database's main tables share scope ``""`` while every shard of a
range-sharded table gets its own scope (and therefore its own backend),
so shards can live on different media and retiring a shard deletes real
files. A custom factory may route different scopes to different backend
kinds (e.g. hot shards on memory, cold shards on mmap files).

Row-count tracking is part of the backend contract: ``column_rows`` is
derived from the per-block ``rows`` metadata recorded by every
``put_block``, never pinned at ``store_column`` time — a per-block
overwrite that changes the tail block's length changes the column's row
count with it (see ``tests/storage/test_backend_contract.py``).
"""

from __future__ import annotations

import abc
import os
import tempfile
from dataclasses import dataclass, field

from .schema import DataType


@dataclass
class ColumnMeta:
    """Catalog record of one stored column: dtype + per-block metadata."""

    dtype: DataType
    # One (stored_size, rows) pair per block, in block order.
    blocks: list[tuple[int, int]] = field(default_factory=list)

    @property
    def row_count(self) -> int:
        return sum(rows for _, rows in self.blocks)

    @property
    def stored_bytes(self) -> int:
        return sum(size for size, _ in self.blocks)

    def to_json(self) -> dict:
        return {
            "dtype": self.dtype.value,
            "blocks": [[size, rows] for size, rows in self.blocks],
        }

    @classmethod
    def from_json(cls, raw: dict) -> "ColumnMeta":
        return cls(
            dtype=DataType(raw["dtype"]),
            blocks=[(int(s), int(r)) for s, r in raw["blocks"]],
        )


class StorageBackend(abc.ABC):
    """Contract between the block layout layer and physical storage.

    Implementations must keep the catalog (column metadata, table
    metadata, store config) and the block bytes consistent with each
    other *as seen through this interface*; durable backends may defer
    publishing both to ``sync()``, which is their atomic commit point.
    """

    # -- blocks -----------------------------------------------------------

    @abc.abstractmethod
    def begin_column(self, table: str, column: str, dtype: DataType) -> None:
        """(Re)create a column: register its dtype and drop any existing
        blocks. A full-column store always starts here; per-block
        overwrites (``put_block`` on an existing index) do not."""

    @abc.abstractmethod
    def put_block(self, table: str, column: str, block: int, blob: bytes,
                  rows: int) -> None:
        """Store one encoded block and record its ``(size, rows)`` in the
        column's catalog entry. ``block`` may overwrite an existing index
        or append at ``n_blocks``."""

    @abc.abstractmethod
    def get_block(self, table: str, column: str, block: int) -> bytes:
        """Return one encoded block's bytes (the physical read path)."""

    @abc.abstractmethod
    def block_size(self, table: str, column: str, block: int) -> int:
        """Stored size of one block, as recorded by ``put_block``."""

    @abc.abstractmethod
    def delete_table(self, table: str) -> None:
        """Drop every column, block, and metadata record of ``table``.
        Durable backends reclaim the table's files (deferred until the
        next ``sync`` publishes a catalog that no longer references
        them)."""

    # -- catalog ----------------------------------------------------------

    @abc.abstractmethod
    def column_meta(self, table: str, column: str) -> ColumnMeta | None:
        """The column's catalog record, or None when it does not exist."""

    def column_dtype(self, table: str, column: str) -> DataType:
        """O(1) dtype lookup — on the physical-read path (every buffer
        miss), so implementations should override the generic
        ``column_meta``-based fallback with a direct accessor."""
        meta = self.column_meta(table, column)
        if meta is None:
            raise KeyError(f"unknown column {table}.{column}")
        return meta.dtype

    def column_rows(self, table: str, column: str) -> int:
        """Total rows, derived from per-block records; implementations
        keep it incrementally (O(1)) rather than re-summing."""
        meta = self.column_meta(table, column)
        if meta is None:
            raise KeyError(f"unknown column {table}.{column}")
        return meta.row_count

    @abc.abstractmethod
    def columns(self) -> list[tuple[str, str]]:
        """Every stored ``(table, column)`` pair."""

    @abc.abstractmethod
    def tables(self) -> list[str]:
        """Every table with stored columns or table metadata."""

    @abc.abstractmethod
    def set_table_meta(self, table: str, **meta) -> None:
        """Merge keys into the table's metadata record (``schema`` dict,
        ``image_lsn``); recovery reads these back after a reopen."""

    @abc.abstractmethod
    def get_table_meta(self, table: str) -> dict:
        """The table's metadata record (empty dict when absent)."""

    @abc.abstractmethod
    def set_store_meta(self, meta: dict) -> None:
        """Persist store-level configuration (``block_rows``,
        ``compressed``) so a reopened store adopts the written layout."""

    @abc.abstractmethod
    def get_store_meta(self) -> dict:
        """Store-level configuration (empty dict on a fresh backend)."""

    # -- durability -------------------------------------------------------

    @abc.abstractmethod
    def sync(self) -> None:
        """Durability point: after it returns, everything stored so far
        survives a process kill (no-op for volatile backends)."""

    def close(self) -> None:
        """Release file handles / maps. Does *not* sync."""


class MemoryBackend(StorageBackend):
    """Volatile dict-of-blobs backend — the paper's simulated disk.

    Byte-compatible with the pre-backend ``BlockStore``: blobs are stored
    exactly as encoded and ``sync`` is a no-op.
    """

    def __init__(self):
        self._blobs: dict[tuple[str, str, int], bytes] = {}
        self._columns: dict[tuple[str, str], ColumnMeta] = {}
        self._rows: dict[tuple[str, str], int] = {}  # incremental totals
        self._table_meta: dict[str, dict] = {}
        self._store_meta: dict = {}

    def begin_column(self, table: str, column: str, dtype: DataType) -> None:
        old = self._columns.get((table, column))
        if old is not None:
            for b in range(len(old.blocks)):
                self._blobs.pop((table, column, b), None)
        self._columns[(table, column)] = ColumnMeta(dtype=dtype)
        self._rows[(table, column)] = 0

    def put_block(self, table: str, column: str, block: int, blob: bytes,
                  rows: int) -> None:
        meta = self._columns.get((table, column))
        if meta is None:
            raise KeyError(f"column {table}.{column} not registered")
        if block > len(meta.blocks):
            raise IndexError(
                f"block {block} leaves a gap (column has "
                f"{len(meta.blocks)} blocks)"
            )
        entry = (len(blob), rows)
        if block == len(meta.blocks):
            meta.blocks.append(entry)
            self._rows[(table, column)] += rows
        else:
            self._rows[(table, column)] += rows - meta.blocks[block][1]
            meta.blocks[block] = entry
        self._blobs[(table, column, block)] = blob

    def get_block(self, table: str, column: str, block: int) -> bytes:
        return self._blobs[(table, column, block)]

    def block_size(self, table: str, column: str, block: int) -> int:
        return self._columns[(table, column)].blocks[block][0]

    def delete_table(self, table: str) -> None:
        for key in [k for k in self._blobs if k[0] == table]:
            del self._blobs[key]
        for key in [k for k in self._columns if k[0] == table]:
            del self._columns[key]
            self._rows.pop(key, None)
        self._table_meta.pop(table, None)

    def column_meta(self, table: str, column: str) -> ColumnMeta | None:
        return self._columns.get((table, column))

    def column_dtype(self, table: str, column: str) -> DataType:
        try:
            return self._columns[(table, column)].dtype
        except KeyError:
            raise KeyError(f"unknown column {table}.{column}") from None

    def column_rows(self, table: str, column: str) -> int:
        try:
            return self._rows[(table, column)]
        except KeyError:
            raise KeyError(f"unknown column {table}.{column}") from None

    def columns(self) -> list[tuple[str, str]]:
        return list(self._columns)

    def tables(self) -> list[str]:
        names = {t for t, _ in self._columns}
        names.update(self._table_meta)
        return sorted(names)

    def set_table_meta(self, table: str, **meta) -> None:
        self._table_meta.setdefault(table, {}).update(meta)

    def get_table_meta(self, table: str) -> dict:
        return dict(self._table_meta.get(table, {}))

    def set_store_meta(self, meta: dict) -> None:
        self._store_meta.update(meta)

    def get_store_meta(self) -> dict:
        return dict(self._store_meta)

    def sync(self) -> None:
        pass


# ---------------------------------------------------------------------------
# factories


MAIN_SCOPE = ""


class StorageFactory(abc.ABC):
    """Hands out one :class:`StorageBackend` per *scope*.

    Scope ``""`` (:data:`MAIN_SCOPE`) backs the database's unsharded
    tables; each shard of a range-sharded table opens its shard's
    physical name as its own scope. ``persistent`` announces whether data
    written through this factory survives process death (and therefore
    whether :class:`~repro.db.database.Database` should attempt recovery
    on open).
    """

    persistent: bool = False
    #: Whether sync() calls fsync (durable factories); informational.
    fsync: bool = False

    @abc.abstractmethod
    def open(self, scope: str) -> StorageBackend:
        """The backend for ``scope`` (created on first use, cached)."""

    @abc.abstractmethod
    def discard(self, scope: str) -> None:
        """Irrevocably drop a scope's storage (retired shards)."""

    @abc.abstractmethod
    def scopes(self) -> list[str]:
        """Scopes with existing storage (recovery's orphan sweep)."""

    def wal_path(self):
        """Where this factory wants the database's WAL (None: in-memory
        unless the caller passes an explicit path)."""
        return None

    def close(self) -> None:
        """Sync and release every open backend."""


class MemoryStorage(StorageFactory):
    """Default factory: an independent :class:`MemoryBackend` per scope."""

    persistent = False
    fsync = False

    def __init__(self):
        self._backends: dict[str, MemoryBackend] = {}

    def open(self, scope: str) -> MemoryBackend:
        backend = self._backends.get(scope)
        if backend is None:
            backend = self._backends[scope] = MemoryBackend()
        return backend

    def discard(self, scope: str) -> None:
        self._backends.pop(scope, None)

    def scopes(self) -> list[str]:
        return list(self._backends)

    def close(self) -> None:
        self._backends.clear()


def ephemeral_mmap_root() -> tempfile.TemporaryDirectory:
    """A self-cleaning temp root for mmap storage (used when the tier-1
    suite runs under ``REPRO_STORAGE_BACKEND=mmap`` without an explicit
    path). Honors ``REPRO_STORAGE_DIR`` so test runs keep their storage
    under the session tmp dir."""
    return tempfile.TemporaryDirectory(
        prefix="repro-mmap-", dir=os.environ.get("REPRO_STORAGE_DIR")
    )


def resolve_storage(storage, storage_path=None) -> StorageFactory:
    """Resolve the ``Database(storage=...)`` argument to a factory.

    Accepts a :class:`StorageFactory` instance, ``"memory"``, ``"mmap"``
    (rooted at ``storage_path``, or an ephemeral self-cleaning temp dir
    when no path is given), or ``"mmap:<path>"``. ``None`` consults the
    ``REPRO_STORAGE_BACKEND`` environment variable (default
    ``"memory"``) — this is how CI runs the whole tier-1 suite a second
    time against the mmap backend without touching any test — unless a
    ``storage_path`` was given, which implies the mmap backend: a caller
    naming an on-disk root wants durable storage, and silently building
    a volatile store instead would lose their data.
    """
    if storage is None:
        storage = "mmap" if storage_path is not None else \
            os.environ.get("REPRO_STORAGE_BACKEND") or "memory"
    elif storage == "memory" and storage_path is not None:
        raise ValueError(
            "storage='memory' cannot honor storage_path; use "
            "storage='mmap' (or drop the path)"
        )
    if isinstance(storage, StorageFactory):
        return storage
    if not isinstance(storage, str):
        raise TypeError(
            f"storage must be a StorageFactory or spec string, "
            f"got {type(storage).__name__}"
        )
    if storage == "memory":
        return MemoryStorage()
    if storage == "mmap" or storage.startswith("mmap:"):
        from .mmap_backend import MmapStorage

        path = storage[5:] if storage.startswith("mmap:") else storage_path
        if path:
            return MmapStorage(path)
        return MmapStorage.ephemeral()
    raise ValueError(f"unknown storage spec {storage!r}")
