"""Sparse index (zone map) over a stable table's sort key.

A classical sparse index: one entry per block recording the largest sort key
in that block, mapping SK range predicates to SID ranges that a scan must
visit (paper section 2.1, "Respecting Deletes"). Because PDT inserts respect
the order of ghost tuples, an index built on TABLE0 remains *valid* — merely
stale — for every later table version; the tests assert exactly this.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from .table import StableTable


@dataclass(frozen=True)
class SidRange:
    """Half-open stable-position range ``[start, stop)``."""

    start: int
    stop: int

    def __post_init__(self):
        if self.start < 0 or self.stop < self.start:
            raise ValueError(f"invalid SID range [{self.start}, {self.stop})")

    @property
    def count(self) -> int:
        return self.stop - self.start

    def intersect(self, other: "SidRange") -> "SidRange":
        return SidRange(
            max(self.start, other.start), max(min(self.stop, other.stop),
                                              max(self.start, other.start)),
        )


class SparseIndex:
    """Per-granule max-SK entries enabling SID-range pruning of scans."""

    def __init__(self, table: StableTable, granularity: int = 4096):
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        self.table_name = table.name
        self.granularity = granularity
        self.num_rows = table.num_rows
        self._max_keys: list[tuple] = []
        key_cols = [table.column(c).values for c in table.schema.sort_key]
        for start in range(0, table.num_rows, granularity):
            last = min(start + granularity, table.num_rows) - 1
            self._max_keys.append(tuple(col[last] for col in key_cols))

    @property
    def num_granules(self) -> int:
        return len(self._max_keys)

    # -- lookups -----------------------------------------------------------

    def _granule_range(self, granule: int) -> SidRange:
        start = granule * self.granularity
        return SidRange(start, min(start + self.granularity, self.num_rows))

    def sid_range_for_key_range(
        self, low: tuple | None, high: tuple | None
    ) -> SidRange:
        """SID range that may contain sort keys in ``[low, high]``.

        ``None`` bounds are unbounded. Bounds may be *prefixes* of the sort
        key (e.g. only the leading column), matching how range predicates on
        SK prefixes restrict scans.
        """
        if self.num_rows == 0:
            return SidRange(0, 0)
        if low is None:
            first = 0
        else:
            low = tuple(low)
            # First granule whose max key reaches low: earlier granules
            # cannot contain it.
            first = bisect.bisect_left(self._max_keys, low, key=lambda k: k[: len(low)])
        if high is None:
            last = self.num_granules - 1
        else:
            high = tuple(high)
            # Last granule that may contain keys <= high: the first granule
            # whose max key (prefix) sorts *above* high still qualifies (it
            # can hold smaller keys at its start, and with prefix bounds a
            # run of equal prefixes may spill across granule boundaries);
            # anything after it cannot.
            last = bisect.bisect_right(
                self._max_keys, high, key=lambda k: k[: len(high)]
            )
            last = min(last, self.num_granules - 1)
        if first > last:
            # ``low`` sorts beyond every stable key: no stable granule can
            # match, but tuples *inserted* after the table end carry
            # SID == num_rows, so the scan must still start there (a
            # trailing-insert-only range, not an empty one).
            return SidRange(self.num_rows, self.num_rows)
        start = self._granule_range(first).start
        stop = self._granule_range(last).stop
        return SidRange(start, stop)

    def sid_range_for_point(self, key: tuple) -> SidRange:
        """SID range that may contain exactly ``key`` (or its prefix)."""
        return self.sid_range_for_key_range(key, key)

    def memory_entries(self) -> int:
        return len(self._max_keys)
