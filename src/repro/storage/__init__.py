"""Columnar storage substrate: schemas, columns, blocks, buffering, indexes.

This package is the paper's "read-store": ordered, block-wise, optionally
compressed columnar tables with buffer-pool-mediated access and sparse
(zone-map) indexing. Everything the PDT layer sits on top of.
"""

from .backend import (
    ColumnMeta,
    MemoryBackend,
    MemoryStorage,
    StorageBackend,
    StorageFactory,
    resolve_storage,
)
from .blocks import BlockKey, BlockStore, DEFAULT_BLOCK_ROWS
from .btree import BPlusTree
from .buffer import BufferPool
from .column import Column
from .io_stats import IOSnapshot, IOStats
from .mmap_backend import MmapFileBackend, MmapStorage
from .schema import ColumnSpec, DataType, Schema, SchemaError
from .sparse_index import SidRange, SparseIndex
from .table import StableTable

__all__ = [
    "BlockKey",
    "BlockStore",
    "ColumnMeta",
    "MemoryBackend",
    "MemoryStorage",
    "MmapFileBackend",
    "MmapStorage",
    "StorageBackend",
    "StorageFactory",
    "resolve_storage",
    "BPlusTree",
    "BufferPool",
    "Column",
    "ColumnSpec",
    "DataType",
    "DEFAULT_BLOCK_ROWS",
    "IOSnapshot",
    "IOStats",
    "Schema",
    "SchemaError",
    "SidRange",
    "SparseIndex",
    "StableTable",
]
