"""Lightweight columnar compression codecs.

The paper's evaluation (Figure 19, plots 1-2) runs on compressed storage and
observes that sorted sort-key columns compress very well, shrinking — but not
eliminating — the extra I/O that value-based (VDT) merging pays for reading
them. To reproduce that effect the codecs here are *real*: they encode numpy
arrays to bytes and decode them back, and block I/O is accounted at the
encoded size.

Codecs
------
``plain``  raw little-endian array bytes (strings: length-prefixed UTF-8).
``rle``    run-length encoding — excellent for sorted/clustered columns.
``delta``  zigzag-encoded deltas at the minimal fixed byte width — excellent
           for monotone integer keys (e.g. ``l_orderkey``).
``dict``   dictionary encoding for strings with few distinct values.

``encode_best`` picks the smallest applicable encoding, mirroring how a
column store chooses per-block schemes.
"""

from __future__ import annotations

import struct

import numpy as np

from .schema import DataType

_HEADER = struct.Struct("<4sIQ")  # codec tag, element count, payload length


class CompressionError(ValueError):
    """Raised on malformed compressed payloads."""


def _width_for(max_abs: int) -> int:
    """Smallest of 1/2/4/8 bytes that holds ``max_abs`` unsigned."""
    if max_abs < 1 << 8:
        return 1
    if max_abs < 1 << 16:
        return 2
    if max_abs < 1 << 32:
        return 4
    return 8


_UINT_OF_WIDTH = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


def _zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed to unsigned so small magnitudes get small codes."""
    v = values.astype(np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def _unzigzag(codes: np.ndarray) -> np.ndarray:
    u = codes.astype(np.uint64)
    return ((u >> np.uint64(1)).astype(np.int64)) ^ -(u & np.uint64(1)).astype(
        np.int64
    )


# ---------------------------------------------------------------------------
# plain


def _encode_plain(arr: np.ndarray, dtype: DataType) -> bytes:
    if dtype is DataType.STRING:
        parts = []
        for v in arr:
            b = str(v).encode("utf-8")
            parts.append(struct.pack("<I", len(b)))
            parts.append(b)
        return b"".join(parts)
    return arr.astype(dtype.numpy_dtype).tobytes()


def _decode_plain(payload: bytes, count: int, dtype: DataType) -> np.ndarray:
    if dtype is DataType.STRING:
        out = np.empty(count, dtype=object)
        off = 0
        for i in range(count):
            (n,) = struct.unpack_from("<I", payload, off)
            off += 4
            out[i] = payload[off : off + n].decode("utf-8")
            off += n
        return out
    return np.frombuffer(payload, dtype=dtype.numpy_dtype, count=count).copy()


# ---------------------------------------------------------------------------
# rle


def _runs(arr: np.ndarray):
    """Run starts of ``arr`` as an index array (first index of each run)."""
    if len(arr) == 0:
        return np.empty(0, dtype=np.int64)
    if arr.dtype == object:
        change = np.empty(len(arr), dtype=bool)
        change[0] = True
        prev = arr[:-1]
        cur = arr[1:]
        change[1:] = prev != cur
    else:
        change = np.empty(len(arr), dtype=bool)
        change[0] = True
        change[1:] = arr[1:] != arr[:-1]
    return np.flatnonzero(change)


def _encode_rle(arr: np.ndarray, dtype: DataType) -> bytes:
    starts = _runs(arr)
    lengths = np.diff(np.append(starts, len(arr))).astype(np.uint32)
    run_values = arr[starts]
    header = struct.pack("<I", len(starts))
    values_blob = _encode_plain(run_values, dtype)
    return header + lengths.tobytes() + values_blob


def _decode_rle(payload: bytes, count: int, dtype: DataType) -> np.ndarray:
    (n_runs,) = struct.unpack_from("<I", payload, 0)
    off = 4
    lengths = np.frombuffer(payload, dtype=np.uint32, count=n_runs, offset=off)
    off += 4 * n_runs
    run_values = _decode_plain(payload[off:], n_runs, dtype)
    out = np.repeat(run_values, lengths.astype(np.int64))
    if len(out) != count:
        raise CompressionError("rle length mismatch")
    if dtype is DataType.STRING:
        obj = np.empty(count, dtype=object)
        obj[:] = out
        return obj
    return out.astype(dtype.numpy_dtype)


# ---------------------------------------------------------------------------
# delta (integers only)


def _encode_delta(arr: np.ndarray, dtype: DataType) -> bytes:
    v = arr.astype(np.int64)
    first = int(v[0]) if len(v) else 0
    deltas = np.diff(v)
    zz = _zigzag(deltas)
    width = _width_for(int(zz.max()) if len(zz) else 0)
    body = zz.astype(_UINT_OF_WIDTH[width]).tobytes()
    return struct.pack("<qB", first, width) + body


def _decode_delta(payload: bytes, count: int, dtype: DataType) -> np.ndarray:
    first, width = struct.unpack_from("<qB", payload, 0)
    if count == 0:
        return np.empty(0, dtype=dtype.numpy_dtype)
    codes = np.frombuffer(
        payload, dtype=_UINT_OF_WIDTH[width], count=count - 1, offset=9
    )
    deltas = _unzigzag(codes)
    out = np.empty(count, dtype=np.int64)
    out[0] = first
    if count > 1:
        np.cumsum(deltas, out=out[1:])
        out[1:] += first
    return out.astype(dtype.numpy_dtype)


# ---------------------------------------------------------------------------
# dict (strings only)


def _encode_dict(arr: np.ndarray, dtype: DataType) -> bytes:
    values = [str(v) for v in arr]
    mapping: dict[str, int] = {}
    codes = np.empty(len(values), dtype=np.uint32)
    for i, v in enumerate(values):
        code = mapping.get(v)
        if code is None:
            code = mapping[v] = len(mapping)
        codes[i] = code
    width = _width_for(max(len(mapping) - 1, 0))
    word_parts = []
    for word in mapping:
        encoded = word.encode("utf-8")
        word_parts.append(struct.pack("<I", len(encoded)))
        word_parts.append(encoded)
    dictionary = b"".join(word_parts)
    return (
        struct.pack("<IBI", len(mapping), width, len(dictionary))
        + dictionary
        + codes.astype(_UINT_OF_WIDTH[width]).tobytes()
    )


def _decode_dict(payload: bytes, count: int, dtype: DataType) -> np.ndarray:
    n_dict, width, dict_len = struct.unpack_from("<IBI", payload, 0)
    off = 9
    words = []
    end = off + dict_len
    while off < end:
        (word_len,) = struct.unpack_from("<I", payload, off)
        off += 4
        words.append(payload[off : off + word_len].decode("utf-8"))
        off += word_len
    if len(words) != n_dict:
        raise CompressionError("dictionary corrupt")
    codes = np.frombuffer(
        payload, dtype=_UINT_OF_WIDTH[width], count=count, offset=off
    )
    lookup = np.empty(n_dict, dtype=object)
    lookup[:] = words
    return lookup[codes.astype(np.int64)]


# ---------------------------------------------------------------------------
# registry

_ENCODERS = {
    b"PLN ": _encode_plain,
    b"RLE ": _encode_rle,
    b"DLT ": _encode_delta,
    b"DCT ": _encode_dict,
}
_DECODERS = {
    b"PLN ": _decode_plain,
    b"RLE ": _decode_rle,
    b"DLT ": _decode_delta,
    b"DCT ": _decode_dict,
}

PLAIN, RLE, DELTA, DICT = b"PLN ", b"RLE ", b"DLT ", b"DCT "

_INT_TYPES = (DataType.INT64, DataType.INT32, DataType.DATE, DataType.BOOL)


def candidate_codecs(dtype: DataType) -> tuple[bytes, ...]:
    """Codecs applicable to a column of ``dtype``."""
    if dtype is DataType.STRING:
        return (PLAIN, RLE, DICT)
    if dtype in _INT_TYPES:
        return (PLAIN, RLE, DELTA)
    return (PLAIN, RLE)


def encode(arr: np.ndarray, dtype: DataType, codec: bytes) -> bytes:
    """Encode ``arr`` with an explicit codec, framed with a header."""
    payload = _ENCODERS[codec](arr, dtype)
    return _HEADER.pack(codec, len(arr), len(payload)) + payload


def encode_best(arr: np.ndarray, dtype: DataType) -> bytes:
    """Encode with the smallest applicable codec (per-block scheme choice)."""
    best = None
    for codec in candidate_codecs(dtype):
        if len(arr) == 0 and codec != PLAIN:
            continue
        blob = encode(arr, dtype, codec)
        if best is None or len(blob) < len(best):
            best = blob
    return best


def decode(blob: bytes, dtype: DataType) -> np.ndarray:
    """Decode a framed payload back into a numpy array."""
    codec, count, payload_len = _HEADER.unpack_from(blob, 0)
    payload = blob[_HEADER.size : _HEADER.size + payload_len]
    if codec not in _DECODERS:
        raise CompressionError(f"unknown codec {codec!r}")
    return _DECODERS[codec](payload, count, dtype)


def codec_of(blob: bytes) -> bytes:
    """The codec tag a framed payload was encoded with."""
    codec, _, _ = _HEADER.unpack_from(blob, 0)
    return codec
