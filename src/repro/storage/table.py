"""Ordered columnar stable tables (the read-store, TABLE0).

A :class:`StableTable` is the immutable bulk-loaded / checkpointed image of
a table: columns aligned by position, tuples physically ordered by the
schema's sort key (SK). Tuple positions within it are the *stable IDs*
(SIDs) of the paper; they never change until a checkpoint rebuilds the
image.

Tables may live purely in memory (convenient for unit tests) or be attached
to a :class:`~repro.storage.blocks.BlockStore` +
:class:`~repro.storage.buffer.BufferPool`, in which case every column read
is routed through the pool and counted by the I/O accounting — including
sort-key reads, so that the positional-vs-value-based merging comparison is
honest.
"""

from __future__ import annotations

import bisect

import numpy as np

from .buffer import BufferPool
from .column import Column
from .schema import DataType, Schema, SchemaError

DEFAULT_BATCH_ROWS = 1024


class StableTable:
    """Immutable, SK-ordered columnar table image."""

    def __init__(self, name: str, schema: Schema, columns: list[Column]):
        if len(columns) != len(schema):
            raise SchemaError("column count does not match schema")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise SchemaError("columns have differing lengths")
        for spec, col in zip(schema.columns, columns):
            if spec.name != col.name or spec.dtype != col.dtype:
                raise SchemaError(
                    f"column {col.name!r} does not match spec {spec.name!r}"
                )
        self.name = name
        self.schema = schema
        self._columns = {c.name: c for c in columns}
        self.num_rows = lengths.pop() if lengths else 0
        self._pool: BufferPool | None = None
        self._sk_cache: list[tuple] | None = None
        # LSN the persisted form of *this* image was published under, or
        # None while memory-only. Stamped by whoever publishes the image
        # (bulk attach, checkpoint, recovery); read together with the
        # object it names, so remote dispatch never pairs one image's
        # layers with another image's LSN.
        self.image_lsn: int | None = None
        # Backend segment epoch of the same publish. The LSN alone is
        # ambiguous — two publishes of one table name with no commit in
        # between share it — so remote validation pairs (lsn, epoch).
        self.image_epoch: int | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def bulk_load(cls, name: str, schema: Schema, rows) -> "StableTable":
        """Build a stable image from Python tuples, sorting by the SK.

        Duplicate sort keys are rejected: the paper requires the SK to be a
        key of the table.
        """
        coerced = [schema.coerce_row(r) for r in rows]
        coerced.sort(key=schema.sk_of)
        for a, b in zip(coerced, coerced[1:]):
            if schema.sk_of(a) == schema.sk_of(b):
                raise SchemaError(f"duplicate sort key {schema.sk_of(a)!r}")
        columns = [
            Column.from_python(
                spec.name, spec.dtype, [row[i] for row in coerced]
            )
            for i, spec in enumerate(schema.columns)
        ]
        return cls(name, schema, columns)

    @classmethod
    def from_arrays(cls, name: str, schema: Schema, arrays: dict) -> "StableTable":
        """Build from pre-sorted numpy arrays (bulk path used by dbgen).

        The caller asserts SK order; it is validated cheaply for numeric
        leading key columns.
        """
        columns = [
            Column(spec.name, spec.dtype, arrays[spec.name])
            for spec in schema.columns
        ]
        table = cls(name, schema, columns)
        lead = schema.sort_key[0]
        lead_col = table.column(lead)
        if lead_col.dtype is not DataType.STRING and len(lead_col) > 1:
            diffs = np.diff(lead_col.values)
            if (diffs < 0).any():
                raise SchemaError("arrays not sorted on leading sort key")
        return table

    @classmethod
    def empty(cls, name: str, schema: Schema) -> "StableTable":
        return cls(
            name,
            schema,
            [Column.empty(spec.name, spec.dtype) for spec in schema.columns],
        )

    # -- storage binding ---------------------------------------------------

    def attach_storage(self, pool: BufferPool) -> None:
        """Write all columns to the pool's block store; reads now do 'I/O'.

        The schema rides along into the store's catalog so a durable
        backend can rebuild this table after a crash
        (:meth:`from_storage`).
        """
        for col in self._columns.values():
            pool.store.store_column(self.name, col.name, col.dtype, col.values)
        pool.store.set_table_schema(self.name, self.schema)
        self._pool = pool

    @classmethod
    def from_storage(cls, name: str, schema: Schema,
                     pool: BufferPool) -> "StableTable":
        """Rebuild a stable image from the *persisted* blocks of the
        pool's store — the kill-and-reopen recovery path. No blocks are
        re-written; reads decode exactly the bytes a checkpoint (or bulk
        load) published before the crash.
        """
        from .blocks import BlockKey

        store = pool.store
        columns = []
        for spec in schema.columns:
            parts = [
                store.read_block(BlockKey(name, spec.name, b))
                for b in range(store.column_blocks(name, spec.name))
            ]
            values = parts[0] if len(parts) == 1 else np.concatenate(parts)
            columns.append(Column(spec.name, spec.dtype, values))
        table = cls(name, schema, columns)
        table._pool = pool
        table.image_lsn = pool.store.image_lsn(name)
        table.image_epoch = pool.store.table_epoch(name)
        return table

    def detach_storage(self) -> None:
        self._pool = None

    @property
    def pool(self) -> BufferPool | None:
        return self._pool

    # -- reading -----------------------------------------------------------

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}") from None

    def read_rows(self, column: str, start: int, stop: int) -> np.ndarray:
        """Read a value range of a column, through the pool when attached."""
        stop = min(stop, self.num_rows)
        if stop <= start:
            dtype = self.schema.dtype_of(column)
            return np.empty(0, dtype=dtype.numpy_dtype)
        if self._pool is not None:
            return self._pool.read_rows(self.name, column, start, stop)
        return self.column(column).slice(start, stop)

    def scan(
        self,
        columns=None,
        start: int = 0,
        stop: int | None = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
    ):
        """Yield ``(first_sid, {column: ndarray})`` batches over ``[start, stop)``.

        When the table is attached to storage, batch boundaries are snapped
        to stored-block boundaries so every batch is a zero-copy view of a
        single decoded block (batches are then at most ``batch_rows`` long,
        never longer).
        """
        if columns is None:
            columns = self.schema.column_names
        if stop is None:
            stop = self.num_rows
        stop = min(stop, self.num_rows)
        store = self._pool.store if self._pool is not None else None
        pos = start
        while pos < stop:
            hi = min(pos + batch_rows, stop)
            if store is not None:
                hi = store.aligned_stop(pos, hi)
            yield pos, {c: self.read_rows(c, pos, hi) for c in columns}
            pos = hi

    def row(self, sid: int) -> tuple:
        """Full tuple at stable position ``sid`` (through the pool if attached)."""
        if not 0 <= sid < self.num_rows:
            raise IndexError(f"sid {sid} out of range [0, {self.num_rows})")
        return tuple(
            self.read_rows(c, sid, sid + 1)[0] for c in self.schema.column_names
        )

    def sk_at(self, sid: int) -> tuple:
        """Sort-key values of the stable tuple at ``sid``."""
        if not 0 <= sid < self.num_rows:
            raise IndexError(f"sid {sid} out of range [0, {self.num_rows})")
        return tuple(
            self.read_rows(c, sid, sid + 1)[0] for c in self.schema.sort_key
        )

    def rows(self) -> list[tuple]:
        """All rows as Python tuples (testing / small-table convenience)."""
        cols = [self.column(c).values for c in self.schema.column_names]
        return [tuple(col[i] for col in cols) for i in range(self.num_rows)]

    # -- sort-key search ---------------------------------------------------

    def _sk_list(self) -> list[tuple]:
        if self._sk_cache is None:
            keys = [self.column(c).values for c in self.schema.sort_key]
            self._sk_cache = list(zip(*keys)) if keys else []
        return self._sk_cache

    def sk_lower_bound(self, sk: tuple) -> int:
        """First SID whose sort key is >= ``sk`` (== num_rows if none).

        This is an in-memory binary search on the SK; it models the
        "SELECT rid ... WHERE SK > sk LIMIT 1" positioning query of the
        paper without charging scan I/O (a sparse-index-backed variant that
        does charge I/O lives in :mod:`repro.storage.sparse_index`).
        """
        return bisect.bisect_left(self._sk_list(), tuple(sk))

    def sk_upper_bound(self, sk: tuple) -> int:
        """First SID whose sort key is > ``sk``."""
        return bisect.bisect_right(self._sk_list(), tuple(sk))

    def stored_bytes(self, columns=None) -> int:
        """Stored size (compressed if attached to a compressed store)."""
        if columns is None:
            columns = self.schema.column_names
        if self._pool is not None:
            return sum(
                self._pool.store.column_stored_bytes(self.name, c)
                for c in columns
            )
        return sum(self.column(c).nbytes() for c in columns)

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return (
            f"StableTable({self.name!r}, rows={self.num_rows}, "
            f"sk={self.schema.sort_key})"
        )
