"""Database facade and value-to-positional update translation."""

from .database import Database
from .replicas import ReplicatedTable
from .update_processor import (
    BatchUpdater,
    DuplicateKey,
    KeyNotFound,
    PositionalUpdater,
    find_insert_position,
    find_rid_by_key,
    resolve_batch_positions,
)

__all__ = [
    "BatchUpdater",
    "Database",
    "DuplicateKey",
    "KeyNotFound",
    "PositionalUpdater",
    "ReplicatedTable",
    "find_insert_position",
    "find_rid_by_key",
    "resolve_batch_positions",
]
