"""Database facade and value-to-positional update translation."""

from .database import Database
from .replicas import ReplicatedTable
from .update_processor import (
    DuplicateKey,
    KeyNotFound,
    PositionalUpdater,
    find_insert_position,
    find_rid_by_key,
)

__all__ = [
    "Database",
    "DuplicateKey",
    "KeyNotFound",
    "PositionalUpdater",
    "ReplicatedTable",
    "find_insert_position",
    "find_rid_by_key",
]
