"""Database facade: storage + transactions + queries in one object.

This is the public entry point a downstream user starts from::

    db = Database(compressed=True, checkpoint_policy="hot-ranges:4")
    db.create_table("inventory", schema, rows)
    with db.transaction() as txn:
        txn.insert("inventory", ("Berlin", "table", "Y", 10))
    rel = db.query("inventory", columns=["store", "qty"])

Internally each table is an ordered, block-compressed stable image plus the
three-layer PDT stack of the paper; queries are block-pipelined positional
MergeScans that never read columns the query does not name, and delta
maintenance (Propagate / checkpoint) runs autonomously under the configured
checkpoint policy instead of requiring manual ``checkpoint()`` calls.

Thread-safety contract: a ``Database`` is **single-writer** — the inline
``query*``/``insert``/``apply_batch``/``transaction`` surface assumes one
caller thread at a time. Concurrent readers and writers go through
:meth:`Database.serve`, whose :class:`~repro.service.QueryService` is the
concurrency boundary (pinned lock-free reads, one serialized commit
lock); any number of services may be attached. The observability
surfaces (``metrics()``, the trace sink, ``io``) are internally locked
and safe to read from any thread at any time.

Lifecycle contract: construct → use → :meth:`close` (or use the instance
as a context manager). ``close()`` closes attached services (joining
their worker threads), shuts down shard scan executors and worker
processes, and releases storage handles; after it, queries raise. A
durable database killed *without* ``close()`` loses nothing:
:meth:`recover` (or constructing over the same ``storage_path``) rebuilds
tables from the published catalogs and replays the WAL — every
acknowledged commit is restored, byte-identically.

See ``README.md`` for the layer map this facade fronts,
``docs/operations.md`` for the operator-facing knob and metrics catalog,
and ``DESIGN.md`` for how the block-pipelined MergeScan and the
checkpoint scheduler deviate from (and extend) the paper's C
implementation.
"""

from __future__ import annotations

import contextlib

import numpy as np

from ..engine.relation import Relation
from ..engine.scan import ScanTimer, scan_pdt
from ..storage.backend import MAIN_SCOPE, resolve_storage
from ..storage.blocks import BlockStore, DEFAULT_BLOCK_ROWS
from ..storage.buffer import BufferPool
from ..storage.io_stats import IOStats
from ..storage.schema import Schema
from ..storage.table import StableTable
from ..txn.checkpoint import checkpoint_table, delta_memory_usage
from ..txn.manager import TransactionManager
from ..txn.scheduler import CheckpointScheduler, policy_from_spec
from ..txn.transaction import Transaction
from ..txn.group_commit import GroupCommitPolicy
from ..txn.wal import WriteAheadLog


class Database:
    """An updatable columnar database with PDT-based update handling.

    Constructor parameters:

    ``compressed``
        Store stable column blocks compressed (the paper's server
        configuration) or plain. Affects simulated I/O volume only.
    ``block_rows``
        Rows per stored column block; scan batches align to this so
        untouched blocks flow through MergeScan by reference.
    ``buffer_capacity``
        Buffer-pool budget in bytes (``None`` = unbounded).
    ``sparse_granularity``
        Rows per sparse-index entry on each stable image.
    ``storage``
        Where column blocks physically live: a
        :class:`~repro.storage.backend.StorageFactory`, ``"memory"``
        (default — the simulated disk), ``"mmap"`` (real per-table
        segment files under ``storage_path``, or an ephemeral temp dir
        when no path is given), or ``"mmap:<path>"``. ``None`` consults
        ``REPRO_STORAGE_BACKEND``. Opening a persistent root that
        already holds data *recovers* it: tables are rebuilt from the
        published catalogs and the WAL is replayed — see
        :meth:`recover`.
    ``storage_path``
        Root directory for ``storage="mmap"``.
    ``wal_path``
        Optional path for a persistent write-ahead log (defaults to
        ``<storage_path>/wal.jsonl`` on persistent storage).
    ``group_commit``
        Coalesced WAL fsyncs for concurrent writers (see
        :mod:`repro.txn.group_commit`). ``True`` (default) uses the
        default :class:`~repro.txn.group_commit.GroupCommitPolicy`; pass
        a policy instance to tune ``max_group`` / ``max_delay_s``, or
        ``False`` for one fsync per commit. Only meaningful on a
        file-backed WAL; each commit is still force-written (its
        acknowledgement waits for the shared fsync).
    ``wal_streams``
        Stripe commit records over this many per-shard WAL stream files
        so a group flush fsyncs them in parallel (default 1 — a single
        log file, the classic layout). Recovery merges the stripes.
    ``max_pin_age_s``
        When set, the checkpoint scheduler logs a warning (and counts
        ``overdue_pin_warnings``) whenever maintenance is deferred by a
        snapshot pin older than this — a stuck client made observable.
    ``executor``
        How fanned-out shard scans execute: ``"thread"`` (default — the
        in-process pools, one core under the GIL) or ``"process"`` —
        per-shard jobs are dispatched to :mod:`repro.exec` worker
        processes that mmap the published segment files read-only and
        stream result blocks back through shared memory. Process mode
        needs ``storage="mmap"`` (it degrades to threads otherwise) and
        falls back per-job for state that is not on disk. ``None``
        consults ``REPRO_EXECUTOR``.
    ``workers``
        Process-pool size for ``executor="process"`` (default:
        ``min(4, cpu_count)``).
    ``trace``
        Query/commit tracing. ``True`` keeps the last 4096 finished
        spans in a ring-buffer :class:`~repro.obs.TraceSink`; an ``int``
        sets the ring capacity; a ``TraceSink`` instance is used as-is;
        ``None``/``False`` (default) disables span creation entirely.
        The sink is at ``db.obs.sink``; traced queries through a
        process executor stitch worker-process scan spans into the
        caller's tree.
    ``slow_query_ms``
        When set, queries slower than this threshold are recorded in
        ``db.obs.slow_log`` (profile plus — if tracing — the rendered
        span tree) and emitted on the ``repro.obs.slow`` logger.
    ``write_pdt_limit_bytes``
        Budget used by the manual :meth:`maintain` convenience.
    ``checkpoint_policy``
        Maintenance automation. ``None`` (default) keeps the seed's
        manual behaviour; a spec string — ``"memory:<bytes>"``,
        ``"updates:<entries>"``, ``"hot-ranges:<k>"`` — or any
        :class:`~repro.txn.scheduler.CheckpointPolicy` instance enables
        the checkpoint scheduler: the policy is consulted after every
        committing transaction, and deferred work (blocked by concurrent
        transactions) is drained between queries. See
        :mod:`repro.txn.scheduler` for the policy catalogue and
        ``DESIGN.md`` for the cost model.
    """

    def __init__(
        self,
        compressed: bool = True,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        buffer_capacity: int | None = None,
        sparse_granularity: int = 4096,
        wal_path=None,
        write_pdt_limit_bytes: int = 1 << 20,
        checkpoint_policy=None,
        storage=None,
        storage_path=None,
        group_commit=True,
        wal_streams: int = 1,
        max_pin_age_s: float | None = None,
        executor: str | None = None,
        workers: int | None = None,
        trace=None,
        slow_query_ms: float | None = None,
    ):
        import os

        from ..exec.router import ExecutorRouter
        from ..obs import Observability

        self.io = IOStats()
        self.obs = Observability(trace=trace, slow_query_ms=slow_query_ms)
        self.storage = resolve_storage(storage, storage_path)
        exec_mode = executor or os.environ.get("REPRO_EXECUTOR") or "thread"
        self.exec_router = ExecutorRouter(exec_mode, workers=workers,
                                          storage=self.storage)
        self.store = BlockStore(compressed=compressed, block_rows=block_rows,
                                backend=self.storage.open(MAIN_SCOPE))
        self.buffer_capacity = buffer_capacity
        self.pool = BufferPool(self.store, self.io,
                               capacity_bytes=buffer_capacity)
        if wal_path is None:
            wal_path = self.storage.wal_path()
        if group_commit is True:
            group_policy = GroupCommitPolicy()
        elif group_commit is False or group_commit is None:
            group_policy = None
        else:
            group_policy = group_commit  # a GroupCommitPolicy instance
        self.manager = TransactionManager(
            wal=WriteAheadLog(wal_path, fsync=self.storage.fsync,
                              streams=wal_streams, group=group_policy),
            sparse_granularity=sparse_granularity,
        )
        # Shared with the manager: transactions route logical sharded
        # names through the same registry.
        self._sharded: dict = self.manager.sharded_tables
        self.write_pdt_limit_bytes = write_pdt_limit_bytes
        self.scheduler = CheckpointScheduler(
            self.manager, policy_from_spec(checkpoint_policy),
            max_pin_age_s=max_pin_age_s,
        )
        self.manager.add_commit_listener(self.scheduler.on_commit)
        self._services: list = []  # attached QueryService front-ends
        self._closed = False
        self.recovered_lsn = 0
        if self.storage.persistent:
            from ..txn.recovery import recover_persistent

            self.recovered_lsn = recover_persistent(self)
        # Attach observability last: recovery may swap the WAL's group
        # coordinator, and replayed commits should not pollute latency
        # histograms.
        self.manager.obs = self.obs
        if self.manager.wal.group is not None:
            self.manager.wal.group.obs = self.obs
        self.exec_router.tracer = self.obs.tracer
        self.exec_router.io = self.io
        self._register_metric_sources()

    # -- observability -----------------------------------------------------

    def _register_metric_sources(self) -> None:
        """Expose every stats surface through the metrics registry, so
        one ``metrics()`` snapshot is coherent across all of them."""
        reg = self.obs.registry
        reg.register_source("io", self.io.as_dict)
        reg.register_source("txn", lambda: self.manager.stats.as_dict())
        reg.register_source(
            "scheduler", lambda: self.scheduler.stats.as_dict())
        reg.register_source("exec", self.exec_router.as_dict)
        reg.register_source("group_commit", self._group_commit_source)
        reg.register_source("service", self._service_source)

    def _group_commit_source(self) -> dict:
        group = self.manager.wal.group
        return group.stats.as_dict() if group is not None else {}

    def _service_source(self) -> dict:
        """Counters summed over the attached query services."""
        out: dict = {"attached": len(self._services)}
        for service in list(self._services):
            for key, value in service.stats.as_dict().items():
                out[key] = out.get(key, 0) + value
        return out

    def metrics(self) -> dict:
        """One coherent, JSON-able snapshot of every metric this database
        maintains: the always-on latency histograms (with p50/p99), plus
        the six stats surfaces — IO, transactions, checkpoint scheduler,
        group commit, executor router, query services — read through
        their locked ``as_dict()`` views. Feed it to
        :func:`repro.obs.prometheus_text` (or
        ``scripts/export_metrics.py``) for Prometheus exposition."""
        return self.obs.registry.snapshot()

    @classmethod
    def recover(cls, storage_path, **kwargs) -> "Database":
        """Reopen a durable database from its storage root — the
        kill-and-reopen path. Every table (sharded and unsharded) is
        rebuilt from the persisted block files and catalogs, and the WAL
        is replayed image-aware; no images are re-registered by hand::

            db = Database(storage="mmap", storage_path=root)
            ...                      # commits, checkpoints — then: kill
            db = Database.recover(root)   # byte-identical query results
        """
        return cls(storage="mmap", storage_path=storage_path, **kwargs)

    def open_shard_pool(self, shard_name: str) -> BufferPool:
        """A private buffer pool over ``shard_name``'s own storage scope
        (each shard gets its own backend, so shards can live on different
        media and retiring one deletes real files)."""
        store = BlockStore(
            compressed=self.store.compressed,
            block_rows=self.store.block_rows,
            backend=self.storage.open(shard_name),
        )
        return BufferPool(store, IOStats(), capacity_bytes=self.buffer_capacity)

    # -- DDL ---------------------------------------------------------------

    def create_table(self, name: str, schema: Schema, rows=()) -> None:
        """Create and bulk-load an ordered table (sorted by its SK)."""
        self._check_free_name(name)
        stable = StableTable.bulk_load(name, schema, rows)
        self._install_table(stable)

    def create_table_from_arrays(self, name: str, schema: Schema,
                                 arrays: dict) -> None:
        """Bulk path for pre-sorted columnar data (dbgen output)."""
        self._check_free_name(name)
        stable = StableTable.from_arrays(name, schema, arrays)
        self._install_table(stable)

    def _install_table(self, stable: StableTable) -> None:
        stable.attach_storage(self.pool)
        # Publish the loaded image now: on a durable backend the table
        # survives a kill from this point on (before any commit).
        self.store.set_image_lsn(stable.name, self.manager._lsn)
        stable.image_lsn = self.manager._lsn
        stable.image_epoch = self.store.table_epoch(stable.name)
        self.store.sync()
        self.manager.register_table(stable)

    def _check_free_name(self, name: str) -> None:
        # The manager rejects physical duplicates itself; a sharded
        # *logical* name is not in its registry but would shadow the new
        # table on every Database entry point.
        if name in self._sharded:
            raise ValueError(f"table {name!r} already exists (sharded)")

    def create_sharded_table(self, name: str, schema: Schema, rows=(),
                             shards: int = 4, boundaries=None,
                             split_rows: int | None = None,
                             merge_rows: int | None = None,
                             parallel: bool = True):
        """Create a range-sharded logical table (see :mod:`repro.shard`).

        Each shard is a full physical table (own stable image, PDT stack,
        WAL stream, scheduler load, buffer pool); queries fan out one
        MergeScan pipeline per shard and updates route by sort key.
        ``split_rows``/``merge_rows`` arm the autonomous rebalancer; a
        shard whose stable+delta footprint crosses ``split_rows`` is split
        between queries, and adjacent shards whose combined footprint
        falls below ``merge_rows`` are merged. Returns the
        :class:`~repro.shard.ShardedTable`.
        """
        from ..shard.sharded import ShardedTable

        if name in self._sharded or name in self.manager.table_names():
            raise ValueError(f"table {name!r} already exists")
        sharded = ShardedTable.create(
            self, name, schema, rows, shards=shards, boundaries=boundaries,
            split_rows=split_rows, merge_rows=merge_rows, parallel=parallel,
        )
        self._sharded[name] = sharded
        return sharded

    def create_sharded_table_from_arrays(self, name: str, schema: Schema,
                                         arrays: dict, shards: int = 4,
                                         split_rows: int | None = None,
                                         merge_rows: int | None = None,
                                         parallel: bool = True):
        """Sharded twin of :meth:`create_table_from_arrays`: pre-sorted
        columnar data is sliced per shard with no per-row coercion."""
        from ..shard.sharded import ShardedTable

        if name in self._sharded or name in self.manager.table_names():
            raise ValueError(f"table {name!r} already exists")
        sharded = ShardedTable.create_from_arrays(
            self, name, schema, arrays, shards=shards,
            split_rows=split_rows, merge_rows=merge_rows, parallel=parallel,
        )
        self._sharded[name] = sharded
        return sharded

    def sharded(self, name: str):
        """The :class:`~repro.shard.ShardedTable` behind a logical name."""
        try:
            return self._sharded[name]
        except KeyError:
            raise KeyError(f"unknown sharded table {name!r}") from None

    def is_sharded(self, name: str) -> bool:
        return name in self._sharded

    def physical_for(self, table: str, sk) -> str:
        """Physical table addressed by ``sk``: the owning shard for a
        sharded table, the table itself otherwise. (Transactions route
        logical names themselves; this is for introspection.)"""
        if table in self._sharded:
            return self._sharded[table].physical_for(sk)
        return table

    def table(self, name: str) -> StableTable:
        return self.manager.state_of(name).stable

    def table_names(self) -> list[str]:
        return self.manager.table_names()

    def sharded_names(self) -> list[str]:
        return list(self._sharded)

    # -- snapshot pins and the query service ------------------------------------

    def pin_snapshot(self):
        """Pin the current commit point of the whole database: a
        per-table/per-shard LSN vector plus the captured layer stacks
        behind it (see :mod:`repro.txn.pins`). Every query made against
        the returned :class:`~repro.txn.pins.SnapshotPin` — via
        ``query(..., pin=pin)``, ``query_range(..., pin=pin)``, or a
        service cursor — sees exactly this version, across every shard,
        however many writers, checkpoint folds, or shard splits run in
        the meantime. Release pins promptly (they defer maintenance on
        the tables they cover); usable as a context manager.

        Concurrent use: take pins through ``QueryService.pin()`` (which
        holds the service's commit lock) when writers run on other
        threads; calling this directly is for single-threaded use.
        """
        return self.manager.pin_snapshot()

    def serve(self, workers: int = 4, max_inflight: int = 32,
              admission_timeout: float | None = None):
        """Start a :class:`~repro.service.QueryService` over this
        database — the concurrent front-end accepting simultaneous
        query/range/update requests with streaming cursors. Closed by
        :meth:`close` (or close the service itself)."""
        from ..service import QueryService

        return QueryService(self, workers=workers,
                            max_inflight=max_inflight,
                            admission_timeout=admission_timeout)

    def attach_service(self, service) -> None:
        self._services.append(service)

    def detach_service(self, service) -> None:
        if service in self._services:
            self._services.remove(service)

    # -- transactions ----------------------------------------------------------

    def begin(self) -> Transaction:
        return self.manager.begin()

    @contextlib.contextmanager
    def transaction(self):
        """Context manager: commit on success, abort on exception."""
        txn = self.begin()
        try:
            yield txn
        except BaseException:
            if txn.status.value == "active":
                txn.abort()
            raise
        if txn.status.value == "active":
            txn.commit()

    # -- autocommit conveniences --------------------------------------------------

    def insert(self, table: str, row) -> None:
        with self.transaction() as txn:
            txn.insert(table, row)

    def delete(self, table: str, sk) -> None:
        with self.transaction() as txn:
            txn.delete(table, sk)

    def modify(self, table: str, sk, column: str, value) -> None:
        with self.transaction() as txn:
            txn.modify(table, sk, column, value)

    def insert_many(self, table: str, rows) -> None:
        """Bulk-insert ``rows`` in one transaction via the batch path."""
        self.apply_batch(table, [("ins", row) for row in rows])

    def apply_batch(self, table: str, ops) -> int:
        """Apply a whole update batch — ``("ins", row) | ("del", sk) |
        ("mod", sk, column, value)`` — as one transaction through the
        vectorized bulk path (one WAL record, one resolution sweep).
        Sharded tables split the batch by sort key and apply one
        sub-batch per touched shard inside the same transaction (still
        one WAL record, carrying per-shard entry lists). Returns the
        number of operations applied."""
        with self.transaction() as txn:
            return txn.apply_batch(table, ops)

    # -- queries ---------------------------------------------------------------------

    def query(self, table: str, columns=None,
              timer: ScanTimer | None = None,
              batch_rows: int = 4096, sk=None, pin=None,
              where=None, aggregate=None) -> Relation:
        """Scan the latest committed state (positional merge, no locks).

        Only the named ``columns`` are read from storage. Maintenance the
        checkpoint scheduler had to defer (because transactions were
        running when its policy fired) is drained here, *between* queries,
        so PDT layers shrink back without a stop-the-world pause. Sharded
        tables additionally run the shard rebalancer here, then fan the
        scan out one MergeScan pipeline per shard.

        ``sk`` adds an equality predicate on the sort key (or an SK
        prefix): the lookup routes through the shard router to the owning
        shard and through its sparse index to the qualifying SID range,
        instead of fanning out (see :meth:`query_point`). ``pin`` scans a
        :meth:`pin_snapshot` version instead of the latest state.

        ``where`` (a :class:`~repro.engine.expr.Expr`) and ``aggregate``
        (an :class:`~repro.engine.expr.AggSpec`) push filtering and
        partial aggregation into the shard scans themselves: the router
        prunes shards whose sort-key ranges cannot satisfy the predicate,
        and only qualifying (or pre-aggregated) rows are materialized.
        Results are identical to scanning everything and filtering /
        aggregating centrally.
        """
        with self.obs.query_scope(table) as q:
            rel = self._query_impl(table, columns, timer, batch_rows, sk,
                                   pin, where, aggregate)
            if q is not None:
                q["rows"] = rel.num_rows
            return rel

    def _query_impl(self, table, columns, timer, batch_rows, sk, pin,
                    where=None, aggregate=None) -> Relation:
        if where is not None or aggregate is not None:
            # Push-down rides the planned (pinned) scan path — plan_scan
            # owns predicate pruning and partial-aggregate merging. An
            # ephemeral pin of the current commit point keeps "latest
            # state" semantics.
            if pin is not None:
                return self._query_pinned(table, pin, low=sk, high=sk,
                                          columns=columns, timer=timer,
                                          batch_rows=batch_rows,
                                          where=where, aggregate=aggregate)
            with self.pin_snapshot() as auto_pin:
                return self._query_pinned(table, auto_pin, low=sk, high=sk,
                                          columns=columns, timer=timer,
                                          batch_rows=batch_rows,
                                          where=where, aggregate=aggregate)
        if pin is not None:
            return self._query_pinned(table, pin, low=sk, high=sk,
                                      columns=columns, timer=timer,
                                      batch_rows=batch_rows)
        if sk is not None:
            return self.query_point(table, sk, columns=columns,
                                    batch_rows=batch_rows, timer=timer)
        if table in self._sharded:
            return self._query_sharded(table, columns, timer, batch_rows)
        self.scheduler.run_pending(table)
        state = self.manager.state_of(table)
        return scan_pdt(
            state.stable,
            self.manager.latest_layers(table),
            columns=columns,
            timer=timer,
            batch_rows=batch_rows,
        )

    def query_point(self, table: str, sk, columns=None,
                    batch_rows: int = 4096,
                    timer: ScanTimer | None = None) -> Relation:
        """Rows whose sort key equals ``sk`` (or extends it, for an SK
        prefix).

        The point twin of :meth:`query_range`: a sharded table routes
        through the :class:`~repro.shard.ShardRouter` to the single
        owning shard (full keys route in O(log shards); prefix keys fall
        back to the prefix-aware range pruning), then the shard's sparse
        index narrows the MergeScan to the qualifying SID range — no
        fan-out, cold shards untouched.
        """
        with self.obs.query_scope(table) as q:
            rel = self._query_point_impl(table, sk, columns, batch_rows,
                                         timer)
            if q is not None:
                q["rows"] = rel.num_rows
            return rel

    def _query_point_impl(self, table, sk, columns, batch_rows, timer
                          ) -> Relation:
        import time

        sk = tuple(sk)
        start = time.perf_counter()
        if table in self._sharded:
            sharded = self._sharded[table]
            if len(sk) < len(sharded.schema.sort_key):
                # A prefix may straddle a boundary sharing it; the range
                # path prunes prefix-aware.
                rel = self.query_range(table, low=sk, high=sk,
                                       columns=columns,
                                       batch_rows=batch_rows)
            else:
                with sharded.merge_io_after():
                    rel = self._range_scan_physical(
                        sharded.physical_for(sk), sk, sk, columns,
                        batch_rows)
        else:
            rel = self._range_scan_physical(table, sk, sk, columns,
                                            batch_rows)
        if timer is not None:
            timer.add(table, time.perf_counter() - start)
        return rel

    def _query_pinned(self, table: str, pin, low=None, high=None,
                      columns=None, timer: ScanTimer | None = None,
                      batch_rows: int = 4096, where=None,
                      aggregate=None) -> Relation:
        """Materialize a scan of a pinned version (shared by ``query`` and
        ``query_range`` with ``pin=``): planned and pruned exactly like a
        service read, executed inline. ``where``/``aggregate`` push the
        predicate and partial aggregation into the shard scans."""
        import time

        from ..service.plan import iter_plan_blocks, plan_scan

        plan = plan_scan(pin, table, low=low, high=high, columns=columns,
                         where=where, agg=aggregate)
        start = time.perf_counter()
        io_scope = (
            self._sharded[table].merge_io_after()
            if table in self._sharded else contextlib.nullcontext()
        )
        with io_scope:
            rel = Relation.from_batches(
                plan.columns,
                iter_plan_blocks(plan, block_rows=batch_rows,
                                 router=self.exec_router),
            )
        if timer is not None:
            timer.add(table, time.perf_counter() - start)
        return rel

    def _query_sharded(self, table: str, columns, timer, batch_rows
                       ) -> Relation:
        import time

        sharded = self._sharded[table]
        for shard in sharded.shard_names:
            self.scheduler.run_pending(shard)
        sharded.maybe_rebalance()
        if columns is None:
            columns = list(sharded.schema.column_names)
        else:
            columns = list(columns)
        start = time.perf_counter()
        rel = Relation.from_batches(
            columns,
            sharded.scan_blocks(columns=columns, batch_rows=batch_rows),
        )
        if timer is not None:
            timer.add(table, time.perf_counter() - start)
        return rel

    def query_range(self, table: str, low=None, high=None, columns=None,
                    batch_rows: int = 4096, pin=None, where=None,
                    aggregate=None) -> Relation:
        """Rows whose sort key (or SK prefix) lies in ``[low, high]``.

        Uses the table's *stale* sparse index — built once on the stable
        image and never maintained — to restrict the positional MergeScan
        to the qualifying SID range; ghost-respecting SID assignment keeps
        the pruning correct under any update load (paper section 2.1,
        "Respecting Deletes"). ``pin`` evaluates the range against a
        :meth:`pin_snapshot` version instead of the latest state.
        ``where``/``aggregate`` push filtering and partial aggregation
        into the shard scans (see :meth:`query`).
        """
        with self.obs.query_scope(table) as q:
            rel = self._query_range_impl(table, low, high, columns,
                                         batch_rows, pin, where, aggregate)
            if q is not None:
                q["rows"] = rel.num_rows
            return rel

    def _query_range_impl(self, table, low, high, columns, batch_rows,
                          pin, where=None, aggregate=None) -> Relation:
        if where is not None or aggregate is not None:
            if pin is not None:
                return self._query_pinned(table, pin, low=low, high=high,
                                          columns=columns,
                                          batch_rows=batch_rows,
                                          where=where, aggregate=aggregate)
            with self.pin_snapshot() as auto_pin:
                return self._query_pinned(table, auto_pin, low=low,
                                          high=high, columns=columns,
                                          batch_rows=batch_rows,
                                          where=where, aggregate=aggregate)
        if pin is not None:
            return self._query_pinned(table, pin, low=low, high=high,
                                      columns=columns,
                                      batch_rows=batch_rows)
        if table in self._sharded:
            return self._query_range_sharded(table, low, high, columns,
                                             batch_rows)
        return self._range_scan_physical(table, low, high, columns,
                                         batch_rows)

    def _range_scan_physical(self, physical: str, low, high, columns,
                             batch_rows: int) -> Relation:
        """Sparse-index-pruned MergeScan of one physical table, filtered
        to the inclusive ``[low, high]`` sort-key bounds — the shared body
        of ``query_range`` (unsharded) and ``query_point``."""
        from ..core.stack import merge_scan_layers

        state = self.manager.state_of(physical)
        schema = state.stable.schema
        if columns is None:
            columns = list(schema.column_names)
        sid_range = state.sparse_index.sid_range_for_key_range(low, high)
        scan_cols = list(dict.fromkeys(list(columns) + list(schema.sort_key)))
        rel = Relation.from_batches(
            scan_cols,
            merge_scan_layers(
                state.stable,
                self.manager.latest_layers(physical),
                columns=scan_cols,
                start=sid_range.start,
                stop=sid_range.stop,
                batch_rows=batch_rows,
            ),
        )
        return self._filter_key_range(rel, schema, low, high, columns)

    def _query_range_sharded(self, table: str, low, high, columns,
                             batch_rows: int) -> Relation:
        """Range scan over a sharded table: the router prunes to the
        shards whose key ranges intersect ``[low, high]``, and each
        surviving shard's (stale) sparse index prunes its own SID range —
        two levels of pruning before any block is read."""
        import itertools

        from ..core.stack import merge_scan_layers

        sharded = self._sharded[table]
        schema = sharded.schema
        if columns is None:
            columns = list(schema.column_names)
        scan_cols = list(dict.fromkeys(list(columns) + list(schema.sort_key)))
        streams = []
        for i in sharded.router.shards_for_range(low, high):
            shard = sharded.shard_names[i]
            state = self.manager.state_of(shard)
            sid_range = state.sparse_index.sid_range_for_key_range(low, high)
            streams.append(merge_scan_layers(
                state.stable, self.manager.latest_layers(shard),
                columns=scan_cols, start=sid_range.start,
                stop=sid_range.stop, batch_rows=batch_rows,
            ))
        with sharded.merge_io_after():
            rel = Relation.from_batches(scan_cols, itertools.chain(*streams))
        return self._filter_key_range(rel, schema, low, high, columns)

    @staticmethod
    def _filter_key_range(rel: Relation, schema, low, high,
                          columns) -> Relation:
        """Apply the inclusive (prefix-aware) ``[low, high]`` sort-key
        predicate and project to the requested columns."""
        from ..engine import functions as fn

        key_arrays = [rel[c] for c in schema.sort_key]
        mask = np.ones(rel.num_rows, dtype=bool)
        if low is not None:
            mask &= fn.lex_ge(key_arrays, low)
        if high is not None:
            mask &= fn.lex_le(key_arrays, high)
        return rel.filter(mask).select(*columns)

    def image_rows(self, table: str) -> list[tuple]:
        from ..core.stack import image_rows

        if table in self._sharded:
            return self._sharded[table].image_rows()
        state = self.manager.state_of(table)
        return image_rows(state.stable, self.manager.latest_layers(table))

    def row_count(self, table: str) -> int:
        if table in self._sharded:
            return self._sharded[table].row_count()
        state = self.manager.state_of(table)
        total = state.stable.num_rows
        for layer in self.manager.latest_layers(table):
            total += layer.total_delta()
        return total

    # -- maintenance --------------------------------------------------------------------

    def maintain(self, table: str) -> None:
        """Manually propagate the Write-PDT down when it outgrows its
        budget. With a ``checkpoint_policy`` configured this happens
        autonomously; the method remains for explicit control."""
        if table in self._sharded:
            self._sharded[table].maintain(self.write_pdt_limit_bytes)
            return
        self.manager.maybe_propagate(table, self.write_pdt_limit_bytes)

    def checkpoint(self, table: str) -> None:
        """Fold all deltas into a fresh stable image (quiescent only).

        The manual, stop-the-world form; ``checkpoint_policy=`` runs full
        or incremental checkpoints automatically instead. Sharded tables
        checkpoint shard by shard (each fold rewrites only that shard's
        stable image).
        """
        if table in self._sharded:
            self._sharded[table].checkpoint()
            return
        checkpoint_table(self.manager, table)

    def rebalance(self, table: str) -> int:
        """Run the shard rebalancer now; returns actions taken. (It also
        runs autonomously between queries on sharded tables.)"""
        return self.sharded(table).maybe_rebalance()

    def delta_bytes(self, table: str) -> int:
        """Bytes of RAM-resident delta state (PDT entries, paper model)."""
        if table in self._sharded:
            return self._sharded[table].delta_bytes()
        return delta_memory_usage(self.manager, table)

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Shut the database down cleanly: close attached query services
        (joining their workers), join every sharded table's scan
        executor, and drop retired-shard storage. Idempotent; after it,
        the interpreter exits without lingering pool threads. Usable as a
        context manager::

            with Database() as db:
                ...
        """
        if self._closed:
            return
        self._closed = True
        for service in list(self._services):
            service.close()
        for sharded in self._sharded.values():
            sharded.close()
        # Reap executor worker processes (join, then terminate stragglers)
        # before storage goes away — no orphans, and no worker left
        # mapping segment files a shutdown sweep might touch.
        self.exec_router.close()
        # Clean shutdown is a durability point: publish every backend's
        # catalog before releasing file handles.
        self.storage.close()
        self.manager.wal.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- temperature control (benchmarks) ---------------------------------------------------

    def make_cold(self) -> None:
        self.pool.clear()
        for sharded in self._sharded.values():
            for state in sharded.shard_states():
                if state.stable.pool is not None:
                    state.stable.pool.clear()

    def warm(self, table: str, columns=None) -> None:
        if table in self._sharded:
            for state in self._sharded[table].shard_states():
                if state.stable.pool is not None:
                    state.stable.pool.warm_table(state.stable.name, columns)
            return
        self.pool.warm_table(table, columns)
