"""Database facade: storage + transactions + queries in one object.

This is the public entry point a downstream user starts from::

    db = Database(compressed=True)
    db.create_table("inventory", schema, rows)
    with db.transaction() as txn:
        txn.insert("inventory", ("Berlin", "table", "Y", 10))
    rel = db.query("inventory", columns=["store", "qty"])

Internally each table is an ordered, block-compressed stable image plus the
three-layer PDT stack of the paper; queries are positional MergeScans that
never read columns the query does not name.
"""

from __future__ import annotations

import contextlib

import numpy as np

from ..engine.relation import Relation
from ..engine.scan import ScanTimer, scan_pdt
from ..storage.blocks import BlockStore, DEFAULT_BLOCK_ROWS
from ..storage.buffer import BufferPool
from ..storage.io_stats import IOStats
from ..storage.schema import Schema
from ..storage.table import StableTable
from ..txn.checkpoint import checkpoint_table, delta_memory_usage
from ..txn.manager import TransactionManager
from ..txn.transaction import Transaction
from ..txn.wal import WriteAheadLog


class Database:
    """An updatable columnar database with PDT-based update handling."""

    def __init__(
        self,
        compressed: bool = True,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        buffer_capacity: int | None = None,
        sparse_granularity: int = 4096,
        wal_path=None,
        write_pdt_limit_bytes: int = 1 << 20,
    ):
        self.io = IOStats()
        self.store = BlockStore(compressed=compressed, block_rows=block_rows)
        self.pool = BufferPool(self.store, self.io,
                               capacity_bytes=buffer_capacity)
        self.manager = TransactionManager(
            wal=WriteAheadLog(wal_path),
            sparse_granularity=sparse_granularity,
        )
        self.write_pdt_limit_bytes = write_pdt_limit_bytes

    # -- DDL ---------------------------------------------------------------

    def create_table(self, name: str, schema: Schema, rows=()) -> None:
        """Create and bulk-load an ordered table (sorted by its SK)."""
        stable = StableTable.bulk_load(name, schema, rows)
        stable.attach_storage(self.pool)
        self.manager.register_table(stable)

    def create_table_from_arrays(self, name: str, schema: Schema,
                                 arrays: dict) -> None:
        """Bulk path for pre-sorted columnar data (dbgen output)."""
        stable = StableTable.from_arrays(name, schema, arrays)
        stable.attach_storage(self.pool)
        self.manager.register_table(stable)

    def table(self, name: str) -> StableTable:
        return self.manager.state_of(name).stable

    def table_names(self) -> list[str]:
        return self.manager.table_names()

    # -- transactions ----------------------------------------------------------

    def begin(self) -> Transaction:
        return self.manager.begin()

    @contextlib.contextmanager
    def transaction(self):
        """Context manager: commit on success, abort on exception."""
        txn = self.begin()
        try:
            yield txn
        except BaseException:
            if txn.status.value == "active":
                txn.abort()
            raise
        if txn.status.value == "active":
            txn.commit()

    # -- autocommit conveniences --------------------------------------------------

    def insert(self, table: str, row) -> None:
        with self.transaction() as txn:
            txn.insert(table, row)

    def delete(self, table: str, sk) -> None:
        with self.transaction() as txn:
            txn.delete(table, sk)

    def modify(self, table: str, sk, column: str, value) -> None:
        with self.transaction() as txn:
            txn.modify(table, sk, column, value)

    def insert_many(self, table: str, rows) -> None:
        with self.transaction() as txn:
            for row in rows:
                txn.insert(table, row)

    # -- queries ---------------------------------------------------------------------

    def query(self, table: str, columns=None,
              timer: ScanTimer | None = None,
              batch_rows: int = 4096) -> Relation:
        """Scan the latest committed state (positional merge, no locks)."""
        state = self.manager.state_of(table)
        return scan_pdt(
            state.stable,
            self.manager.latest_layers(table),
            columns=columns,
            timer=timer,
            batch_rows=batch_rows,
        )

    def query_range(self, table: str, low=None, high=None, columns=None,
                    batch_rows: int = 4096) -> Relation:
        """Rows whose sort key (or SK prefix) lies in ``[low, high]``.

        Uses the table's *stale* sparse index — built once on the stable
        image and never maintained — to restrict the positional MergeScan
        to the qualifying SID range; ghost-respecting SID assignment keeps
        the pruning correct under any update load (paper section 2.1,
        "Respecting Deletes").
        """
        from ..core.stack import merge_scan_layers
        from ..engine import functions as fn

        state = self.manager.state_of(table)
        schema = state.stable.schema
        if columns is None:
            columns = list(schema.column_names)
        sid_range = state.sparse_index.sid_range_for_key_range(low, high)
        scan_cols = list(dict.fromkeys(list(columns) + list(schema.sort_key)))
        rel = Relation.from_batches(
            scan_cols,
            merge_scan_layers(
                state.stable,
                self.manager.latest_layers(table),
                columns=scan_cols,
                start=sid_range.start,
                stop=sid_range.stop,
                batch_rows=batch_rows,
            ),
        )
        key_arrays = [rel[c] for c in schema.sort_key]
        mask = np.ones(rel.num_rows, dtype=bool)
        if low is not None:
            mask &= fn.lex_ge(key_arrays, low)
        if high is not None:
            mask &= fn.lex_le(key_arrays, high)
        return rel.filter(mask).select(*columns)

    def image_rows(self, table: str) -> list[tuple]:
        from ..core.stack import image_rows

        state = self.manager.state_of(table)
        return image_rows(state.stable, self.manager.latest_layers(table))

    def row_count(self, table: str) -> int:
        state = self.manager.state_of(table)
        total = state.stable.num_rows
        for layer in self.manager.latest_layers(table):
            total += layer.total_delta()
        return total

    # -- maintenance --------------------------------------------------------------------

    def maintain(self, table: str) -> None:
        """Propagate the Write-PDT down when it outgrows its budget."""
        self.manager.maybe_propagate(table, self.write_pdt_limit_bytes)

    def checkpoint(self, table: str) -> None:
        """Fold all deltas into a fresh stable image (quiescent only)."""
        checkpoint_table(self.manager, table)

    def delta_bytes(self, table: str) -> int:
        return delta_memory_usage(self.manager, table)

    # -- temperature control (benchmarks) ---------------------------------------------------

    def make_cold(self) -> None:
        self.pool.clear()

    def warm(self, table: str, columns=None) -> None:
        self.pool.warm_table(table, columns)
