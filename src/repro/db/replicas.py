"""Ordered table replicas: one logical table, several physical sort orders.

Part of the paper's motivation (section 1): column stores keep "multiple
replicas of such tables in different orders" so that more of the query
workload can exploit range predicates — at the price of multiplying the
update problem, since a single-row update now scatters into every replica.
PDT-based differential updates make that affordable: each replica carries
its own PDT stack in its own SID domain, and a logical update fans out as
one positional update per replica.

:class:`ReplicatedTable` manages the fan-out and picks the best replica
for a given predicate column set.
"""

from __future__ import annotations

from ..core.stack import image_rows
from ..db.database import Database
from ..storage.schema import Schema


class ReplicatedTable:
    """A logical table materialized under several sort orders.

    Each replica is a full table inside ``db`` named
    ``{name}__r{i}`` with its own sort key, PDT layers, and sparse index.
    Updates are applied to all replicas inside one transaction (all-or-
    nothing); queries choose a replica whose sort key matches their
    predicate prefix.
    """

    def __init__(self, db: Database, name: str, base_schema: Schema,
                 sort_orders, rows=()):
        if not sort_orders:
            raise ValueError("need at least one sort order")
        self.db = db
        self.name = name
        self.replica_names: list[str] = []
        self.schemas: list[Schema] = []
        rows = [base_schema.coerce_row(r) for r in rows]
        for i, sort_key in enumerate(sort_orders):
            schema = Schema(base_schema.columns, tuple(sort_key))
            replica = f"{name}__r{i}"
            db.create_table(replica, schema, rows)
            self.replica_names.append(replica)
            self.schemas.append(schema)
        self.base_schema = base_schema

    @property
    def primary(self) -> str:
        return self.replica_names[0]

    # -- updates (fan out to every replica) --------------------------------

    def apply_batch(self, ops) -> int:
        """Apply a logical update batch to every replica in one
        transaction through the vectorized bulk path.

        ``ops`` address rows like the scalar methods do: ``("ins", row)``,
        ``("del", primary_sk)``, ``("mod", primary_sk, column, value)``.
        The rows behind every delete/modify key are fetched in *one*
        primary-replica scan, then each replica receives one positional
        batch in its own sort order — N per-replica batches instead of
        N × batch-size scattered updates. Modifies of a replica's
        sort-key column fan out as delete+insert pairs, as the paper
        mandates. Later operations see earlier ones' effects, exactly as
        the scalar method sequence would: a batch may insert a row and
        then modify it, or rename a row's primary key (a primary-SK
        column modify) and address it by the new key. Returns the number
        of logical operations applied.
        """
        prefetched = self._rows_by_primary_keys({
            tuple(op[1]) for op in ops if op[0] in ("del", "mod")
        })
        # Batch-local view of rows by *current* primary key: None marks a
        # key deleted (or renamed away) by an earlier op in this batch.
        state: dict[tuple, list | None] = {}
        primary_schema = self.schemas[0]

        def current_row(key) -> list:
            row = state[key] if key in state else prefetched.get(key)
            if row is None:
                raise KeyError(f"no live tuple with key {key!r}")
            return list(row)

        per_replica: list[list] = [[] for _ in self.replica_names]
        for op in ops:
            tag = op[0]
            if tag == "ins":
                row = self.base_schema.coerce_row(op[1])
                state[primary_schema.sk_of(row)] = list(row)
                for batch in per_replica:
                    batch.append(("ins", row))
            elif tag == "del":
                key = tuple(op[1])
                row = current_row(key)
                state[key] = None
                for batch, schema in zip(per_replica, self.schemas):
                    batch.append(("del", schema.sk_of(row)))
            elif tag == "mod":
                key, column, value = tuple(op[1]), op[2], op[3]
                row = current_row(key)
                new_row = list(row)
                new_row[self.base_schema.column_index(column)] = value
                if primary_schema.is_sk_column(column):
                    state[key] = None  # renamed: old key no longer live
                state[primary_schema.sk_of(new_row)] = new_row
                for batch, schema in zip(per_replica, self.schemas):
                    if schema.is_sk_column(column):
                        batch.append(("del", schema.sk_of(row)))
                        batch.append(("ins", tuple(new_row)))
                    else:
                        batch.append(("mod", schema.sk_of(row), column,
                                      value))
            else:
                raise ValueError(f"unknown batch operation {tag!r}")
        with self.db.transaction() as txn:
            for replica, batch in zip(self.replica_names, per_replica):
                txn.apply_batch(replica, batch)
        return len(ops)

    def _rows_by_primary_keys(self, keys) -> dict:
        """Full rows behind ``keys`` out of one primary-replica scan.

        Keys with no live row are simply absent from the result — they
        may be satisfied batch-locally (an earlier insert or primary-key
        rename in the same batch); truly unresolvable keys are reported
        when the batch translation reaches them.
        """
        if not keys:
            return {}
        sk_of = self.schemas[0].sk_of
        found = {}
        for row in self.db.image_rows(self.primary):
            key = sk_of(row)
            if key in keys:
                found[key] = row
                if len(found) == len(keys):
                    break
        return found

    def insert(self, row) -> None:
        row = self.base_schema.coerce_row(row)
        with self.db.transaction() as txn:
            for replica in self.replica_names:
                txn.insert(replica, row)

    def delete(self, primary_sk) -> None:
        """Delete by the *primary* replica's sort key: the full row is
        fetched there, then removed from every replica by its own key."""
        row = self._row_by_primary_key(primary_sk)
        with self.db.transaction() as txn:
            for replica, schema in zip(self.replica_names, self.schemas):
                txn.delete(replica, schema.sk_of(row))

    def modify(self, primary_sk, column: str, value) -> None:
        """Modify one attribute everywhere.

        On replicas where ``column`` belongs to the sort key, the update
        is the paper-mandated delete+insert; elsewhere it is an in-place
        positional modify.
        """
        row = list(self._row_by_primary_key(primary_sk))
        col_no = self.base_schema.column_index(column)
        new_row = list(row)
        new_row[col_no] = value
        with self.db.transaction() as txn:
            for replica, schema in zip(self.replica_names, self.schemas):
                if schema.is_sk_column(column):
                    txn.delete(replica, schema.sk_of(row))
                    txn.insert(replica, tuple(new_row))
                else:
                    txn.modify(replica, schema.sk_of(row), column, value)

    # -- queries ---------------------------------------------------------------

    def replica_for(self, predicate_columns) -> str:
        """The replica whose sort key has the longest prefix inside
        ``predicate_columns`` (ties favor earlier replicas)."""
        predicate_columns = set(predicate_columns)
        best, best_len = self.primary, -1
        for replica, schema in zip(self.replica_names, self.schemas):
            depth = 0
            for key_col in schema.sort_key:
                if key_col not in predicate_columns:
                    break
                depth += 1
            if depth > best_len:
                best, best_len = replica, depth
        return best

    def query_range(self, predicate_column: str, low, high, columns=None):
        """Range query routed to the best-sorted replica."""
        replica = self.replica_for([predicate_column])
        schema = self.schemas[self.replica_names.index(replica)]
        if schema.sort_key[0] == predicate_column:
            low_key = None if low is None else (low,)
            high_key = None if high is None else (high,)
            return self.db.query_range(replica, low=low_key, high=high_key,
                                       columns=columns)
        # No replica sorted on the predicate: full scan + filter.
        rel = self.db.query(replica, columns=None)
        arr = rel[predicate_column]
        mask = arr == arr  # all-true
        if low is not None:
            mask &= arr >= low
        if high is not None:
            mask &= arr <= high
        out = rel.filter(mask)
        if columns is not None:
            out = out.select(*columns)
        return out

    def image_rows(self, replica: str | None = None) -> list[tuple]:
        return self.db.image_rows(replica or self.primary)

    # -- consistency ----------------------------------------------------------

    def check_replicas_consistent(self) -> None:
        """All replicas must hold the same row *set* (orders differ)."""
        reference = None
        for replica in self.replica_names:
            rows = sorted(self.db.image_rows(replica))
            if reference is None:
                reference = rows
            elif rows != reference:
                raise AssertionError(
                    f"replica {replica!r} diverged from {self.primary!r}"
                )

    def _row_by_primary_key(self, primary_sk) -> tuple:
        primary_sk = tuple(primary_sk)
        schema = self.schemas[0]
        rel = self.db.query_range(self.primary, low=primary_sk,
                                  high=primary_sk)
        if rel.num_rows == 0:
            raise KeyError(f"no live tuple with key {primary_sk!r}")
        return tuple(rel.rows()[0])
