"""Translate value-addressed (SQL-style) updates into positional ones.

Deletion and modification requests identify tuples by value; inserts must
find their SK-ordered position. The paper (section 3.2) resolves both with
a query: a MergeScan restricted by the sparse index produces the RIDs, and
Algorithm 6 (``sk_rid_to_sid``) then pins inserts relative to ghost tuples.
This module implements that machinery over a stack of PDT layers.

Two application paths share it:

* :class:`PositionalUpdater` — one MergeScan per update. Fine for trickle
  traffic; the differential-testing oracle for everything else.
* :class:`BatchUpdater` — the vectorized bulk path. A whole batch is
  sorted by sort key, every target RID is resolved in *one* index-guided
  sweep of the merged key columns (``np.searchsorted`` per block), and
  the updates are ingested into the top PDT — in one
  ``bulk_append_entries`` run when the top layer starts empty, through
  the scalar primitives (with positions precomputed) otherwise.
"""

from __future__ import annotations

import bisect

import numpy as np

from ..core.stack import merge_scan_layers
from ..core.types import KIND_DEL, KIND_INS
from ..storage.sparse_index import SparseIndex


class KeyNotFound(KeyError):
    """No live tuple carries the requested sort key."""


class DuplicateKey(ValueError):
    """An insert would duplicate the sort key of a live tuple."""


def _scan_keys_from(stable, layers, sparse_index, sk):
    """Yield ``(rid, key_tuple)`` of the merged image starting near ``sk``.

    Uses the (possibly stale) sparse index to skip granules that cannot
    contain ``sk``; thanks to ghost-respecting SIDs the index stays valid
    under any update load.
    """
    sk = tuple(sk)
    if sparse_index is not None:
        start = sparse_index.sid_range_for_key_range(sk, None).start
    else:
        start = 0
    key_cols = list(stable.schema.sort_key)
    for first_rid, arrays in merge_scan_layers(
        stable, layers, columns=key_cols, start=start, batch_rows=512
    ):
        columns = [arrays[c] for c in key_cols]
        for i in range(len(columns[0])):
            yield first_rid + i, tuple(col[i] for col in columns)


def find_insert_position(stable, layers, sparse_index, sk) -> int:
    """RID of the first live tuple with sort key > ``sk`` (the insert-before
    position); equals the image row count when ``sk`` sorts last.

    Raises :class:`DuplicateKey` if a live tuple already carries ``sk``.
    """
    sk = tuple(sk)
    rid = None
    for rid, key in _scan_keys_from(stable, layers, sparse_index, sk):
        if key == sk:
            raise DuplicateKey(f"live tuple with key {sk!r} already exists")
        if key > sk:
            return rid
    if rid is None:
        # Started past every key (or empty table): position = image size.
        return _image_size(stable, layers)
    return rid + 1


def find_rid_by_key(stable, layers, sparse_index, sk) -> int:
    """RID of the live tuple whose sort key equals ``sk``."""
    sk = tuple(sk)
    for rid, key in _scan_keys_from(stable, layers, sparse_index, sk):
        if key == sk:
            return rid
        if key > sk:
            break
    raise KeyNotFound(f"no live tuple with key {sk!r}")


def _image_size(stable, layers) -> int:
    size = stable.num_rows
    for layer in layers:
        size += layer.total_delta()
    return size


class PositionalUpdater:
    """Applies value-addressed updates to the *top* PDT layer of a stack.

    ``layers`` is the full bottom-up stack used for reads (e.g.
    ``[read, write_snapshot, trans]``); updates land in ``layers[-1]``.
    """

    def __init__(self, stable, layers, sparse_index: SparseIndex | None):
        if not layers:
            raise ValueError("need at least one PDT layer to update")
        self.stable = stable
        self.layers = list(layers)
        self.sparse_index = sparse_index
        self.schema = stable.schema

    @property
    def top(self):
        return self.layers[-1]

    def insert(self, row) -> int:
        """Insert a full tuple; returns the RID it received."""
        row = self.schema.coerce_row(row)
        sk = self.schema.sk_of(row)
        rid = find_insert_position(
            self.stable, self.layers, self.sparse_index, sk
        )
        sid = self.top.sk_rid_to_sid(sk, rid)
        self.top.add_insert(sid, rid, list(row))
        return rid

    def delete_by_key(self, sk) -> int:
        """Delete the live tuple with key ``sk``; returns its former RID."""
        sk = tuple(sk)
        rid = find_rid_by_key(self.stable, self.layers, self.sparse_index, sk)
        self.top.add_delete(rid, sk)
        return rid

    def modify_by_key(self, sk, column: str, value) -> int:
        """Set ``column`` of the live tuple with key ``sk``.

        Sort-key columns cannot be modified in place; per the paper such
        updates are a delete followed by an insert, which the caller must
        issue explicitly (it has to supply the full new tuple anyway).
        """
        if self.schema.is_sk_column(column):
            raise ValueError(
                f"column {column!r} is part of the sort key; delete and "
                f"re-insert instead"
            )
        sk = tuple(sk)
        rid = find_rid_by_key(self.stable, self.layers, self.sparse_index, sk)
        self.top.add_modify(rid, self.schema.column_index(column), value)
        return rid

    def delete_at(self, rid: int, sk) -> None:
        """Positional delete when the caller already knows (rid, sk) — the
        path a query-produced RID list takes."""
        self.top.add_delete(rid, tuple(sk))

    def modify_at(self, rid: int, column: str, value) -> None:
        if self.schema.is_sk_column(column):
            raise ValueError(f"column {column!r} is part of the sort key")
        self.top.add_modify(rid, self.schema.column_index(column), value)

    def image_size(self) -> int:
        return _image_size(self.stable, self.layers)


def resolve_batch_positions(stable, layers, sparse_index, keys):
    """Resolve ``keys`` (sorted, distinct SK tuples) against the merged
    image in one forward sweep.

    Returns a parallel list of ``(found, pos)``: ``pos`` is the RID of the
    live tuple carrying the key when ``found``, else the RID of the first
    live tuple with a greater key (the insert-before position; the image
    size when the key sorts last). The sparse index prunes the sweep's
    start for the smallest key; within each merged block keys are located
    with ``searchsorted``/``bisect`` instead of a per-row walk.
    """
    if not keys:
        return []
    key_cols = list(stable.schema.sort_key)
    if sparse_index is not None:
        start = sparse_index.sid_range_for_key_range(keys[0], None).start
    else:
        start = 0
    single = len(key_cols) == 1
    resolved: list[tuple[bool, int]] = []
    ki = 0
    for first_rid, arrays in merge_scan_layers(
        stable, layers, columns=key_cols, start=start, batch_rows=4096
    ):
        if ki >= len(keys):
            break
        columns = [arrays[c] for c in key_cols]
        n = len(columns[0])
        if n == 0:
            continue
        if single:
            col = columns[0]
            last_key = (col[n - 1],)
            block_keys = None
        else:
            block_keys = list(zip(*columns))
            last_key = block_keys[-1]
        while ki < len(keys) and keys[ki] <= last_key:
            key = keys[ki]
            if single:
                idx = int(np.searchsorted(col, key[0], side="left"))
                hit = idx < n and bool(col[idx] == key[0])
            else:
                idx = bisect.bisect_left(block_keys, key)
                hit = idx < n and tuple(block_keys[idx]) == key
            resolved.append((hit, first_rid + idx))
            ki += 1
    size = _image_size(stable, layers)
    while ki < len(keys):
        resolved.append((False, size))
        ki += 1
    return resolved


class BatchUpdater:
    """Vectorized bulk application of value-addressed updates.

    Applies a whole batch of ``("ins", row) | ("del", sk) |
    ("mod", sk, column, value)`` operations to the *top* PDT layer of a
    stack, producing exactly the PDT state the scalar
    :class:`PositionalUpdater` would have produced applying the batch
    in order (the property suite asserts so). Unlike the scalar path the
    batch is validated up front: on :class:`KeyNotFound` /
    :class:`DuplicateKey` / sort-key-modify errors *nothing* is applied.

    The amortization: the batch is sorted by sort key, so all target
    positions come out of one index-guided sweep of the merged key
    columns (:func:`resolve_batch_positions`) instead of one restarted
    MergeScan per operation, and RID shifts caused by the batch's own
    inserts and deletes are replayed with a running delta instead of
    being re-discovered by later scans.
    """

    def __init__(self, stable, layers, sparse_index: SparseIndex | None):
        if not layers:
            raise ValueError("need at least one PDT layer to update")
        self.stable = stable
        self.layers = list(layers)
        self.sparse_index = sparse_index
        self.schema = stable.schema

    @property
    def top(self):
        return self.layers[-1]

    def apply(self, ops) -> int:
        """Apply the batch; returns the number of operations applied."""
        return self.commit_staged(self.prepare(ops))

    def prepare(self, ops):
        """Normalize, resolve, and validate the batch *without* touching
        the PDT; returns the staged state :meth:`commit_staged` ingests.

        Splitting application in two lets callers that fan one logical
        batch out over several independent targets (shards) validate
        every sub-batch before mutating any — keeping the whole fan-out
        all-or-nothing.
        """
        normalized = self._normalize(ops)
        if not normalized:
            return None
        # Stable sort by key: same-key operations keep batch order.
        normalized.sort(key=lambda item: item[0])
        runs = [
            [normalized[0]],
        ]
        for item in normalized[1:]:
            if item[0] == runs[-1][0][0]:
                runs[-1].append(item)
            else:
                runs.append([item])
        keys = [run[0][0] for run in runs]
        resolved = resolve_batch_positions(
            self.stable, self.layers, self.sparse_index, keys
        )
        self._validate(runs, resolved)
        return runs, resolved, len(normalized)

    def commit_staged(self, staged) -> int:
        """Ingest a batch staged by :meth:`prepare` into the top PDT."""
        if staged is None:
            return 0
        runs, resolved, n_ops = staged
        simple = all(len(run) == 1 for run in runs)
        if simple and self.top.is_empty():
            self._apply_bulk(runs, resolved)
        else:
            self._apply_scalar(runs, resolved)
        return n_ops

    # -- batch preparation -------------------------------------------------

    def _normalize(self, ops) -> list:
        """Coerce to ``(key, op_tag, payload)`` items; payload is the
        coerced row (ins), None (del), or ``(col_no, value)`` (mod)."""
        out = []
        for op in ops:
            tag = op[0]
            if tag == "ins":
                row = self.schema.coerce_row(op[1])
                out.append((self.schema.sk_of(row), "ins", list(row)))
            elif tag == "del":
                out.append((tuple(op[1]), "del", None))
            elif tag == "mod":
                column = op[2]
                if self.schema.is_sk_column(column):
                    raise ValueError(
                        f"column {column!r} is part of the sort key; "
                        f"delete and re-insert instead"
                    )
                out.append((
                    tuple(op[1]), "mod",
                    (self.schema.column_index(column), op[3]),
                ))
            else:
                raise ValueError(f"unknown batch operation {tag!r}")
        return out

    @staticmethod
    def _validate(runs, resolved) -> None:
        """Replay each same-key run's liveness transitions; raises before
        anything has been applied (batches are all-or-nothing)."""
        for run, (found, _) in zip(runs, resolved):
            live = found
            for key, tag, _ in run:
                if tag == "ins":
                    if live:
                        raise DuplicateKey(
                            f"live tuple with key {key!r} already exists"
                        )
                    live = True
                else:
                    if not live:
                        raise KeyNotFound(
                            f"no live tuple with key {key!r}"
                        )
                    if tag == "del":
                        live = False

    # -- application paths -------------------------------------------------

    def _apply_bulk(self, runs, resolved) -> None:
        """Empty-top fast path: emit the whole batch as one SID-ordered
        entry run.

        With no pre-existing entries in the top layer, an operation's SID
        is exactly its pre-batch resolved position (the batch's own ghost
        tuples at a boundary all carry smaller keys, so Algorithm 6's
        skip equals the running-delta arithmetic), so the run can be
        built without touching the tree until one bulk append at the end.
        """
        entries = []
        for run, (found, pos) in zip(runs, resolved):
            key, tag, payload = run[0]
            if tag == "ins":
                entries.append((pos, KIND_INS, payload))
            elif tag == "del":
                entries.append((pos, KIND_DEL, key))
            else:
                entries.append((pos, payload[0], payload[1]))
        self.top.bulk_append_entries(entries)

    def _apply_scalar(self, runs, resolved) -> None:
        """General path: scalar PDT primitives with precomputed positions.

        Still one resolution sweep for the whole batch; the running
        ``delta`` maps pre-batch positions to current RIDs (every earlier
        operation targets a smaller-or-equal position, so its shift
        applies wholesale)."""
        top = self.top
        delta = 0
        for run, (found, pos) in zip(runs, resolved):
            live = found
            live_rid = pos + delta if found else None
            insert_pos = pos + delta + (1 if found else 0)
            for key, tag, payload in run:
                if tag == "ins":
                    sid = top.sk_rid_to_sid(key, insert_pos)
                    top.add_insert(sid, insert_pos, payload)
                    live, live_rid = True, insert_pos
                    insert_pos += 1
                    delta += 1
                elif tag == "del":
                    top.add_delete(live_rid, key)
                    live = False
                    insert_pos = live_rid
                    delta -= 1
                else:
                    top.add_modify(live_rid, payload[0], payload[1])

    def image_size(self) -> int:
        return _image_size(self.stable, self.layers)
