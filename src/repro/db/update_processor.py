"""Translate value-addressed (SQL-style) updates into positional ones.

Deletion and modification requests identify tuples by value; inserts must
find their SK-ordered position. The paper (section 3.2) resolves both with
a query: a MergeScan restricted by the sparse index produces the RIDs, and
Algorithm 6 (``sk_rid_to_sid``) then pins inserts relative to ghost tuples.
This module implements that machinery over a stack of PDT layers.
"""

from __future__ import annotations

from ..core.stack import merge_scan_layers
from ..storage.sparse_index import SparseIndex


class KeyNotFound(KeyError):
    """No live tuple carries the requested sort key."""


class DuplicateKey(ValueError):
    """An insert would duplicate the sort key of a live tuple."""


def _scan_keys_from(stable, layers, sparse_index, sk):
    """Yield ``(rid, key_tuple)`` of the merged image starting near ``sk``.

    Uses the (possibly stale) sparse index to skip granules that cannot
    contain ``sk``; thanks to ghost-respecting SIDs the index stays valid
    under any update load.
    """
    sk = tuple(sk)
    if sparse_index is not None:
        start = sparse_index.sid_range_for_key_range(sk, None).start
    else:
        start = 0
    key_cols = list(stable.schema.sort_key)
    for first_rid, arrays in merge_scan_layers(
        stable, layers, columns=key_cols, start=start, batch_rows=512
    ):
        columns = [arrays[c] for c in key_cols]
        for i in range(len(columns[0])):
            yield first_rid + i, tuple(col[i] for col in columns)


def find_insert_position(stable, layers, sparse_index, sk) -> int:
    """RID of the first live tuple with sort key > ``sk`` (the insert-before
    position); equals the image row count when ``sk`` sorts last.

    Raises :class:`DuplicateKey` if a live tuple already carries ``sk``.
    """
    sk = tuple(sk)
    rid = None
    for rid, key in _scan_keys_from(stable, layers, sparse_index, sk):
        if key == sk:
            raise DuplicateKey(f"live tuple with key {sk!r} already exists")
        if key > sk:
            return rid
    if rid is None:
        # Started past every key (or empty table): position = image size.
        return _image_size(stable, layers)
    return rid + 1


def find_rid_by_key(stable, layers, sparse_index, sk) -> int:
    """RID of the live tuple whose sort key equals ``sk``."""
    sk = tuple(sk)
    for rid, key in _scan_keys_from(stable, layers, sparse_index, sk):
        if key == sk:
            return rid
        if key > sk:
            break
    raise KeyNotFound(f"no live tuple with key {sk!r}")


def _image_size(stable, layers) -> int:
    size = stable.num_rows
    for layer in layers:
        size += layer.total_delta()
    return size


class PositionalUpdater:
    """Applies value-addressed updates to the *top* PDT layer of a stack.

    ``layers`` is the full bottom-up stack used for reads (e.g.
    ``[read, write_snapshot, trans]``); updates land in ``layers[-1]``.
    """

    def __init__(self, stable, layers, sparse_index: SparseIndex | None):
        if not layers:
            raise ValueError("need at least one PDT layer to update")
        self.stable = stable
        self.layers = list(layers)
        self.sparse_index = sparse_index
        self.schema = stable.schema

    @property
    def top(self):
        return self.layers[-1]

    def insert(self, row) -> int:
        """Insert a full tuple; returns the RID it received."""
        row = self.schema.coerce_row(row)
        sk = self.schema.sk_of(row)
        rid = find_insert_position(
            self.stable, self.layers, self.sparse_index, sk
        )
        sid = self.top.sk_rid_to_sid(sk, rid)
        self.top.add_insert(sid, rid, list(row))
        return rid

    def delete_by_key(self, sk) -> int:
        """Delete the live tuple with key ``sk``; returns its former RID."""
        sk = tuple(sk)
        rid = find_rid_by_key(self.stable, self.layers, self.sparse_index, sk)
        self.top.add_delete(rid, sk)
        return rid

    def modify_by_key(self, sk, column: str, value) -> int:
        """Set ``column`` of the live tuple with key ``sk``.

        Sort-key columns cannot be modified in place; per the paper such
        updates are a delete followed by an insert, which the caller must
        issue explicitly (it has to supply the full new tuple anyway).
        """
        if self.schema.is_sk_column(column):
            raise ValueError(
                f"column {column!r} is part of the sort key; delete and "
                f"re-insert instead"
            )
        sk = tuple(sk)
        rid = find_rid_by_key(self.stable, self.layers, self.sparse_index, sk)
        self.top.add_modify(rid, self.schema.column_index(column), value)
        return rid

    def delete_at(self, rid: int, sk) -> None:
        """Positional delete when the caller already knows (rid, sk) — the
        path a query-produced RID list takes."""
        self.top.add_delete(rid, tuple(sk))

    def modify_at(self, rid: int, column: str, value) -> None:
        if self.schema.is_sk_column(column):
            raise ValueError(f"column {column!r} is part of the sort key")
        self.top.add_modify(rid, self.schema.column_index(column), value)

    def image_size(self) -> int:
        return _image_size(self.stable, self.layers)
