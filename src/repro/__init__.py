"""repro — Positional Delta Trees for column stores.

A complete, from-scratch reproduction of "Positional Update Handling in
Column Stores" (Héman, Zukowski, Nes, Sidirourgos, Boncz — SIGMOD 2010):
the PDT data structure, positional MergeScan, the Propagate and Serialize
transaction algorithms, three-layer snapshot-isolation transaction
management, the value-based (VDT) baseline, and the columnar storage,
query-engine, and TPC-H substrates needed to reproduce the paper's
evaluation.

Quickstart::

    from repro import Database, DataType, Schema

    schema = Schema.build(
        ("store", DataType.STRING), ("prod", DataType.STRING),
        ("qty", DataType.INT64), sort_key=("store", "prod"))
    db = Database()
    db.create_table("inventory", schema,
                    [("London", "chair", 30), ("Paris", "rug", 1)])
    db.insert("inventory", ("Berlin", "table", 10))
    print(db.query("inventory", columns=["store", "qty"]).rows())
"""

from .core import (
    FlatPDT,
    PDT,
    ShadowTable,
    TransactionConflict,
    merge_rows,
    merge_scan,
    merge_scan_layers,
    propagate,
    propagate_batch,
    serialize,
)
from .db import BatchUpdater, Database
from .engine import Relation, ScanTimer, scan_clean, scan_pdt, scan_vdt
from .service import QueryService, StreamingCursor
from .shard import ShardedTable, ShardRouter
from .storage import (
    BlockStore,
    BufferPool,
    DataType,
    IOStats,
    MemoryBackend,
    MemoryStorage,
    MmapFileBackend,
    MmapStorage,
    Schema,
    SparseIndex,
    StableTable,
    StorageBackend,
    StorageFactory,
)
from .txn import (
    SnapshotPin,
    Transaction,
    TransactionManager,
    WriteAheadLog,
)
from .vdt import VDT, vdt_merge_scan

__version__ = "1.0.0"

__all__ = [
    "BatchUpdater",
    "BlockStore",
    "BufferPool",
    "Database",
    "DataType",
    "FlatPDT",
    "IOStats",
    "MemoryBackend",
    "MemoryStorage",
    "MmapFileBackend",
    "MmapStorage",
    "PDT",
    "QueryService",
    "Relation",
    "ScanTimer",
    "Schema",
    "ShadowTable",
    "ShardRouter",
    "ShardedTable",
    "SnapshotPin",
    "SparseIndex",
    "StableTable",
    "StorageBackend",
    "StorageFactory",
    "StreamingCursor",
    "Transaction",
    "TransactionConflict",
    "TransactionManager",
    "VDT",
    "WriteAheadLog",
    "__version__",
    "merge_rows",
    "merge_scan",
    "merge_scan_layers",
    "propagate",
    "propagate_batch",
    "scan_clean",
    "scan_pdt",
    "scan_vdt",
    "serialize",
    "vdt_merge_scan",
]
