"""Microbenchmark workload generator (paper section 4, Figures 16-18).

Builds SK-ordered tables with a configurable number of key columns (1-4),
key type (int or string), and data columns, and generates *scattered*
update workloads (insert/delete/modify mixes at a given rate per 100
tuples) applied identically to a PDT and a VDT. This is the controlled
environment for the MergeScan comparisons.

Keys are generated with gaps (even values) so inserts (odd values) land
uniformly across the table, which is what makes ordered-table updates the
worst case the paper targets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..core.pdt import PDT
from ..db.update_processor import BatchUpdater, PositionalUpdater
from ..storage.schema import DataType, Schema
from ..storage.sparse_index import SparseIndex
from ..storage.table import StableTable
from ..vdt.vdt import VDT

_KEY_SPLIT_BASE = 1000  # per-column radix for multi-column keys


def _key_parts(value: int, n_cols: int) -> tuple[int, ...]:
    """Split an ordered scalar into ``n_cols`` lexicographic components."""
    parts = []
    for _ in range(n_cols - 1):
        parts.append(value % _KEY_SPLIT_BASE)
        value //= _KEY_SPLIT_BASE
    parts.append(value)
    return tuple(reversed(parts))


def _key_tuple(value: int, n_cols: int, key_type: str) -> tuple:
    parts = _key_parts(value, n_cols)
    if key_type == "str":
        return tuple(f"key-{p:012d}" for p in parts)
    return parts


@dataclass
class MicroWorkload:
    """A generated table plus a scattered update stream."""

    table: StableTable
    sparse_index: SparseIndex
    ops: list[tuple] = field(default_factory=list)
    key_columns: tuple[str, ...] = ()
    data_columns: tuple[str, ...] = ()


def micro_schema(n_key_cols: int, key_type: str, n_data_cols: int) -> Schema:
    if key_type not in ("int", "str"):
        raise ValueError("key_type must be 'int' or 'str'")
    if not 1 <= n_key_cols <= 4:
        raise ValueError("n_key_cols must be in 1..4")
    kt = DataType.INT64 if key_type == "int" else DataType.STRING
    cols = [(f"k{i}", kt) for i in range(n_key_cols)]
    cols += [(f"v{i}", DataType.INT64) for i in range(n_data_cols)]
    return Schema.build(*cols, sort_key=tuple(f"k{i}" for i in
                                              range(n_key_cols)))


def build_table(
    n_rows: int,
    n_key_cols: int = 1,
    key_type: str = "int",
    n_data_cols: int = 4,
    name: str = "micro",
    seed: int = 0,
) -> StableTable:
    """SK-ordered table with even keys 0, 2, 4, ... and random payloads."""
    schema = micro_schema(n_key_cols, key_type, n_data_cols)
    rng = np.random.RandomState(seed)
    arrays: dict[str, np.ndarray] = {}
    key_values = np.arange(n_rows, dtype=np.int64) * 2
    parts = [
        np.asarray([_key_parts(int(v), n_key_cols)[c] for v in key_values],
                   dtype=np.int64)
        for c in range(n_key_cols)
    ]
    for c in range(n_key_cols):
        if key_type == "str":
            col = np.empty(n_rows, dtype=object)
            col[:] = [f"key-{p:012d}" for p in parts[c]]
            arrays[f"k{c}"] = col
        else:
            arrays[f"k{c}"] = parts[c]
    for d in range(n_data_cols):
        arrays[f"v{d}"] = rng.randint(0, 1_000_000, size=n_rows).astype(
            np.int64
        )
    return StableTable.from_arrays(name, schema, arrays)


def generate_ops(
    table: StableTable,
    updates_per_100: float,
    seed: int = 1,
    mix: tuple[float, float, float] = (0.4, 0.3, 0.3),
) -> list[tuple]:
    """A scattered stream of ``("ins", row) | ("del", sk) | ("mod", sk,
    col, value)`` ops at the given rate.

    Each op targets a distinct key (inserts use odd key values; deletes and
    modifies hit distinct stable tuples), which keeps VDT application
    simple without changing the merge-cost profile the benchmarks measure.
    """
    schema = table.schema
    n_key_cols = len(schema.sort_key)
    key_type = "str" if schema.dtype_of(schema.sort_key[0]) is \
        DataType.STRING else "int"
    data_cols = [c for c in schema.column_names if c not in schema.sort_key]
    n_rows = table.num_rows
    n_ops = int(round(n_rows * updates_per_100 / 100.0))
    rng = random.Random(seed)
    p_ins, p_del, p_mod = mix
    ops: list[tuple] = []
    used_stable: set[int] = set()
    used_odd: set[int] = set()
    data_arrays = {c: table.column(c).values for c in data_cols}

    def fresh_stable_row() -> int | None:
        for _ in range(64):
            i = rng.randrange(n_rows)
            if i not in used_stable:
                used_stable.add(i)
                return i
        return None

    while len(ops) < n_ops:
        roll = rng.random()
        if roll < p_ins or n_rows == 0:
            value = rng.randrange(max(n_rows, 1)) * 2 + 1
            if value in used_odd:
                continue
            used_odd.add(value)
            key = _key_tuple(value, n_key_cols, key_type)
            row = key + tuple(
                rng.randrange(1_000_000) for _ in data_cols
            )
            ops.append(("ins", row))
        elif roll < p_ins + p_del:
            i = fresh_stable_row()
            if i is None:
                continue
            ops.append(("del", tuple(
                table.column(c).values[i] for c in schema.sort_key
            )))
        else:
            i = fresh_stable_row()
            if i is None:
                continue
            sk = tuple(table.column(c).values[i] for c in schema.sort_key)
            col = data_cols[rng.randrange(len(data_cols))]
            current = tuple(
                table.column(c).values[i] for c in schema.column_names
            )
            ops.append(
                ("mod", sk, col, rng.randrange(1_000_000), current)
            )
    return ops


def canonical_ops(ops) -> list[tuple]:
    """Strip the VDT-only trailing fields off a generated op stream,
    yielding the ``("ins", row) | ("del", sk) | ("mod", sk, col, value)``
    form the batch update path consumes."""
    return [op if op[0] != "mod" else op[:4] for op in ops]


def apply_ops_pdt(table: StableTable, ops, sparse_index=None,
                  fanout: int = 32, bulk: bool = False) -> PDT:
    """Apply a generated op stream through the positional machinery.

    ``bulk=True`` routes the whole stream through
    :class:`~repro.db.update_processor.BatchUpdater` in one batch; the
    default per-op scalar path is the differential-testing oracle (and
    what the maintenance-cost benchmarks deliberately measure).
    """
    pdt = PDT(table.schema, fanout=fanout)
    if bulk:
        BatchUpdater(table, [pdt], sparse_index).apply(canonical_ops(ops))
        return pdt
    updater = PositionalUpdater(table, [pdt], sparse_index)
    for op in ops:
        if op[0] == "ins":
            updater.insert(op[1])
        elif op[0] == "del":
            updater.delete_by_key(op[1])
        else:
            updater.modify_by_key(op[1], op[2], op[3])
    return pdt


def apply_ops_vdt(table: StableTable, ops) -> VDT:
    """Apply the same op stream to the value-based baseline."""
    vdt = VDT(table.schema)
    for op in ops:
        if op[0] == "ins":
            vdt.add_insert(op[1])
        elif op[0] == "del":
            vdt.add_delete(op[1])
        else:
            vdt.add_modify(op[4], table.schema.column_index(op[2]), op[3])
    return vdt


def build_workload(
    n_rows: int,
    updates_per_100: float,
    n_key_cols: int = 1,
    key_type: str = "int",
    n_data_cols: int = 4,
    seed: int = 0,
    granularity: int = 4096,
) -> MicroWorkload:
    """Table + sparse index + op stream in one call."""
    table = build_table(
        n_rows, n_key_cols=n_key_cols, key_type=key_type,
        n_data_cols=n_data_cols, seed=seed,
    )
    index = SparseIndex(table, granularity=granularity)
    ops = generate_ops(table, updates_per_100, seed=seed + 1)
    schema = table.schema
    return MicroWorkload(
        table=table,
        sparse_index=index,
        ops=ops,
        key_columns=tuple(schema.sort_key),
        data_columns=tuple(
            c for c in schema.column_names if c not in schema.sort_key
        ),
    )
