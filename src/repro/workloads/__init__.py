"""Microbenchmark workload generation for the paper's Figures 16-18."""

from .generator import (
    MicroWorkload,
    apply_ops_pdt,
    apply_ops_vdt,
    canonical_ops,
    build_table,
    build_workload,
    generate_ops,
    micro_schema,
)

__all__ = [
    "MicroWorkload",
    "apply_ops_pdt",
    "apply_ops_vdt",
    "build_table",
    "build_workload",
    "canonical_ops",
    "generate_ops",
    "micro_schema",
]
