"""Cost-based checkpoint scheduling: autonomous PDT maintenance.

The paper keeps differential structures cheap by assuming *something*
periodically folds them back into stable storage; the seed left that
"something" as a manual ``Database.checkpoint()`` call. This module makes
it a subsystem: a :class:`CheckpointPolicy` inspects a table's measured
update load after every commit (and between queries) and decides whether
to do nothing, Propagate the Write-PDT down, rewrite the whole stable
image, or — SynchroStore-style — incrementally fold only the *hottest
block ranges* so maintenance interleaves with the workload instead of
stalling it.

Policies are pure decision functions over a :class:`TableLoad` snapshot,
so they are unit-testable without a database; the
:class:`CheckpointScheduler` owns execution: it consults the policy,
runs decisions at quiescent points, and defers them while transactions
are running (deferred work is retried on later commits and by
``Database.query`` between queries).

Select a policy with ``Database(checkpoint_policy=...)``; specs:

===================  ====================================================
``None``             never maintain automatically (seed behaviour)
``"memory:<N>"``     full checkpoint when delta RAM exceeds ``N`` bytes
``"updates:<N>"``    full checkpoint when total PDT entries exceed ``N``
``"hot-ranges:<K>"`` fold the K hottest block ranges once any block
                     accumulates ``HotRangePolicy.min_entries`` entries
===================  ====================================================

or any :class:`CheckpointPolicy` instance (e.g. a :class:`CompositePolicy`
combining several triggers).
"""

from __future__ import annotations

import enum
import logging
from dataclasses import dataclass, field, fields

from .checkpoint import checkpoint_table, checkpoint_table_range
from .manager import TransactionManager


class MaintenanceAction(enum.Enum):
    """What a policy asks the scheduler to do for one table."""

    NONE = "none"
    PROPAGATE = "propagate"           # Write-PDT -> Read-PDT migration
    CHECKPOINT = "checkpoint"         # full stable-image rewrite
    CHECKPOINT_RANGES = "checkpoint-ranges"  # incremental hot-range fold


@dataclass(frozen=True)
class Decision:
    """A policy's verdict, with the triggering condition for diagnostics."""

    action: MaintenanceAction
    ranges: tuple[tuple[int, int], ...] = ()
    reason: str = ""

    @property
    def is_none(self) -> bool:
        return self.action is MaintenanceAction.NONE


DO_NOTHING = Decision(MaintenanceAction.NONE)


@dataclass(frozen=True)
class TableLoad:
    """Measured update load of one table, the input to every policy.

    ``block_histogram`` is either a dict mapping a stable block index to
    the number of PDT entries addressing SIDs inside that block, or a
    zero-arg callable producing that dict. Policies read it through
    :meth:`histogram`, which resolves and caches the callable form — so
    the O(PDT-entries) bucketing is only ever paid by policies that
    actually look at per-block heat (Read-PDT SIDs bucket exactly;
    Write-PDT SIDs are positions in the Read-PDT's output domain, close
    enough for a heat heuristic — see DESIGN.md).
    """

    table: str
    stable_rows: int
    block_rows: int
    read_entries: int
    write_entries: int
    delta_bytes: int
    commits_since_maintenance: int
    block_histogram: object = field(default_factory=dict, hash=False)

    @property
    def total_entries(self) -> int:
        return self.read_entries + self.write_entries

    def histogram(self) -> dict[int, int]:
        """Per-block entry counts, computing (once) if provided lazily."""
        hist = self.block_histogram
        if callable(hist):
            hist = hist()
            object.__setattr__(self, "block_histogram", hist)
        return hist


class CheckpointPolicy:
    """Base class: maps a :class:`TableLoad` to a :class:`Decision`."""

    name = "abstract"

    def decide(self, load: TableLoad) -> Decision:
        raise NotImplementedError


class NeverPolicy(CheckpointPolicy):
    """No automatic maintenance (the explicit-checkpoint-only mode)."""

    name = "never"

    def decide(self, load: TableLoad) -> Decision:
        return DO_NOTHING


class MemoryThresholdPolicy(CheckpointPolicy):
    """Full checkpoint when delta RAM exceeds ``limit_bytes``.

    Below the checkpoint threshold, the Write-PDT is still propagated down
    once it exceeds ``write_limit_bytes`` (the paper keeps it smaller than
    the CPU cache), so commit-path structures stay small between
    checkpoints.
    """

    name = "memory"

    def __init__(self, limit_bytes: int, write_limit_bytes: int = 1 << 20):
        if limit_bytes <= 0:
            raise ValueError("limit_bytes must be positive")
        self.limit_bytes = limit_bytes
        self.write_limit_bytes = write_limit_bytes

    def decide(self, load: TableLoad) -> Decision:
        if load.delta_bytes > self.limit_bytes:
            return Decision(
                MaintenanceAction.CHECKPOINT,
                reason=f"delta {load.delta_bytes}B > {self.limit_bytes}B",
            )
        if load.write_entries * 16 > self.write_limit_bytes:
            return Decision(
                MaintenanceAction.PROPAGATE,
                reason=f"write-PDT > {self.write_limit_bytes}B",
            )
        return DO_NOTHING


class UpdateCountPolicy(CheckpointPolicy):
    """Full checkpoint when total PDT entries exceed ``max_entries``;
    Propagate when the Write-PDT alone exceeds ``max_write_entries``."""

    name = "updates"

    def __init__(self, max_entries: int, max_write_entries: int | None = None):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.max_write_entries = (
            max_write_entries if max_write_entries is not None
            else max(max_entries // 4, 1)
        )

    def decide(self, load: TableLoad) -> Decision:
        if load.total_entries > self.max_entries:
            return Decision(
                MaintenanceAction.CHECKPOINT,
                reason=f"{load.total_entries} entries > {self.max_entries}",
            )
        if load.write_entries > self.max_write_entries:
            return Decision(
                MaintenanceAction.PROPAGATE,
                reason=f"write-PDT {load.write_entries} entries "
                       f"> {self.max_write_entries}",
            )
        return DO_NOTHING


class HotRangePolicy(CheckpointPolicy):
    """Incremental maintenance: fold the K hottest block ranges.

    SynchroStore's observation is that update skew makes a full rewrite
    wasteful — most blocks are clean. Once any block accumulates
    ``min_entries`` PDT entries, this policy selects the ``k`` blocks with
    the most entries, coalesces adjacent ones, and asks for an incremental
    :func:`~repro.txn.checkpoint.checkpoint_table_range` of just those
    SID ranges. Everything else — including the buffer-pool residency of
    clean blocks — is left alone.
    """

    name = "hot-ranges"

    def __init__(self, k: int = 4, min_entries: int = 128):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.min_entries = min_entries

    def decide(self, load: TableLoad) -> Decision:
        if not load.total_entries:
            return DO_NOTHING
        hist = load.histogram()
        if not hist:
            return DO_NOTHING
        hottest = sorted(hist.items(), key=lambda kv: (-kv[1], kv[0]))
        if hottest[0][1] < self.min_entries:
            return DO_NOTHING
        chosen = sorted(
            block for block, count in hottest[: self.k]
            if count >= self.min_entries
        )
        ranges: list[tuple[int, int]] = []
        br = load.block_rows
        for block in chosen:
            lo, hi = block * br, (block + 1) * br
            if ranges and ranges[-1][1] == lo:  # coalesce adjacent blocks
                ranges[-1] = (ranges[-1][0], hi)
            else:
                ranges.append((lo, hi))
        return Decision(
            MaintenanceAction.CHECKPOINT_RANGES,
            ranges=tuple(ranges),
            reason=f"{len(chosen)} hot block(s), "
                   f"hottest has {hottest[0][1]} entries",
        )


class CompositePolicy(CheckpointPolicy):
    """First non-NONE decision of an ordered list of policies wins."""

    name = "composite"

    def __init__(self, *policies: CheckpointPolicy):
        if not policies:
            raise ValueError("composite policy needs at least one member")
        self.policies = policies

    def decide(self, load: TableLoad) -> Decision:
        for policy in self.policies:
            decision = policy.decide(load)
            if not decision.is_none:
                return decision
        return DO_NOTHING


def policy_from_spec(spec) -> CheckpointPolicy:
    """Resolve ``Database(checkpoint_policy=...)`` values to a policy.

    Accepts ``None``, a :class:`CheckpointPolicy` instance, or a
    ``"name:arg"`` string (see the module docstring for the table).
    """
    if spec is None:
        return NeverPolicy()
    if isinstance(spec, CheckpointPolicy):
        return spec
    if not isinstance(spec, str):
        raise ValueError(f"bad checkpoint policy spec: {spec!r}")
    name, _, arg = spec.partition(":")
    if name == "never":
        return NeverPolicy()
    if name == "memory":
        return MemoryThresholdPolicy(int(arg))
    if name == "updates":
        return UpdateCountPolicy(int(arg))
    if name == "hot-ranges":
        return HotRangePolicy(k=int(arg) if arg else 4)
    raise ValueError(f"unknown checkpoint policy {name!r}")


@dataclass
class SchedulerStats:
    consults: int = 0
    propagations: int = 0
    checkpoints: int = 0
    range_checkpoints: int = 0
    entries_folded: int = 0
    deferrals: int = 0
    # Pin-driven deferral visibility: a stuck client holding a pin stalls
    # maintenance silently otherwise (see ``max_pin_age_s``).
    pin_deferrals: int = 0
    overdue_pin_warnings: int = 0
    oldest_pin_age_s: float = 0.0  # oldest pin age seen at a deferral

    def as_dict(self) -> dict:
        """JSON-able view; the surface ``Database.metrics()`` reads.
        Prefer this over poking the counter fields directly."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class CheckpointScheduler:
    """Executes checkpoint-policy decisions at quiescent points.

    ``on_commit`` is registered as a commit listener on the
    :class:`~repro.txn.manager.TransactionManager`, so every successful
    commit re-evaluates the policy for the tables it touched. Decisions
    that cannot run because transactions are still active are remembered
    and retried — by later commits and by ``run_pending`` (which
    ``Database.query`` calls between queries, giving the SynchroStore-like
    interleaving of maintenance with the workload).
    """

    def __init__(self, manager: TransactionManager, policy: CheckpointPolicy,
                 max_pin_age_s: float | None = None):
        self.manager = manager
        self.policy = policy
        self.max_pin_age_s = max_pin_age_s
        self.stats = SchedulerStats()
        self._commits_since: dict[str, int] = {}
        self._pending: dict[str, Decision] = {}

    # -- entry points ------------------------------------------------------

    def on_commit(self, tables) -> None:
        """Commit listener: re-evaluate the policy for touched tables."""
        for table in tables:
            self._commits_since[table] = \
                self._commits_since.get(table, 0) + 1
        for table in tables:
            self._consult(table)
        # A commit is also an opportunity to drain work deferred earlier.
        for table in [t for t in self._pending if t not in tables]:
            self._try_execute(table, self._pending[table])

    def run_pending(self, table: str | None = None) -> bool:
        """Retry deferred maintenance (between queries). Returns True when
        something ran."""
        ran = False
        targets = [table] if table is not None else list(self._pending)
        for name in targets:
            decision = self._pending.get(name)
            if decision is not None and self._try_execute(name, decision):
                ran = True
        return ran

    def pending(self) -> dict[str, Decision]:
        """Deferred decisions by table (diagnostics)."""
        return dict(self._pending)

    def forget(self, table: str) -> None:
        """Drop any deferred work for a table that no longer exists (a
        rebalance retired the shard; its deltas moved with the split)."""
        self._pending.pop(table, None)
        self._commits_since.pop(table, None)

    # -- measurement -------------------------------------------------------

    def load_of(self, table: str) -> TableLoad:
        """Snapshot a table's update load for the policy.

        The per-block histogram is handed over as a lazy callable: counts
        and byte sizes are cheap to read every commit, but bucketing every
        entry is O(PDT size) and only heat-aware policies need it.
        """
        state = self.manager.state_of(table)
        block_rows = (
            state.stable.pool.store.block_rows
            if state.stable.pool is not None
            else 4096
        )

        def histogram() -> dict[int, int]:
            hist: dict[int, int] = {}
            for pdt in (state.read_pdt, state.write_pdt):
                sids, _, _ = pdt.entry_lists()
                for sid in sids:
                    block = sid // block_rows
                    hist[block] = hist.get(block, 0) + 1
            return hist

        return TableLoad(
            table=table,
            stable_rows=state.stable.num_rows,
            block_rows=block_rows,
            read_entries=state.read_pdt.count(),
            write_entries=state.write_pdt.count(),
            delta_bytes=state.read_pdt.memory_usage()
            + state.write_pdt.memory_usage(),
            commits_since_maintenance=self._commits_since.get(table, 0),
            block_histogram=histogram,  # resolved lazily via .histogram()
        )

    # -- internals ---------------------------------------------------------

    def _consult(self, table: str) -> None:
        self.stats.consults += 1
        decision = self.policy.decide(self.load_of(table))
        if decision.is_none:
            return
        self._try_execute(table, decision)

    def _try_execute(self, table: str, decision: Decision) -> bool:
        if self.manager.running_count() or self.manager.is_pinned(table):
            # Running transactions hold snapshots; snapshot pins hold the
            # current stable image and Read-PDT. Either way a fold now
            # would rewrite state a live reader depends on — defer until
            # the next quiescent, pin-free point.
            self.stats.deferrals += 1
            if self.manager.is_pinned(table):
                self.stats.pin_deferrals += 1
                age = self.manager.oldest_pin_age(table)
                self.stats.oldest_pin_age_s = max(
                    self.stats.oldest_pin_age_s, age)
                if self.max_pin_age_s is not None \
                        and age > self.max_pin_age_s:
                    self.stats.overdue_pin_warnings += 1
                    logging.getLogger(__name__).warning(
                        "maintenance on %r deferred by a pin held for "
                        "%.1fs (max_pin_age_s=%.1fs); a stuck client may "
                        "be stalling checkpoints",
                        table, age, self.max_pin_age_s,
                    )
            self._pending[table] = decision
            return False
        self._pending.pop(table, None)
        action = decision.action
        if action is MaintenanceAction.PROPAGATE:
            self.manager.propagate_write_to_read(table)
            self.stats.propagations += 1
        elif action is MaintenanceAction.CHECKPOINT:
            checkpoint_table(self.manager, table)
            self.stats.checkpoints += 1
        elif action is MaintenanceAction.CHECKPOINT_RANGES:
            # Fold high ranges first so lower ranges' SIDs stay valid.
            for lo, hi in sorted(decision.ranges, reverse=True):
                self.stats.entries_folded += checkpoint_table_range(
                    self.manager, table, lo, hi
                )
                self.stats.range_checkpoints += 1
        self._commits_since[table] = 0
        return True
