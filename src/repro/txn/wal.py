"""Write-ahead log for PDT-based transactions.

The paper (footnote 2) notes that column stores, like row stores, write
commit information to a WAL — sequential I/O that does not limit
throughput. Our WAL records, per commit, the *serialized* Trans-PDT entry
list of every touched table: each record is consecutive to the previous
database state, so replaying records in LSN order through Propagate
reconstructs the master Write-PDT exactly (see :func:`replay_into`).

Records are *batched*: one record per commit regardless of how many
updates the transaction (or a ``apply_batch`` bulk commit) carried, with
the entry lists exported in bulk (``entry_lists``) and replayed in bulk
(``bulk_append_entries`` + ``propagate_batch``) — the WAL leg of the
vectorized update path. A record is also the unit of recovery atomicity:
replay applies whole records only, so a crash between records (exercised
by ``replay_into(..., max_records=N)``) always recovers a transaction
all-or-nothing.
"""

from __future__ import annotations

import contextlib
import json
import os
from dataclasses import dataclass, field

import numpy as np

from ..core.types import KIND_DEL, KIND_INS


def _to_native(value):
    """JSON fallback for numpy scalars living inside update payloads."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


@dataclass
class WalRecord:
    """One logged event: a commit (per-table entry lists), a delta
    snapshot re-logged by an incremental checkpoint, or a metadata record
    such as a shard layout."""

    lsn: int
    tables: dict = field(default_factory=dict)
    # tables: name -> list of (sid, kind, payload) with JSON-safe payloads
    kind: str = "commit"
    meta: dict | None = None  # payload of non-commit records


class WriteAheadLog:
    """Append-only commit log, in memory with optional file persistence.

    File durability: appends are flushed and (by default) fsynced per
    record — "force-written at commit" — and every whole-file rewrite
    (truncate, rebase, layout update) goes through a temp file and an
    atomic ``os.replace``, so a kill mid-rewrite leaves the previous
    complete log, never a torn one.
    """

    def __init__(self, path=None, fsync: bool = True):
        self.path = path
        self.fsync = fsync
        self.records: list[WalRecord] = []
        self._defer_rewrites = False

    @contextlib.contextmanager
    def atomic(self):
        """Defer file rewrites until the block exits, then write once.

        Multi-step log surgery (a shard rebalance drops retired shards'
        history, re-logs survivor snapshots, and logs the new layout)
        must not leave the on-disk log between steps — e.g. with the old
        layout still naming shards whose deltas were just dropped. Under
        ``atomic()`` the in-memory record list mutates stepwise but the
        file sees only the final, mutually consistent state.
        """
        self._defer_rewrites = True
        try:
            yield
        finally:
            self._defer_rewrites = False
            self._rewrite_file()

    def append_commit(self, lsn: int, table_pdts: dict) -> None:
        """Log a commit: ``table_pdts`` maps table name -> serialized PDT."""
        tables = {
            name: self._serialize_pdt(pdt)
            for name, pdt in table_pdts.items()
        }
        self._append_record(WalRecord(lsn=lsn, tables=tables))

    def append_snapshot(self, table: str, snapshot_pdt, lsn: int,
                        for_image_lsn: int) -> None:
        """Append a delta-snapshot record *before* a new stable image is
        published (the pre-publish leg of an incremental checkpoint).

        The record is tagged with the LSN of the image it is consecutive
        to: replay applies it only when the persisted catalog says that
        exact image was published (``image_lsn == for_image_lsn``), so a
        crash on either side of the publish recovers consistently —
        before it, the still-logged commit history applies and the
        snapshot is ignored; after it, the history is skipped (folded
        into the image) and the snapshot provides the surviving deltas.
        """
        self._append_record(WalRecord(
            lsn=lsn,
            kind="snapshot",
            tables={table: self._serialize_pdt(snapshot_pdt)},
            meta={"table": table, "for_image_lsn": int(for_image_lsn)},
        ))

    def _append_record(self, record: WalRecord) -> None:
        self.records.append(record)
        if self.path is not None and not self._defer_rewrites:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(
                    json.dumps(self._to_json(record), default=_to_native)
                    + "\n"
                )
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())

    def truncate(self) -> None:
        """Discard logged commit records (after a checkpoint made them
        redundant). Shard-layout metadata survives: boundaries are catalog
        state a recovery needs even when no deltas are outstanding."""
        self.records = [r for r in self.records if r.kind == "shard-layout"]
        self._rewrite_file()

    # -- shard-layout metadata -------------------------------------------

    def append_shard_layout(self, table: str, boundaries, shard_names,
                            lsn: int = 0, config: dict | None = None
                            ) -> None:
        """Log the current layout of a range-sharded table.

        Only the *latest* layout per logical table is kept: a layout is
        *catalog* state describing the shard tables that exist on disk
        right now, exactly like the stable images themselves. Earlier
        layouts name shard tables whose stable images and WAL records a
        rebalance already replaced, so nothing could ever be replayed
        against them (the same reason ``max_records`` crash boundaries
        are only meaningful within the history since the last
        checkpoint/rebalance rebase).
        """
        self.records = [
            r for r in self.records
            if not (r.kind == "shard-layout" and r.meta["table"] == table)
        ]
        self.records.append(WalRecord(
            lsn=lsn,
            kind="shard-layout",
            meta={
                "table": table,
                "boundaries": [list(b) for b in boundaries],
                "shards": list(shard_names),
                "config": dict(config or {}),
            },
        ))
        self._rewrite_file()

    def shard_layouts(self) -> dict:
        """Latest logged layout per sharded table: ``name ->
        {"boundaries": [...], "shards": [...], "config": {...}}``."""
        out: dict = {}
        for record in self.records:
            if record.kind == "shard-layout":
                out[record.meta["table"]] = {
                    "boundaries": [tuple(b) for b in
                                   record.meta["boundaries"]],
                    "shards": list(record.meta["shards"]),
                    "config": dict(record.meta.get("config", {})),
                }
        return out

    def rebase_table(self, table: str, snapshot_pdt=None,
                     lsn: int = 0, for_image_lsn: int | None = None) -> None:
        """Drop one table's logged history after its stable image was
        rebuilt, keeping recovery exact.

        A checkpoint folds logged deltas into the stable image; replaying
        them again on recovery would double-apply them against renumbered
        SIDs. Full checkpoints pass ``snapshot_pdt=None`` (every delta
        folded); incremental range checkpoints pass the *surviving*
        Read-PDT, which is re-logged as one snapshot record consecutive to
        the new stable image — so recovery replays exactly the still-live
        deltas and nothing that was folded. Other tables' records are
        untouched (their per-commit shares are kept).

        With durable storage this is pure garbage collection: the
        published catalog's ``image_lsn`` already makes replay skip the
        folded history (and any pre-publish :meth:`append_snapshot`
        record whose tag no longer matches), so a crash before this
        rewrite lands recovers identically.
        """
        rebased = []
        for record in self.records:
            if record.kind == "snapshot" and record.meta["table"] == table:
                continue  # superseded by the fresh snapshot (if any)
            if record.kind == "commit" and table in record.tables:
                remaining = {
                    name: entries
                    for name, entries in record.tables.items()
                    if name != table
                }
                if not remaining:
                    continue
                record = WalRecord(lsn=record.lsn, tables=remaining)
            rebased.append(record)
        self.records = rebased
        if snapshot_pdt is not None and not snapshot_pdt.is_empty():
            self.records.append(
                WalRecord(
                    lsn=lsn,
                    kind="snapshot",
                    tables={table: self._serialize_pdt(snapshot_pdt)},
                    meta={
                        "table": table,
                        "for_image_lsn": int(
                            lsn if for_image_lsn is None else for_image_lsn
                        ),
                    },
                )
            )
        self._rewrite_file()

    @staticmethod
    def _serialize_pdt(pdt) -> list:
        """JSON-safe ``(sid, kind, payload)`` entry list of one PDT,
        exported with the bulk leaf-drain interface (no per-entry
        ``Entry`` construction on the commit path)."""
        sids, kinds, refs = pdt.entry_lists()
        values = pdt.values
        entries = []
        for sid, kind, ref in zip(sids, kinds, refs):
            if kind == KIND_INS:
                payload = list(values.get_insert(ref))
            elif kind == KIND_DEL:
                payload = list(values.get_delete(ref))
            else:
                payload = values.get_modify(kind, ref)
            entries.append((sid, kind, payload))
        return entries

    def _rewrite_file(self) -> None:
        if self.path is None or self._defer_rewrites:
            return
        tmp = str(self.path) + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in self.records:
                fh.write(
                    json.dumps(self._to_json(record), default=_to_native)
                    + "\n"
                )
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, self.path)  # a kill leaves old or new, never torn

    def __len__(self) -> int:
        return len(self.records)

    @staticmethod
    def _to_json(record: WalRecord) -> dict:
        raw = {"lsn": record.lsn, "tables": record.tables}
        if record.kind != "commit":
            raw["kind"] = record.kind
            raw["meta"] = record.meta
        return raw

    @classmethod
    def load(cls, path) -> "WriteAheadLog":
        """Read a persisted log back from disk.

        A torn trailing line (the record a kill interrupted mid-append)
        is discarded *and truncated off the file*: appends are the unit
        of commit durability, so a partial record is a commit that never
        happened — and leaving its bytes in place would corrupt the next
        append (which would land on the same line, losing that commit at
        the following recovery).
        """
        wal = cls(path=None)
        valid_bytes = 0
        torn = False
        missing_newline = False
        with open(path, "rb") as fh:
            for line in fh:
                if not line.strip():
                    valid_bytes += len(line)
                    continue
                try:
                    raw = json.loads(line.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    torn = True
                    break
                valid_bytes += len(line)
                # A complete record whose trailing newline the kill cut
                # off parses fine but would merge with the next append.
                missing_newline = not line.endswith(b"\n")
                tables = {
                    name: [tuple(e) for e in entries]
                    for name, entries in raw["tables"].items()
                }
                wal.records.append(WalRecord(
                    lsn=raw["lsn"], tables=tables,
                    kind=raw.get("kind", "commit"), meta=raw.get("meta"),
                ))
        if torn:
            with open(path, "r+b") as fh:
                fh.truncate(valid_bytes)
                fh.flush()
                os.fsync(fh.fileno())
        elif missing_newline:
            with open(path, "ab") as fh:
                fh.write(b"\n")
                fh.flush()
                os.fsync(fh.fileno())
        wal.path = path
        return wal


def replay_into(wal: WriteAheadLog, pdts: dict,
                max_records: int | None = None,
                image_lsns: dict | None = None) -> int:
    """Re-apply logged commits to fresh master Write-PDTs.

    ``pdts`` maps table name -> empty PDT (one per table). Records are
    consecutive, so each entry list can be bulk-loaded directly (its SIDs
    are already in the RID domain of the state produced by the previous
    records) and folded in with the sorted-run Propagate. Returns the
    last LSN replayed.

    ``max_records`` stops replay after that many records — the state a
    crash at that record boundary would recover to. Records are the unit
    of atomicity: a prefix of whole records is always a transaction-
    consistent image.

    ``image_lsns`` (table -> LSN of the *persisted* stable image, from a
    durable backend's catalog) makes replay image-aware: a table's commit
    entries at or below its image LSN are skipped — the published image
    already folded them in — and a ``snapshot`` record applies only when
    its ``for_image_lsn`` tag matches the persisted image. This is what
    closes the crash window between a checkpoint's catalog publish and
    its WAL rebase. Without ``image_lsns`` (in-memory recovery from
    re-registered images) every record applies, as before.
    """
    from ..core.propagate import propagate_batch

    def _apply(name, entries):
        if name not in pdts:
            raise KeyError(f"WAL references unknown table {name!r}")
        target = pdts[name]
        staging = target.__class__(target.schema)
        staging.bulk_append_entries(
            (sid, kind, tuple(payload) if kind == KIND_DEL else payload)
            for sid, kind, payload in entries
        )
        propagate_batch(target, staging)

    last_lsn = 0
    records = wal.records if max_records is None else \
        wal.records[:max_records]
    for record in records:
        if record.kind == "commit":
            for name, entries in record.tables.items():
                if image_lsns is not None and \
                        record.lsn <= image_lsns.get(name, 0):
                    continue  # folded into the published image
                _apply(name, entries)
        elif record.kind == "snapshot":
            name = record.meta["table"]
            if image_lsns is None or \
                    image_lsns.get(name, 0) == record.meta["for_image_lsn"]:
                _apply(name, record.tables[name])
            # else: tagged for an image that was never published — ignore
        else:
            continue
        last_lsn = record.lsn
    return last_lsn
