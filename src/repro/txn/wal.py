"""Write-ahead log for PDT-based transactions.

The paper (footnote 2) notes that column stores, like row stores, write
commit information to a WAL — sequential I/O that does not limit
throughput. Our WAL records, per commit, the *serialized* Trans-PDT entry
list of every touched table: each record is consecutive to the previous
database state, so replaying records in LSN order through Propagate
reconstructs the master Write-PDT exactly (see :func:`replay_into`).

Records are *batched*: one record per commit regardless of how many
updates the transaction (or a ``apply_batch`` bulk commit) carried, with
the entry lists exported in bulk (``entry_lists``) and replayed in bulk
(``bulk_append_entries`` + ``propagate_batch``) — the WAL leg of the
vectorized update path. A record is also the unit of recovery atomicity:
replay applies whole records only, so a crash between records (exercised
by ``replay_into(..., max_records=N)``) always recovers a transaction
all-or-nothing.

Durability has two optional layers on top of the per-record fsync:

* **Group commit** (``group=GroupCommitPolicy(...)``): appends are staged
  and one leader fsyncs a whole batch of records at once —
  :mod:`repro.txn.group_commit`. ``append_commit`` then returns a ticket;
  the committer calls :meth:`wait_durable` (the transaction manager does
  this automatically) and is acknowledged only after the shared fsync
  lands. A group is N whole records, so crash atomicity and
  :func:`replay_into` are unchanged.
* **Striped streams** (``streams=N``): commit records are routed to N
  side files (``<path>.s<i>.e<epoch>``) by a stable hash of the table
  name, so a cross-shard batch splits into per-stream part lines sharing
  one LSN and the group leader fsyncs the touched streams in parallel.
  The main file carries a ``wal-meta`` line naming the stream layout and
  every whole-file rewrite collapses all records back into the main file
  under a bumped epoch (the old stream files become garbage and are
  swept). :meth:`load` merges the files, re-joins part lines by LSN, and
  drops everything from the first LSN with missing parts onward — safe
  because the flush lock totally orders groups: an incomplete LSN and
  everything after it belong to the one flush that never acknowledged.
"""

from __future__ import annotations

import contextlib
import glob as _glob
import json
import os
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..core.types import KIND_DEL, KIND_INS
from .group_commit import GroupCommitCoordinator, GroupCommitPolicy


def _to_native(value):
    """JSON fallback for numpy scalars living inside update payloads."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


def _fsync_dir(path) -> None:
    """fsync a directory: file creation, rename, and unlink are directory
    mutations — without this a crash can lose the *entry* of a file whose
    contents were dutifully fsynced."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass
class WalRecord:
    """One logged event: a commit (per-table entry lists), a delta
    snapshot re-logged by an incremental checkpoint, or a metadata record
    such as a shard layout."""

    lsn: int
    tables: dict = field(default_factory=dict)
    # tables: name -> list of (sid, kind, payload) with JSON-safe payloads
    kind: str = "commit"
    meta: dict | None = None  # payload of non-commit records


class WriteAheadLog:
    """Append-only commit log, in memory with optional file persistence.

    File durability: appends are flushed and (by default) fsynced per
    record — "force-written at commit" — and every whole-file rewrite
    (truncate, rebase, layout update) goes through a temp file, an atomic
    ``os.replace``, and a directory fsync, so a kill mid-rewrite leaves
    the previous complete log, never a torn one. ``group`` enables
    coalesced fsyncs (see the module docstring); ``streams`` stripes
    commit records over per-shard log files.
    """

    def __init__(self, path=None, fsync: bool = True, streams: int = 1,
                 group: GroupCommitPolicy | None = None):
        self.path = path
        self.fsync = fsync
        self.streams = max(1, int(streams))
        self.records: list[WalRecord] = []
        self._defer_rewrites = False
        self._stream_epoch = 0
        self._meta_logged = False
        self._known_paths: set = set()
        self._handles: dict = {}  # path -> persistent append handle
        self.group = (
            GroupCommitCoordinator(self, group)
            if group is not None and path is not None else None
        )

    @contextlib.contextmanager
    def atomic(self):
        """Defer file rewrites until the block exits, then write once.

        Multi-step log surgery (a shard rebalance drops retired shards'
        history, re-logs survivor snapshots, and logs the new layout)
        must not leave the on-disk log between steps — e.g. with the old
        layout still naming shards whose deltas were just dropped. Under
        ``atomic()`` the in-memory record list mutates stepwise but the
        file sees only the final, mutually consistent state.
        """
        self._defer_rewrites = True
        try:
            yield
        finally:
            self._defer_rewrites = False
            self._rewrite_file()

    def append_commit(self, lsn: int, table_pdts: dict):
        """Log a commit: ``table_pdts`` maps table name -> serialized PDT.

        Without group commit the record is durable on return (None).
        With group commit the record is *staged* and a
        :class:`~repro.txn.group_commit.GroupCommitTicket` is returned;
        pass it to :meth:`wait_durable` before acknowledging the commit.
        """
        tables = {
            name: self._serialize_pdt(pdt)
            for name, pdt in table_pdts.items()
        }
        return self._append_record(WalRecord(lsn=lsn, tables=tables),
                                   wait=False)

    def append_snapshot(self, table: str, snapshot_pdt, lsn: int,
                        for_image_lsn: int) -> None:
        """Append a delta-snapshot record *before* a new stable image is
        published (the pre-publish leg of an incremental checkpoint).

        The record is tagged with the LSN of the image it is consecutive
        to: replay applies it only when the persisted catalog says that
        exact image was published (``image_lsn == for_image_lsn``), so a
        crash on either side of the publish recovers consistently —
        before it, the still-logged commit history applies and the
        snapshot is ignored; after it, the history is skipped (folded
        into the image) and the snapshot provides the surviving deltas.
        Always durable on return (the subsequent catalog publish depends
        on it), even under group commit.
        """
        self._append_record(WalRecord(
            lsn=lsn,
            kind="snapshot",
            tables={table: self._serialize_pdt(snapshot_pdt)},
            meta={"table": table, "for_image_lsn": int(for_image_lsn)},
        ))

    def wait_durable(self, ticket) -> None:
        """Block until a staged record's shared fsync lands (no-op for
        ``None`` tickets and ungrouped logs)."""
        if ticket is not None and self.group is not None:
            self.group.wait_durable(ticket)

    # -- append plumbing ---------------------------------------------------

    def _append_record(self, record: WalRecord, wait: bool = True):
        self.records.append(record)
        if self.path is None or self._defer_rewrites:
            return None
        parts = self._record_parts(record)
        if self.group is not None:
            ticket = self.group.stage(parts)
            if wait:
                self.group.wait_durable(ticket)
                return None
            return ticket
        self._log_direct(parts)
        return None

    def _handle(self, path):
        """Persistent append handle (per-commit ``open`` is measurable on
        the fsync-bound hot path). Invalidated whenever a rewrite swaps
        the file's inode under the name."""
        fh = self._handles.get(path)
        if fh is None or fh.closed:
            fh = open(path, "a", encoding="utf-8")
            self._handles[path] = fh
        return fh

    def _close_handles(self) -> None:
        for fh in self._handles.values():
            with contextlib.suppress(OSError):
                fh.close()
        self._handles.clear()

    def close(self) -> None:
        """Release append handles (the log stays valid on disk)."""
        self._close_handles()

    def _log_direct(self, parts) -> None:
        for path, line in parts:
            created = (path not in self._known_paths
                       and not os.path.exists(path))
            fh = self._handle(path)
            fh.write(line)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
            if created and self.fsync:
                self._fsync_parent(path)
            self._known_paths.add(path)

    def _write_lines(self, by_path: dict) -> list:
        """Group-flush write leg: append each path's lines (in staging
        order), no fsync — the coordinator fsyncs after its crash-hook
        boundary. Returns the paths newly created (their directory entry
        still needs an fsync)."""
        created = []
        for path, lines in by_path.items():
            if path not in self._known_paths and not os.path.exists(path):
                created.append(path)
            fh = self._handle(path)
            fh.writelines(lines)
            fh.flush()
            self._known_paths.add(path)
        return created

    def _fsync_parent(self, path) -> None:
        _fsync_dir(os.path.dirname(os.path.abspath(path)) or ".")

    # -- stream routing ----------------------------------------------------

    def _stream_path(self, index: int, epoch: int | None = None) -> str:
        epoch = self._stream_epoch if epoch is None else epoch
        return f"{self.path}.s{index}.e{epoch}"

    def _stream_index(self, table: str) -> int:
        return zlib.crc32(table.encode("utf-8")) % self.streams

    def _meta_json(self) -> dict:
        return {
            "lsn": 0, "tables": {}, "kind": "wal-meta",
            "meta": {"streams": self.streams, "epoch": self._stream_epoch},
        }

    def _ensure_meta(self) -> None:
        """Make the main file name the live stream layout before any
        record lands in a stream file (durable first: recovery discovers
        the stream files through this line)."""
        if self._meta_logged:
            return
        lock = self.group.flush_lock if self.group is not None else \
            contextlib.nullcontext()
        with lock:
            if self._meta_logged:
                return
            created = (self.path not in self._known_paths
                       and not os.path.exists(self.path))
            fh = self._handle(self.path)
            fh.write(self._encode_json(self._meta_json()))
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
            if created and self.fsync:
                self._fsync_parent(self.path)
            self._known_paths.add(self.path)
            self._meta_logged = True

    def _record_parts(self, record: WalRecord) -> list:
        """``(path, encoded line)`` pairs for one record. Non-commit
        records and unstriped logs write one whole line; a striped commit
        splits per stream, each part tagged with the total part count."""
        if self.streams <= 1:
            return [(self.path, self._encode_json(self._to_json(record)))]
        self._ensure_meta()
        if record.kind != "commit" or not record.tables:
            return [(self.path, self._encode_json(self._to_json(record)))]
        groups: dict[int, dict] = {}
        for name, entries in record.tables.items():
            groups.setdefault(self._stream_index(name), {})[name] = entries
        nparts = len(groups)
        parts = []
        for index in sorted(groups):
            raw = {"lsn": record.lsn, "tables": groups[index]}
            if nparts > 1:
                raw["parts"] = nparts
            parts.append((self._stream_path(index), self._encode_json(raw)))
        return parts

    @staticmethod
    def _encode_json(raw: dict) -> str:
        return json.dumps(raw, default=_to_native) + "\n"

    def truncate(self) -> None:
        """Discard logged commit records (after a checkpoint made them
        redundant). Shard-layout metadata survives: boundaries are catalog
        state a recovery needs even when no deltas are outstanding."""
        self.records = [r for r in self.records if r.kind == "shard-layout"]
        self._rewrite_file()

    # -- shard-layout metadata -------------------------------------------

    def append_shard_layout(self, table: str, boundaries, shard_names,
                            lsn: int = 0, config: dict | None = None
                            ) -> None:
        """Log the current layout of a range-sharded table.

        Only the *latest* layout per logical table is kept: a layout is
        *catalog* state describing the shard tables that exist on disk
        right now, exactly like the stable images themselves. Earlier
        layouts name shard tables whose stable images and WAL records a
        rebalance already replaced, so nothing could ever be replayed
        against them (the same reason ``max_records`` crash boundaries
        are only meaningful within the history since the last
        checkpoint/rebalance rebase).
        """
        self.records = [
            r for r in self.records
            if not (r.kind == "shard-layout" and r.meta["table"] == table)
        ]
        self.records.append(WalRecord(
            lsn=lsn,
            kind="shard-layout",
            meta={
                "table": table,
                "boundaries": [list(b) for b in boundaries],
                "shards": list(shard_names),
                "config": dict(config or {}),
            },
        ))
        self._rewrite_file()

    def shard_layouts(self) -> dict:
        """Latest logged layout per sharded table: ``name ->
        {"boundaries": [...], "shards": [...], "config": {...}}``."""
        out: dict = {}
        for record in self.records:
            if record.kind == "shard-layout":
                out[record.meta["table"]] = {
                    "boundaries": [tuple(b) for b in
                                   record.meta["boundaries"]],
                    "shards": list(record.meta["shards"]),
                    "config": dict(record.meta.get("config", {})),
                }
        return out

    def rebase_table(self, table: str, snapshot_pdt=None,
                     lsn: int = 0, for_image_lsn: int | None = None) -> None:
        """Drop one table's logged history after its stable image was
        rebuilt, keeping recovery exact.

        A checkpoint folds logged deltas into the stable image; replaying
        them again on recovery would double-apply them against renumbered
        SIDs. Full checkpoints pass ``snapshot_pdt=None`` (every delta
        folded); incremental range checkpoints pass the *surviving*
        Read-PDT, which is re-logged as one snapshot record consecutive to
        the new stable image — so recovery replays exactly the still-live
        deltas and nothing that was folded. Other tables' records are
        untouched (their per-commit shares are kept).

        With durable storage this is pure garbage collection: the
        published catalog's ``image_lsn`` already makes replay skip the
        folded history (and any pre-publish :meth:`append_snapshot`
        record whose tag no longer matches), so a crash before this
        rewrite lands recovers identically.
        """
        rebased = []
        for record in self.records:
            if record.kind == "snapshot" and record.meta["table"] == table:
                continue  # superseded by the fresh snapshot (if any)
            if record.kind == "commit" and table in record.tables:
                remaining = {
                    name: entries
                    for name, entries in record.tables.items()
                    if name != table
                }
                if not remaining:
                    continue
                record = WalRecord(lsn=record.lsn, tables=remaining)
            rebased.append(record)
        self.records = rebased
        if snapshot_pdt is not None and not snapshot_pdt.is_empty():
            self.records.append(
                WalRecord(
                    lsn=lsn,
                    kind="snapshot",
                    tables={table: self._serialize_pdt(snapshot_pdt)},
                    meta={
                        "table": table,
                        "for_image_lsn": int(
                            lsn if for_image_lsn is None else for_image_lsn
                        ),
                    },
                )
            )
        self._rewrite_file()

    @staticmethod
    def _serialize_pdt(pdt) -> list:
        """JSON-safe ``(sid, kind, payload)`` entry list of one PDT,
        exported with the bulk leaf-drain interface (no per-entry
        ``Entry`` construction on the commit path)."""
        sids, kinds, refs = pdt.entry_lists()
        values = pdt.values
        entries = []
        for sid, kind, ref in zip(sids, kinds, refs):
            if kind == KIND_INS:
                payload = list(values.get_insert(ref))
            elif kind == KIND_DEL:
                payload = list(values.get_delete(ref))
            else:
                payload = values.get_modify(kind, ref)
            entries.append((sid, kind, payload))
        return entries

    def _rewrite_file(self) -> None:
        if self.path is None or self._defer_rewrites:
            return
        if self.group is not None:
            # A rewrite persists (or supersedes — rebases only drop
            # records whose effects the published images already cover)
            # everything staged: resolve those tickets once it lands.
            with self.group.flush_lock:
                drained = self.group.drain_for_rewrite()
                self._rewrite_locked()
                self.group.resolve_drained(drained)
        else:
            self._rewrite_locked()

    def _rewrite_locked(self) -> None:
        # os.replace swaps the inode under the name: cached append
        # handles would keep writing to the unlinked file.
        self._close_handles()
        old_epoch = self._stream_epoch
        if self.streams > 1:
            self._stream_epoch = old_epoch + 1
        tmp = str(self.path) + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            if self.streams > 1:
                fh.write(self._encode_json(self._meta_json()))
            for record in self.records:
                fh.write(self._encode_json(self._to_json(record)))
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, self.path)  # a kill leaves old or new, never torn
        if self.fsync:
            # The rename itself is a directory mutation; make it durable.
            self._fsync_parent(self.path)
        self._known_paths.add(self.path)
        self._meta_logged = self.streams > 1
        if self.streams > 1:
            # The collapse superseded the previous epoch's stream files.
            for index in range(self.streams):
                stale = self._stream_path(index, old_epoch)
                self._known_paths.discard(stale)
                with contextlib.suppress(FileNotFoundError):
                    os.unlink(stale)

    def __len__(self) -> int:
        return len(self.records)

    @staticmethod
    def _to_json(record: WalRecord) -> dict:
        raw = {"lsn": record.lsn, "tables": record.tables}
        if record.kind != "commit":
            raw["kind"] = record.kind
            raw["meta"] = record.meta
        return raw

    @staticmethod
    def _record_from(raw: dict) -> WalRecord:
        tables = {
            name: [tuple(e) for e in entries]
            for name, entries in raw["tables"].items()
        }
        return WalRecord(
            lsn=raw["lsn"], tables=tables,
            kind=raw.get("kind", "commit"), meta=raw.get("meta"),
        )

    # -- loading -----------------------------------------------------------

    @classmethod
    def load(cls, path) -> "WriteAheadLog":
        """Read a persisted log back from disk.

        A torn trailing line (the record a kill interrupted mid-append)
        is discarded *and truncated off the file*: appends are the unit
        of commit durability, so a partial record is a commit that never
        happened — and leaving its bytes in place would corrupt the next
        append (which would land on the same line, losing that commit at
        the following recovery). Each stream file of a striped log gets
        the same repair; part lines are then re-joined by LSN and
        commits from the first incomplete LSN on are dropped (the one
        flush a kill interrupted — never acknowledged).
        """
        wal = cls(path=None)
        streams, epoch = 1, 0
        raws: list = []
        for raw in cls._read_file(path):
            if raw.get("kind") == "wal-meta":
                streams = int(raw["meta"]["streams"])
                epoch = int(raw["meta"]["epoch"])
                continue
            raws.append(raw)
        if streams > 1:
            for index in range(streams):
                spath = f"{path}.s{index}.e{epoch}"
                if os.path.exists(spath):
                    raws.extend(cls._read_file(spath))
            cls._sweep_stale_streams(path, epoch)
        wal.records = cls._assemble(raws, striped=streams > 1)
        wal.path = path
        wal.streams = streams
        wal._stream_epoch = epoch
        wal._meta_logged = streams > 1
        return wal

    @classmethod
    def _read_file(cls, path) -> list:
        """One file's parsed record dicts, repairing a torn tail in
        place (truncate + fsync file and directory)."""
        raws: list = []
        valid_bytes = 0
        torn = False
        missing_newline = False
        with open(path, "rb") as fh:
            for line in fh:
                if not line.strip():
                    valid_bytes += len(line)
                    continue
                try:
                    raws.append(json.loads(line.decode("utf-8")))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    torn = True
                    break
                valid_bytes += len(line)
                # A complete record whose trailing newline the kill cut
                # off parses fine but would merge with the next append.
                missing_newline = not line.endswith(b"\n")
        if torn:
            with open(path, "r+b") as fh:
                fh.truncate(valid_bytes)
                fh.flush()
                os.fsync(fh.fileno())
            _fsync_dir(os.path.dirname(os.path.abspath(path)) or ".")
        elif missing_newline:
            with open(path, "ab") as fh:
                fh.write(b"\n")
                fh.flush()
                os.fsync(fh.fileno())
        return raws

    @classmethod
    def _assemble(cls, raws: list, striped: bool) -> list:
        if not striped:
            return [cls._record_from(raw) for raw in raws]
        groups: dict[int, dict] = {}
        others: list = []
        for order, raw in enumerate(raws):
            if raw.get("kind", "commit") != "commit":
                others.append((raw["lsn"], 1, order, cls._record_from(raw)))
                continue
            lsn = raw["lsn"]
            group = groups.setdefault(
                lsn, {"tables": {}, "need": 1, "have": 0, "order": order})
            group["need"] = max(group["need"], int(raw.get("parts", 1)))
            group["have"] += 1
            for name, entries in raw["tables"].items():
                group["tables"][name] = [tuple(e) for e in entries]
        incomplete = [lsn for lsn, g in groups.items()
                      if g["have"] < g["need"]]
        # Parts of one flush may land on disk out of LSN order across
        # files, so a *complete* LSN above an incomplete one still belongs
        # to the crashed, unacknowledged flush: drop the whole tail.
        bad = min(incomplete) if incomplete else None
        merged = list(others)
        for lsn, group in groups.items():
            if bad is not None and lsn >= bad:
                continue
            merged.append((lsn, 0, group["order"],
                           WalRecord(lsn=lsn, tables=group["tables"])))
        merged.sort(key=lambda item: item[:3])
        return [record for *_, record in merged]

    @staticmethod
    def _sweep_stale_streams(path, keep_epoch: int | None) -> None:
        """Unlink stream files of superseded epochs (collapse garbage a
        kill may have left behind)."""
        for stale in _glob.glob(_glob.escape(str(path)) + ".s*.e*"):
            try:
                epoch = int(str(stale).rsplit(".e", 1)[1])
            except ValueError:
                continue
            if keep_epoch is None or epoch != keep_epoch:
                with contextlib.suppress(FileNotFoundError):
                    os.unlink(stale)

    def adopt_runtime(self, configured: "WriteAheadLog") -> None:
        """Carry runtime configuration (fsync, stripe count, group-commit
        policy) from a freshly constructed WAL onto this loaded one — the
        recovery handoff. A stripe-count change collapses the log into
        the main file so the on-disk layout matches the configuration."""
        self.fsync = configured.fsync
        file_streams = self.streams
        self.streams = configured.streams
        if configured.group is not None and self.path is not None:
            self.group = GroupCommitCoordinator(self,
                                                configured.group.policy)
        if self.path is not None and file_streams != self.streams:
            self._meta_logged = False
            self._rewrite_file()
            self._sweep_stale_streams(
                self.path,
                self._stream_epoch if self.streams > 1 else None,
            )


def replay_into(wal: WriteAheadLog, pdts: dict,
                max_records: int | None = None,
                image_lsns: dict | None = None) -> int:
    """Re-apply logged commits to fresh master Write-PDTs.

    ``pdts`` maps table name -> empty PDT (one per table). Records are
    consecutive, so each entry list can be bulk-loaded directly (its SIDs
    are already in the RID domain of the state produced by the previous
    records) and folded in with the sorted-run Propagate. Returns the
    last LSN replayed.

    ``max_records`` stops replay after that many records — the state a
    crash at that record boundary would recover to. Records are the unit
    of atomicity: a prefix of whole records is always a transaction-
    consistent image. (Group commit does not change this: a group is N
    whole records, and :meth:`WriteAheadLog.load` already dropped any
    partially persisted, never-acknowledged flush tail.)

    ``image_lsns`` (table -> LSN of the *persisted* stable image, from a
    durable backend's catalog) makes replay image-aware: a table's commit
    entries at or below its image LSN are skipped — the published image
    already folded them in — and a ``snapshot`` record applies only when
    its ``for_image_lsn`` tag matches the persisted image. This is what
    closes the crash window between a checkpoint's catalog publish and
    its WAL rebase. Without ``image_lsns`` (in-memory recovery from
    re-registered images) every record applies, as before.
    """
    from ..core.propagate import propagate_batch

    def _apply(name, entries):
        if name not in pdts:
            raise KeyError(f"WAL references unknown table {name!r}")
        target = pdts[name]
        staging = target.__class__(target.schema)
        staging.bulk_append_entries(
            (sid, kind, tuple(payload) if kind == KIND_DEL else payload)
            for sid, kind, payload in entries
        )
        propagate_batch(target, staging)

    last_lsn = 0
    records = wal.records if max_records is None else \
        wal.records[:max_records]
    for record in records:
        if record.kind == "commit":
            for name, entries in record.tables.items():
                if image_lsns is not None and \
                        record.lsn <= image_lsns.get(name, 0):
                    continue  # folded into the published image
                _apply(name, entries)
        elif record.kind == "snapshot":
            name = record.meta["table"]
            if image_lsns is None or \
                    image_lsns.get(name, 0) == record.meta["for_image_lsn"]:
                _apply(name, record.tables[name])
            # else: tagged for an image that was never published — ignore
        else:
            continue
        last_lsn = record.lsn
    return last_lsn
