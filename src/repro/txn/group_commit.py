"""Leader/follower group commit: coalescing WAL fsyncs across writers.

On durable storage every commit is "force-written at commit": its WAL
record must be on disk before the commit is acknowledged. Paying one
``os.fsync`` per commit serializes multi-writer throughput on fsync
latency — the classical fix (DeWitt et al.'s group commit, as deployed in
every WAL-based engine since) is to let concurrent committers *stage*
their serialized records under a short critical section, elect one
**leader** to write and fsync the whole batch in a single log append, and
have the **followers** merely wait until the shared fsync lands.

The protocol here:

* :meth:`GroupCommitCoordinator.stage` appends the record's encoded lines
  to the staging queue (mutex-guarded, O(bytes) work only) and returns a
  :class:`GroupCommitTicket`.
* A committer that needs durability calls :meth:`wait_durable`. It tries
  the **flush lock**: the winner becomes the leader, drains the staged
  queue (bounded by :attr:`GroupCommitPolicy.max_group`), writes every
  line, fsyncs each touched log file once, and resolves all tickets.
  Losers wait on their ticket's event — by the time the leader releases
  the flush lock their record is usually already durable, and whoever
  still holds an unresolved ticket becomes the next leader.
* Acknowledgement order is staging order: the flush lock fully serializes
  groups, so on-disk state is always *a prefix of acknowledged commits*
  plus at most one partially-written (never acknowledged) group.

With Python's GIL the win is exactly the textbook one: ``os.fsync``
releases the GIL, so while the leader sleeps in the kernel every other
writer runs its commit-path CPU work and stages; throughput moves from
``1/(cpu + fsync)`` towards ``1/max(cpu, fsync/group)``.

Whole-file WAL rewrites (checkpoint rebase, truncation, shard layout
updates) take the same flush lock and resolve any still-staged tickets
after the rewritten file lands: a rewrite only ever happens once the
staged records' effects are covered by published stable images or by the
rewritten log itself, so the rewrite *is* their durability point.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field, fields


@dataclass(frozen=True)
class GroupCommitPolicy:
    """Tunables for the coalescing window.

    ``max_group`` bounds the records one leader flushes (a full queue
    leaves the rest to the next leader, keeping worst-case latency
    bounded). ``max_delay_s`` optionally makes the leader linger that
    long — or until ``max_group`` records are staged — before flushing,
    trading commit latency for larger groups; the default of 0 never
    delays (groups form naturally from fsync overlap).
    """

    max_group: int = 128
    max_delay_s: float = 0.0

    def __post_init__(self):
        if self.max_group < 1:
            raise ValueError("max_group must be >= 1")
        if self.max_delay_s < 0:
            raise ValueError("max_delay_s must be >= 0")


class GroupCommitTicket:
    """One staged record's durability handle (resolved by some leader)."""

    __slots__ = ("_event", "error", "group_size", "led")

    def __init__(self):
        self._event = threading.Event()
        self.error: BaseException | None = None
        self.group_size = 0   # records in the flush that resolved us
        self.led = False      # True when our own wait led the flush

    @property
    def resolved(self) -> bool:
        return self._event.is_set()

    @property
    def durable(self) -> bool:
        return self._event.is_set() and self.error is None


@dataclass
class GroupCommitStats:
    """Coordinator-wide counters (guarded by the staging mutex)."""

    staged: int = 0        # records ever staged
    flushes: int = 0       # leader flushes (each = one fsync round)
    fsyncs: int = 0        # file fsyncs issued across all flushes
    coalesced: int = 0     # records that shared a flush with another
    max_group: int = 0     # largest group flushed so far
    rewrite_drains: int = 0  # tickets resolved by a whole-file rewrite

    def as_dict(self) -> dict:
        """JSON-able view; the surface ``Database.metrics()`` reads.
        Prefer this over poking the counter fields directly."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class GroupCommitCoordinator:
    """The staging queue + leader election for one :class:`WriteAheadLog`.

    Thread-safe; created by the WAL when a :class:`GroupCommitPolicy` is
    configured and the log is file-backed. ``crash_hook`` is a test seam:
    when set, it is called with a boundary name (``"group-pre-fsync"``,
    ``"group-mid-fsync"``, ``"group-post-fsync"``) and the list of file
    paths in the flush — ``scripts/crash_matrix.py`` uses it to kill the
    process at exact points inside the shared fsync. With the hook set,
    multi-file fsyncs run sequentially so the mid-fsync boundary is
    deterministic; without it they run in parallel threads (per-shard WAL
    streams fsync concurrently).
    """

    def __init__(self, wal, policy: GroupCommitPolicy | None = None):
        self.wal = wal
        self.policy = policy or GroupCommitPolicy()
        self.stats = GroupCommitStats()
        self.crash_hook = None
        # Observability bundle (set by the owning Database): flush
        # latency histogram + a wal.group_flush span per leader flush.
        self.obs = None
        self._mutex = threading.Lock()      # guards _staged + stats
        self.flush_lock = threading.Lock()  # one leader (or rewrite) at a time
        self._staged: list[tuple[list, GroupCommitTicket]] = []

    # -- staging -----------------------------------------------------------

    def stage(self, parts: list) -> GroupCommitTicket:
        """Queue one record's encoded lines. ``parts`` is a list of
        ``(path, line)`` pairs — one per WAL stream the record spans (a
        cross-shard commit splits into per-stream part lines sharing one
        LSN). Returns the ticket a later flush resolves."""
        ticket = GroupCommitTicket()
        with self._mutex:
            self._staged.append((list(parts), ticket))
            self.stats.staged += 1
        return ticket

    def pending(self) -> int:
        with self._mutex:
            return len(self._staged)

    # -- durability --------------------------------------------------------

    def wait_durable(self, ticket: GroupCommitTicket) -> None:
        """Block until ``ticket``'s record is durable, leading a flush if
        nobody else is. Raises the flush's failure, if any."""
        while not ticket.resolved:
            if self.flush_lock.acquire(timeout=0.002):
                try:
                    if not ticket.resolved:
                        self._flush_locked(leader=ticket)
                finally:
                    self.flush_lock.release()
            else:
                ticket._event.wait(0.05)
        if ticket.error is not None:
            raise ticket.error

    def flush(self) -> None:
        """Flush everything staged right now (used by inline appends and
        at close; no-op when the queue is empty)."""
        while self.pending():
            with self.flush_lock:
                self._flush_locked(leader=None)

    # -- the leader's flush ------------------------------------------------

    def _linger(self) -> None:
        deadline = time.monotonic() + self.policy.max_delay_s
        while (self.pending() < self.policy.max_group
               and time.monotonic() < deadline):
            time.sleep(min(0.0005, self.policy.max_delay_s))

    def _flush_locked(self, leader: GroupCommitTicket | None) -> None:
        if self.policy.max_delay_s > 0:
            self._linger()
        with self._mutex:
            batch = self._staged[: self.policy.max_group]
            del self._staged[: len(batch)]
        if not batch:
            return
        by_path: dict = {}
        for parts, _ in batch:
            for path, line in parts:
                by_path.setdefault(path, []).append(line)
        paths = list(by_path)
        obs = self.obs
        t_flush = time.perf_counter() if obs is not None else 0.0
        fsync_s = 0.0
        try:
            created = self.wal._write_lines(by_path)
            if self.crash_hook is not None:
                self.crash_hook("group-pre-fsync", paths)
            if self.wal.fsync:
                t_sync = time.perf_counter() if obs is not None else 0.0
                self._fsync_paths(paths)
                for path in created:
                    self.wal._fsync_parent(path)
                if obs is not None:
                    fsync_s = time.perf_counter() - t_sync
        except BaseException as exc:
            for _, ticket in batch:
                ticket.error = exc
                ticket._event.set()
            raise
        size = len(batch)
        if obs is not None:
            flush_s = time.perf_counter() - t_flush
            obs.group_flush_seconds.observe(flush_s)
            tracer = obs.tracer
            if tracer.enabled:
                # The leader flushes on a committing thread, so the span
                # nests under that thread's txn.commit / ack-wait span.
                span = tracer.begin("wal.group_flush", records=size,
                                    files=len(paths),
                                    fsync_ms=round(fsync_s * 1e3, 3))
                span.start_s = time.time() - flush_s
                span.duration_s = flush_s
                tracer.finish(span)
        with self._mutex:
            self.stats.flushes += 1
            if self.wal.fsync:
                self.stats.fsyncs += len(paths)
            if size > 1:
                self.stats.coalesced += size
            self.stats.max_group = max(self.stats.max_group, size)
        if self.crash_hook is not None:
            self.crash_hook("group-post-fsync", paths)
        for _, ticket in batch:
            ticket.group_size = size
            ticket.led = ticket is leader
            ticket._event.set()

    def _fsync_paths(self, paths: list) -> None:
        """One fsync per touched file; parallel across per-shard streams
        (each fsync releases the GIL) unless a crash hook needs the
        sequential, deterministic order."""
        if len(paths) == 1 or self.crash_hook is not None:
            for i, path in enumerate(paths):
                self._fsync_one(path)
                if self.crash_hook is not None and i + 1 < len(paths):
                    self.crash_hook("group-mid-fsync", paths[: i + 1])
            return
        threads = [
            threading.Thread(target=self._fsync_one, args=(path,))
            for path in paths[1:]
        ]
        for t in threads:
            t.start()
        self._fsync_one(paths[0])
        for t in threads:
            t.join()

    def _fsync_one(self, path) -> None:
        # The WAL's persistent append handle already points at the right
        # inode (rewrites close it under the shared flush lock).
        os.fsync(self.wal._handle(path).fileno())

    # -- rewrite integration ----------------------------------------------

    def drain_for_rewrite(self) -> list[GroupCommitTicket]:
        """Called by the WAL (holding the flush lock) before a whole-file
        rewrite: take every staged ticket. The caller resolves them with
        :meth:`resolve_drained` once the rewritten file is durable — the
        rewrite covers their records (or the published images that folded
        them)."""
        with self._mutex:
            batch, self._staged = self._staged, []
        return [ticket for _, ticket in batch]

    def resolve_drained(self, tickets: list) -> None:
        with self._mutex:
            self.stats.rewrite_drains += len(tickets)
        for ticket in tickets:
            ticket.group_size = max(len(tickets), 1)
            ticket._event.set()
