"""PDT-based ACID transaction management (paper section 3.3)."""

from .checkpoint import checkpoint_all, checkpoint_table, delta_memory_usage
from .manager import ManagerStats, TableState, TransactionManager
from .recovery import recover_database, recover_manager
from .transaction import Transaction, TransactionError, TxnStatus
from .wal import WalRecord, WriteAheadLog, replay_into

__all__ = [
    "ManagerStats",
    "TableState",
    "Transaction",
    "TransactionError",
    "TransactionManager",
    "TxnStatus",
    "WalRecord",
    "WriteAheadLog",
    "checkpoint_all",
    "checkpoint_table",
    "delta_memory_usage",
    "recover_database",
    "recover_manager",
    "replay_into",
]
