"""PDT-based ACID transaction management (paper section 3.3) plus the
cost-based checkpoint scheduler that keeps the delta structures small."""

from .checkpoint import (
    checkpoint_all,
    checkpoint_table,
    checkpoint_table_range,
    delta_memory_usage,
)
from .group_commit import (
    GroupCommitCoordinator,
    GroupCommitPolicy,
    GroupCommitStats,
)
from .manager import ManagerStats, TableState, TransactionManager
from .pins import PinnedLayout, PinnedTable, SnapshotPin
from .recovery import (
    recover_database,
    recover_manager,
    recover_persistent,
    restore_sharded_tables,
)
from .scheduler import (
    CheckpointPolicy,
    CheckpointScheduler,
    CompositePolicy,
    Decision,
    HotRangePolicy,
    MaintenanceAction,
    MemoryThresholdPolicy,
    NeverPolicy,
    SchedulerStats,
    TableLoad,
    UpdateCountPolicy,
    policy_from_spec,
)
from .transaction import Transaction, TransactionError, TxnStatus
from .wal import WalRecord, WriteAheadLog, replay_into

__all__ = [
    "CheckpointPolicy",
    "CheckpointScheduler",
    "CompositePolicy",
    "Decision",
    "GroupCommitCoordinator",
    "GroupCommitPolicy",
    "GroupCommitStats",
    "HotRangePolicy",
    "MaintenanceAction",
    "ManagerStats",
    "MemoryThresholdPolicy",
    "NeverPolicy",
    "PinnedLayout",
    "PinnedTable",
    "SchedulerStats",
    "SnapshotPin",
    "TableLoad",
    "TableState",
    "Transaction",
    "TransactionError",
    "TransactionManager",
    "TxnStatus",
    "UpdateCountPolicy",
    "WalRecord",
    "WriteAheadLog",
    "checkpoint_all",
    "checkpoint_table",
    "checkpoint_table_range",
    "delta_memory_usage",
    "policy_from_spec",
    "recover_database",
    "recover_manager",
    "recover_persistent",
    "replay_into",
    "restore_sharded_tables",
]
