"""Database-wide snapshot pins: one commit point across every shard.

A cross-shard read through ``Database.query`` captures each shard's
latest-committed layer stack independently — correct per shard, but two
shards can be captured on either side of a commit, so a concurrent writer
can tear a logical table's image across shards. A :class:`SnapshotPin`
fixes the whole database at one commit point instead: for every physical
table it captures the stable image, the Read-PDT (by reference), a
Write-PDT snapshot *loan* (the master by reference, through the same
loan machinery transaction starts use — commits propagate copy-on-commit
while it is loaned, so the object never changes under the pin), the stale
sparse index, and the table's last-commit LSN — together a per-table/per-shard
LSN vector naming exactly one version of the database. For sharded
logical tables the shard layout (boundaries + shard names) is captured
too, so a pinned reader keeps routing against the layout it pinned even
while the rebalancer restructures the live table.

Pinned state stays valid because every mutation of committed layers is
*by replacement* (a commit on a pinned table propagates into a copy and
swings the master Write-PDT to it; checkpoints install fresh stable/PDT
objects) or made pin-aware:

* ``propagate_write_to_read`` copies-on-write the Read-PDT while the
  table is pinned, so the pinned reference never absorbs the Write-PDT a
  pin loans (the checkpoint scheduler additionally *defers* folds on
  pinned tables until pins drain);
* checkpoints detach the outgoing stable image from block storage before
  dropping its blocks, so pinned readers fall back to the retained
  in-memory image;
* the shard rebalancer defers retired shards' block drops until the pins
  that captured them drain (shard names are never reused, so old and new
  images coexist in the block store).

Pins are cheap (reference captures only — no copies at pin time),
require no quiescence, and are the unit of consistency the async query
service hands every streaming cursor.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PinnedTable:
    """One physical table's captured version: the scan inputs at pin time.

    ``write_pdt`` is ``None`` when the Write-PDT was empty at the pin
    point (the common case between maintenance cycles); ``layers`` yields
    the non-empty PDT stack in merge order.

    ``image_lsn`` names the *persisted* stable image the pinned layers
    are relative to (the value block storage published for this table),
    or ``None`` when the stable image is memory-only — it is what lets a
    shard worker process re-open the same version from disk and trust the
    shipped pin vector.
    """

    name: str
    stable: object
    read_pdt: object
    write_pdt: object  # loaned master, or None when empty at pin time
    sparse_index: object
    lsn: int
    image_lsn: int | None = None

    @property
    def layers(self) -> tuple:
        if self.write_pdt is None:
            return (self.read_pdt,)
        return (self.read_pdt, self.write_pdt)


@dataclass(frozen=True)
class PinnedLayout:
    """A sharded logical table's layout at pin time."""

    boundaries: tuple
    shard_names: tuple


@dataclass
class SnapshotPin:
    """A released-once handle on one database-wide commit point.

    Obtained from :meth:`TransactionManager.pin_snapshot` (usually via
    ``Database.pin_snapshot()`` or ``QueryService.pin()``). Usable as a
    context manager; releasing is idempotent. While any pin covering a
    table is live, maintenance on that table is deferred or runs
    copy-on-write, so the captured objects keep describing the pinned
    version.
    """

    manager: object
    pin_id: int
    tables: dict  # physical name -> PinnedTable
    layouts: dict = field(default_factory=dict)  # logical -> PinnedLayout
    lsn: int = 0
    created_at: float = 0.0  # time.monotonic() at pin time (age tracking)
    released: bool = False

    def table(self, name: str) -> PinnedTable:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(
                f"table {name!r} is not covered by this pin "
                f"(created after the pin was taken?)"
            ) from None

    def layout(self, logical: str) -> PinnedLayout:
        try:
            return self.layouts[logical]
        except KeyError:
            raise KeyError(
                f"no sharded table {logical!r} in this pin"
            ) from None

    def is_sharded(self, name: str) -> bool:
        return name in self.layouts

    def physical_names(self, table: str) -> list[str]:
        """Physical tables backing ``table`` at pin time, in key order."""
        if table in self.layouts:
            return list(self.layouts[table].shard_names)
        # Raise the pin's KeyError for unknown names.
        return [self.table(table).name]

    def lsn_vector(self) -> dict[str, int]:
        """Per-physical-table last-commit LSNs — the version this pin
        names. Every cross-shard read under the pin sees exactly these."""
        return {name: pt.lsn for name, pt in self.tables.items()}

    def release(self) -> None:
        if not self.released:
            self.released = True
            self.manager.release_pin(self)

    def __enter__(self) -> "SnapshotPin":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "released" if self.released else "live"
        return (
            f"SnapshotPin(id={self.pin_id}, lsn={self.lsn}, "
            f"tables={len(self.tables)}, {state})"
        )
