"""Crash recovery: rebuilding database state from persisted storage + WAL.

A crash loses the RAM-resident PDTs but not the WAL (force-written at
commit) nor — on a durable backend — the stable table images (republished
atomically at every checkpoint). Two recovery paths exist:

* **In-memory images** (:func:`recover_manager` / :func:`recover_database`
  with re-registered tables): the caller registers the stable images by
  hand and the WAL is replayed in full, Propagate landing each record on
  exactly the state the original commit saw.
* **Persisted images** (:func:`recover_persistent`, run automatically when
  a :class:`~repro.db.database.Database` opens over a persistent storage
  factory holding data): tables — including every shard of every sharded
  table named by the WAL's layout records — are rebuilt from the
  backends' published catalogs and block files, then the WAL is replayed
  *image-aware*: each table's records at or below its persisted
  ``image_lsn`` are skipped (the published image already folded them in),
  which is what makes a kill between a checkpoint's catalog publish and
  its WAL rebase recover exactly.
"""

from __future__ import annotations

from .manager import TransactionManager
from .wal import WriteAheadLog, replay_into


def recover_manager(manager: TransactionManager, wal: WriteAheadLog,
                    max_records: int | None = None,
                    image_lsns: dict | None = None) -> int:
    """Replay ``wal`` into a freshly built manager.

    The manager must already have its tables registered (from the on-disk
    stable images) and hold no running transactions or delta state.
    Returns the last LSN applied; the manager's clock resumes from there.

    ``max_records`` replays only a prefix of whole records — the state
    recovered after a crash at that record boundary. Batched records make
    each prefix transaction-consistent (a commit batch is one record, so
    it is replayed all-or-nothing). ``image_lsns`` is passed through to
    :func:`~repro.txn.wal.replay_into` for image-aware replay against
    persisted stable images.
    """
    if manager.running_count():
        raise RuntimeError("recovery requires a quiescent manager")
    for name in manager.table_names():
        state = manager.state_of(name)
        if not (state.read_pdt.is_empty() and state.write_pdt.is_empty()):
            raise RuntimeError(
                f"table {name!r} already carries delta state; recovery "
                f"must start from clean stable images"
            )
    pdts = {
        name: manager.state_of(name).write_pdt
        for name in manager.table_names()
    }
    last_lsn = replay_into(wal, pdts, max_records=max_records,
                           image_lsns=image_lsns)
    manager._lsn = max(manager._lsn, last_lsn)
    if image_lsns:
        # The clock must also clear every published image LSN, or a
        # future checkpoint could tag a snapshot with an LSN an older
        # catalog already used.
        manager._lsn = max(manager._lsn, *image_lsns.values())
    replayed = wal.records if max_records is None else \
        wal.records[:max_records]
    for record in replayed:
        for name in record.tables:
            if name in manager._tables:
                manager.state_of(name).last_commit_lsn = record.lsn
    manager.wal = wal
    return last_lsn


def recover_database(db, wal: WriteAheadLog,
                     max_records: int | None = None) -> int:
    """Database-level convenience wrapper around :func:`recover_manager`.

    Also restores range-sharded tables: their boundaries, shard names,
    and rebalancer configuration are read back from the WAL's
    shard-layout records (:func:`restore_sharded_tables`), so a
    recovered database routes, scans, and rebalances exactly as before
    the crash.

    ``max_records`` crash boundaries compose with stable-image rewrites
    (checkpoints *and* shard rebalances) the way they always have: a
    rewrite rebases the WAL in place, so boundaries are only meaningful
    within the history written *since* the last rebase — the on-disk
    state a crash leaves behind is always the current stable (shard)
    images plus the current, rebased log. Layout records are catalog
    state describing those current images; there is no earlier layout to
    recover to, just as there is no earlier stable image.
    """
    last_lsn = recover_manager(db.manager, wal, max_records=max_records)
    restore_sharded_tables(db, wal)
    return last_lsn


def restore_sharded_tables(db, wal: WriteAheadLog) -> list[str]:
    """Rebuild :class:`~repro.shard.ShardedTable` wrappers from the WAL's
    latest shard-layout records.

    The shard stable images must already be registered with the manager
    (they survive a crash like any stable image; the WAL is the catalog of
    *which* shard tables and boundaries were current). Returns the logical
    names restored.
    """
    from ..shard.sharded import ShardedTable

    restored = []
    for name, layout in wal.shard_layouts().items():
        if name in db._sharded:
            continue
        db._sharded[name] = ShardedTable.restore(db, name, layout)
        restored.append(name)
    return restored


def recover_persistent(db) -> int:
    """Reopen a database over a persistent storage factory: rebuild every
    table from the published catalogs and block files, then replay the
    WAL image-aware. Returns the last LSN replayed (0 when the storage
    was empty — a fresh database).

    This is the kill-and-reopen path: nothing is re-registered by hand.
    The WAL names which sharded layouts (and therefore which per-shard
    backend scopes) were current; scopes no published layout references —
    leftovers of a crash mid-rebalance — are swept.
    """
    import os

    from ..storage.table import StableTable

    wal_path = db.manager.wal.path
    if wal_path is not None and os.path.exists(wal_path):
        wal = WriteAheadLog.load(wal_path)
        # Carry the configured runtime (fsync, stripe count, group-commit
        # policy) onto the loaded log; a stripe-layout change collapses
        # the on-disk files to match.
        wal.adopt_runtime(db.manager.wal)
    else:
        wal = db.manager.wal

    layouts = wal.shard_layouts()
    shard_names = [
        shard for layout in layouts.values() for shard in layout["shards"]
    ]

    # Main-scope tables (shards live in their own scopes, never here).
    image_lsns: dict[str, int] = {}
    for table in db.store.tables():
        schema = db.store.table_schema(table)
        if schema is None:
            continue  # metadata-only leftover; nothing to rebuild
        stable = StableTable.from_storage(table, schema, db.pool)
        db.manager.register_table(stable)
        image_lsns[table] = db.store.image_lsn(table)

    # Shard tables, each from its own backend scope with a private pool.
    for shard in shard_names:
        pool = db.open_shard_pool(shard)
        schema = pool.store.table_schema(shard)
        if schema is None:
            raise RuntimeError(
                f"WAL layout names shard {shard!r} but its storage scope "
                f"holds no published image"
            )
        stable = StableTable.from_storage(shard, schema, pool)
        db.manager.register_table(stable)
        image_lsns[shard] = pool.store.image_lsn(shard)

    # Sweep scopes nothing references: shards a crashed rebalance was
    # installing (their layout never committed) or retiring (their drop
    # never completed).
    from ..storage.backend import MAIN_SCOPE

    live = set(shard_names)
    for scope in db.storage.scopes():
        if scope != MAIN_SCOPE and scope not in live:
            db.storage.discard(scope)

    if not image_lsns and not wal.records:
        db.manager.wal = wal
        return 0
    last_lsn = recover_manager(db.manager, wal, image_lsns=image_lsns)
    restore_sharded_tables(db, wal)
    return last_lsn
