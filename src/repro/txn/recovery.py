"""Crash recovery: rebuilding delta state from the write-ahead log.

A crash loses the RAM-resident PDTs but not the stable table images (they
only change at checkpoints, which truncate the WAL) nor the WAL itself
(force-written at commit). Recovery therefore re-registers the stable
tables and replays the logged serialized Trans-PDTs in LSN order into
fresh master Write-PDTs — Propagate makes each record land on exactly the
state the original commit saw, so the recovered image is bit-identical.
"""

from __future__ import annotations

from .manager import TransactionManager
from .wal import WriteAheadLog, replay_into


def recover_manager(manager: TransactionManager, wal: WriteAheadLog,
                    max_records: int | None = None) -> int:
    """Replay ``wal`` into a freshly built manager.

    The manager must already have its tables registered (from the on-disk
    stable images) and hold no running transactions or delta state.
    Returns the last LSN applied; the manager's clock resumes from there.

    ``max_records`` replays only a prefix of whole records — the state
    recovered after a crash at that record boundary. Batched records make
    each prefix transaction-consistent (a commit batch is one record, so
    it is replayed all-or-nothing).
    """
    if manager.running_count():
        raise RuntimeError("recovery requires a quiescent manager")
    for name in manager.table_names():
        state = manager.state_of(name)
        if not (state.read_pdt.is_empty() and state.write_pdt.is_empty()):
            raise RuntimeError(
                f"table {name!r} already carries delta state; recovery "
                f"must start from clean stable images"
            )
    pdts = {
        name: manager.state_of(name).write_pdt
        for name in manager.table_names()
    }
    last_lsn = replay_into(wal, pdts, max_records=max_records)
    manager._lsn = max(manager._lsn, last_lsn)
    replayed = wal.records if max_records is None else \
        wal.records[:max_records]
    for record in replayed:
        for name in record.tables:
            manager.state_of(name).last_commit_lsn = record.lsn
    manager.wal = wal
    return last_lsn


def recover_database(db, wal: WriteAheadLog,
                     max_records: int | None = None) -> int:
    """Database-level convenience wrapper around :func:`recover_manager`."""
    return recover_manager(db.manager, wal, max_records=max_records)
