"""Crash recovery: rebuilding delta state from the write-ahead log.

A crash loses the RAM-resident PDTs but not the stable table images (they
only change at checkpoints, which truncate the WAL) nor the WAL itself
(force-written at commit). Recovery therefore re-registers the stable
tables and replays the logged serialized Trans-PDTs in LSN order into
fresh master Write-PDTs — Propagate makes each record land on exactly the
state the original commit saw, so the recovered image is bit-identical.
"""

from __future__ import annotations

from .manager import TransactionManager
from .wal import WriteAheadLog, replay_into


def recover_manager(manager: TransactionManager,
                    wal: WriteAheadLog) -> int:
    """Replay ``wal`` into a freshly built manager.

    The manager must already have its tables registered (from the on-disk
    stable images) and hold no running transactions or delta state.
    Returns the last LSN applied; the manager's clock resumes from there.
    """
    if manager.running_count():
        raise RuntimeError("recovery requires a quiescent manager")
    for name in manager.table_names():
        state = manager.state_of(name)
        if not (state.read_pdt.is_empty() and state.write_pdt.is_empty()):
            raise RuntimeError(
                f"table {name!r} already carries delta state; recovery "
                f"must start from clean stable images"
            )
    pdts = {
        name: manager.state_of(name).write_pdt
        for name in manager.table_names()
    }
    last_lsn = replay_into(wal, pdts)
    manager._lsn = max(manager._lsn, last_lsn)
    for record in wal.records:
        for name in record.tables:
            manager.state_of(name).last_commit_lsn = record.lsn
    manager.wal = wal
    return last_lsn


def recover_database(db, wal: WriteAheadLog) -> int:
    """Database-level convenience wrapper around :func:`recover_manager`."""
    return recover_manager(db.manager, wal)
