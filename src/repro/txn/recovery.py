"""Crash recovery: rebuilding delta state from the write-ahead log.

A crash loses the RAM-resident PDTs but not the stable table images (they
only change at checkpoints, which truncate the WAL) nor the WAL itself
(force-written at commit). Recovery therefore re-registers the stable
tables and replays the logged serialized Trans-PDTs in LSN order into
fresh master Write-PDTs — Propagate makes each record land on exactly the
state the original commit saw, so the recovered image is bit-identical.
"""

from __future__ import annotations

from .manager import TransactionManager
from .wal import WriteAheadLog, replay_into


def recover_manager(manager: TransactionManager, wal: WriteAheadLog,
                    max_records: int | None = None) -> int:
    """Replay ``wal`` into a freshly built manager.

    The manager must already have its tables registered (from the on-disk
    stable images) and hold no running transactions or delta state.
    Returns the last LSN applied; the manager's clock resumes from there.

    ``max_records`` replays only a prefix of whole records — the state
    recovered after a crash at that record boundary. Batched records make
    each prefix transaction-consistent (a commit batch is one record, so
    it is replayed all-or-nothing).
    """
    if manager.running_count():
        raise RuntimeError("recovery requires a quiescent manager")
    for name in manager.table_names():
        state = manager.state_of(name)
        if not (state.read_pdt.is_empty() and state.write_pdt.is_empty()):
            raise RuntimeError(
                f"table {name!r} already carries delta state; recovery "
                f"must start from clean stable images"
            )
    pdts = {
        name: manager.state_of(name).write_pdt
        for name in manager.table_names()
    }
    last_lsn = replay_into(wal, pdts, max_records=max_records)
    manager._lsn = max(manager._lsn, last_lsn)
    replayed = wal.records if max_records is None else \
        wal.records[:max_records]
    for record in replayed:
        for name in record.tables:
            manager.state_of(name).last_commit_lsn = record.lsn
    manager.wal = wal
    return last_lsn


def recover_database(db, wal: WriteAheadLog,
                     max_records: int | None = None) -> int:
    """Database-level convenience wrapper around :func:`recover_manager`.

    Also restores range-sharded tables: their boundaries, shard names,
    and rebalancer configuration are read back from the WAL's
    shard-layout records (:func:`restore_sharded_tables`), so a
    recovered database routes, scans, and rebalances exactly as before
    the crash.

    ``max_records`` crash boundaries compose with stable-image rewrites
    (checkpoints *and* shard rebalances) the way they always have: a
    rewrite rebases the WAL in place, so boundaries are only meaningful
    within the history written *since* the last rebase — the on-disk
    state a crash leaves behind is always the current stable (shard)
    images plus the current, rebased log. Layout records are catalog
    state describing those current images; there is no earlier layout to
    recover to, just as there is no earlier stable image.
    """
    last_lsn = recover_manager(db.manager, wal, max_records=max_records)
    restore_sharded_tables(db, wal)
    return last_lsn


def restore_sharded_tables(db, wal: WriteAheadLog) -> list[str]:
    """Rebuild :class:`~repro.shard.ShardedTable` wrappers from the WAL's
    latest shard-layout records.

    The shard stable images must already be registered with the manager
    (they survive a crash like any stable image; the WAL is the catalog of
    *which* shard tables and boundaries were current). Returns the logical
    names restored.
    """
    from ..shard.sharded import ShardedTable

    restored = []
    for name, layout in wal.shard_layouts().items():
        if name in db._sharded:
            continue
        db._sharded[name] = ShardedTable.restore(db, name, layout)
        restored.append(name)
    return restored
