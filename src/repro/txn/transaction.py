"""Transactions over snapshot-isolated, three-layer PDT stacks.

A transaction sees (equation (9))::

    TABLE = stable .Merge(Read-PDT) .Merge(Write-PDT snapshot) .Merge(Trans-PDT)

The Read-PDT is shared by reference (only Propagate mutates it, and only
when no snapshots are live); the Write-PDT snapshot is a reference *loan*
of the master taken at transaction start (transactions that started under
the same commit LSN share the same object; commits never mutate a loaned
master in place — they propagate into a copy and replace it); the
Trans-PDT is private and collects this transaction's own updates, so
later queries in the transaction see its earlier effects.

An optional fourth *Query-PDT* layer (paper footnote 5) buffers the updates
of a single statement so the statement does not see its own changes
(Halloween protection); it is folded into the Trans-PDT when the statement
finishes.
"""

from __future__ import annotations

import enum

from ..core.pdt import PDT
from ..core.propagate import propagate_batch
from ..db.update_processor import BatchUpdater, PositionalUpdater
from ..engine.relation import Relation
from ..engine.scan import scan_pdt


class TxnStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TransactionError(RuntimeError):
    """Operation on a transaction in the wrong state."""


class Transaction:
    """One snapshot-isolated transaction; created by the manager."""

    def __init__(self, manager, txn_id: int, start_lsn: int):
        self._manager = manager
        self.txn_id = txn_id
        self.start_lsn = start_lsn
        self.status = TxnStatus.ACTIVE
        self._snapshots: dict = {}  # table -> write-PDT snapshot (or None)
        self._trans: dict[str, PDT] = {}  # table -> Trans-PDT
        self._query: dict[str, PDT] | None = None  # Query-PDT layer

    # -- layer plumbing ------------------------------------------------------

    def _read_layers(self, table: str) -> list:
        state = self._manager.state_of(table)
        layers = [state.read_pdt]
        snapshot = self._snapshot(table)
        if snapshot is not None:
            layers.append(snapshot)
        if table in self._trans:
            layers.append(self._trans[table])
        return layers

    def _update_layers(self, table: str) -> list:
        layers = self._read_layers(table)
        if table not in self._trans:
            self._trans[table] = PDT(self._manager.state_of(table).schema)
            layers.append(self._trans[table])
        if self._query is not None:
            pdt = self._query.setdefault(
                table, PDT(self._manager.state_of(table).schema)
            )
            layers.append(pdt)
        return layers

    def _snapshot(self, table: str):
        if table not in self._snapshots:
            self._snapshots[table] = self._manager.write_snapshot(
                table, self.start_lsn
            )
        return self._snapshots[table]

    def _sharded(self, table: str):
        """The ShardedTable behind ``table``, or None for physical names."""
        return self._manager.sharded_tables.get(table)

    def _updater(self, table: str) -> PositionalUpdater:
        state = self._manager.state_of(table)
        return PositionalUpdater(
            state.stable, self._update_layers(table), state.sparse_index
        )

    def _require_active(self) -> None:
        if self.status is not TxnStatus.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.status.value}"
            )

    # -- reads ----------------------------------------------------------------

    def scan(self, table: str, columns=None, batch_rows: int = 4096
             ) -> Relation:
        """Snapshot-consistent scan (sees this transaction's own updates).

        Sharded logical names scan shard by shard in key order, each shard
        through this transaction's own layer stack.
        """
        self._require_active()
        sharded = self._sharded(table)
        if sharded is not None:
            import itertools

            from ..core.stack import merge_scan_layers

            columns = list(columns) if columns is not None \
                else list(sharded.schema.column_names)
            streams = []
            for shard in sharded.shard_names:
                state = self._manager.state_of(shard)
                streams.append(merge_scan_layers(
                    state.stable, self._read_layers(shard),
                    columns=columns, batch_rows=batch_rows,
                ))
            with sharded.merge_io_after():
                return Relation.from_batches(columns,
                                             itertools.chain(*streams))
        state = self._manager.state_of(table)
        return scan_pdt(state.stable, self._read_layers(table),
                        columns=columns, batch_rows=batch_rows)

    def image_rows(self, table: str) -> list[tuple]:
        """Full current image as tuples (testing convenience)."""
        from ..core.stack import image_rows

        self._require_active()
        sharded = self._sharded(table)
        names = sharded.shard_names if sharded is not None else [table]
        rows: list[tuple] = []
        for name in names:
            state = self._manager.state_of(name)
            rows.extend(image_rows(state.stable, self._read_layers(name)))
        return rows

    # -- writes ---------------------------------------------------------------

    def insert(self, table: str, row) -> int:
        self._require_active()
        sharded = self._sharded(table)
        if sharded is not None:
            row = sharded.schema.coerce_row(row)
            physical = sharded.physical_for(sharded.schema.sk_of(row))
            with sharded.merge_io_after():
                return self._updater(physical).insert(row)
        return self._updater(table).insert(row)

    def delete(self, table: str, sk) -> int:
        self._require_active()
        sharded = self._sharded(table)
        if sharded is not None:
            with sharded.merge_io_after():
                return self._updater(sharded.physical_for(sk)) \
                    .delete_by_key(sk)
        return self._updater(table).delete_by_key(sk)

    def modify(self, table: str, sk, column: str, value) -> int:
        self._require_active()
        sharded = self._sharded(table)
        if sharded is not None:
            with sharded.merge_io_after():
                return self._updater(sharded.physical_for(sk)) \
                    .modify_by_key(sk, column, value)
        return self._updater(table).modify_by_key(sk, column, value)

    def delete_at(self, table: str, rid: int, sk) -> None:
        self._require_active()
        self._updater(table).delete_at(rid, sk)

    def modify_at(self, table: str, rid: int, column: str, value) -> None:
        self._require_active()
        self._updater(table).modify_at(rid, column, value)

    def apply_batch(self, table: str, ops) -> int:
        """Apply a whole ``("ins", row) | ("del", sk) | ("mod", sk, col,
        value)`` batch through the vectorized bulk path; returns the
        number of operations applied. All-or-nothing: key errors are
        raised before anything lands in the Trans-PDT. A sharded logical
        name splits the batch into per-shard sub-batches, still
        all-or-nothing: *every* sub-batch is validated before any shard's
        Trans-PDT is touched."""
        self._require_active()
        sharded = self._sharded(table)
        if sharded is not None:
            with sharded.merge_io_after():
                staged = []
                for physical, sub in sharded.split_ops(ops):
                    state = self._manager.state_of(physical)
                    updater = BatchUpdater(
                        state.stable, self._update_layers(physical),
                        state.sparse_index,
                    )
                    staged.append((updater, updater.prepare(sub)))
                return sum(u.commit_staged(s) for u, s in staged)
        state = self._manager.state_of(table)
        return BatchUpdater(
            state.stable, self._update_layers(table), state.sparse_index
        ).apply(ops)

    # -- query-level isolation (footnote 5) -------------------------------------

    def begin_query(self) -> None:
        """Route subsequent updates into a private Query-PDT so the running
        statement does not observe its own changes."""
        self._require_active()
        if self._query is not None:
            raise TransactionError("query scope already open")
        self._query = {}

    def end_query(self) -> None:
        """Fold the Query-PDT into the Trans-PDT."""
        if self._query is None:
            raise TransactionError("no query scope open")
        for table, qpdt in self._query.items():
            if table not in self._trans:
                self._trans[table] = PDT(
                    self._manager.state_of(table).schema
                )
            propagate_batch(self._trans[table], qpdt)
        self._query = None

    # -- lifecycle ---------------------------------------------------------------

    def commit(self) -> None:
        self._require_active()
        if self._query is not None:
            self.end_query()
        self._manager.commit(self)

    def abort(self) -> None:
        self._require_active()
        self._manager.abort(self)

    def touched_tables(self) -> list[str]:
        return [t for t, pdt in self._trans.items() if not pdt.is_empty()]

    def __repr__(self) -> str:
        return (
            f"Transaction(id={self.txn_id}, lsn={self.start_lsn}, "
            f"{self.status.value})"
        )
