"""Transactions over snapshot-isolated, three-layer PDT stacks.

A transaction sees (equation (9))::

    TABLE = stable .Merge(Read-PDT) .Merge(Write-PDT snapshot) .Merge(Trans-PDT)

The Read-PDT is shared by reference (only Propagate mutates it, and only
when no snapshots are live); the Write-PDT snapshot is a copy taken at
transaction start (shared between transactions that started under the same
commit LSN); the Trans-PDT is private and collects this transaction's own
updates, so later queries in the transaction see its earlier effects.

An optional fourth *Query-PDT* layer (paper footnote 5) buffers the updates
of a single statement so the statement does not see its own changes
(Halloween protection); it is folded into the Trans-PDT when the statement
finishes.
"""

from __future__ import annotations

import enum

from ..core.pdt import PDT
from ..core.propagate import propagate_batch
from ..db.update_processor import BatchUpdater, PositionalUpdater
from ..engine.relation import Relation
from ..engine.scan import scan_pdt


class TxnStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TransactionError(RuntimeError):
    """Operation on a transaction in the wrong state."""


class Transaction:
    """One snapshot-isolated transaction; created by the manager."""

    def __init__(self, manager, txn_id: int, start_lsn: int):
        self._manager = manager
        self.txn_id = txn_id
        self.start_lsn = start_lsn
        self.status = TxnStatus.ACTIVE
        self._snapshots: dict = {}  # table -> write-PDT snapshot (or None)
        self._trans: dict[str, PDT] = {}  # table -> Trans-PDT
        self._query: dict[str, PDT] | None = None  # Query-PDT layer

    # -- layer plumbing ------------------------------------------------------

    def _read_layers(self, table: str) -> list:
        state = self._manager.state_of(table)
        layers = [state.read_pdt]
        snapshot = self._snapshot(table)
        if snapshot is not None:
            layers.append(snapshot)
        if table in self._trans:
            layers.append(self._trans[table])
        return layers

    def _update_layers(self, table: str) -> list:
        layers = self._read_layers(table)
        if table not in self._trans:
            self._trans[table] = PDT(self._manager.state_of(table).schema)
            layers.append(self._trans[table])
        if self._query is not None:
            pdt = self._query.setdefault(
                table, PDT(self._manager.state_of(table).schema)
            )
            layers.append(pdt)
        return layers

    def _snapshot(self, table: str):
        if table not in self._snapshots:
            self._snapshots[table] = self._manager.write_snapshot(
                table, self.start_lsn
            )
        return self._snapshots[table]

    def _updater(self, table: str) -> PositionalUpdater:
        state = self._manager.state_of(table)
        return PositionalUpdater(
            state.stable, self._update_layers(table), state.sparse_index
        )

    def _require_active(self) -> None:
        if self.status is not TxnStatus.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.status.value}"
            )

    # -- reads ----------------------------------------------------------------

    def scan(self, table: str, columns=None, batch_rows: int = 4096
             ) -> Relation:
        """Snapshot-consistent scan (sees this transaction's own updates)."""
        self._require_active()
        state = self._manager.state_of(table)
        return scan_pdt(state.stable, self._read_layers(table),
                        columns=columns, batch_rows=batch_rows)

    def image_rows(self, table: str) -> list[tuple]:
        """Full current image as tuples (testing convenience)."""
        from ..core.stack import image_rows

        self._require_active()
        state = self._manager.state_of(table)
        return image_rows(state.stable, self._read_layers(table))

    # -- writes ---------------------------------------------------------------

    def insert(self, table: str, row) -> int:
        self._require_active()
        return self._updater(table).insert(row)

    def delete(self, table: str, sk) -> int:
        self._require_active()
        return self._updater(table).delete_by_key(sk)

    def modify(self, table: str, sk, column: str, value) -> int:
        self._require_active()
        return self._updater(table).modify_by_key(sk, column, value)

    def delete_at(self, table: str, rid: int, sk) -> None:
        self._require_active()
        self._updater(table).delete_at(rid, sk)

    def modify_at(self, table: str, rid: int, column: str, value) -> None:
        self._require_active()
        self._updater(table).modify_at(rid, column, value)

    def apply_batch(self, table: str, ops) -> int:
        """Apply a whole ``("ins", row) | ("del", sk) | ("mod", sk, col,
        value)`` batch through the vectorized bulk path; returns the
        number of operations applied. All-or-nothing: key errors are
        raised before anything lands in the Trans-PDT."""
        self._require_active()
        state = self._manager.state_of(table)
        return BatchUpdater(
            state.stable, self._update_layers(table), state.sparse_index
        ).apply(ops)

    # -- query-level isolation (footnote 5) -------------------------------------

    def begin_query(self) -> None:
        """Route subsequent updates into a private Query-PDT so the running
        statement does not observe its own changes."""
        self._require_active()
        if self._query is not None:
            raise TransactionError("query scope already open")
        self._query = {}

    def end_query(self) -> None:
        """Fold the Query-PDT into the Trans-PDT."""
        if self._query is None:
            raise TransactionError("no query scope open")
        for table, qpdt in self._query.items():
            if table not in self._trans:
                self._trans[table] = PDT(
                    self._manager.state_of(table).schema
                )
            propagate_batch(self._trans[table], qpdt)
        self._query = None

    # -- lifecycle ---------------------------------------------------------------

    def commit(self) -> None:
        self._require_active()
        if self._query is not None:
            self.end_query()
        self._manager.commit(self)

    def abort(self) -> None:
        self._require_active()
        self._manager.abort(self)

    def touched_tables(self) -> list[str]:
        return [t for t, pdt in self._trans.items() if not pdt.is_empty()]

    def __repr__(self) -> str:
        return (
            f"Transaction(id={self.txn_id}, lsn={self.start_lsn}, "
            f"{self.status.value})"
        )
