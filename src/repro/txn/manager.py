"""Transaction manager: snapshot isolation with optimistic concurrency.

Implements Algorithm 9 (Finish/Commit/Abort): a committing transaction's
Trans-PDT is Serialized against every overlapping committed transaction in
commit order (detecting write-write conflicts), then Propagated into the
master Write-PDT. Serialized Trans-PDTs of recent commits are kept in the
``TZ`` set with a reference count of still-running overlapping
transactions, exactly as in the paper's Figure 15 walkthrough.

No locks are taken anywhere on the read path: queries run against shared
Read-PDTs and Write-PDT snapshots *loaned by reference* — "copying is not
always required" (section 3.3). A snapshot loan stays valid because the
commit path never mutates a Write-PDT somebody else is reading: when the
master Write-PDT is shared with a running transaction or a live pin,
Propagate runs into a fresh copy that then replaces the master
(copy-on-commit), and the loaned object is left exactly as it was.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field, fields

from ..core.pdt import PDT
from ..core.propagate import propagate_batch
from ..core.serialize import serialize
from ..core.types import TransactionConflict
from ..storage.sparse_index import SparseIndex
from ..storage.table import StableTable
from .pins import PinnedLayout, PinnedTable, SnapshotPin
from .transaction import Transaction, TransactionError, TxnStatus
from .wal import WriteAheadLog


@dataclass
class TableState:
    """Per-table storage + delta layers managed by the manager."""

    stable: StableTable
    read_pdt: PDT
    write_pdt: PDT
    sparse_index: SparseIndex | None = None
    last_commit_lsn: int = 0

    @property
    def schema(self):
        return self.stable.schema


@dataclass
class _CommitRecord:
    """A recently committed transaction kept for overlap serialization."""

    lsn: int
    tables: dict  # table -> serialized Trans-PDT (consecutive at this lsn)
    refcnt: int = 0


@dataclass
class ManagerStats:
    commits: int = 0
    aborts: int = 0
    conflicts: int = 0
    propagations: int = 0
    snapshot_copies: int = 0   # copy-on-commit: master replaced while loaned
    snapshot_reuses: int = 0   # snapshots handed out by reference (loans)

    def as_dict(self) -> dict:
        """JSON-able view; the surface ``Database.metrics()`` reads.
        Prefer this over poking the counter fields directly."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class TransactionManager:
    """Lock-free transaction management over PDT-layered tables."""

    def __init__(self, wal: WriteAheadLog | None = None,
                 sparse_granularity: int = 4096):
        self._tables: dict[str, TableState] = {}
        # logical name -> ShardedTable; shared with the owning Database so
        # transactions can route logical sharded names to physical shards.
        self.sharded_tables: dict = {}
        self._running: dict[int, Transaction] = {}
        self._tz: list[_CommitRecord] = []
        self._lsn = 0
        self._next_txn_id = 1
        self.wal = wal if wal is not None else WriteAheadLog()
        # Per-thread durability deferral (see defer_durability()): the
        # service stages the WAL record under its write lock but waits for
        # the shared group fsync outside it, so waits overlap.
        self._deferred = threading.local()
        self.sparse_granularity = sparse_granularity
        self.stats = ManagerStats()
        # Observability bundle (set by the owning Database): when present,
        # _finish times its stages into the commit histograms and emits a
        # txn.commit span. A bare manager (tests, tools) pays nothing.
        self.obs = None
        self._commit_listeners: list = []
        self._next_pin_id = 1
        self._pins: dict[int, SnapshotPin] = {}
        self._pin_counts: dict[str, int] = {}  # physical table -> live pins
        # Pins are released from whatever thread finishes a cursor, while
        # new pins and is_pinned checks run on writer/maintenance threads.
        self._pin_lock = threading.Lock()

    def add_commit_listener(self, listener) -> None:
        """Register ``listener(tables)`` to run after each successful commit
        that changed data. Listeners run at the end of Finish, when the
        committing transaction is already off the running list — so a
        listener sees a quiescent system whenever no *other* transactions
        are active (which is what lets the checkpoint scheduler piggyback
        maintenance on the commit path)."""
        self._commit_listeners.append(listener)

    # -- table registry ---------------------------------------------------------

    def register_table(self, stable: StableTable) -> TableState:
        if stable.name in self._tables:
            raise ValueError(f"table {stable.name!r} already registered")
        state = TableState(
            stable=stable,
            read_pdt=PDT(stable.schema),
            write_pdt=PDT(stable.schema),
            sparse_index=SparseIndex(stable, self.sparse_granularity),
        )
        self._tables[stable.name] = state
        return state

    def unregister_table(self, table: str) -> TableState:
        """Drop a table from the registry (shard rebalancing retires the
        shards it replaces). Requires a quiescent point: a running
        transaction may hold snapshots of — or Trans-PDT entries against —
        the departing table."""
        if self._running:
            raise TransactionError(
                "unregister requires no running transactions"
            )
        try:
            state = self._tables.pop(table)
        except KeyError:
            raise KeyError(f"unknown table {table!r}") from None
        return state

    def state_of(self, table: str) -> TableState:
        try:
            return self._tables[table]
        except KeyError:
            raise KeyError(f"unknown table {table!r}") from None

    def table_names(self) -> list[str]:
        return list(self._tables)

    # -- snapshots ---------------------------------------------------------------

    def write_snapshot(self, table: str, start_lsn: int):
        """Write-PDT snapshot as of ``start_lsn`` (None when it was empty).

        The snapshot is the master Write-PDT itself, *loaned by
        reference* — "copying is not always required" (section 3.3). The
        loan is safe because Propagate never mutates a shared master: a
        commit that finds its Write-PDT loaned out propagates into a
        fresh copy and swings the master to it (see :meth:`_finish`), so
        every loan keeps describing the commit point it was taken at.
        Transactions and pins taken under the same commit LSN therefore
        share one object, and the commit fast path (nothing loaned)
        copies nothing at all.
        """
        state = self.state_of(table)
        if state.last_commit_lsn > start_lsn:
            raise TransactionError(
                f"snapshot of {table!r} requested after a newer commit; "
                f"snapshots must be pinned at transaction start"
            )
        if state.write_pdt.is_empty():
            return None
        self.stats.snapshot_reuses += 1
        return state.write_pdt

    # -- snapshot pins -----------------------------------------------------------

    def pin_snapshot(self) -> SnapshotPin:
        """Pin the current commit point of *every* table (see
        :mod:`repro.txn.pins`).

        Requires no quiescence: the pin captures committed state only
        (running transactions' Trans-PDTs are invisible to it). Write-PDT
        snapshots are reference loans — the same ones transaction starts
        take — so pins and transactions under one commit LSN share one
        object and pinning copies nothing. While the pin is live,
        maintenance on its tables is deferred or runs copy-on-write and
        commits touching them propagate copy-on-commit; release pins
        promptly (the scheduler can flag overdue ones, see
        ``max_pin_age_s``).
        """
        tables = {
            name: PinnedTable(
                name=name,
                stable=state.stable,
                read_pdt=state.read_pdt,
                write_pdt=self.write_snapshot(name, self._lsn),
                sparse_index=state.sparse_index,
                lsn=state.last_commit_lsn,
                image_lsn=state.stable.image_lsn,
            )
            for name, state in self._tables.items()
        }
        layouts = {
            logical: PinnedLayout(
                boundaries=tuple(tuple(b) for b in sharded.router.boundaries),
                shard_names=tuple(sharded.shard_names),
            )
            for logical, sharded in self.sharded_tables.items()
        }
        with self._pin_lock:
            pin = SnapshotPin(
                manager=self, pin_id=self._next_pin_id, tables=tables,
                layouts=layouts, lsn=self._lsn,
                created_at=time.monotonic(),
            )
            self._next_pin_id += 1
            self._pins[pin.pin_id] = pin
            for name in tables:
                self._pin_counts[name] = self._pin_counts.get(name, 0) + 1
        return pin

    def release_pin(self, pin: SnapshotPin) -> None:
        """Drop a pin's references; deferred maintenance becomes eligible
        again once the last pin covering a table drains. (Called via
        :meth:`SnapshotPin.release`, which makes it idempotent; safe from
        any thread — cursors release pins from their consumers.)"""
        with self._pin_lock:
            if self._pins.pop(pin.pin_id, None) is None:
                return
            for name in pin.tables:
                left = self._pin_counts.get(name, 0) - 1
                if left > 0:
                    self._pin_counts[name] = left
                else:
                    self._pin_counts.pop(name, None)

    def is_pinned(self, table: str) -> bool:
        """True while any live pin captured ``table``'s current version."""
        with self._pin_lock:
            return table in self._pin_counts

    def pin_count(self, table: str | None = None) -> int:
        with self._pin_lock:
            if table is None:
                return len(self._pins)
            return self._pin_counts.get(table, 0)

    def oldest_pin_age(self, table: str | None = None) -> float:
        """Seconds since the oldest live pin (covering ``table``, or any
        table) was taken; 0.0 when none are live. The scheduler uses
        this to flag stuck clients whose pins stall maintenance."""
        now = time.monotonic()
        with self._pin_lock:
            ages = [
                now - pin.created_at
                for pin in self._pins.values()
                if table is None or table in pin.tables
            ]
        return max(ages, default=0.0)

    # -- transaction lifecycle ------------------------------------------------------

    def begin(self) -> Transaction:
        txn = Transaction(self, self._next_txn_id, start_lsn=self._lsn)
        self._next_txn_id += 1
        self._running[txn.txn_id] = txn
        # Loan non-empty write-PDT snapshots now: later commits must not
        # leak into this transaction's view (they swing the master to a
        # copy instead of mutating a loaned object).
        for name, state in self._tables.items():
            if not state.write_pdt.is_empty():
                txn._snapshots[name] = self.write_snapshot(
                    name, txn.start_lsn
                )
            # Empty write-PDTs are pinned lazily as None-or-copy; record
            # emptiness eagerly for correctness:
            else:
                txn._snapshots[name] = None
        return txn

    def commit(self, txn: Transaction) -> None:
        """Finish(ok=True): serialize against overlaps, then propagate."""
        self._finish(txn, ok=True)

    def abort(self, txn: Transaction) -> None:
        """Finish(ok=False): release overlap references, discard updates."""
        self._finish(txn, ok=False)

    def _finish(self, txn: Transaction, ok: bool) -> None:
        obs = self.obs
        if obs is None:
            self._finish_inner(txn, ok, None)
            return
        # Stage timings land in `timings` only for commits that changed
        # data — the per-commit Python overhead the ROADMAP wants
        # profiled. The span nests any group-flush span the commit leads.
        timings: dict = {}
        t0 = time.perf_counter()
        try:
            if obs.tracer.enabled:
                with obs.tracer.start("txn.commit" if ok else "txn.abort",
                                      txn_id=txn.txn_id) as span:
                    self._finish_inner(txn, ok, timings)
                    span.attrs.update({
                        f"{k}_ms": round(v * 1e3, 3)
                        for k, v in timings.items()
                    })
            else:
                self._finish_inner(txn, ok, timings)
        finally:
            if timings:
                obs.commit_seconds.observe(time.perf_counter() - t0)
                for stage, secs in timings.items():
                    obs.commit_stage_seconds[stage].observe(secs)

    def _finish_inner(self, txn: Transaction, ok: bool,
                      timings: dict | None) -> None:
        if txn.txn_id not in self._running:
            raise TransactionError(f"transaction {txn.txn_id} not running")
        trans_pdts = {
            name: pdt for name, pdt in txn._trans.items() if not pdt.is_empty()
        }
        conflict: TransactionConflict | None = None
        t_ser = time.perf_counter() if timings is not None else 0.0
        for record in list(self._tz):
            if record.lsn <= txn.start_lsn:
                continue  # committed before txn started: no overlap
            if ok and conflict is None:
                try:
                    for name, committed_pdt in record.tables.items():
                        if name in trans_pdts:
                            trans_pdts[name] = serialize(
                                trans_pdts[name], committed_pdt
                            )
                except TransactionConflict as exc:
                    conflict = exc
                    self.stats.conflicts += 1
            record.refcnt -= 1
            if record.refcnt == 0:
                self._tz.remove(record)
        ser_s = (time.perf_counter() - t_ser) if timings is not None else 0.0
        del self._running[txn.txn_id]

        if not ok or conflict is not None:
            txn.status = TxnStatus.ABORTED
            self.stats.aborts += 1
            if conflict is not None:
                raise conflict
            return

        ticket = None
        t_prop = time.perf_counter() if timings is not None else 0.0
        wal_s = 0.0
        if trans_pdts:
            self._lsn += 1
            for name, pdt in trans_pdts.items():
                state = self.state_of(name)
                if self._write_pdt_shared(name, state):
                    # The master is loaned out (a running transaction or
                    # live pin reads it): propagate into a copy and swing
                    # the master, leaving every loan untouched.
                    fresh = state.write_pdt.copy()
                    propagate_batch(fresh, pdt)
                    state.write_pdt = fresh
                    self.stats.snapshot_copies += 1
                else:
                    propagate_batch(state.write_pdt, pdt)
                state.last_commit_lsn = self._lsn
                self.stats.propagations += 1
            t_wal = time.perf_counter() if timings is not None else 0.0
            ticket = self.wal.append_commit(self._lsn, trans_pdts)
            if timings is not None:
                wal_s = time.perf_counter() - t_wal
            if self._running:
                self._tz.append(
                    _CommitRecord(
                        lsn=self._lsn,
                        tables=trans_pdts,
                        refcnt=len(self._running),
                    )
                )
        txn.status = TxnStatus.COMMITTED
        self.stats.commits += 1
        prop_s = 0.0
        if timings is not None and trans_pdts:
            prop_s = t_wal - t_prop  # propagation ends at the WAL append
        if trans_pdts:
            for listener in self._commit_listeners:
                listener(list(trans_pdts))
        wait_s = 0.0
        if ticket is not None:
            # Group commit: the record is staged, not yet fsynced. Wait
            # here (after listeners — a listener-triggered checkpoint
            # rewrite resolves staged tickets itself) unless this thread
            # deferred durability to overlap waits across writers.
            if getattr(self._deferred, "active", False):
                self._deferred.ticket = ticket
            else:
                t_wait = time.perf_counter() if timings is not None else 0.0
                self.wal.wait_durable(ticket)
                if timings is not None:
                    wait_s = time.perf_counter() - t_wait
        if timings is not None and trans_pdts:
            timings.update(serialize=ser_s, propagate=prop_s,
                           wal_append=wal_s, durability_wait=wait_s)

    def _write_pdt_shared(self, name: str, state: TableState) -> bool:
        """Is the master Write-PDT loaned to anyone who must not see the
        commit being propagated? (The committer itself is already off the
        running list when this is asked.) Empty masters are never loaned:
        ``write_snapshot`` returns None for them."""
        current = state.write_pdt
        if current.is_empty():
            return False
        for txn in self._running.values():
            if txn._snapshots.get(name) is current:
                return True
        with self._pin_lock:
            for pin in self._pins.values():
                pinned = pin.tables.get(name)
                if pinned is not None and pinned.write_pdt is current:
                    return True
        return False

    # -- durability deferral (group-commit write path) -------------------------

    @contextlib.contextmanager
    def defer_durability(self):
        """Within the block, this thread's commits stage their WAL record
        but do not wait for the shared group fsync; the caller collects
        the ticket with :meth:`take_deferred_ticket` and waits outside
        its critical section. Without group commit (or on non-durable
        logs) commits behave exactly as before and the ticket is None."""
        self._deferred.active = True
        self._deferred.ticket = None
        try:
            yield
        finally:
            self._deferred.active = False

    def take_deferred_ticket(self):
        """The ticket stashed by the last deferred commit on this thread
        (None when it needed no wait); clears the stash."""
        ticket = getattr(self._deferred, "ticket", None)
        self._deferred.ticket = None
        return ticket

    # -- reads outside transactions ---------------------------------------------------

    def latest_layers(self, table: str) -> list[PDT]:
        """Read/Write layer stack reflecting the latest committed state."""
        state = self.state_of(table)
        return [state.read_pdt, state.write_pdt]

    def running_count(self) -> int:
        return len(self._running)

    def tz_size(self) -> int:
        return len(self._tz)

    # -- maintenance -------------------------------------------------------------------

    def propagate_write_to_read(self, table: str) -> None:
        """Migrate the master Write-PDT into the Read-PDT (section 3.3).

        Requires a quiescent point: running transactions hold Write-PDT
        snapshot loans whose contents would be double-applied if the
        shared Read-PDT absorbed them mid-flight.
        """
        if self._running:
            raise TransactionError(
                "write->read propagation requires no running transactions"
            )
        state = self.state_of(table)
        if state.write_pdt.is_empty():
            return
        if self.is_pinned(table):
            # A live pin references this Read-PDT (and loans the Write-PDT
            # about to fold into it): migrate into a fresh copy so the
            # pinned stack keeps describing the pinned version.
            state.read_pdt = state.read_pdt.copy()
        propagate_batch(state.read_pdt, state.write_pdt)
        # Swing, don't clear: the old Write-PDT object may still be loaned
        # to a pin, and its contents now live in the (possibly copied)
        # Read-PDT of the *new* stack only.
        state.write_pdt = PDT(state.schema)
        self.stats.propagations += 1

    def maybe_propagate(self, table: str, write_limit_bytes: int) -> bool:
        """Propagate Write->Read when the Write-PDT outgrows its budget
        (the paper keeps it smaller than the CPU cache)."""
        state = self.state_of(table)
        if state.write_pdt.memory_usage() <= write_limit_bytes:
            return False
        if self._running:
            return False
        self.propagate_write_to_read(table)
        return True
