"""Checkpointing: folding accumulated deltas back into stable storage.

When the RAM-resident differential structures grow too large (or on a
schedule), a new stable table image is materialized with all updates
applied, the Read-PDT is emptied, and query processing switches over
(paper section 2, "Checkpointing"). SIDs are renumbered by this operation
— the only event in a tuple's lifetime that changes its SID — so the
sparse index is rebuilt and the WAL can be truncated.
"""

from __future__ import annotations

from ..core.pdt import PDT
from ..core.stack import image_rows
from ..storage.sparse_index import SparseIndex
from ..storage.table import StableTable
from .manager import TransactionManager
from .transaction import TransactionError


def checkpoint_table(manager: TransactionManager, table: str) -> StableTable:
    """Materialize merge(stable, Read, Write) as the new stable image.

    Requires a quiescent point (no running transactions). Returns the new
    stable table; the manager's state is switched over in place and the
    WAL truncated once every table's deltas are either checkpointed or
    still empty.
    """
    if manager.running_count():
        raise TransactionError("checkpoint requires no running transactions")
    state = manager.state_of(table)
    rows = image_rows(state.stable, [state.read_pdt, state.write_pdt])
    pool = state.stable.pool
    new_stable = StableTable.bulk_load(table, state.schema, rows)
    if pool is not None:
        pool.store.drop_table(table)
        new_stable.attach_storage(pool)
        pool.clear()
    state.stable = new_stable
    state.read_pdt = PDT(state.schema)
    state.write_pdt = PDT(state.schema)
    state.sparse_index = SparseIndex(new_stable, manager.sparse_granularity)
    manager._snapshot_cache.pop(table, None)
    _truncate_wal_if_clean(manager)
    return new_stable


def checkpoint_all(manager: TransactionManager) -> None:
    for name in manager.table_names():
        checkpoint_table(manager, name)


def _truncate_wal_if_clean(manager: TransactionManager) -> None:
    """Drop the WAL when no table still carries un-checkpointed deltas."""
    for name in manager.table_names():
        state = manager.state_of(name)
        if not (state.read_pdt.is_empty() and state.write_pdt.is_empty()):
            return
    manager.wal.truncate()


def delta_memory_usage(manager: TransactionManager, table: str) -> int:
    """Bytes of RAM-resident delta state for checkpoint-threshold policies."""
    state = manager.state_of(table)
    return state.read_pdt.memory_usage() + state.write_pdt.memory_usage()
