"""Checkpointing: folding accumulated deltas back into stable storage.

When the RAM-resident differential structures grow too large (or on a
schedule), a new stable table image is materialized with all updates
applied, the Read-PDT is emptied, and query processing switches over
(paper section 2, "Checkpointing"). SIDs are renumbered by this operation
— the only event in a tuple's lifetime that changes its SID — so the
sparse index is rebuilt and the WAL can be truncated.

Two granularities are provided:

* :func:`checkpoint_table` — the paper's stop-the-world fold of *all*
  deltas into a fresh stable image.
* :func:`checkpoint_table_range` — an incremental fold of one stable SID
  range, SynchroStore-style: only the blocks covering the range are
  rewritten, entries outside the range survive with rebased SIDs, and the
  rest of the buffer pool stays hot. The cost-based policies in
  :mod:`repro.txn.scheduler` use it to drain the hottest block ranges
  between queries instead of stalling on a full rewrite.
"""

from __future__ import annotations

import numpy as np

from ..core.merge import BlockMerger
from ..core.pdt import PDT
from ..core.stack import image_rows
from ..core.types import KIND_DEL, KIND_INS
from ..storage.column import Column
from ..storage.sparse_index import SparseIndex
from ..storage.table import StableTable
from .manager import TransactionManager
from .transaction import TransactionError


def checkpoint_table(manager: TransactionManager, table: str) -> StableTable:
    """Materialize merge(stable, Read, Write) as the new stable image.

    Requires a quiescent point (no running transactions). Returns the new
    stable table; the manager's state is switched over in place and the
    WAL truncated once every table's deltas are either checkpointed or
    still empty.
    """
    if manager.running_count():
        raise TransactionError("checkpoint requires no running transactions")
    state = manager.state_of(table)
    rows = image_rows(state.stable, [state.read_pdt, state.write_pdt])
    pool = state.stable.pool
    new_stable = StableTable.bulk_load(table, state.schema, rows)
    if pool is not None:
        if manager.is_pinned(table):
            # The new image reuses this table's block namespace; keep
            # pinned readers correct by switching the outgoing stable to
            # its retained in-memory columns before the blocks go away.
            state.stable.detach_storage()
        pool.store.drop_table(table)
        new_stable.attach_storage(pool)
        # Publish the new image (fsync blocks, atomically swap the
        # catalog) *before* the WAL rebase below drops the folded
        # records. A kill before the publish recovers the old image plus
        # the full log; after it, the persisted image_lsn makes replay
        # skip the folded history even if the rebase never landed.
        pool.store.set_image_lsn(table, manager._lsn)
        new_stable.image_lsn = manager._lsn
        new_stable.image_epoch = pool.store.table_epoch(table)
        pool.store.sync()
        pool.clear()
    state.stable = new_stable
    state.read_pdt = PDT(state.schema)
    state.write_pdt = PDT(state.schema)
    state.sparse_index = SparseIndex(new_stable, manager.sparse_granularity)
    # This table's logged deltas are folded into the new image; drop them
    # from the WAL so recovery cannot double-apply them (other tables'
    # records stay).
    manager.wal.rebase_table(table)
    _truncate_wal_if_clean(manager)
    return new_stable


def checkpoint_all(manager: TransactionManager) -> None:
    for name in manager.table_names():
        checkpoint_table(manager, name)


def checkpoint_table_range(manager: TransactionManager, table: str,
                           sid_lo: int, sid_hi: int) -> int:
    """Incrementally fold deltas of one stable SID range ``[sid_lo, sid_hi)``
    into the stable image, leaving the rest of the table's deltas in place.

    The committed Write-PDT is first propagated down so the Read-PDT holds
    every committed delta, then the range is merged and spliced between the
    untouched stable prefix and suffix. Entries outside the range survive:
    prefix entries verbatim, suffix entries with SIDs rebased by the
    range's net row-count change (the only SIDs the rebuild renumbers).
    A range reaching the table end also folds trailing inserts.

    Requires a quiescent point, like every stable-image rewrite. Returns
    the number of update entries folded (0 when the range was clean; the
    stable image is left untouched in that case).
    """
    if sid_hi < sid_lo:
        raise ValueError(f"bad checkpoint range [{sid_lo}, {sid_hi})")
    if manager.running_count():
        raise TransactionError("checkpoint requires no running transactions")
    state = manager.state_of(table)
    manager.propagate_write_to_read(table)
    read_pdt = state.read_pdt
    if read_pdt.is_empty():
        return 0
    n_rows = state.stable.num_rows
    sid_lo = max(0, min(sid_lo, n_rows))
    to_end = sid_hi >= n_rows
    sid_hi = min(sid_hi, n_rows)

    sids, kinds, refs = read_pdt.entry_lists()
    in_range = [
        i for i, sid in enumerate(sids)
        if sid_lo <= sid < sid_hi or (to_end and sid >= sid_hi)
    ]
    if not in_range:
        return 0

    # Merge just the range through a single-layer BlockMerger.
    schema = state.schema
    columns = list(schema.column_names)
    merger = BlockMerger(read_pdt, columns)
    merged: dict[str, list[np.ndarray]] = {c: [] for c in columns}
    batches = state.stable.scan(columns=columns, start=sid_lo, stop=sid_hi)
    for _, arrays in merger.merge_batches(batches, drain_tail=to_end,
                                          start_sid=sid_lo):
        for c in columns:
            merged[c].append(arrays[c])

    old_len = sid_hi - sid_lo
    new_len = sum(len(a) for a in merged[columns[0]]) if columns else 0
    shift = new_len - old_len

    new_columns = []
    for spec in schema.columns:
        col = state.stable.column(spec.name)
        pieces = [col.slice(0, sid_lo)] + merged[spec.name] \
            + [col.slice(sid_hi, n_rows)]
        new_columns.append(
            Column(spec.name, spec.dtype,
                   np.concatenate([p for p in pieces if len(p)])
                   if any(len(p) for p in pieces)
                   else np.empty(0, dtype=spec.dtype.numpy_dtype))
        )
    new_stable = StableTable(table, schema, new_columns)

    # Rebase the surviving entries into a fresh Read-PDT.
    survivor = PDT(schema, fanout=read_pdt.fanout)
    folded = 0
    for sid, kind, ref in zip(sids, kinds, refs):
        if sid_lo <= sid < sid_hi or (to_end and sid >= sid_hi):
            folded += 1
            continue
        new_sid = sid if sid < sid_lo else sid + shift
        if kind == KIND_INS:
            payload = list(read_pdt.values.get_insert(ref))
        elif kind == KIND_DEL:
            payload = read_pdt.values.get_delete(ref)
        else:
            payload = read_pdt.values.get_modify(kind, ref)
        survivor.append_entry(new_sid, kind, payload)

    pool = state.stable.pool
    if pool is not None:
        if manager.is_pinned(table):
            state.stable.detach_storage()  # pinned readers keep the old image
        pool.store.drop_table(table)
        new_stable.attach_storage(pool)
        if not survivor.is_empty():
            # Surviving deltas must be durable before the publish makes
            # replay skip the commit history that carried them: the
            # snapshot is tagged with the image it is consecutive to and
            # only applies once that image's catalog is the published one.
            manager.wal.append_snapshot(
                table, survivor, lsn=manager._lsn,
                for_image_lsn=manager._lsn,
            )
        pool.store.set_image_lsn(table, manager._lsn)
        new_stable.image_lsn = manager._lsn
        new_stable.image_epoch = pool.store.table_epoch(table)
        pool.store.sync()
        pool.evict_table(table)
    state.stable = new_stable
    state.read_pdt = survivor
    state.sparse_index = SparseIndex(new_stable, manager.sparse_granularity)
    # Replace this table's WAL history with one snapshot of the surviving
    # (rebased) deltas: recovery then replays exactly the still-live
    # entries against the new stable image, never the folded ones.
    manager.wal.rebase_table(table, survivor, lsn=manager._lsn)
    _truncate_wal_if_clean(manager)
    return folded


def _truncate_wal_if_clean(manager: TransactionManager) -> None:
    """Drop the WAL when no table still carries un-checkpointed deltas."""
    for name in manager.table_names():
        state = manager.state_of(name)
        if not (state.read_pdt.is_empty() and state.write_pdt.is_empty()):
            return
    manager.wal.truncate()


def delta_memory_usage(manager: TransactionManager, table: str) -> int:
    """Bytes of RAM-resident delta state for checkpoint-threshold policies."""
    state = manager.state_of(table)
    return state.read_pdt.memory_usage() + state.write_pdt.memory_usage()
