"""Per-query profiles, the slow-query log, and commit-stage timings.

:class:`QueryProfile` is built by the streaming cursor as blocks flow:
plan time, time-to-first-block, total drain time, and per-shard
blocks/rows (counted where the shard feeds hand blocks to the cursor,
i.e. what each shard's pipeline actually streamed — pre-filter, so
union over-scan is visible). When tracing is enabled the profile also
reports remote vs local block counts, read off the query's span tree at
finish time (the router annotates shard-scan spans; the worker reports
its own).

:class:`SlowQueryLog` keeps a bounded ring of queries that exceeded the
``slow_query_ms`` threshold. Each entry carries the profile dict and —
when tracing is on — the rendered span tree, and is also emitted
through :mod:`logging` (logger ``repro.obs.slow``), so a production run
gets actionable flight-recorder output without any polling.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from dataclasses import dataclass, field

log = logging.getLogger("repro.obs.slow")


@dataclass
class ShardScanProfile:
    """What one shard streamed into one query."""

    shard: str
    blocks: int = 0
    rows: int = 0

    def as_dict(self) -> dict:
        return {"shard": self.shard, "blocks": self.blocks,
                "rows": self.rows}


@dataclass
class QueryProfile:
    """Where one query's time and rows went."""

    table: str
    trace_id: str | None = None
    plan_s: float = 0.0
    total_s: float | None = None
    time_to_first_block_s: float | None = None
    rows: int = 0          # post-filter rows delivered to the consumer
    blocks: int = 0        # post-filter blocks delivered to the consumer
    shards: int = 0
    shared_jobs: int = 0   # jobs this query attached to instead of owning
    remote_blocks: int | None = None  # from span attrs; None w/o tracing
    local_blocks: int | None = None
    per_shard: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "table": self.table,
            "trace_id": self.trace_id,
            "plan_s": self.plan_s,
            "total_s": self.total_s,
            "time_to_first_block_s": self.time_to_first_block_s,
            "rows": self.rows,
            "blocks": self.blocks,
            "shards": self.shards,
            "shared_jobs": self.shared_jobs,
            "remote_blocks": self.remote_blocks,
            "local_blocks": self.local_blocks,
            "per_shard": [sp.as_dict() for sp in self.per_shard],
        }

    def fill_from_spans(self, spans) -> None:
        """Sum remote/local block counts off this query's spans.

        The router stamps ``remote_blocks``/``local_blocks`` on the
        shard-scan span it drove; a shard scan that never consulted the
        router (thread mode, or a payload-ineligible shard) carries only
        the job's ``blocks`` attr and counts as local."""
        remote = local = 0
        for span in spans:
            r = span.attrs.get("remote_blocks")
            l = span.attrs.get("local_blocks")
            if r is None and l is None and span.name == "shard.scan":
                l = span.attrs.get("blocks", 0)
            remote += r or 0
            local += l or 0
        self.remote_blocks = remote
        self.local_blocks = local


class SlowQueryLog:
    """Bounded ring of slow-query records; disabled when threshold is
    None."""

    def __init__(self, threshold_ms: float | None = None,
                 capacity: int = 256):
        self.threshold_ms = threshold_ms
        self._entries: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.threshold_ms is not None

    def check(self, profile: QueryProfile, sink=None) -> bool:
        """Record (and log) the query if it crossed the threshold."""
        if self.threshold_ms is None or profile.total_s is None:
            return False
        elapsed_ms = profile.total_s * 1e3
        if elapsed_ms < self.threshold_ms:
            return False
        tree = ""
        if sink is not None and profile.trace_id is not None:
            tree = sink.render(profile.trace_id)
        entry = {"profile": profile.as_dict(), "span_tree": tree}
        with self._lock:
            self._entries.append(entry)
        log.warning(
            "slow query: table=%s %.2fms (threshold %.2fms) rows=%d "
            "shards=%d%s",
            profile.table, elapsed_ms, self.threshold_ms, profile.rows,
            profile.shards, ("\n" + tree) if tree else "",
        )
        return True

    def entries(self) -> list[dict]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
