"""Unified observability: metrics registry, trace spans, profiling.

:class:`Observability` is the per-database bundle ``Database`` creates
and hands to every layer (service, executor router, transaction
manager, WAL group commit). It owns:

* ``registry`` — the :class:`~repro.obs.registry.MetricsRegistry` all
  counters/gauges/histograms and the six legacy stats surfaces
  register into; snapshotted by ``Database.metrics()``.
* ``tracer`` / ``sink`` — span creation and the bounded ring of
  finished spans (``None`` sink ⇒ tracing disabled, near-zero cost).
* ``slow_log`` — the slow-query ring fed by cursor finish.
* the core always-on histograms: end-to-end query latency and the
  commit path broken into its stages (serialize, propagate,
  wal-append, durability-wait) — the ~0.15 ms/commit Python overhead
  the ROADMAP wants profiled, now measured on every commit.

Overhead budget: with tracing off, instrumentation is a handful of
``perf_counter`` calls and histogram observes per query/commit; with
tracing on, a few span allocations per query and one per commit. Both
are gated ≤5 % by ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import contextlib
import threading
import time

from .profile import QueryProfile, ShardScanProfile, SlowQueryLog
from .registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_text,
)
from .trace import Span, TraceSink, Tracer, worker_span_dict

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "prometheus_text",
    "Span",
    "TraceSink",
    "Tracer",
    "worker_span_dict",
    "QueryProfile",
    "ShardScanProfile",
    "SlowQueryLog",
    "Observability",
]

#: Commit-stage histogram names, in pipeline order.
COMMIT_STAGES = ("serialize", "propagate", "wal_append", "durability_wait")


class Observability:
    """One database's metrics registry, tracer, and profiling hooks."""

    def __init__(self, trace=None, slow_query_ms: float | None = None,
                 trace_capacity: int = 4096):
        self.registry = MetricsRegistry()
        if trace is None or trace is False:
            self.sink = None
        elif isinstance(trace, TraceSink):
            self.sink = trace
        elif trace is True:
            self.sink = TraceSink(trace_capacity)
        elif isinstance(trace, int):
            self.sink = TraceSink(trace)
        else:
            raise TypeError(
                f"trace= expects True, a capacity, or a TraceSink, "
                f"not {trace!r}")
        self.tracer = Tracer(self.sink)
        self.slow_log = SlowQueryLog(slow_query_ms)
        # Always-on core histograms.
        self.query_seconds = self.registry.histogram(
            "query_seconds", help="end-to-end query latency")
        self.query_first_block_seconds = self.registry.histogram(
            "query_first_block_seconds",
            help="submit to first streamed block")
        self.commit_seconds = self.registry.histogram(
            "commit_seconds", help="end-to-end commit latency")
        self.commit_stage_seconds = {
            stage: self.registry.histogram(
                f"commit_{stage}_seconds",
                help=f"commit stage: {stage}")
            for stage in COMMIT_STAGES
        }
        self.group_flush_seconds = self.registry.histogram(
            "group_flush_seconds",
            help="one group-commit flush (append + fsync), leader-side")

    def observe_query(self, profile: QueryProfile) -> None:
        """Cursor-finish hook: latency histograms + slow-query check."""
        if profile.total_s is not None:
            self.query_seconds.observe(profile.total_s)
        if profile.time_to_first_block_s is not None:
            self.query_first_block_seconds.observe(
                profile.time_to_first_block_s)
        if self.sink is not None and profile.trace_id is not None:
            profile.fill_from_spans(self.sink.spans(profile.trace_id))
        self.slow_log.check(profile, sink=self.sink)

    def observe_simple_query(self, table: str, seconds: float,
                             rows: int = 0, trace_id=None) -> None:
        """Inline (non-cursor) query paths: record latency and run the
        slow-query check with a minimal profile."""
        self.query_seconds.observe(seconds)
        if self.slow_log.enabled:
            profile = QueryProfile(table=table, total_s=seconds,
                                   rows=rows, trace_id=trace_id)
            if self.sink is not None and trace_id is not None:
                profile.fill_from_spans(self.sink.spans(trace_id))
            self.slow_log.check(profile, sink=self.sink)

    # Re-entrancy guard for the inline query entry points: Database.query
    # delegates to query_point/query_range, and only the outermost call
    # should open the root span and observe the latency histogram.
    _tl = threading.local()

    @contextlib.contextmanager
    def query_scope(self, table: str):
        """Instrument one top-level inline query: a root ``query`` span
        (when tracing) plus the end-to-end latency observation. Yields a
        mutable info dict (set ``info["rows"]``) — or ``None`` on
        re-entrant (delegated) calls, which are left untouched."""
        if getattr(self._tl, "active", False):
            yield None
            return
        self._tl.active = True
        info = {"rows": 0}
        t0 = time.perf_counter()
        trace_id = None
        try:
            if self.tracer.enabled:
                with self.tracer.start("query", table=table) as span:
                    trace_id = span.trace_id
                    yield info
                    span.attrs["rows"] = info["rows"]
            else:
                yield info
        finally:
            self._tl.active = False
            self.observe_simple_query(
                table, time.perf_counter() - t0,
                rows=info["rows"], trace_id=trace_id)

    def time(self) -> float:
        return time.perf_counter()
