"""A lock-cheap metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` lives on every :class:`~repro.db.database.
Database` (``db.obs.registry``). Instruments are created idempotently by
name (``registry.counter("x")`` twice returns the same object), each
instrument carries its own small lock (no global registry lock on the
hot path), and a snapshot is a plain JSON-able dict that can be merged
with another snapshot — the property that lets per-shard or per-process
counters roll up into one database-wide view.

The six pre-existing stats surfaces (``IOStats``, ``ServiceStats``,
``SchedulerStats``, ``GroupCommitStats``, ``ManagerStats``,
``RequestStats``) are not rebuilt; they register as *sources* — zero-
argument callables returning their ``as_dict()`` — so a snapshot reads
them live without double-maintaining counters. Reading stats through
``Database.metrics()`` (registry + sources) is the supported surface;
poking the dataclass fields directly is deprecated.

``prometheus_text`` renders any snapshot in the Prometheus text
exposition format (``scripts/export_metrics.py`` is the CLI wrapper).
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left

#: Default latency buckets (seconds): 100us .. 10s, roughly log-spaced.
DEFAULT_LATENCY_BUCKETS_S = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value})"


class Gauge:
    """Point-in-time value: set explicitly or computed by a callback."""

    __slots__ = ("name", "help", "_value", "_fn", "_lock")

    def __init__(self, name: str, fn=None, help: str = ""):
        self.name = name
        self.help = help
        self._fn = fn
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` (inclusive upper
    bound) semantics plus an implicit +Inf overflow bucket.

    ``observe`` is two integer adds and a float add behind one lock —
    cheap enough for the commit path. ``quantile`` answers an estimate:
    the upper bound of the first bucket whose cumulative count covers
    the requested rank (the overflow bucket reports the largest finite
    bound, making p99 on a saturated histogram pessimistic-but-finite).
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count",
                 "_lock")

    def __init__(self, name: str, buckets=DEFAULT_LATENCY_BUCKETS_S,
                 help: str = ""):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for b, a in zip(bounds[1:], bounds)):
            raise ValueError("buckets must be strictly increasing")
        self.name = name
        self.help = help
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float | None:
        """Bucket-resolution quantile estimate; None when empty."""
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return None
        rank = q * total
        seen = 0
        for idx, n in enumerate(counts):
            seen += n
            if seen >= rank and n:
                if idx < len(self.buckets):
                    return self.buckets[idx]
                return self.buckets[-1]  # overflow: largest finite bound
        return self.buckets[-1]

    def as_dict(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            total, acc = self._count, self._sum
        return {
            "buckets": list(self.buckets),
            "counts": counts,
            "count": total,
            "sum": acc,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self._count})"


class MetricsRegistry:
    """Named instruments + live sources, snapshotted as one dict."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._sources: dict[str, object] = {}

    def _get_or_make(self, table: dict, name: str, make):
        with self._lock:
            inst = table.get(name)
            if inst is None:
                for other in (self._counters, self._gauges,
                              self._histograms):
                    if other is not table and name in other:
                        raise ValueError(
                            f"metric {name!r} already registered with a "
                            f"different type")
                inst = table[name] = make()
            return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_make(self._counters, name,
                                 lambda: Counter(name, help))

    def gauge(self, name: str, fn=None, help: str = "") -> Gauge:
        return self._get_or_make(self._gauges, name,
                                 lambda: Gauge(name, fn, help))

    def histogram(self, name: str, buckets=DEFAULT_LATENCY_BUCKETS_S,
                  help: str = "") -> Histogram:
        return self._get_or_make(self._histograms, name,
                                 lambda: Histogram(name, buckets, help))

    def register_source(self, name: str, fn) -> None:
        """Attach a live stats source: a zero-arg callable returning a
        JSON-able dict (typically a stats object's ``as_dict``)."""
        with self._lock:
            self._sources[name] = fn

    def snapshot(self) -> dict:
        """One coherent JSON-able view of every instrument and source."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            sources = dict(self._sources)
        out = {
            "counters": {n: c.value for n, c in counters.items()},
            "gauges": {n: g.value for n, g in gauges.items()},
            "histograms": {n: h.as_dict() for n, h in histograms.items()},
            "sources": {},
        }
        for name, fn in sources.items():
            try:
                out["sources"][name] = fn()
            except Exception as exc:  # a dead source must not kill scrape
                out["sources"][name] = {"error": repr(exc)}
        return out

    @staticmethod
    def merge_snapshots(a: dict, b: dict) -> dict:
        """Sum two snapshots (counters, histogram counts, numeric source
        fields); gauges take ``b``'s value. Histograms merge only when
        their bucket bounds agree."""
        out = {
            "counters": dict(a.get("counters", {})),
            "gauges": dict(a.get("gauges", {})),
            "histograms": {k: dict(v)
                           for k, v in a.get("histograms", {}).items()},
            "sources": {k: dict(v) if isinstance(v, dict) else v
                        for k, v in a.get("sources", {}).items()},
        }
        for name, val in b.get("counters", {}).items():
            out["counters"][name] = out["counters"].get(name, 0) + val
        out["gauges"].update(b.get("gauges", {}))
        for name, hist in b.get("histograms", {}).items():
            mine = out["histograms"].get(name)
            if mine is None:
                out["histograms"][name] = dict(hist)
                continue
            if list(mine["buckets"]) != list(hist["buckets"]):
                raise ValueError(
                    f"histogram {name!r}: bucket bounds differ")
            merged = dict(mine)
            merged["counts"] = [x + y for x, y in
                                zip(mine["counts"], hist["counts"])]
            merged["count"] = mine["count"] + hist["count"]
            merged["sum"] = mine["sum"] + hist["sum"]
            merged["p50"] = merged["p99"] = None  # recompute from counts
            out["histograms"][name] = merged
        for name, src in b.get("sources", {}).items():
            mine = out["sources"].get(name)
            if not isinstance(mine, dict) or not isinstance(src, dict):
                out["sources"][name] = src
                continue
            merged = dict(mine)
            for key, val in src.items():
                if isinstance(val, (int, float)) and \
                        isinstance(merged.get(key), (int, float)):
                    merged[key] = merged[key] + val
                else:
                    merged[key] = val
            out["sources"][name] = merged
        return out


_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(*parts: str) -> str:
    return _NAME_RE.sub("_", "_".join(p for p in parts if p))


def _walk_scalars(prefix: str, value, out: list) -> None:
    if isinstance(value, dict):
        for key, val in value.items():
            _walk_scalars(_prom_name(prefix, str(key)), val, out)
    elif isinstance(value, bool):
        out.append((prefix, int(value)))
    elif isinstance(value, (int, float)) and value is not None:
        out.append((prefix, value))


def prometheus_text(snapshot: dict, namespace: str = "repro") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as Prometheus text
    exposition format."""
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _prom_name(namespace, name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _prom_name(namespace, name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        metric = _prom_name(namespace, name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
        cumulative += hist["counts"][len(hist["buckets"])]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {hist['sum']}")
        lines.append(f"{metric}_count {hist['count']}")
    for source, stats in sorted(snapshot.get("sources", {}).items()):
        scalars: list = []
        _walk_scalars(_prom_name(namespace, source), stats, scalars)
        for metric, value in scalars:
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {value}")
    return "\n".join(lines) + "\n"
