"""Trace spans with explicit parent ids, across threads and processes.

A :class:`Span` is a plain record: ``trace_id`` groups one logical query
or commit, ``span_id`` names this operation, ``parent_id`` points at the
enclosing span (None for a root). Ids embed the originating pid, so a
span minted inside a :class:`~repro.exec.worker` process can never
collide with a parent-side one.

Propagation has two forms:

* **Same process** — :class:`Tracer` keeps the current span in a
  ``contextvars.ContextVar``; ``tracer.start(...)`` parents to it
  automatically, so the write path (commit → group flush → fsync) nests
  without any plumbing.
* **Cross thread / cross process** — explicit context: ``tracer.ctx()``
  returns ``{"trace_id", "span_id"}``, a dict small enough to ride in a
  scan payload or on a job object. The worker process builds plain span
  dicts against that context and ships them back with its final
  ``done`` frame; the router records them into the parent's sink
  (:meth:`Span.from_dict`), stitching one tree across the transport.

Finished spans land in a bounded ring (:class:`TraceSink`) — old traces
fall off, tracing never grows without bound. A worker SIGKILLed mid-job
obviously cannot ship its spans; the router records a synthetic span
with ``status="orphan"`` in its place, so the redispatch is visible in
the tree rather than silently missing.

A disabled tracer (``Database()`` without ``trace=``) costs one
attribute check per would-be span.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass, field

_current_span: ContextVar = ContextVar("repro_current_span", default=None)
# next() on an itertools.count is atomic under the GIL; the pid prefix is
# cached and re-derived after a fork/spawn (hot path: one getpid check).
_ids = itertools.count(1)
_id_pid = -1
_id_prefix = ""


def new_id() -> str:
    """A process-unique span id (pid-prefixed, monotonic)."""
    global _id_pid, _id_prefix
    pid = os.getpid()
    if pid != _id_pid:
        _id_pid, _id_prefix = pid, f"{pid:x}-"
    return f"{_id_prefix}{next(_ids):x}"


@dataclass(slots=True)
class Span:
    """One timed operation in a trace tree."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start_s: float = field(default_factory=time.time)  # wall clock
    duration_s: float | None = None
    status: str = "ok"  # "ok" | "error" | "orphan"
    pid: int = field(default_factory=os.getpid)
    attrs: dict = field(default_factory=dict)
    _t0: float | None = field(default=None, repr=False, compare=False)

    def ctx(self) -> dict:
        """The serializable propagation context for child spans."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "pid": self.pid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        return cls(
            trace_id=d["trace_id"], span_id=d["span_id"],
            parent_id=d.get("parent_id"), name=d["name"],
            start_s=d.get("start_s", 0.0),
            duration_s=d.get("duration_s"),
            status=d.get("status", "ok"), pid=d.get("pid", 0),
            attrs=dict(d.get("attrs", {})),
        )


class _NoopSpan:
    """Stand-in yielded by a disabled tracer: absorbs attr writes."""

    __slots__ = ()
    trace_id = span_id = parent_id = None
    status = "ok"

    @property
    def attrs(self):
        return {}

    def ctx(self):
        return None


class _SpanScope:
    """Class-based ``with`` scope for :meth:`Tracer.start` — the span
    hot path runs per commit and per shard scan, and a plain object is
    measurably cheaper than a generator context manager there."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self._span = span

    def __enter__(self):
        self._token = _current_span.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb):
        _current_span.reset(self._token)
        self._tracer.finish(self._span,
                            status="error" if exc_type else "ok")
        return False


class _NoopScope:
    """Shared inert scope returned by a disabled tracer's ``start``."""

    __slots__ = ()

    def __enter__(self):
        return _NOOP_SPAN

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_SCOPE = _NoopScope()
_NOOP_SPAN = _NoopSpan()


class TraceSink:
    """Bounded ring of finished spans, with tree assembly for display."""

    def __init__(self, capacity: int = 4096):
        self._spans: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.dropped = 0

    @property
    def capacity(self) -> int:
        return self._spans.maxlen

    def record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self.dropped += 1
            self._spans.append(span)

    def spans(self, trace_id: str | None = None) -> list[Span]:
        with self._lock:
            items = list(self._spans)
        if trace_id is None:
            return items
        return [s for s in items if s.trace_id == trace_id]

    def trace_ids(self) -> list[str]:
        seen: dict[str, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def tree(self, trace_id: str) -> list["SpanNode"]:
        """Root nodes of one trace. A span whose parent fell off the
        ring (or was never recorded) is promoted to a root rather than
        dropped."""
        spans = sorted(self.spans(trace_id), key=lambda s: s.start_s)
        nodes = {s.span_id: SpanNode(s, []) for s in spans}
        roots: list[SpanNode] = []
        for span in spans:
            parent = nodes.get(span.parent_id) if span.parent_id else None
            if parent is None:
                roots.append(nodes[span.span_id])
            else:
                parent.children.append(nodes[span.span_id])
        return roots

    def render(self, trace_id: str) -> str:
        """ASCII tree of one trace — what the slow-query log emits."""
        lines: list[str] = []

        def describe(span: Span) -> str:
            dur = ("%.2fms" % (span.duration_s * 1e3)
                   if span.duration_s is not None else "?")
            flag = "" if span.status == "ok" else f" [{span.status.upper()}]"
            attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
            body = f"{span.name} pid={span.pid} {dur}{flag}"
            return f"{body} {attrs}" if attrs else body

        def walk(node: SpanNode, prefix: str, last: bool) -> None:
            lines.append(prefix + ("└─ " if last else "├─ ")
                         + describe(node.span))
            child_prefix = prefix + ("   " if last else "│  ")
            for i, child in enumerate(node.children):
                walk(child, child_prefix, i == len(node.children) - 1)

        for root in self.tree(trace_id):
            lines.append(f"{describe(root.span)} trace={trace_id}")
            for i, child in enumerate(root.children):
                walk(child, "", i == len(root.children) - 1)
        return "\n".join(lines)


@dataclass
class SpanNode:
    span: Span
    children: list


class Tracer:
    """Span factory bound to a sink; no-op when the sink is None."""

    def __init__(self, sink: TraceSink | None = None):
        self.sink = sink

    @property
    def enabled(self) -> bool:
        return self.sink is not None

    def current(self) -> Span | None:
        return _current_span.get()

    def ctx(self) -> dict | None:
        """Propagation context of the current span, or None."""
        span = _current_span.get()
        return span.ctx() if span is not None else None

    @staticmethod
    def _resolve_parent(parent) -> tuple[str, str | None]:
        """(trace_id, parent_span_id) from a Span, a ctx dict, or the
        ambient current span."""
        if parent is None:
            parent = _current_span.get()
        if parent is None:
            return new_id(), None
        if isinstance(parent, Span):
            return parent.trace_id, parent.span_id
        return parent["trace_id"], parent["span_id"]

    def begin(self, name: str, parent=None, **attrs) -> Span:
        """Open a span without touching the ambient context (for spans
        finished on another thread — request roots, shard jobs)."""
        if not self.enabled:
            return _NOOP_SPAN
        trace_id, parent_id = self._resolve_parent(parent)
        span = Span(trace_id=trace_id, span_id=new_id(),
                    parent_id=parent_id, name=name, attrs=dict(attrs))
        span._t0 = time.perf_counter()
        return span

    def finish(self, span, status: str = "ok") -> None:
        if span is None or span is _NOOP_SPAN or not self.enabled:
            return
        if span.duration_s is None:
            span.duration_s = (time.perf_counter() - span._t0
                               if span._t0 is not None else 0.0)
        if status != "ok":
            span.status = status
        self.sink.record(span)

    def start(self, name: str, parent=None, **attrs) -> "_SpanScope":
        """Context manager: open a span, make it the ambient current
        span for the ``with`` body, record it on exit."""
        if not self.enabled:
            return _NOOP_SCOPE
        return _SpanScope(self, self.begin(name, parent=parent, **attrs))

    def record_orphan(self, parent_ctx, name: str, **attrs) -> None:
        """Mark a child operation that died before reporting (e.g. a
        SIGKILLed worker): the span exists, carries no duration, and is
        flagged ``orphan`` so redispatches stay visible in the tree."""
        if not self.enabled or parent_ctx is None:
            return
        trace_id, parent_id = self._resolve_parent(parent_ctx)
        self.sink.record(Span(
            trace_id=trace_id, span_id=new_id(), parent_id=parent_id,
            name=name, duration_s=None, status="orphan",
            attrs=dict(attrs),
        ))


def worker_span_dict(ctx: dict, name: str, start_s: float,
                     duration_s: float, attrs: dict) -> dict:
    """A plain span dict minted inside a worker process against a
    serialized parent context — picklable, stitched by the router via
    :meth:`Span.from_dict`."""
    return {
        "trace_id": ctx["trace_id"],
        "span_id": new_id(),
        "parent_id": ctx["span_id"],
        "name": name,
        "start_s": start_s,
        "duration_s": duration_s,
        "status": "ok",
        "pid": os.getpid(),
        "attrs": attrs,
    }
