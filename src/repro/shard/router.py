"""Key-range shard routing.

A :class:`ShardRouter` owns the ordered boundary list of a range-sharded
table. ``N`` shards are described by ``N - 1`` strictly increasing sort-key
boundaries; shard ``i`` covers the half-open key interval

    [ boundaries[i-1], boundaries[i] )

with the first shard open below and the last shard open above. Routing is
a ``bisect`` over the boundary list — the same lexicographic tuple order
the sort key already defines — so a scalar update routes in O(log N) and a
bulk batch splits into per-shard sub-batches in one pass that preserves
the batch's operation order within every shard (the bulk path's same-key
run semantics depend on that order).
"""

from __future__ import annotations

import bisect


class ShardRouter:
    """Maps sort keys to range shards and splits batches accordingly."""

    def __init__(self, boundaries):
        bounds = [tuple(b) for b in boundaries]
        for a, b in zip(bounds, bounds[1:]):
            if a >= b:
                raise ValueError(
                    f"shard boundaries must be strictly increasing: "
                    f"{a!r} >= {b!r}"
                )
        self.boundaries: list[tuple] = bounds

    @property
    def num_shards(self) -> int:
        return len(self.boundaries) + 1

    def shard_of(self, sk) -> int:
        """Index of the shard owning sort key ``sk``.

        A key equal to a boundary belongs to the shard *starting* at that
        boundary (half-open ranges).
        """
        return bisect.bisect_right(self.boundaries, tuple(sk))

    def key_range(self, index: int) -> tuple:
        """``(low, high)`` key bounds of shard ``index``; ``None`` marks an
        open end. The shard owns keys in ``[low, high)``."""
        if not 0 <= index < self.num_shards:
            raise IndexError(f"shard {index} out of range")
        low = self.boundaries[index - 1] if index > 0 else None
        high = self.boundaries[index] if index < len(self.boundaries) else None
        return low, high

    def shards_for_range(self, low=None, high=None) -> range:
        """Shard indexes whose key range intersects ``[low, high]``
        (inclusive bounds, ``None`` = open).

        Bounds may be sort-key *prefixes* (as in ``Database.query_range``):
        a prefix ``high`` is inclusive of every extension, so the last
        shard is found by comparing only the prefix columns of each
        boundary — a boundary sharing the prefix still has qualifying
        keys on its right. (A prefix ``low`` needs no such care: every
        qualifying key tuple-compares ``>= low``, and routing is
        monotone in the key.)
        """
        first = 0 if low is None else self.shard_of(low)
        if high is None:
            last = self.num_shards - 1
        else:
            high = tuple(high)
            last = bisect.bisect_right(
                [b[: len(high)] for b in self.boundaries], high
            )
        return range(first, last + 1)

    def split_ops(self, schema, ops) -> list[list]:
        """Split an update batch into per-shard sub-batches.

        ``ops`` use the batch-path grammar — ``("ins", row) | ("del", sk) |
        ("mod", sk, column, value)`` — and every op is routed by the sort
        key it addresses. Relative op order is preserved within each shard,
        so same-key chains (delete-then-reinsert, ...) replay exactly as
        they would unsharded.
        """
        parts: list[list] = [[] for _ in range(self.num_shards)]
        for op in ops:
            if op[0] == "ins":
                sk = schema.sk_of(schema.coerce_row(op[1]))
            else:
                sk = tuple(op[1])
            parts[self.shard_of(sk)].append(op)
        return parts

    def split_rows(self, schema, rows) -> list[list]:
        """Partition coerced rows by the shard owning their sort key."""
        parts: list[list] = [[] for _ in range(self.num_shards)]
        for row in rows:
            row = schema.coerce_row(row)
            parts[self.shard_of(schema.sk_of(row))].append(row)
        return parts

    # -- boundary maintenance (rebalancer) --------------------------------

    def insert_boundary(self, index: int, key) -> None:
        """Split shard ``index`` at ``key``: the shard's range becomes
        ``[low, key)`` + ``[key, high)``."""
        low, high = self.key_range(index)
        key = tuple(key)
        if low is not None and key <= low:
            raise ValueError(f"split key {key!r} at or below shard low")
        if high is not None and key >= high:
            raise ValueError(f"split key {key!r} at or above shard high")
        self.boundaries.insert(index, key)

    def remove_boundary(self, index: int) -> None:
        """Merge shards ``index`` and ``index + 1`` into one range."""
        if not 0 <= index < len(self.boundaries):
            raise IndexError(f"no boundary {index}")
        del self.boundaries[index]

    def __repr__(self) -> str:
        return f"ShardRouter({self.num_shards} shards, {self.boundaries!r})"
