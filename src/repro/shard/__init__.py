"""Range partitioning: sharded tables, key routing, and rebalancing."""

from .rebalance import maybe_rebalance, merge_adjacent, split_shard
from .router import ShardRouter
from .sharded import ShardedTable

__all__ = [
    "ShardRouter",
    "ShardedTable",
    "maybe_rebalance",
    "merge_adjacent",
    "split_shard",
]
